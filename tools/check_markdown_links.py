#!/usr/bin/env python3
"""Check that every relative markdown link in the repo's *.md files
resolves to an existing file or directory.

Usage: python3 tools/check_markdown_links.py [root]

External links (http/https/mailto) are not fetched — CI must not depend
on network reachability; this catches the class of rot we can verify
hermetically: renamed docs, moved sources, typos in anchors to files.
Exit status: 0 when all links resolve, 1 otherwise.
"""
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "build-asan", "build-docs"}
# Verbatim scrapes of external papers/repos; their links reference the
# original sources, not files in this repository.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def check(root):
    failures = []
    for path in sorted(markdown_files(root)):
        for lineno, line in enumerate(open(path, encoding="utf-8"), start=1):
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#")[0])
                )
                if not os.path.exists(resolved):
                    failures.append(f"{path}:{lineno}: broken link -> {target}")
    return failures


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = check(root)
    for failure in failures:
        print(failure)
    count = sum(1 for _ in markdown_files(root))
    print(f"checked {count} markdown files: "
          f"{'all links OK' if not failures else f'{len(failures)} broken'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
