// cps_serve — the resident query daemon (src/serve/).
//
// Serves warm-path queries (dwell/wait curve, loop designs, slot
// allocation, schedulability verdicts) over a Unix-domain socket —
// optionally also loopback TCP — from the process fixture cache, backed
// by the persistent store when --fixture-store is given.  See
// docs/ARCHITECTURE.md (server section) for the frame protocol and the
// admission-control / drain semantics.
//
// Exit codes: 0 after a graceful drain (SIGTERM/SIGINT), 1 on startup
// or serving failure, 2 on usage errors.
//
//   cps_serve --socket /tmp/cps.sock [options]
//
//   --socket PATH         Unix-domain socket to serve on (required)
//   --listen PORT         also serve on 127.0.0.1:PORT
//   --workers N           query worker threads (default 2)
//   --max-queue N         admission bound: pending requests beyond this
//                         are shed with `overloaded` (default 64)
//   --max-conns N         accepted connections cap (default 64)
//   --read-timeout-ms N   drop a connection mid-frame this long (5000)
//   --write-timeout-ms N  drop a connection not draining responses (5000)
//   --idle-timeout-ms N   close a silent idle connection (60000)
//   --fixture-store DIR   attach the persistent fixture store
//   --ready-file FILE     publish FILE once accepting (scripts poll it)
//   --warm                pre-compute curve + fleet + designs before
//                         accepting, so first queries are already warm

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "experiments/fixtures.hpp"
#include "runtime/cli.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "serve/server.hpp"
#include "util/signal_safe.hpp"

namespace {

// Written by the signal handler, read by the server's poll loop at
// least every poll timeout.  The handler does nothing else — every
// consequence of the signal runs on the serving thread.
volatile std::sig_atomic_t g_drain = 0;

void on_drain_signal(int) { g_drain = 1; }

}  // namespace

int main(int argc, char** argv) {
  using cps::runtime::CliError;
  using cps::runtime::CliParser;

  std::string socket_path;
  std::uint64_t listen_port = 0;
  std::uint64_t workers = 2;
  std::uint64_t max_queue = 64;
  std::uint64_t max_conns = 64;
  std::uint64_t read_timeout_ms = 5000;
  std::uint64_t write_timeout_ms = 5000;
  std::uint64_t idle_timeout_ms = 60000;
  std::string fixture_store_dir;
  std::string ready_file;
  bool warm = false;

  CliParser cli("cps_serve", "");
  cli.add_string({"--socket"}, &socket_path, "PATH",
                 "Unix-domain socket path to serve on (required)");
  cli.add_u64({"--listen"}, &listen_port, "PORT",
              "also accept loopback TCP connections on 127.0.0.1:PORT");
  cli.add_u64({"--workers"}, &workers, "N", "query worker threads");
  cli.add_u64({"--max-queue"}, &max_queue, "N",
              "bounded admission queue; beyond it requests are shed with 'overloaded'");
  cli.add_u64({"--max-conns"}, &max_conns, "N", "accepted-connection cap");
  cli.add_u64({"--read-timeout-ms"}, &read_timeout_ms, "MS",
              "drop a connection whose frame stays incomplete this long");
  cli.add_u64({"--write-timeout-ms"}, &write_timeout_ms, "MS",
              "drop a connection that stops draining its responses");
  cli.add_u64({"--idle-timeout-ms"}, &idle_timeout_ms, "MS",
              "close a connection with no traffic and nothing pending");
  cli.add_string({"--fixture-store"}, &fixture_store_dir, "DIR",
                 "attach the persistent fixture store (warm restarts)");
  cli.add_string({"--ready-file"}, &ready_file, "FILE",
                 "publish FILE once the server is accepting");
  cli.add_flag({"--warm"}, &warm,
               "pre-compute curve/fleet/designs before accepting");

  try {
    const auto positionals = cli.parse({argv + 1, argv + argc});
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }
    if (!positionals.empty()) throw CliError("cps_serve takes no positional arguments");
    if (socket_path.empty()) throw CliError("--socket is required");
  } catch (const CliError& error) {
    std::fprintf(stderr, "cps_serve: %s\n%s", error.what(), cli.help().c_str());
    return 2;
  }

  try {
    if (!fixture_store_dir.empty())
      cps::runtime::FixtureCache::instance().set_store(
          std::make_shared<cps::runtime::FixtureStore>(fixture_store_dir));

    if (warm) {
      // Pay the expensive fixtures up front (or load them from the
      // store), so the first client query is already a memory hit.
      std::fputs("cps_serve: warming fixtures...\n", stderr);
      cps::experiments::measure_servo_curve();
      const auto fleet = cps::experiments::paper_fleet();
      for (std::size_t i = 0; i < fleet->size(); ++i)
        cps::experiments::paper_loop_design(i);
      std::fputs("cps_serve: fixtures warm\n", stderr);
    }

    // Plain flag-setting handlers: the poll loop observes g_drain and
    // runs the actual drain on the serving thread.
    std::signal(SIGTERM, on_drain_signal);
    std::signal(SIGINT, on_drain_signal);
    std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as EPIPE, not death

    cps::serve::ServeOptions options;
    options.socket_path = socket_path;
    options.tcp_port = static_cast<int>(listen_port);
    options.workers = static_cast<int>(workers);
    options.max_queue = static_cast<std::size_t>(max_queue);
    options.max_connections = static_cast<std::size_t>(max_conns);
    options.read_timeout_ms = static_cast<int>(read_timeout_ms);
    options.write_timeout_ms = static_cast<int>(write_timeout_ms);
    options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
    options.drain_flag = &g_drain;
    options.ready_file = ready_file;

    cps::serve::Server server(std::move(options));
    std::fprintf(stderr, "cps_serve: serving on %s%s\n", socket_path.c_str(),
                 listen_port > 0
                     ? (" and 127.0.0.1:" + std::to_string(listen_port)).c_str()
                     : "");
    server.run();

    // Graceful drain completed: print the final counters.  fprintf is
    // fine here — we are on the main thread, outside any signal handler
    // (the handler only set a flag).
    std::fputs("cps_serve: drained; final counters:\n", stderr);
    for (const auto& [name, value] : server.stats().snapshot())
      std::fprintf(stderr, "  %-28s %llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    return 0;
  } catch (const std::exception& error) {
    // Teardown logging via the async-signal-safe writer: this path can
    // race worker threads being torn down, and stderr stdio locks are
    // the one thing we must not depend on while exiting abnormally.
    cps::util::safe_write_str(2, "cps_serve: fatal: ");
    cps::util::safe_write_str(2, error.what());
    cps::util::safe_write_str(2, "\n");
    return 1;
  }
}
