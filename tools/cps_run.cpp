// cps_run — the single driver for every registered experiment.
//
//   cps_run --list                      enumerate the experiment catalog
//   cps_run fig4                        run one experiment
//   cps_run fig3 fig4 table_alloc      run several, in the given order
//   cps_run all                         run the whole catalog
//
// Options:
//   --jobs N    worker threads for parallel sweeps (default 1; sweeps are
//               bit-identical for any value — see runtime/sweep_runner.hpp)
//   --csv DIR   directory for CSV artifacts (created; default: cwd)
//   --seed S    base seed for randomized campaigns (default 0x5EED5EED)
//
// Exit status: 0 on success, 1 on experiment failure, 2 on usage errors.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/fixture_cache.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using cps::runtime::Experiment;
using cps::runtime::ExperimentContext;
using cps::runtime::ExperimentRegistry;

constexpr int kMaxJobs = 1024;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cps_run --list\n"
               "       cps_run <experiment>... [--jobs N] [--csv DIR] [--seed S]\n"
               "       cps_run all [--jobs N] [--csv DIR] [--seed S]\n\n"
               "run `cps_run --list` for the experiment catalog.\n");
}

void print_catalog(std::FILE* out) {
  cps::TextTable table({"experiment", "description"});
  for (const Experiment* experiment : ExperimentRegistry::instance().list())
    table.add_row({experiment->name(), experiment->description()});
  std::fprintf(out, "%zu registered experiments:\n%s", ExperimentRegistry::instance().size(),
               table.render().c_str());
}

/// Parse the decimal/hex integer argument of `flag`; exits with status 2
/// on malformed input.
std::uint64_t parse_u64(const char* flag, const std::string& value) {
  try {
    // std::stoull would wrap a leading '-' modulo 2^64; reject signs up front.
    if (value.empty() || value[0] == '-' || value[0] == '+')
      throw std::invalid_argument(value);
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed, 0);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    std::fprintf(stderr, "cps_run: %s expects an integer, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
}

int run_experiments(const std::vector<const Experiment*>& experiments,
                    ExperimentContext& context) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    const auto start = std::chrono::steady_clock::now();
    try {
      experiment->run(context);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      std::fprintf(context.out, "[cps_run] %s done in %.2f s\n", experiment->name().c_str(),
                   elapsed.count());
    } catch (const std::exception& error) {
      ++failures;
      std::fprintf(stderr, "[cps_run] %s FAILED: %s\n", experiment->name().c_str(),
                   error.what());
    }
  }
  const auto cache = cps::runtime::FixtureCache::instance().stats();
  std::fprintf(context.out, "[cps_run] fixture cache: %zu hits, %zu misses, %zu entries\n",
               cache.hits, cache.misses, cache.entries);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  ExperimentContext context;
  bool list_only = false;
  bool run_all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cps_run: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list" || arg == "-l") {
      list_only = true;
    } else if (arg == "--jobs" || arg == "-j") {
      const std::uint64_t jobs = parse_u64("--jobs", flag_value("--jobs"));
      if (jobs < 1 || jobs > kMaxJobs) {
        std::fprintf(stderr, "cps_run: --jobs must be in [1, %d]\n", kMaxJobs);
        return 2;
      }
      context.jobs = static_cast<int>(jobs);
    } else if (arg == "--csv") {
      context.csv_dir = flag_value("--csv");
    } else if (arg == "--seed") {
      context.seed = parse_u64("--seed", flag_value("--seed"));
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "all") {
      run_all = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cps_run: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  if (list_only) {
    print_catalog(stdout);
    return 0;
  }
  if (names.empty() && !run_all) {
    print_usage(stderr);
    return 2;
  }
  if (run_all && !names.empty()) {
    std::fprintf(stderr, "cps_run: 'all' cannot be combined with named experiments\n");
    return 2;
  }

  std::vector<const Experiment*> experiments;
  if (run_all) {
    experiments = ExperimentRegistry::instance().list();
  } else {
    for (const auto& name : names) {
      const Experiment* experiment = ExperimentRegistry::instance().find(name);
      if (experiment == nullptr) {
        std::fprintf(stderr, "cps_run: unknown experiment '%s'\n", name.c_str());
        print_catalog(stderr);
        return 2;
      }
      experiments.push_back(experiment);
    }
  }

  if (!context.csv_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(context.csv_dir, error);
    if (error) {
      std::fprintf(stderr, "cps_run: cannot create csv dir '%s': %s\n",
                   context.csv_dir.c_str(), error.message().c_str());
      return 2;
    }
  }

  return run_experiments(experiments, context);
}
