// cps_run — the single driver for every registered experiment.
//
//   cps_run --list                      enumerate the experiment catalog
//   cps_run fig4                        run one experiment
//   cps_run fig3 fig4 table_alloc      run several, in the given order
//   cps_run all                         run the whole catalog
//   cps_run --spec campaign.toml        run a declarative campaign spec
//
// The flag table lives in main() (runtime/cli.hpp renders `--help` from
// it); the highlights:
//
//   --jobs N    worker threads for parallel sweeps (default 1; sweeps are
//               bit-identical for any value — see runtime/sweep_runner.hpp)
//   --spec FILE declarative campaign spec (runtime/campaign_spec.hpp):
//               the spec names the experiments to run and carries typed
//               parameters (grids, trials, generator distributions) into
//               them.  The spec's seed and fixture store apply unless the
//               corresponding flag is given explicitly; --shard/--merge
//               compose unchanged (the spec picks the workload, never the
//               partition).  Incompatible with positional experiment
//               names and 'all'.
//   --scenario FILE
//               online fault-injection scenario script (online/scenario.hpp):
//               runs the run_scenario experiment over it.  Excludes --spec
//               and 'all'; --seed beats the scenario's own seed.
//   --dry-run   with --spec or --scenario: print the validated expansion
//               (campaign name, content digest, experiments, seed, store,
//               shard plan — or the scenario's fleet and event list) and
//               exit without running anything
//   --fixture-store DIR
//               persistent content-addressed fixture store shared across
//               processes (runtime/fixture_store.hpp)
//   --shard i/N run only shard i of each named SWEEP experiment's index
//               range; --merge N concatenates the partials (gap/overlap
//               checked) into the canonical CSVs
//   --store-stats DIR / --store-gc-max-bytes N
//               store inspection and LRU eviction (standalone or
//               post-campaign; see the flag help)
//
// Exit status: 0 on success, 1 on experiment/merge failure, 2 on usage
// errors (including malformed or invalid --spec files).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "online/scenario.hpp"
#include "runtime/campaign_spec.hpp"
#include "runtime/cli.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "runtime/shard.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using cps::runtime::CliError;
using cps::runtime::Experiment;
using cps::runtime::ExperimentContext;
using cps::runtime::ExperimentRegistry;

constexpr std::uint64_t kMaxJobs = 1024;
constexpr std::uint64_t kMaxShards = 4096;

/// Human-scale seconds for the store-stats table.
std::string format_age(double seconds) {
  if (seconds < 120.0) return cps::format_fixed(seconds, 1) + " s";
  if (seconds < 7200.0) return cps::format_fixed(seconds / 60.0, 1) + " min";
  if (seconds < 172800.0) return cps::format_fixed(seconds / 3600.0, 1) + " h";
  return cps::format_fixed(seconds / 86400.0, 1) + " d";
}

/// `--store-gc-max-bytes`: evict down to the cap and report.
void run_store_gc(const cps::runtime::FixtureStore& store, std::uint64_t max_bytes,
                  std::FILE* out) {
  const auto gc = store.gc_to_max_bytes(max_bytes);
  std::fprintf(out,
               "[cps_run] store gc (%s): %zu files scanned, %zu evicted, %zu in-use kept, "
               "%llu -> %llu bytes (cap %llu)\n",
               store.directory().c_str(), gc.scanned, gc.evicted, gc.kept_in_use,
               static_cast<unsigned long long>(gc.bytes_before),
               static_cast<unsigned long long>(gc.bytes_after),
               static_cast<unsigned long long>(max_bytes));
}

/// `--store-stats DIR`: the standalone inspector.
int run_store_stats(const std::string& directory, const std::uint64_t* gc_max_bytes) {
  try {
    const cps::runtime::FixtureStore store(directory);
    if (gc_max_bytes != nullptr) run_store_gc(store, *gc_max_bytes, stdout);
    const auto domains = store.usage();
    cps::TextTable table({"domain", "files", "bytes", "oldest use", "newest use"});
    std::size_t files = 0;
    std::uintmax_t bytes = 0;
    for (const auto& domain : domains) {
      files += domain.files;
      bytes += domain.bytes;
      table.add_row({domain.domain, std::to_string(domain.files),
                     std::to_string(domain.bytes), format_age(domain.oldest_age_seconds),
                     format_age(domain.newest_age_seconds)});
    }
    std::printf("fixture store %s: %zu files, %llu bytes in %zu domains\n",
                store.directory().c_str(), files, static_cast<unsigned long long>(bytes),
                domains.size());
    if (!domains.empty()) std::printf("%s", table.render().c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: --store-stats failed: %s\n", error.what());
    return 1;
  }
}

void print_catalog(std::FILE* out) {
  cps::TextTable table({"experiment", "description", "shardable"});
  for (const Experiment* experiment : ExperimentRegistry::instance().list())
    table.add_row({experiment->name(), experiment->description(),
                   experiment->shardable() ? "yes" : ""});
  std::fprintf(out, "%zu registered experiments:\n%s", ExperimentRegistry::instance().size(),
               table.render().c_str());
}

/// Parse "--shard i/N" into (index, count); throws CliError like every
/// other value check so it reports through the single usage-error path.
std::pair<std::uint64_t, std::uint64_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= value.size())
    throw CliError("--shard expects i/N (e.g. 0/2), got '" + value + "'");
  const std::uint64_t index = cps::runtime::parse_cli_u64(value.substr(0, slash), "--shard i");
  const std::uint64_t count = cps::runtime::parse_cli_u64(value.substr(slash + 1), "--shard N");
  if (count < 1 || count > kMaxShards || index >= count)
    throw CliError("--shard needs 0 <= i < N <= " + std::to_string(kMaxShards) + ", got '" +
                   value + "'");
  return {index, count};
}

/// `--scenario --dry-run`: print the validated scenario without running.
void print_scenario_expansion(const cps::online::ScenarioSpec& scenario,
                              const ExperimentContext& context) {
  std::printf("scenario %s (script %s)\n", scenario.name.c_str(), scenario.source.c_str());
  std::printf("  ticks:  %llu x %s s\n", static_cast<unsigned long long>(scenario.ticks),
              cps::format_general(scenario.tick_seconds).c_str());
  std::printf("  fleet:  %zu apps at utilization %s, slot budget %s\n", scenario.n_apps,
              cps::format_general(scenario.utilization).c_str(),
              scenario.slot_budget == 0 ? "unlimited"
                                        : std::to_string(scenario.slot_budget).c_str());
  const std::uint64_t seed = cps::online::effective_scenario_seed(context, scenario);
  std::printf("  seed:   %llu (from %s)\n", static_cast<unsigned long long>(seed),
              context.seed_explicit ? "--seed"
                                    : (scenario.has_seed ? "the scenario" : "the default"));
  std::printf("  events (%zu):\n", scenario.events.size());
  for (const auto& event : scenario.events)
    std::printf("    tick %llu: %s%s%s\n", static_cast<unsigned long long>(event.at_tick),
                cps::online::event_kind_name(event.kind), event.app.empty() ? "" : " ",
                event.app.c_str());
}

/// `--spec --dry-run`: print the validated expansion without running.
void print_spec_expansion(const cps::runtime::CampaignSpec& spec,
                          const std::vector<const Experiment*>& experiments,
                          const ExperimentContext& context,
                          const std::string& fixture_store_dir) {
  std::printf("campaign %s (spec %s, digest %s)\n", spec.name.c_str(), spec.source.c_str(),
              spec.digest_hex().c_str());
  std::printf("  seed:          %llu%s\n", static_cast<unsigned long long>(context.seed),
              spec.has_seed ? "" : " (default; spec sets none)");
  std::printf("  fixture store: %s\n",
              fixture_store_dir.empty() ? "(none)" : fixture_store_dir.c_str());
  std::printf("  shard plan:    %zu (advisory; --shard i/N decides)\n", spec.shard_plan);
  std::printf("  parameters:    %zu keys\n", spec.params.size());
  std::printf("  experiments (%zu, in run order):\n", experiments.size());
  for (const Experiment* experiment : experiments)
    std::printf("    %s%s\n", experiment->name().c_str(),
                experiment->shardable() ? "  [shardable]" : "");
}

int run_experiments(const std::vector<const Experiment*>& experiments,
                    ExperimentContext& context) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    const auto start = std::chrono::steady_clock::now();
    try {
      experiment->run(context);
      // Shard provenance: stamp each partial with the campaign seed and
      // its slot so --merge can refuse stale or mixed-campaign partials.
      if (context.sharded()) {
        for (const auto& artifact : experiment->sweep_artifacts())
          cps::runtime::write_shard_meta(context.artifact_path(artifact), context.seed,
                                         context.shard_index, context.shard_count);
      }
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      std::fprintf(context.out, "[cps_run] %s done in %.2f s\n", experiment->name().c_str(),
                   elapsed.count());
    } catch (const std::exception& error) {
      ++failures;
      std::fprintf(stderr, "[cps_run] %s FAILED: %s\n", experiment->name().c_str(),
                   error.what());
    }
  }
  const auto cache = cps::runtime::FixtureCache::instance().stats();
  std::fprintf(context.out, "[cps_run] fixture cache: %zu hits, %zu misses, %zu entries\n",
               cache.hits, cache.misses, cache.entries);
  if (const auto store = cps::runtime::FixtureCache::instance().store()) {
    const auto disk = store->stats();
    std::fprintf(context.out,
                 "[cps_run] fixture store (%s): %zu disk hits, %zu disk misses, "
                 "%zu writes, %zu invalid\n",
                 store->directory().c_str(), disk.disk_hits, disk.disk_misses, disk.writes,
                 disk.invalid);
  }
  return failures == 0 ? 0 : 1;
}

/// `--merge N`: concatenate the shard partials of every named sweep
/// experiment into the canonical CSVs.
int merge_experiments(const std::vector<const Experiment*>& experiments,
                      const ExperimentContext& context, std::size_t shard_count) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    if (!experiment->shardable()) {
      std::fprintf(stderr, "[cps_run] %s has no sweep artifacts to merge\n",
                   experiment->name().c_str());
      ++failures;
      continue;
    }
    for (const auto& artifact : experiment->sweep_artifacts()) {
      const std::string canonical = context.csv_path(artifact);
      try {
        const std::size_t rows = cps::runtime::merge_sweep_csv(canonical, shard_count);
        std::fprintf(context.out, "[cps_run] merged %zu shards -> %s (%zu rows)\n",
                     shard_count, canonical.c_str(), rows);
      } catch (const std::exception& error) {
        ++failures;
        std::fprintf(stderr, "[cps_run] merge of %s FAILED: %s\n", canonical.c_str(),
                     error.what());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // ---- flag table (everything --help shows is declared right here) ----
  bool list_only = false;
  bool dry_run = false;
  std::uint64_t jobs = 1;
  std::uint64_t seed_flag = 0;
  bool seed_seen = false;
  std::string csv_dir;
  std::string fixture_store_dir;
  bool fixture_store_seen = false;
  std::string store_stats_dir;
  std::string shard_text;
  std::string spec_path;
  std::string scenario_path;
  std::uint64_t gc_max_bytes = 0;
  bool gc_requested = false;
  std::uint64_t merge_shards = 0;
  bool merge = false;

  cps::runtime::CliParser cli("cps_run", "[experiment ...|all]");
  cli.add_flag({"--list", "-l"}, &list_only, "enumerate the experiment catalog and exit");
  cli.add_u64({"--jobs", "-j"}, &jobs, "N",
              "worker threads for parallel sweeps (bit-identical output for any N)");
  cli.add_string({"--csv"}, &csv_dir, "DIR", "directory for CSV artifacts (created)");
  cli.add_u64({"--seed"}, &seed_flag, "S",
              "base seed for randomized campaigns (default 0x5EED5EED)", &seed_seen);
  cli.add_string({"--spec"}, &spec_path, "FILE",
                 "declarative campaign spec: runs its experiments with its typed "
                 "parameters (excludes positional names/'all')");
  cli.add_string({"--scenario"}, &scenario_path, "FILE",
                 "online fault-injection scenario script: runs the run_scenario "
                 "experiment over it (excludes --spec/'all')");
  cli.add_flag({"--dry-run"}, &dry_run,
               "with --spec/--scenario: print the validated expansion, run nothing");
  cli.add_string({"--fixture-store"}, &fixture_store_dir, "DIR",
                 "persistent content-addressed fixture store shared across processes",
                 &fixture_store_seen);
  cli.add_string({"--shard"}, &shard_text, "i/N",
                 "run only shard i of each sweep experiment's index range");
  cli.add_u64({"--merge"}, &merge_shards, "N",
              "merge N shard artifacts under --csv into the canonical CSVs", &merge);
  cli.add_string({"--store-stats"}, &store_stats_dir, "DIR",
                 "standalone store inspector: per-domain usage report, then exit");
  cli.add_u64({"--store-gc-max-bytes"}, &gc_max_bytes, "N",
              "LRU-evict store files down to N bytes (after experiments, or "
              "before a --store-stats report)",
              &gc_requested);

  // ---- parse + validate: every usage error funnels through here and
  // exits 2 (the documented contract); nothing below this block fails
  // on malformed input.
  std::vector<std::string> names;
  bool run_all = false;
  std::optional<cps::runtime::CampaignSpec> spec;
  std::optional<cps::online::ScenarioSpec> scenario;
  ExperimentContext context;
  try {
    names = cli.parse({argv + 1, argv + argc});
    if (cli.help_requested()) {
      std::printf("%s\nrun `cps_run --list` for the experiment catalog.\n",
                  cli.help().c_str());
      return 0;
    }
    for (auto it = names.begin(); it != names.end();) {
      if (*it == "all") {
        run_all = true;
        it = names.erase(it);
      } else {
        ++it;
      }
    }

    if (jobs < 1 || jobs > kMaxJobs)
      throw CliError("--jobs must be in [1, " + std::to_string(kMaxJobs) + "]");
    context.jobs = static_cast<int>(jobs);
    if (seed_seen) context.seed = seed_flag;
    context.seed_explicit = seed_seen;
    context.csv_dir = csv_dir;
    if (!shard_text.empty()) {
      const auto [index, count] = parse_shard(shard_text);
      context.shard_index = static_cast<std::size_t>(index);
      context.shard_count = static_cast<std::size_t>(count);
    }
    if (merge && (merge_shards < 2 || merge_shards > kMaxShards))
      throw CliError("--merge needs a shard count in [2, " + std::to_string(kMaxShards) +
                     "]");

    // Mode interactions, checked up front in one place.
    if (run_all && !names.empty())
      throw CliError("'all' cannot be combined with named experiments");
    if (merge && (context.sharded() || run_all))
      throw CliError("--merge cannot be combined with --shard or 'all'");
    if (!spec_path.empty() && (run_all || !names.empty()))
      throw CliError("--spec declares the experiments to run; positional names and "
                     "'all' cannot be combined with it");
    if (!scenario_path.empty()) {
      // --scenario IS a run of run_scenario; anything that names a
      // different workload contradicts it.
      if (!spec_path.empty())
        throw CliError("--scenario cannot be combined with --spec (use the spec's "
                       "scenario.file key instead)");
      if (run_all) throw CliError("--scenario cannot be combined with 'all'");
      if (merge) throw CliError("--scenario cannot be combined with --merge");
      for (const auto& name : names)
        if (name != "run_scenario")
          throw CliError("--scenario runs the run_scenario experiment; '" + name +
                         "' cannot be combined with it");
      names = {"run_scenario"};
      context.scenario_path = scenario_path;
    }
    if (dry_run && spec_path.empty() && scenario_path.empty())
      throw CliError("--dry-run requires --spec or --scenario");
    if (!store_stats_dir.empty()) {
      // Standalone inspector: combining it with a run (or a second store
      // via --fixture-store) would make it ambiguous which store the GC
      // pass empties, so reject rather than silently pick one.
      if (!names.empty() || run_all || merge || context.sharded() ||
          fixture_store_seen || !spec_path.empty())
        throw CliError("--store-stats is a standalone inspector (no experiments, no "
                       "--spec, no --fixture-store)");
    } else if (gc_requested && !fixture_store_seen && spec_path.empty()) {
      throw CliError("--store-gc-max-bytes needs --fixture-store (or --store-stats)");
    }

    // Campaign spec: parse + validate, then let it fill the defaults the
    // CLI did not set explicitly.  A malformed spec is the user's input,
    // so it reports as a usage error too.
    if (!spec_path.empty()) {
      spec = cps::runtime::load_campaign_spec(spec_path);
      names = spec->experiments;
      if (!seed_seen && spec->has_seed) context.seed = spec->seed;
      if (!fixture_store_seen) fixture_store_dir = spec->fixture_store;
      if (gc_requested && fixture_store_dir.empty())
        throw CliError("--store-gc-max-bytes needs a fixture store, and spec '" +
                       spec->name + "' sets none");
      context.spec = &*spec;
    }

    // Scenario script: parse + validate up front, so a malformed script
    // reports as a usage error (exit 2) exactly like a malformed --spec.
    if (!scenario_path.empty()) scenario = cps::online::load_scenario(scenario_path);

    if (!list_only && store_stats_dir.empty() && names.empty() && !run_all)
      throw CliError("nothing to run: name experiments, 'all', or --spec FILE");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: %s\n", error.what());
    std::fprintf(stderr, "run `cps_run --help` for usage.\n");
    return 2;
  }

  if (list_only) {
    print_catalog(stdout);
    return 0;
  }
  if (!store_stats_dir.empty())
    return run_store_stats(store_stats_dir, gc_requested ? &gc_max_bytes : nullptr);

  std::vector<const Experiment*> experiments;
  if (run_all) {
    experiments = ExperimentRegistry::instance().list();
  } else {
    for (const auto& name : names) {
      const Experiment* experiment = ExperimentRegistry::instance().find(name);
      if (experiment == nullptr) {
        std::fprintf(stderr, "cps_run: unknown experiment '%s'%s\n", name.c_str(),
                     spec ? (" (from spec " + spec->source + ")").c_str() : "");
        print_catalog(stderr);
        return 2;
      }
      experiments.push_back(experiment);
    }
  }

  if (context.sharded()) {
    // Sharding partitions sweep index ranges; an experiment that never
    // consults ctx.shard_* would silently run in full on every shard, so
    // only experiments that declare sweep artifacts accept --shard.
    for (const Experiment* experiment : experiments) {
      if (!experiment->shardable()) {
        std::fprintf(stderr, "cps_run: experiment '%s' does not support --shard\n",
                     experiment->name().c_str());
        return 2;
      }
    }
  }

  if (dry_run) {
    if (spec)
      print_spec_expansion(*spec, experiments, context, fixture_store_dir);
    else
      print_scenario_expansion(*scenario, context);
    return 0;
  }

  if (merge) return merge_experiments(experiments, context, merge_shards);

  if (!context.csv_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(context.csv_dir, error);
    if (error) {
      std::fprintf(stderr, "cps_run: cannot create csv dir '%s': %s\n",
                   context.csv_dir.c_str(), error.message().c_str());
      return 2;
    }
  }

  if (!fixture_store_dir.empty()) {
    try {
      cps::runtime::FixtureCache::instance().set_store(
          std::make_shared<cps::runtime::FixtureStore>(fixture_store_dir));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cps_run: cannot open fixture store: %s\n", error.what());
      return 2;
    }
  }

  if (spec)
    std::fprintf(context.out, "[cps_run] campaign %s (spec %s, digest %s)\n",
                 spec->name.c_str(), spec->source.c_str(), spec->digest_hex().c_str());

  const int status = run_experiments(experiments, context);
  if (gc_requested) {
    // After the campaign: the files this run loaded or wrote are its
    // working set and survive; everything else is fair game, oldest
    // first.
    if (const auto store = cps::runtime::FixtureCache::instance().store())
      run_store_gc(*store, gc_max_bytes, context.out);
  }
  return status;
}
