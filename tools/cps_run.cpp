// cps_run — the single driver for every registered experiment.
//
//   cps_run --list                      enumerate the experiment catalog
//   cps_run fig4                        run one experiment
//   cps_run fig3 fig4 table_alloc      run several, in the given order
//   cps_run all                         run the whole catalog
//
// Options:
//   --jobs N    worker threads for parallel sweeps (default 1; sweeps are
//               bit-identical for any value — see runtime/sweep_runner.hpp)
//   --csv DIR   directory for CSV artifacts (created; default: cwd)
//   --seed S    base seed for randomized campaigns (default 0x5EED5EED)
//   --fixture-store DIR
//               persistent content-addressed fixture store shared across
//               processes: expensive fixtures (fleet synthesis, loop
//               designs, dwell/wait curves) are computed by the first
//               process that needs them and loaded bit-identically by
//               every later one (runtime/fixture_store.hpp)
//   --shard i/N run only shard i of each named SWEEP experiment's index
//               range (contiguous block partition; per-point results are
//               bit-identical to the unsharded run).  Artifacts gain a
//               ".shardXofN" suffix; non-sweep experiments reject this.
//   --merge N   merge the N shard artifacts previously written under
//               --csv into the canonical CSVs, verifying the index
//               column has no gaps or overlaps (exit 1 on any)
//   --store-stats DIR
//               standalone inspector: print per-domain file counts,
//               bytes and oldest/newest recency of the fixture store at
//               DIR, then exit (no experiments run; combine with
//               --store-gc-max-bytes to evict first)
//   --store-gc-max-bytes N
//               LRU-evict least-recently-used fixture files until the
//               store holds at most N bytes.  With --fixture-store the
//               pass runs AFTER the experiments and never evicts a file
//               this run loaded or wrote; with --store-stats it runs
//               before the report.
//
// Exit status: 0 on success, 1 on experiment/merge failure, 2 on usage
// errors.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "runtime/shard.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using cps::runtime::Experiment;
using cps::runtime::ExperimentContext;
using cps::runtime::ExperimentRegistry;

constexpr int kMaxJobs = 1024;
constexpr std::uint64_t kMaxShards = 4096;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cps_run --list\n"
               "       cps_run <experiment>... [--jobs N] [--csv DIR] [--seed S]\n"
               "                               [--fixture-store DIR] [--shard i/N]\n"
               "                               [--store-gc-max-bytes N]\n"
               "       cps_run <experiment>... --merge N [--csv DIR]\n"
               "       cps_run all [--jobs N] [--csv DIR] [--seed S] [--fixture-store DIR]\n"
               "       cps_run --store-stats DIR [--store-gc-max-bytes N]\n\n"
               "run `cps_run --list` for the experiment catalog.\n");
}

/// Human-scale seconds for the store-stats table.
std::string format_age(double seconds) {
  if (seconds < 120.0) return cps::format_fixed(seconds, 1) + " s";
  if (seconds < 7200.0) return cps::format_fixed(seconds / 60.0, 1) + " min";
  if (seconds < 172800.0) return cps::format_fixed(seconds / 3600.0, 1) + " h";
  return cps::format_fixed(seconds / 86400.0, 1) + " d";
}

/// `--store-gc-max-bytes`: evict down to the cap and report.
void run_store_gc(const cps::runtime::FixtureStore& store, std::uint64_t max_bytes,
                  std::FILE* out) {
  const auto gc = store.gc_to_max_bytes(max_bytes);
  std::fprintf(out,
               "[cps_run] store gc (%s): %zu files scanned, %zu evicted, %zu in-use kept, "
               "%llu -> %llu bytes (cap %llu)\n",
               store.directory().c_str(), gc.scanned, gc.evicted, gc.kept_in_use,
               static_cast<unsigned long long>(gc.bytes_before),
               static_cast<unsigned long long>(gc.bytes_after),
               static_cast<unsigned long long>(max_bytes));
}

/// `--store-stats DIR`: the standalone inspector.
int run_store_stats(const std::string& directory, const std::uint64_t* gc_max_bytes) {
  try {
    const cps::runtime::FixtureStore store(directory);
    if (gc_max_bytes != nullptr) run_store_gc(store, *gc_max_bytes, stdout);
    const auto domains = store.usage();
    cps::TextTable table({"domain", "files", "bytes", "oldest use", "newest use"});
    std::size_t files = 0;
    std::uintmax_t bytes = 0;
    for (const auto& domain : domains) {
      files += domain.files;
      bytes += domain.bytes;
      table.add_row({domain.domain, std::to_string(domain.files),
                     std::to_string(domain.bytes), format_age(domain.oldest_age_seconds),
                     format_age(domain.newest_age_seconds)});
    }
    std::printf("fixture store %s: %zu files, %llu bytes in %zu domains\n",
                store.directory().c_str(), files, static_cast<unsigned long long>(bytes),
                domains.size());
    if (!domains.empty()) std::printf("%s", table.render().c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: --store-stats failed: %s\n", error.what());
    return 1;
  }
}

void print_catalog(std::FILE* out) {
  cps::TextTable table({"experiment", "description", "shardable"});
  for (const Experiment* experiment : ExperimentRegistry::instance().list())
    table.add_row({experiment->name(), experiment->description(),
                   experiment->shardable() ? "yes" : ""});
  std::fprintf(out, "%zu registered experiments:\n%s", ExperimentRegistry::instance().size(),
               table.render().c_str());
}

/// Parse the decimal/hex integer argument of `flag`; exits with status 2
/// on malformed input.
std::uint64_t parse_u64(const char* flag, const std::string& value) {
  try {
    // std::stoull would wrap a leading '-' modulo 2^64; reject signs up front.
    if (value.empty() || value[0] == '-' || value[0] == '+')
      throw std::invalid_argument(value);
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed, 0);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    std::fprintf(stderr, "cps_run: %s expects an integer, got '%s'\n", flag, value.c_str());
    std::exit(2);
  }
}

/// Parse "--shard i/N" into (index, count); exits with status 2 on
/// malformed input.
std::pair<std::uint64_t, std::uint64_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= value.size()) {
    std::fprintf(stderr, "cps_run: --shard expects i/N (e.g. 0/2), got '%s'\n", value.c_str());
    std::exit(2);
  }
  const std::uint64_t index = parse_u64("--shard", value.substr(0, slash));
  const std::uint64_t count = parse_u64("--shard", value.substr(slash + 1));
  if (count < 1 || count > kMaxShards || index >= count) {
    std::fprintf(stderr, "cps_run: --shard needs 0 <= i < N <= %llu, got '%s'\n",
                 static_cast<unsigned long long>(kMaxShards), value.c_str());
    std::exit(2);
  }
  return {index, count};
}

int run_experiments(const std::vector<const Experiment*>& experiments,
                    ExperimentContext& context) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    const auto start = std::chrono::steady_clock::now();
    try {
      experiment->run(context);
      // Shard provenance: stamp each partial with the campaign seed and
      // its slot so --merge can refuse stale or mixed-campaign partials.
      if (context.sharded()) {
        for (const auto& artifact : experiment->sweep_artifacts())
          cps::runtime::write_shard_meta(context.artifact_path(artifact), context.seed,
                                         context.shard_index, context.shard_count);
      }
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      std::fprintf(context.out, "[cps_run] %s done in %.2f s\n", experiment->name().c_str(),
                   elapsed.count());
    } catch (const std::exception& error) {
      ++failures;
      std::fprintf(stderr, "[cps_run] %s FAILED: %s\n", experiment->name().c_str(),
                   error.what());
    }
  }
  const auto cache = cps::runtime::FixtureCache::instance().stats();
  std::fprintf(context.out, "[cps_run] fixture cache: %zu hits, %zu misses, %zu entries\n",
               cache.hits, cache.misses, cache.entries);
  if (const auto store = cps::runtime::FixtureCache::instance().store()) {
    const auto disk = store->stats();
    std::fprintf(context.out,
                 "[cps_run] fixture store (%s): %zu disk hits, %zu disk misses, "
                 "%zu writes, %zu invalid\n",
                 store->directory().c_str(), disk.disk_hits, disk.disk_misses, disk.writes,
                 disk.invalid);
  }
  return failures == 0 ? 0 : 1;
}

/// `--merge N`: concatenate the shard partials of every named sweep
/// experiment into the canonical CSVs.
int merge_experiments(const std::vector<const Experiment*>& experiments,
                      const ExperimentContext& context, std::size_t shard_count) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    if (!experiment->shardable()) {
      std::fprintf(stderr, "[cps_run] %s has no sweep artifacts to merge\n",
                   experiment->name().c_str());
      ++failures;
      continue;
    }
    for (const auto& artifact : experiment->sweep_artifacts()) {
      const std::string canonical = context.csv_path(artifact);
      try {
        const std::size_t rows = cps::runtime::merge_sweep_csv(canonical, shard_count);
        std::fprintf(context.out, "[cps_run] merged %zu shards -> %s (%zu rows)\n",
                     shard_count, canonical.c_str(), rows);
      } catch (const std::exception& error) {
        ++failures;
        std::fprintf(stderr, "[cps_run] merge of %s FAILED: %s\n", canonical.c_str(),
                     error.what());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  ExperimentContext context;
  std::string fixture_store_dir;
  std::string store_stats_dir;
  bool list_only = false;
  bool run_all = false;
  bool merge = false;
  bool gc_requested = false;
  std::uint64_t gc_max_bytes = 0;
  std::uint64_t merge_shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cps_run: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list" || arg == "-l") {
      list_only = true;
    } else if (arg == "--jobs" || arg == "-j") {
      const std::uint64_t jobs = parse_u64("--jobs", flag_value("--jobs"));
      if (jobs < 1 || jobs > kMaxJobs) {
        std::fprintf(stderr, "cps_run: --jobs must be in [1, %d]\n", kMaxJobs);
        return 2;
      }
      context.jobs = static_cast<int>(jobs);
    } else if (arg == "--csv") {
      context.csv_dir = flag_value("--csv");
    } else if (arg == "--seed") {
      context.seed = parse_u64("--seed", flag_value("--seed"));
    } else if (arg == "--fixture-store") {
      fixture_store_dir = flag_value("--fixture-store");
    } else if (arg == "--store-stats") {
      store_stats_dir = flag_value("--store-stats");
    } else if (arg == "--store-gc-max-bytes") {
      gc_requested = true;
      gc_max_bytes = parse_u64("--store-gc-max-bytes", flag_value("--store-gc-max-bytes"));
    } else if (arg == "--shard") {
      const auto [index, count] = parse_shard(flag_value("--shard"));
      context.shard_index = static_cast<std::size_t>(index);
      context.shard_count = static_cast<std::size_t>(count);
    } else if (arg == "--merge") {
      merge = true;
      merge_shards = parse_u64("--merge", flag_value("--merge"));
      if (merge_shards < 2 || merge_shards > kMaxShards) {
        std::fprintf(stderr, "cps_run: --merge needs a shard count in [2, %llu]\n",
                     static_cast<unsigned long long>(kMaxShards));
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "all") {
      run_all = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cps_run: unknown option '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  if (list_only) {
    print_catalog(stdout);
    return 0;
  }
  if (!store_stats_dir.empty()) {
    // Standalone inspector: combining it with a run (or a second store
    // via --fixture-store) would make it ambiguous which store the GC
    // pass empties, so reject rather than silently pick one.
    if (!names.empty() || run_all || merge || context.sharded() || !fixture_store_dir.empty()) {
      std::fprintf(stderr,
                   "cps_run: --store-stats is a standalone inspector (no experiments, "
                   "no --fixture-store)\n");
      return 2;
    }
    return run_store_stats(store_stats_dir, gc_requested ? &gc_max_bytes : nullptr);
  }
  if (gc_requested && fixture_store_dir.empty()) {
    std::fprintf(stderr,
                 "cps_run: --store-gc-max-bytes needs --fixture-store (or --store-stats)\n");
    return 2;
  }
  if (names.empty() && !run_all) {
    print_usage(stderr);
    return 2;
  }
  if (run_all && !names.empty()) {
    std::fprintf(stderr, "cps_run: 'all' cannot be combined with named experiments\n");
    return 2;
  }
  if (merge && (context.sharded() || run_all)) {
    std::fprintf(stderr, "cps_run: --merge cannot be combined with --shard or 'all'\n");
    return 2;
  }

  std::vector<const Experiment*> experiments;
  if (run_all) {
    experiments = ExperimentRegistry::instance().list();
  } else {
    for (const auto& name : names) {
      const Experiment* experiment = ExperimentRegistry::instance().find(name);
      if (experiment == nullptr) {
        std::fprintf(stderr, "cps_run: unknown experiment '%s'\n", name.c_str());
        print_catalog(stderr);
        return 2;
      }
      experiments.push_back(experiment);
    }
  }

  if (context.sharded()) {
    // Sharding partitions sweep index ranges; an experiment that never
    // consults ctx.shard_* would silently run in full on every shard, so
    // only experiments that declare sweep artifacts accept --shard.
    for (const Experiment* experiment : experiments) {
      if (!experiment->shardable()) {
        std::fprintf(stderr, "cps_run: experiment '%s' does not support --shard\n",
                     experiment->name().c_str());
        return 2;
      }
    }
  }

  if (merge) return merge_experiments(experiments, context, merge_shards);

  if (!context.csv_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(context.csv_dir, error);
    if (error) {
      std::fprintf(stderr, "cps_run: cannot create csv dir '%s': %s\n",
                   context.csv_dir.c_str(), error.message().c_str());
      return 2;
    }
  }

  if (!fixture_store_dir.empty()) {
    try {
      cps::runtime::FixtureCache::instance().set_store(
          std::make_shared<cps::runtime::FixtureStore>(fixture_store_dir));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cps_run: cannot open fixture store: %s\n", error.what());
      return 2;
    }
  }

  const int status = run_experiments(experiments, context);
  if (gc_requested) {
    // After the campaign: the files this run loaded or wrote are its
    // working set and survive; everything else is fair game, oldest
    // first.
    if (const auto store = cps::runtime::FixtureCache::instance().store())
      run_store_gc(*store, gc_max_bytes, context.out);
  }
  return status;
}
