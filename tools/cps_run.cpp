// cps_run — the single driver for every registered experiment.
//
//   cps_run --list                      enumerate the experiment catalog
//   cps_run fig4                        run one experiment
//   cps_run fig3 fig4 table_alloc      run several, in the given order
//   cps_run all                         run the whole catalog
//   cps_run --spec campaign.toml        run a declarative campaign spec
//
// The flag table lives in main() (runtime/cli.hpp renders `--help` from
// it); the highlights:
//
//   --jobs N    worker threads for parallel sweeps (default 1; sweeps are
//               bit-identical for any value — see runtime/sweep_runner.hpp)
//   --spec FILE declarative campaign spec (runtime/campaign_spec.hpp):
//               the spec names the experiments to run and carries typed
//               parameters (grids, trials, generator distributions) into
//               them.  The spec's seed and fixture store apply unless the
//               corresponding flag is given explicitly; --shard/--merge
//               compose unchanged (the spec picks the workload, never the
//               partition).  Incompatible with positional experiment
//               names and 'all'.
//   --scenario FILE
//               online fault-injection scenario script (online/scenario.hpp):
//               runs the run_scenario experiment over it.  Excludes --spec
//               and 'all'; --seed beats the scenario's own seed.
//   --dry-run   with --spec or --scenario: print the validated expansion
//               (campaign name, content digest, experiments, seed, store,
//               shard plan — or the scenario's fleet and event list) and
//               exit without running anything
//   --fixture-store DIR
//               persistent content-addressed fixture store shared across
//               processes (runtime/fixture_store.hpp)
//   --shard i/N run only shard i of each named SWEEP experiment's index
//               range; --merge N concatenates the partials (gap/overlap
//               checked) into the canonical CSVs
//   --launch N  supervised campaign: fan out N `--shard i/N` child
//               processes of THIS command (runtime/supervisor.hpp) with
//               per-shard timeouts, heartbeat monitoring, bounded
//               jittered-backoff retries and resume (shards whose
//               .meta-verified partials already landed are skipped),
//               then merge.  On permanently failed shards: a hard
//               multi-shard error report — or, with --allow-partial, a
//               degraded partial merge plus a machine-readable
//               campaign_manifest.json naming the missing index ranges.
//               Tuning: --launch-parallel/-retries/-timeout/-heartbeat/
//               -backoff-ms; --exec-template wraps each shard command
//               (e.g. 'ssh worker{i} {cmd}').
//   --store-stats DIR / --store-gc-max-bytes N
//               store inspection and LRU eviction (standalone or
//               post-campaign; see the flag help)
//
// Robustness plumbing (this file is the process boundary):
//  * Sweep artifacts are STAGED: experiments write to `...inprogress`
//    names and the driver renames them into place only after the body
//    succeeds, so an interrupted run never publishes a partial CSV.
//  * SIGINT/SIGTERM: worker processes _exit immediately (staged
//    artifacts are simply abandoned); a --launch supervisor instead
//    tears down its children first.
//  * CPS_CRASH_AT=<site>[:<count>] (runtime/crash_point.hpp) kills the
//    process at a named publication site — the deterministic fault
//    injection the chaos tests and the CI chaos job drive.
//  * A child started by the supervisor touches the heartbeat file named
//    by CPS_SHARD_HEARTBEAT so a hung shard is detectable.
//
// Exit status: 0 on success (including a degraded --allow-partial merge),
// 1 on experiment/merge/campaign failure, 2 on usage errors (including
// malformed or invalid --spec files).
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "linalg/simd_batch.hpp"
#include "online/scenario.hpp"
#include "runtime/campaign_spec.hpp"
#include "runtime/cli.hpp"
#include "runtime/crash_point.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "runtime/shard.hpp"
#include "runtime/supervisor.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using cps::runtime::CliError;
using cps::runtime::Experiment;
using cps::runtime::ExperimentContext;
using cps::runtime::ExperimentRegistry;

constexpr std::uint64_t kMaxJobs = 1024;
constexpr std::uint64_t kMaxShards = 4096;

// ---- interruption contract -------------------------------------------
// Worker processes (the default) _exit the moment SIGINT/SIGTERM lands:
// sweep artifacts are staged (ExperimentContext::stage_artifacts) and the
// shard/store layers publish via temp+rename, so dying at ANY instant
// abandons staging debris but never a torn published file.  A --launch
// supervisor instead flips g_interrupt and lets the supervision loop tear
// its children down before exiting.
volatile std::sig_atomic_t g_interrupt = 0;
volatile std::sig_atomic_t g_supervising = 0;

extern "C" void handle_interrupt(int sig) {
  if (g_supervising != 0) {
    g_interrupt = 1;
    return;
  }
  ::_exit(128 + sig);
}

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_interrupt;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Supervised child mode: CPS_SHARD_HEARTBEAT names a sidecar file this
/// process must keep fresh.  A detached thread bumps its mtime ~10x/s;
/// the supervisor treats a stale heartbeat as a hang and escalates
/// SIGTERM -> SIGKILL.  Detached on purpose: it must die WITH the
/// process, not gate its exit.
void start_heartbeat_if_requested() {
  const char* heartbeat = std::getenv("CPS_SHARD_HEARTBEAT");
  if (heartbeat == nullptr || *heartbeat == '\0') return;
  std::thread([path = std::string(heartbeat)] {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return;
    for (;;) {
      ::futimens(fd, nullptr);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }).detach();
}

/// Human-scale seconds for the store-stats table.
std::string format_age(double seconds) {
  if (seconds < 120.0) return cps::format_fixed(seconds, 1) + " s";
  if (seconds < 7200.0) return cps::format_fixed(seconds / 60.0, 1) + " min";
  if (seconds < 172800.0) return cps::format_fixed(seconds / 3600.0, 1) + " h";
  return cps::format_fixed(seconds / 86400.0, 1) + " d";
}

/// `--store-gc-max-bytes`: evict down to the cap and report.
void run_store_gc(const cps::runtime::FixtureStore& store, std::uint64_t max_bytes,
                  std::FILE* out) {
  const auto gc = store.gc_to_max_bytes(max_bytes);
  std::fprintf(out,
               "[cps_run] store gc (%s): %zu files scanned, %zu evicted, %zu in-use kept, "
               "%llu -> %llu bytes (cap %llu)\n",
               store.directory().c_str(), gc.scanned, gc.evicted, gc.kept_in_use,
               static_cast<unsigned long long>(gc.bytes_before),
               static_cast<unsigned long long>(gc.bytes_after),
               static_cast<unsigned long long>(max_bytes));
}

/// `--store-stats DIR`: the standalone inspector.
int run_store_stats(const std::string& directory, const std::uint64_t* gc_max_bytes) {
  try {
    const cps::runtime::FixtureStore store(directory);
    if (gc_max_bytes != nullptr) run_store_gc(store, *gc_max_bytes, stdout);
    const auto domains = store.usage();
    cps::TextTable table({"domain", "files", "bytes", "oldest use", "newest use"});
    std::size_t files = 0;
    std::uintmax_t bytes = 0;
    for (const auto& domain : domains) {
      files += domain.files;
      bytes += domain.bytes;
      table.add_row({domain.domain, std::to_string(domain.files),
                     std::to_string(domain.bytes), format_age(domain.oldest_age_seconds),
                     format_age(domain.newest_age_seconds)});
    }
    std::printf("fixture store %s: %zu files, %llu bytes in %zu domains\n",
                store.directory().c_str(), files, static_cast<unsigned long long>(bytes),
                domains.size());
    if (!domains.empty()) std::printf("%s", table.render().c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: --store-stats failed: %s\n", error.what());
    return 1;
  }
}

void print_catalog(std::FILE* out) {
  cps::TextTable table({"experiment", "description", "shardable"});
  for (const Experiment* experiment : ExperimentRegistry::instance().list())
    table.add_row({experiment->name(), experiment->description(),
                   experiment->shardable() ? "yes" : ""});
  std::fprintf(out, "%zu registered experiments:\n%s", ExperimentRegistry::instance().size(),
               table.render().c_str());
}

/// Parse "--shard i/N" into (index, count); throws CliError like every
/// other value check so it reports through the single usage-error path.
std::pair<std::uint64_t, std::uint64_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= value.size())
    throw CliError("--shard expects i/N (e.g. 0/2), got '" + value + "'");
  const std::uint64_t index = cps::runtime::parse_cli_u64(value.substr(0, slash), "--shard i");
  const std::uint64_t count = cps::runtime::parse_cli_u64(value.substr(slash + 1), "--shard N");
  if (count < 1 || count > kMaxShards || index >= count)
    throw CliError("--shard needs 0 <= i < N <= " + std::to_string(kMaxShards) + ", got '" +
                   value + "'");
  return {index, count};
}

/// `--scenario --dry-run`: print the validated scenario without running.
void print_scenario_expansion(const cps::online::ScenarioSpec& scenario,
                              const ExperimentContext& context) {
  std::printf("scenario %s (script %s)\n", scenario.name.c_str(), scenario.source.c_str());
  std::printf("  ticks:  %llu x %s s\n", static_cast<unsigned long long>(scenario.ticks),
              cps::format_general(scenario.tick_seconds).c_str());
  std::printf("  fleet:  %zu apps at utilization %s, slot budget %s\n", scenario.n_apps,
              cps::format_general(scenario.utilization).c_str(),
              scenario.slot_budget == 0 ? "unlimited"
                                        : std::to_string(scenario.slot_budget).c_str());
  const std::uint64_t seed = cps::online::effective_scenario_seed(context, scenario);
  std::printf("  seed:   %llu (from %s)\n", static_cast<unsigned long long>(seed),
              context.seed_explicit ? "--seed"
                                    : (scenario.has_seed ? "the scenario" : "the default"));
  std::printf("  events (%zu):\n", scenario.events.size());
  for (const auto& event : scenario.events)
    std::printf("    tick %llu: %s%s%s\n", static_cast<unsigned long long>(event.at_tick),
                cps::online::event_kind_name(event.kind), event.app.empty() ? "" : " ",
                event.app.c_str());
}

/// `--spec --dry-run`: print the validated expansion without running.
void print_spec_expansion(const cps::runtime::CampaignSpec& spec,
                          const std::vector<const Experiment*>& experiments,
                          const ExperimentContext& context,
                          const std::string& fixture_store_dir) {
  std::printf("campaign %s (spec %s, digest %s)\n", spec.name.c_str(), spec.source.c_str(),
              spec.digest_hex().c_str());
  std::printf("  seed:          %llu%s\n", static_cast<unsigned long long>(context.seed),
              spec.has_seed ? "" : " (default; spec sets none)");
  std::printf("  fixture store: %s\n",
              fixture_store_dir.empty() ? "(none)" : fixture_store_dir.c_str());
  std::printf("  shard plan:    %zu (advisory; --shard i/N decides)\n", spec.shard_plan);
  std::printf("  parameters:    %zu keys\n", spec.params.size());
  std::printf("  experiments (%zu, in run order):\n", experiments.size());
  for (const Experiment* experiment : experiments)
    std::printf("    %s%s\n", experiment->name().c_str(),
                experiment->shardable() ? "  [shardable]" : "");
}

int run_experiments(const std::vector<const Experiment*>& experiments,
                    ExperimentContext& context) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    const auto start = std::chrono::steady_clock::now();
    try {
      // Sweep experiments write their artifacts to STAGED names
      // (`...inprogress`); only after the body returns do the renames
      // below publish them.  A crash, kill or signal mid-body therefore
      // never leaves a partial CSV where --merge (or a resume check)
      // would trust it.
      context.stage_artifacts = experiment->shardable();
      experiment->run(context);
      context.stage_artifacts = false;
      for (const auto& artifact : experiment->sweep_artifacts()) {
        const std::string published = context.artifact_path(artifact);
        const std::string staged = published + ".inprogress";
        cps::runtime::crash_point("artifact_publish");
        std::error_code error;
        std::filesystem::rename(staged, published, error);
        if (error)
          throw cps::Error("staged artifact '" + staged +
                           "' was not published: " + error.message());
      }
      // Shard provenance: stamp each partial with the campaign seed and
      // its slot so --merge can refuse stale or mixed-campaign partials.
      // Strictly AFTER the CSV rename: the sidecar's existence certifies
      // a fully published artifact.
      if (context.sharded()) {
        for (const auto& artifact : experiment->sweep_artifacts())
          cps::runtime::write_shard_meta(context.artifact_path(artifact), context.seed,
                                         context.shard_index, context.shard_count);
      }
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      std::fprintf(context.out, "[cps_run] %s done in %.2f s\n", experiment->name().c_str(),
                   elapsed.count());
    } catch (const std::exception& error) {
      context.stage_artifacts = false;
      ++failures;
      std::fprintf(stderr, "[cps_run] %s FAILED: %s\n", experiment->name().c_str(),
                   error.what());
    }
  }
  const auto cache = cps::runtime::FixtureCache::instance().stats();
  std::fprintf(context.out, "[cps_run] simd: width=%zu isa=%s\n", cps::linalg::kSimdWidth,
               cps::linalg::simd_isa_name());
  std::fprintf(context.out, "[cps_run] fixture cache: %zu hits, %zu misses, %zu entries\n",
               cache.hits, cache.misses, cache.entries);
  if (const auto store = cps::runtime::FixtureCache::instance().store()) {
    const auto disk = store->stats();
    std::fprintf(context.out,
                 "[cps_run] fixture store (%s): %zu disk hits, %zu disk misses, "
                 "%zu writes, %zu invalid\n",
                 store->directory().c_str(), disk.disk_hits, disk.disk_misses, disk.writes,
                 disk.invalid);
  }
  return failures == 0 ? 0 : 1;
}

/// `--merge N`: concatenate the shard partials of every named sweep
/// experiment into the canonical CSVs.
int merge_experiments(const std::vector<const Experiment*>& experiments,
                      const ExperimentContext& context, std::size_t shard_count) {
  int failures = 0;
  for (const Experiment* experiment : experiments) {
    if (!experiment->shardable()) {
      std::fprintf(stderr, "[cps_run] %s has no sweep artifacts to merge\n",
                   experiment->name().c_str());
      ++failures;
      continue;
    }
    for (const auto& artifact : experiment->sweep_artifacts()) {
      const std::string canonical = context.csv_path(artifact);
      try {
        const std::size_t rows = cps::runtime::merge_sweep_csv(canonical, shard_count);
        std::fprintf(context.out, "[cps_run] merged %zu shards -> %s (%zu rows)\n",
                     shard_count, canonical.c_str(), rows);
      } catch (const std::exception& error) {
        ++failures;
        std::fprintf(stderr, "[cps_run] merge of %s FAILED: %s\n", canonical.c_str(),
                     error.what());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

/// `--launch` knobs, straight from the flag table.
struct LaunchConfig {
  std::uint64_t shards = 0;
  std::uint64_t parallel = 0;        ///< 0 = min(shards, cores)
  std::uint64_t retries = 3;         ///< attempts per shard
  std::uint64_t timeout_seconds = 0; ///< 0 = no per-attempt timeout
  std::uint64_t heartbeat_stale_seconds = 0;  ///< 0 = no heartbeat check
  std::uint64_t backoff_ms = 500;    ///< base retry delay
  std::string exec_template;
  bool allow_partial = false;
};

/// `--launch N`: the supervised campaign.  Fans the shard children out
/// under the full robustness policy, then either merges strictly (all
/// shards landed), fails with a complete multi-shard report, or — with
/// --allow-partial — degrades to a partial merge plus manifest.
int run_supervised_campaign(const std::vector<const Experiment*>& experiments,
                            ExperimentContext& context, const LaunchConfig& config,
                            const std::vector<std::string>& child_command,
                            const std::string& fixture_store_dir, bool gc_requested,
                            std::uint64_t gc_max_bytes) {
  namespace rt = cps::runtime;
  rt::SupervisorOptions options;
  options.shard_count = static_cast<std::size_t>(config.shards);
  options.max_parallel = static_cast<std::size_t>(config.parallel);
  options.max_attempts = static_cast<int>(config.retries);
  options.timeout_seconds = static_cast<double>(config.timeout_seconds);
  options.heartbeat_stale_seconds = static_cast<double>(config.heartbeat_stale_seconds);
  options.backoff_base_seconds = static_cast<double>(config.backoff_ms) / 1000.0;
  options.backoff_seed = context.seed;
  options.exec_template = config.exec_template;
  options.work_dir = context.csv_path(".launch");
  options.expected_seed = context.seed;
  for (const Experiment* experiment : experiments)
    for (const auto& artifact : experiment->sweep_artifacts())
      options.expected_artifacts.push_back(context.csv_path(artifact));
  // Chaos plumbing: a CPS_CRASH_AT in our environment is meant for the
  // CHILDREN (first attempts only — retries run clean), never for the
  // supervisor itself.
  if (const char* inject = std::getenv("CPS_CRASH_AT"); inject != nullptr && *inject != '\0') {
    options.crash_inject = inject;
    ::unsetenv("CPS_CRASH_AT");
  }
  options.interrupt_flag = &g_interrupt;

  std::fprintf(context.out, "[cps_run] launching %llu shards (parallel %s, %llu attempts)\n",
               static_cast<unsigned long long>(config.shards),
               config.parallel == 0 ? "auto" : std::to_string(config.parallel).c_str(),
               static_cast<unsigned long long>(config.retries));

  rt::SupervisorReport report;
  try {
    g_supervising = 1;
    rt::ShardSupervisor supervisor(child_command, options);
    report = supervisor.run();
    g_supervising = 0;
  } catch (const std::exception& error) {
    g_supervising = 0;
    std::fprintf(stderr, "cps_run: --launch failed: %s\n", error.what());
    return 1;
  }

  for (const auto& outcome : report.outcomes) {
    const char* status = outcome.status == rt::ShardOutcome::Status::kSucceeded ? "ok"
                         : outcome.status == rt::ShardOutcome::Status::kSkipped
                             ? "skipped (already landed)"
                         : outcome.status == rt::ShardOutcome::Status::kFailed ? "FAILED"
                                                                               : "interrupted";
    std::fprintf(context.out, "[cps_run] shard %zu/%llu: %s (%d attempt%s)\n", outcome.shard,
                 static_cast<unsigned long long>(config.shards), status, outcome.attempts,
                 outcome.attempts == 1 ? "" : "s");
  }
  if (report.interrupted) {
    std::fprintf(stderr, "cps_run: campaign interrupted; nothing merged\n");
    return 1;
  }

  const auto gc_store = [&] {
    if (!gc_requested || fixture_store_dir.empty()) return;
    try {
      run_store_gc(cps::runtime::FixtureStore(fixture_store_dir), gc_max_bytes, context.out);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cps_run: post-campaign store gc failed: %s\n", error.what());
    }
  };

  if (report.all_ok()) {
    const int status =
        merge_experiments(experiments, context, static_cast<std::size_t>(config.shards));
    gc_store();
    return status;
  }

  // Permanent shard failures.  Without --allow-partial this is a hard
  // stop, and the report must be COMPLETE: every failed shard, its final
  // error and its log, in one message — not just the first casualty.
  if (!config.allow_partial) {
    std::fprintf(stderr, "cps_run: campaign failed: %zu of %llu shards did not land\n",
                 report.failed_shards().size(),
                 static_cast<unsigned long long>(config.shards));
    for (const auto& outcome : report.outcomes) {
      if (outcome.status != rt::ShardOutcome::Status::kFailed) continue;
      std::fprintf(stderr, "  shard %zu: %s\n", outcome.shard, outcome.detail.c_str());
      if (!outcome.log_path.empty())
        std::fprintf(stderr, "    log: %s\n", outcome.log_path.c_str());
    }
    std::fprintf(stderr,
                 "  re-run the same command to retry only the missing shards, or add "
                 "--allow-partial to merge what landed\n");
    return 1;
  }

  // Degraded mode: merge every shard that landed, and say EXACTLY what is
  // missing — machine-readably — in the campaign manifest.
  std::vector<std::string> artifacts;
  std::vector<rt::PartialMergeReport> merges;
  for (const Experiment* experiment : experiments) {
    for (const auto& artifact : experiment->sweep_artifacts()) {
      const std::string canonical = context.csv_path(artifact);
      try {
        auto merge = rt::merge_sweep_csv_partial(canonical,
                                                 static_cast<std::size_t>(config.shards));
        std::fprintf(context.out,
                     "[cps_run] partial merge -> %s: %zu rows from %zu of %llu shards\n",
                     canonical.c_str(), merge.rows_merged, merge.merged_shards.size(),
                     static_cast<unsigned long long>(config.shards));
        artifacts.push_back(canonical);
        merges.push_back(std::move(merge));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "[cps_run] partial merge of %s FAILED: %s\n", canonical.c_str(),
                     error.what());
        return 1;
      }
    }
  }
  try {
    const std::string manifest = rt::write_campaign_manifest(
        context.csv_dir, report, context.seed, artifacts, merges);
    std::fprintf(context.out, "[cps_run] degraded campaign manifest: %s\n", manifest.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: cannot write campaign manifest: %s\n", error.what());
    return 1;
  }
  gc_store();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  install_signal_handlers();
  start_heartbeat_if_requested();

  // ---- flag table (everything --help shows is declared right here) ----
  bool list_only = false;
  bool dry_run = false;
  std::uint64_t jobs = 1;
  std::uint64_t seed_flag = 0;
  bool seed_seen = false;
  std::string csv_dir;
  std::string fixture_store_dir;
  bool fixture_store_seen = false;
  std::string store_stats_dir;
  std::string shard_text;
  std::string spec_path;
  std::string scenario_path;
  std::uint64_t gc_max_bytes = 0;
  bool gc_requested = false;
  std::uint64_t merge_shards = 0;
  bool merge = false;
  LaunchConfig launch;
  bool launch_requested = false;
  bool launch_parallel_seen = false;
  bool launch_retries_seen = false;
  bool launch_timeout_seen = false;
  bool launch_heartbeat_seen = false;
  bool launch_backoff_seen = false;
  bool exec_template_seen = false;

  cps::runtime::CliParser cli("cps_run", "[experiment ...|all]");
  cli.add_flag({"--list", "-l"}, &list_only, "enumerate the experiment catalog and exit");
  cli.add_u64({"--jobs", "-j"}, &jobs, "N",
              "worker threads for parallel sweeps (bit-identical output for any N)");
  cli.add_string({"--csv"}, &csv_dir, "DIR", "directory for CSV artifacts (created)");
  cli.add_u64({"--seed"}, &seed_flag, "S",
              "base seed for randomized campaigns (default 0x5EED5EED)", &seed_seen);
  cli.add_string({"--spec"}, &spec_path, "FILE",
                 "declarative campaign spec: runs its experiments with its typed "
                 "parameters (excludes positional names/'all')");
  cli.add_string({"--scenario"}, &scenario_path, "FILE",
                 "online fault-injection scenario script: runs the run_scenario "
                 "experiment over it (excludes --spec/'all')");
  cli.add_flag({"--dry-run"}, &dry_run,
               "with --spec/--scenario: print the validated expansion, run nothing");
  cli.add_string({"--fixture-store"}, &fixture_store_dir, "DIR",
                 "persistent content-addressed fixture store shared across processes",
                 &fixture_store_seen);
  cli.add_string({"--shard"}, &shard_text, "i/N",
                 "run only shard i of each sweep experiment's index range");
  cli.add_u64({"--merge"}, &merge_shards, "N",
              "merge N shard artifacts under --csv into the canonical CSVs", &merge);
  cli.add_u64({"--launch"}, &launch.shards, "N",
              "supervised campaign: run N --shard children of this command with "
              "retries/timeouts/resume, then merge",
              &launch_requested);
  cli.add_flag({"--allow-partial"}, &launch.allow_partial,
               "with --launch: merge the shards that landed and write "
               "campaign_manifest.json instead of failing hard");
  cli.add_u64({"--launch-parallel"}, &launch.parallel, "P",
              "with --launch: concurrent shard processes (default: min(N, cores))",
              &launch_parallel_seen);
  cli.add_u64({"--launch-retries"}, &launch.retries, "K",
              "with --launch: attempts per shard before permanent failure (default 3)",
              &launch_retries_seen);
  cli.add_u64({"--launch-timeout"}, &launch.timeout_seconds, "S",
              "with --launch: per-attempt wall-clock timeout in seconds, SIGTERM then "
              "SIGKILL (default 0 = none)",
              &launch_timeout_seen);
  cli.add_u64({"--launch-heartbeat"}, &launch.heartbeat_stale_seconds, "S",
              "with --launch: treat a shard as hung when its heartbeat file is S "
              "seconds stale (default 0 = off)",
              &launch_heartbeat_seen);
  cli.add_u64({"--launch-backoff-ms"}, &launch.backoff_ms, "MS",
              "with --launch: base retry backoff in milliseconds, doubled per failure "
              "with deterministic jitter (default 500)",
              &launch_backoff_seen);
  cli.add_string({"--exec-template"}, &launch.exec_template, "TPL",
                 "with --launch: run each shard as `sh -c TPL` with {cmd}/{i}/{n} "
                 "substituted (e.g. 'ssh worker{i} {cmd}')",
                 &exec_template_seen);
  cli.add_string({"--store-stats"}, &store_stats_dir, "DIR",
                 "standalone store inspector: per-domain usage report, then exit");
  cli.add_u64({"--store-gc-max-bytes"}, &gc_max_bytes, "N",
              "LRU-evict store files down to N bytes (after experiments, or "
              "before a --store-stats report)",
              &gc_requested);

  // ---- parse + validate: every usage error funnels through here and
  // exits 2 (the documented contract); nothing below this block fails
  // on malformed input.
  std::vector<std::string> names;
  bool run_all = false;
  std::optional<cps::runtime::CampaignSpec> spec;
  std::optional<cps::online::ScenarioSpec> scenario;
  ExperimentContext context;
  try {
    names = cli.parse({argv + 1, argv + argc});
    if (cli.help_requested()) {
      std::printf("%s\nrun `cps_run --list` for the experiment catalog.\n",
                  cli.help().c_str());
      return 0;
    }
    for (auto it = names.begin(); it != names.end();) {
      if (*it == "all") {
        run_all = true;
        it = names.erase(it);
      } else {
        ++it;
      }
    }

    if (jobs < 1 || jobs > kMaxJobs)
      throw CliError("--jobs must be in [1, " + std::to_string(kMaxJobs) + "]");
    context.jobs = static_cast<int>(jobs);
    if (seed_seen) context.seed = seed_flag;
    context.seed_explicit = seed_seen;
    context.csv_dir = csv_dir;
    if (!shard_text.empty()) {
      const auto [index, count] = parse_shard(shard_text);
      context.shard_index = static_cast<std::size_t>(index);
      context.shard_count = static_cast<std::size_t>(count);
    }
    if (merge && (merge_shards < 2 || merge_shards > kMaxShards))
      throw CliError("--merge needs a shard count in [2, " + std::to_string(kMaxShards) +
                     "]");

    // Mode interactions, checked up front in one place.
    if (run_all && !names.empty())
      throw CliError("'all' cannot be combined with named experiments");
    if (merge && (context.sharded() || run_all))
      throw CliError("--merge cannot be combined with --shard or 'all'");
    if (launch_requested) {
      if (launch.shards < 2 || launch.shards > kMaxShards)
        throw CliError("--launch needs a shard count in [2, " + std::to_string(kMaxShards) +
                       "]");
      if (context.sharded())
        throw CliError("--launch supervises its own --shard children; they cannot be "
                       "combined");
      if (merge) throw CliError("--launch merges automatically; drop --merge");
      if (run_all)
        throw CliError("--launch needs shardable sweep experiments; 'all' includes "
                       "non-shardable ones");
      if (!scenario_path.empty())
        throw CliError("--launch cannot be combined with --scenario");
      if (launch.retries < 1 || launch.retries > 100)
        throw CliError("--launch-retries must be in [1, 100]");
      if (launch.parallel > kMaxShards)
        throw CliError("--launch-parallel must be at most " + std::to_string(kMaxShards));
    } else if (launch.allow_partial || launch_parallel_seen || launch_retries_seen ||
               launch_timeout_seen || launch_heartbeat_seen || launch_backoff_seen ||
               exec_template_seen) {
      throw CliError("--allow-partial/--launch-*/--exec-template require --launch N");
    }
    if (!spec_path.empty() && (run_all || !names.empty()))
      throw CliError("--spec declares the experiments to run; positional names and "
                     "'all' cannot be combined with it");
    if (!scenario_path.empty()) {
      // --scenario IS a run of run_scenario; anything that names a
      // different workload contradicts it.
      if (!spec_path.empty())
        throw CliError("--scenario cannot be combined with --spec (use the spec's "
                       "scenario.file key instead)");
      if (run_all) throw CliError("--scenario cannot be combined with 'all'");
      if (merge) throw CliError("--scenario cannot be combined with --merge");
      for (const auto& name : names)
        if (name != "run_scenario")
          throw CliError("--scenario runs the run_scenario experiment; '" + name +
                         "' cannot be combined with it");
      names = {"run_scenario"};
      context.scenario_path = scenario_path;
    }
    if (dry_run && spec_path.empty() && scenario_path.empty())
      throw CliError("--dry-run requires --spec or --scenario");
    if (!store_stats_dir.empty()) {
      // Standalone inspector: combining it with a run (or a second store
      // via --fixture-store) would make it ambiguous which store the GC
      // pass empties, so reject rather than silently pick one.
      if (!names.empty() || run_all || merge || context.sharded() ||
          fixture_store_seen || !spec_path.empty())
        throw CliError("--store-stats is a standalone inspector (no experiments, no "
                       "--spec, no --fixture-store)");
    } else if (gc_requested && !fixture_store_seen && spec_path.empty()) {
      throw CliError("--store-gc-max-bytes needs --fixture-store (or --store-stats)");
    }

    // Campaign spec: parse + validate, then let it fill the defaults the
    // CLI did not set explicitly.  A malformed spec is the user's input,
    // so it reports as a usage error too.
    if (!spec_path.empty()) {
      spec = cps::runtime::load_campaign_spec(spec_path);
      names = spec->experiments;
      if (!seed_seen && spec->has_seed) context.seed = spec->seed;
      if (!fixture_store_seen) fixture_store_dir = spec->fixture_store;
      if (gc_requested && fixture_store_dir.empty())
        throw CliError("--store-gc-max-bytes needs a fixture store, and spec '" +
                       spec->name + "' sets none");
      context.spec = &*spec;
    }

    // Scenario script: parse + validate up front, so a malformed script
    // reports as a usage error (exit 2) exactly like a malformed --spec.
    if (!scenario_path.empty()) scenario = cps::online::load_scenario(scenario_path);

    if (!list_only && store_stats_dir.empty() && names.empty() && !run_all)
      throw CliError("nothing to run: name experiments, 'all', or --spec FILE");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_run: %s\n", error.what());
    std::fprintf(stderr, "run `cps_run --help` for usage.\n");
    return 2;
  }

  if (list_only) {
    print_catalog(stdout);
    return 0;
  }
  if (!store_stats_dir.empty())
    return run_store_stats(store_stats_dir, gc_requested ? &gc_max_bytes : nullptr);

  std::vector<const Experiment*> experiments;
  if (run_all) {
    experiments = ExperimentRegistry::instance().list();
  } else {
    for (const auto& name : names) {
      const Experiment* experiment = ExperimentRegistry::instance().find(name);
      if (experiment == nullptr) {
        std::fprintf(stderr, "cps_run: unknown experiment '%s'%s\n", name.c_str(),
                     spec ? (" (from spec " + spec->source + ")").c_str() : "");
        print_catalog(stderr);
        return 2;
      }
      experiments.push_back(experiment);
    }
  }

  if (context.sharded() || launch_requested) {
    // Sharding partitions sweep index ranges; an experiment that never
    // consults ctx.shard_* would silently run in full on every shard, so
    // only experiments that declare sweep artifacts accept --shard (and
    // --launch, which is just supervised --shard children).
    for (const Experiment* experiment : experiments) {
      if (!experiment->shardable()) {
        std::fprintf(stderr, "cps_run: experiment '%s' does not support %s\n",
                     experiment->name().c_str(), launch_requested ? "--launch" : "--shard");
        return 2;
      }
    }
  }

  if (dry_run) {
    if (spec)
      print_spec_expansion(*spec, experiments, context, fixture_store_dir);
    else
      print_scenario_expansion(*scenario, context);
    return 0;
  }

  if (merge) return merge_experiments(experiments, context, merge_shards);

  if (!context.csv_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(context.csv_dir, error);
    if (error) {
      std::fprintf(stderr, "cps_run: cannot create csv dir '%s': %s\n",
                   context.csv_dir.c_str(), error.message().c_str());
      return 2;
    }
  }

  if (launch_requested) {
    // The children re-run THIS command, reduced to its workload flags
    // plus a `--shard {i}/{n}` the supervisor substitutes per shard.
    // Launch-only and post-merge flags (--launch-*, --store-gc-max-bytes)
    // deliberately do not propagate: the parent owns supervision and GC.
    std::vector<std::string> child_command;
    child_command.push_back(argv[0]);
    if (spec) {
      child_command.push_back("--spec");
      child_command.push_back(spec_path);
    } else {
      for (const auto& name : names) child_command.push_back(name);
    }
    child_command.push_back("--jobs");
    child_command.push_back(std::to_string(jobs));
    if (seed_seen) {
      child_command.push_back("--seed");
      child_command.push_back(std::to_string(seed_flag));
    }
    if (!csv_dir.empty()) {
      child_command.push_back("--csv");
      child_command.push_back(csv_dir);
    }
    if (!fixture_store_dir.empty()) {
      child_command.push_back("--fixture-store");
      child_command.push_back(fixture_store_dir);
    }
    child_command.push_back("--shard");
    child_command.push_back("{i}/{n}");
    return run_supervised_campaign(experiments, context, launch, child_command,
                                   fixture_store_dir, gc_requested, gc_max_bytes);
  }

  if (!fixture_store_dir.empty()) {
    try {
      cps::runtime::FixtureCache::instance().set_store(
          std::make_shared<cps::runtime::FixtureStore>(fixture_store_dir));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cps_run: cannot open fixture store: %s\n", error.what());
      return 2;
    }
  }

  if (spec)
    std::fprintf(context.out, "[cps_run] campaign %s (spec %s, digest %s)\n",
                 spec->name.c_str(), spec->source.c_str(), spec->digest_hex().c_str());

  const int status = run_experiments(experiments, context);
  if (gc_requested) {
    // After the campaign: the files this run loaded or wrote are its
    // working set and survive; everything else is fair game, oldest
    // first.
    if (const auto store = cps::runtime::FixtureCache::instance().store())
      run_store_gc(*store, gc_max_bytes, context.out);
  }
  return status;
}
