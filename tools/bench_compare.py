#!/usr/bin/env python3
"""Compare a fresh Google Benchmark run against the committed snapshots.

The repo commits Release bench results under bench/results/BENCH_*.json so
the perf trajectory is recorded in-tree.  CI re-runs the benches on every
push and calls this script to diff the fresh JSON against the committed
baselines: any benchmark whose ns/op regressed by more than the threshold
(default 1.3x) produces a warning (GitHub annotation with --github), and
the full comparison table is written for upload as a build artifact.

Benchmarks are matched by name across all JSON files in each directory, so
renaming a snapshot file does not break the comparison; benchmarks present
on only one side are reported but never fail the run (hardware differences
between the snapshot machine and CI make absolute numbers advisory, which
is why regressions warn instead of erroring by default).

Two thresholds:
  --threshold R   warn when fresh/baseline exceeds R (default 1.3x);
                  fails the run only with --strict
  --fail-on R     HARD failure: exit 1 when fresh/baseline exceeds R,
                  regardless of --strict.  Meant to be set well above the
                  warn threshold (e.g. 3.0) so CI noise warns but a real
                  blow-up blocks the merge.

A missing or empty --baseline-dir is not an error: the script explains the
situation and exits 0 (first run of a new repo / branch without committed
snapshots), so CI does not fail before any baseline exists.

SIMD-width guard: snapshots record the batched-SIMD lane configuration in
the context (cps_simd_width / cps_simd_isa).  Comparing runs recorded at
different widths is meaningless for the batched kernels (per-instance
ns/op scales with the lane count), so a width mismatch between the
baseline and fresh sides SKIPS the comparison with a warning and exits 0
— unless --fail-on is set, in which case the comparison is a hard gate
and the mismatch is a hard error (exit 2): a gate that silently compared
across widths could wave a real regression through.  Files without the
field (pre-SIMD snapshots) never trigger the guard.

Usage:
  python3 tools/bench_compare.py --fresh-dir bench-fresh \
      [--baseline-dir bench/results] [--threshold 1.3] [--fail-on 3.0] \
      [--github] [--output bench-compare.txt] [--strict]
"""

import argparse
import glob
import json
import os
import sys


def snapshot_build_type(context):
    """The build type a bench JSON was recorded from.

    "cps_library_build_type" is authoritative when present: the bench
    invocations inject it (--benchmark_context=cps_library_build_type=...
    for Google Benchmark executables; emitted directly by the self-JSON
    benches) and it reflects the PROJECT library's build type.  Without
    it, fall back to Google Benchmark's own "library_build_type" — on
    systems whose benchmark HARNESS library is a debug build that field
    is a false positive for Release project builds, which is exactly why
    the explicit field exists, but for old snapshots it is the only
    signal and it is what exposed the original debug-recorded snapshots.
    """
    explicit = context.get("cps_library_build_type")
    if explicit is not None:
        return explicit
    return context.get("library_build_type")


def snapshot_simd_width(context):
    """The cps_simd_width a bench JSON was recorded at, or None.

    Google Benchmark stores AddCustomContext entries as top-level context
    strings; the self-JSON benches emit the field directly.  Pre-SIMD
    snapshots lack it — None means "unknown", which never triggers the
    width-mismatch guard.
    """
    width = context.get("cps_simd_width")
    return None if width is None else str(width)


def load_benchmarks(directory, debug_files=None, widths=None):
    """Map benchmark name -> real_time (ns) across all JSON files in a dir.

    When `debug_files` is a list, any file recorded from a debug build
    (see snapshot_build_type) is appended to it — debug numbers must
    never enter the regression gate on either side (see main()).
    When `widths` is a dict, each file recording a cps_simd_width maps
    path -> width in it, feeding the width-mismatch guard.
    """
    results = {}
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}", file=sys.stderr)
            continue
        if debug_files is not None and snapshot_build_type(data.get("context", {})) == "debug":
            debug_files.append(path)
        if widths is not None:
            width = snapshot_simd_width(data.get("context", {}))
            if width is not None:
                widths[path] = width
        for bench in data.get("benchmarks", []):
            name = bench.get("name")
            time = bench.get("real_time")
            unit = bench.get("time_unit", "ns")
            if name is None or time is None:
                continue
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if scale is None:
                print(f"warning: {name}: unknown time_unit {unit}", file=sys.stderr)
                continue
            results[name] = time * scale
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="bench/results",
                        help="directory with the committed BENCH_*.json snapshots")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory with the freshly produced bench JSON")
    parser.add_argument("--threshold", type=float, default=1.3,
                        help="warn when fresh/baseline ns/op exceeds this ratio")
    parser.add_argument("--fail-on", type=float, default=None, dest="fail_on",
                        help="exit 1 when fresh/baseline ns/op exceeds this ratio "
                             "(hard failure, independent of --strict)")
    parser.add_argument("--github", action="store_true",
                        help="emit ::warning:: annotations for regressions")
    parser.add_argument("--output", default=None,
                        help="also write the comparison table to this file")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds the threshold")
    args = parser.parse_args()

    if args.fail_on is not None and args.fail_on < args.threshold:
        print(f"error: --fail-on ({args.fail_on}) must be >= --threshold "
              f"({args.threshold}); the hard limit cannot be tighter than the "
              f"warning", file=sys.stderr)
        return 2

    if not os.path.isdir(args.baseline_dir):
        print(f"note: baseline directory '{args.baseline_dir}' does not exist; "
              f"nothing to compare against — skipping (commit BENCH_*.json "
              f"snapshots there to enable the regression gate)")
        return 0
    debug_files = []
    baseline_widths = {}
    fresh_widths = {}
    baseline = load_benchmarks(args.baseline_dir, debug_files, baseline_widths)
    if not baseline:
        print(f"note: no benchmark JSON under '{args.baseline_dir}'; nothing to "
              f"compare against — skipping (commit BENCH_*.json snapshots "
              f"there to enable the regression gate)")
        return 0
    fresh = load_benchmarks(args.fresh_dir, debug_files, fresh_widths)
    if not fresh:
        print(f"error: no benchmarks found under {args.fresh_dir} — did the "
              f"bench step run and write its JSON there?", file=sys.stderr)
        return 2

    widths_seen = set(baseline_widths.values()) | set(fresh_widths.values())
    if len(widths_seen) > 1:
        detail = "; ".join(
            f"{os.path.basename(path)}: width {width}"
            for path, width in sorted({**baseline_widths, **fresh_widths}.items()))
        message = (f"SIMD width mismatch between bench snapshots "
                   f"({', '.join(sorted(widths_seen))}): per-instance ns/op is "
                   f"not comparable across lane widths ({detail})")
        if args.fail_on is not None:
            # The hard gate must not silently compare apples to oranges —
            # a cross-width ratio could mask a real regression.
            print(f"error: {message}", file=sys.stderr)
            if args.github:
                print(f"::error title=bench SIMD width mismatch::{message}")
            return 2
        print(f"warning: {message} — skipping the comparison", file=sys.stderr)
        if args.github:
            print(f"::warning title=bench SIMD width mismatch::{message}")
        return 0
    if debug_files:
        # A debug-build snapshot poisons every ratio in the table (debug
        # ns/op are 5-20x Release), so this is a hard error on either
        # side, not a warning: re-record the offending JSON from a
        # Release build (cmake -DCMAKE_BUILD_TYPE=Release, and pass
        # --benchmark_context=cps_library_build_type=release to Google
        # Benchmark executables).
        for path in debug_files:
            print(f"error: {path} was recorded from a DEBUG build; re-record "
                  f"it from a Release build "
                  f"(--benchmark_context=cps_library_build_type=release)",
                  file=sys.stderr)
            if args.github:
                print(f"::error title=debug bench snapshot::{path} was recorded "
                      f"from a debug build; regression ratios are meaningless")
        return 2

    lines = []
    regressions = []
    hard_failures = []
    name_width = max(len(name) for name in sorted(set(baseline) | set(fresh)))
    header = (f"{'benchmark':<{name_width}}  {'baseline ns':>14}  {'fresh ns':>14}"
              f"  {'ratio':>7}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(set(baseline) | set(fresh)):
        base_time = baseline.get(name)
        fresh_time = fresh.get(name)
        if base_time is None:
            lines.append(f"{name:<{name_width}}  {'-':>14}  {fresh_time:>14.1f}"
                         f"  {'-':>7}  new (no baseline)")
            continue
        if fresh_time is None:
            lines.append(f"{name:<{name_width}}  {base_time:>14.1f}  {'-':>14}"
                         f"  {'-':>7}  missing from fresh run")
            continue
        ratio = fresh_time / base_time if base_time > 0 else float("inf")
        verdict = "ok"
        if args.fail_on is not None and ratio > args.fail_on:
            verdict = f"HARD FAILURE (> {args.fail_on:.2f}x)"
            hard_failures.append((name, base_time, fresh_time, ratio))
        elif ratio > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.2f}x)"
            regressions.append((name, base_time, fresh_time, ratio))
        elif ratio < 1.0 / args.threshold:
            verdict = "improved"
        lines.append(f"{name:<{name_width}}  {base_time:>14.1f}  {fresh_time:>14.1f}"
                     f"  {ratio:>6.2f}x  {verdict}")

    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(report)
        except OSError as err:
            print(f"warning: cannot write {args.output}: {err}", file=sys.stderr)

    for name, base_time, fresh_time, ratio in regressions:
        message = (f"bench regression: {name} {base_time:.0f} -> {fresh_time:.0f} ns/op "
                   f"({ratio:.2f}x > {args.threshold:.2f}x)")
        if args.github:
            print(f"::warning title=bench regression::{message}")
        else:
            print(f"warning: {message}", file=sys.stderr)
    for name, base_time, fresh_time, ratio in hard_failures:
        message = (f"bench HARD regression: {name} {base_time:.0f} -> {fresh_time:.0f} "
                   f"ns/op ({ratio:.2f}x > --fail-on {args.fail_on:.2f}x)")
        if args.github:
            print(f"::error title=bench hard regression::{message}")
        else:
            print(f"error: {message}", file=sys.stderr)

    if hard_failures:
        return 1
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
