// cps_query — client CLI for the cps_serve daemon (src/serve/).
//
//   cps_query [options] <op>      op: ping|curve|design|alloc|sched|stats
//
// Single-shot mode prints the decoded response fields plus an fnv64
// digest of the raw payload bytes; `--local` runs the IDENTICAL query
// dispatcher in-process instead of over the socket and prints the same
// lines, so `cmp <(cps_query --socket S op) <(cps_query --local op)`
// verifies daemon answers byte-for-byte (the CI lifecycle job does).
//
// Load mode (--repeat N [--concurrency C]) drives the daemon with many
// requests and prints one per-status summary line — the saturation
// probe of the admission-control tests.
//
// Shed requests (`overloaded`) are retried up to --retries times with
// the deterministic jittered exponential backoff of runtime/backoff.hpp
// (same schedule as the PR-8 campaign supervisor).
//
// Exit codes: 0 success, 1 the query (still) failed, 2 usage errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/backoff.hpp"
#include "runtime/cli.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/queries.hpp"

namespace {

using cps::runtime::CliError;
using cps::serve::Opcode;
using cps::serve::Status;

double parse_cli_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str())
    throw CliError(what + ": not a number: '" + text + "'");
  return value;
}

std::uint64_t fnv64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

struct QuerySpec {
  Opcode opcode = Opcode::kPing;
  std::string payload;  ///< encoded request payload
};

/// Print the decoded response fields (deterministic; shared by socket
/// and --local mode so CI can cmp the two outputs).
void print_reply(Opcode opcode, Status status, const std::string& payload) {
  std::printf("status %s\n", cps::serve::status_name(status));
  if (status != Status::kOk) {
    std::printf("message %s\n", cps::serve::decode_error_payload(payload).c_str());
    std::printf("payload_fnv64 %016llx\n",
                static_cast<unsigned long long>(fnv64(payload)));
    return;
  }
  cps::util::BinaryReader in(payload);
  switch (opcode) {
    case Opcode::kPing: {
      const auto reply = cps::serve::PingRequest::decode(in);
      std::printf("echo %s\n", reply.echo.c_str());
      break;
    }
    case Opcode::kCurve: {
      const auto curve = cps::serve::CurveResponse::decode(in);
      std::printf("sampling_period %.17g\n", curve.sampling_period);
      std::printf("xi_tt %.17g\n", curve.xi_tt);
      std::printf("xi_et %.17g\n", curve.xi_et);
      std::printf("xi_m %.17g\n", curve.xi_m);
      std::printf("k_p %.17g\n", curve.k_p);
      std::printf("n_points %llu\n", static_cast<unsigned long long>(curve.n_points));
      break;
    }
    case Opcode::kLoopDesign: {
      const auto design = cps::serve::LoopDesignResponse::decode(in);
      std::printf("name %s\n", design.name.c_str());
      std::printf("rho_tt %.17g\n", design.rho_tt);
      std::printf("rho_et %.17g\n", design.rho_et);
      std::printf("state_dim %llu\n", static_cast<unsigned long long>(design.state_dim));
      std::printf("input_dim %llu\n", static_cast<unsigned long long>(design.input_dim));
      break;
    }
    case Opcode::kAllocate: {
      const auto alloc = cps::serve::AllocateResponse::decode(in);
      std::printf("feasible %llu\n", static_cast<unsigned long long>(alloc.feasible));
      std::printf("slot_count %llu\n", static_cast<unsigned long long>(alloc.slot_count));
      std::printf("all_schedulable %llu\n",
                  static_cast<unsigned long long>(alloc.all_schedulable));
      for (std::size_t s = 0; s < alloc.slots.size(); ++s) {
        std::printf("slot %zu", s);
        for (const auto& name : alloc.slots[s]) std::printf(" %s", name.c_str());
        std::printf("\n");
      }
      break;
    }
    case Opcode::kSchedCheck: {
      const auto check = cps::serve::SchedCheckResponse::decode(in);
      std::printf("all_schedulable %llu\n",
                  static_cast<unsigned long long>(check.all_schedulable));
      for (const auto& app : check.apps)
        std::printf("app %s response %.17g deadline %.17g schedulable %llu\n",
                    app.name.c_str(), app.response, app.deadline,
                    static_cast<unsigned long long>(app.schedulable));
      break;
    }
    case Opcode::kStats: {
      const auto stats = cps::serve::StatsResponse::decode(in);
      for (const auto& [name, value] : stats.counters)
        std::printf("counter %s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      break;
    }
  }
  std::printf("payload_fnv64 %016llx\n", static_cast<unsigned long long>(fnv64(payload)));
}

}  // namespace

int main(int argc, char** argv) {
  using cps::runtime::CliParser;

  std::string socket_path;
  std::uint64_t tcp_port = 0;
  bool local = false;
  std::uint64_t deadline_ms = 0;
  std::uint64_t timeout_ms = 10000;
  std::uint64_t repeat = 1;
  std::uint64_t concurrency = 1;
  std::uint64_t retries = 0;
  std::string backoff_base = "0.05";
  std::string backoff_factor = "2.0";
  std::string backoff_max = "2.0";
  std::uint64_t backoff_seed = 0x5EED5EEDULL;
  std::string echo = "hello";
  std::uint64_t sleep_ms = 0;
  std::uint64_t app_index = 0;
  std::uint64_t apps = 10;
  std::string util_s = "0.6";
  std::string max_app_util_s = "0.95";
  std::string period_lo_s = "3", period_hi_s = "60";
  std::string deadline_frac_lo_s = "0.7", deadline_frac_hi_s = "1.0";
  std::uint64_t seed = 1;
  std::string allocator = "ff";
  std::string method = "bound";
  std::uint64_t max_slots = 0;
  std::string fixture_store_dir;

  CliParser cli("cps_query", "<ping|curve|design|alloc|sched|stats>");
  cli.add_string({"--socket"}, &socket_path, "PATH", "daemon Unix socket path");
  cli.add_u64({"--port"}, &tcp_port, "PORT", "connect 127.0.0.1:PORT instead");
  cli.add_flag({"--local"}, &local,
               "run the query dispatcher in-process (byte-identity checks)");
  cli.add_u64({"--deadline-ms"}, &deadline_ms, "MS",
              "server-side per-request deadline budget (0 = none)");
  cli.add_u64({"--timeout-ms"}, &timeout_ms, "MS", "client transport timeout");
  cli.add_u64({"--repeat"}, &repeat, "N", "load mode: total requests to send");
  cli.add_u64({"--concurrency"}, &concurrency, "N", "load mode: client threads");
  cli.add_u64({"--retries"}, &retries, "N",
              "retries (with backoff) when the daemon sheds 'overloaded'");
  cli.add_string({"--backoff-base"}, &backoff_base, "SEC", "retry backoff base");
  cli.add_string({"--backoff-factor"}, &backoff_factor, "X", "retry backoff factor");
  cli.add_string({"--backoff-max"}, &backoff_max, "SEC", "retry backoff cap");
  cli.add_u64({"--backoff-seed"}, &backoff_seed, "N", "retry backoff jitter seed");
  cli.add_string({"--echo"}, &echo, "STR", "ping: text to echo");
  cli.add_u64({"--sleep-ms"}, &sleep_ms, "MS", "ping: hold a worker this long");
  cli.add_u64({"--app-index"}, &app_index, "I", "design: paper-fleet app index");
  cli.add_u64({"--apps"}, &apps, "N", "alloc/sched: applications per fleet");
  cli.add_string({"--util"}, &util_s, "U", "alloc/sched: target utilization");
  cli.add_string({"--max-app-util"}, &max_app_util_s, "U",
                 "alloc/sched: per-app utilization cap");
  cli.add_string({"--period-lo"}, &period_lo_s, "SEC", "alloc/sched: period range low");
  cli.add_string({"--period-hi"}, &period_hi_s, "SEC", "alloc/sched: period range high");
  cli.add_string({"--deadline-frac-lo"}, &deadline_frac_lo_s, "F",
                 "alloc/sched: deadline fraction low");
  cli.add_string({"--deadline-frac-hi"}, &deadline_frac_hi_s, "F",
                 "alloc/sched: deadline fraction high");
  cli.add_u64({"--seed"}, &seed, "N", "alloc/sched: fleet draw seed");
  cli.add_string({"--allocator"}, &allocator, "KIND", "alloc: ff|bf|exact");
  cli.add_string({"--method"}, &method, "M", "alloc/sched: bound|fixed-point");
  cli.add_u64({"--max-slots"}, &max_slots, "N", "alloc: slot cap (0 = unlimited)");
  cli.add_string({"--fixture-store"}, &fixture_store_dir, "DIR",
                 "--local: attach the persistent fixture store");

  QuerySpec spec;
  cps::runtime::BackoffPolicy backoff;
  try {
    const auto positionals = cli.parse({argv + 1, argv + argc});
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }
    if (positionals.size() != 1)
      throw CliError("exactly one operation (ping|curve|design|alloc|sched|stats)");
    if (!local && socket_path.empty() && tcp_port == 0)
      throw CliError("--socket PATH (or --port / --local) is required");

    backoff.base_seconds = parse_cli_double(backoff_base, "--backoff-base");
    backoff.factor = parse_cli_double(backoff_factor, "--backoff-factor");
    backoff.max_seconds = parse_cli_double(backoff_max, "--backoff-max");
    backoff.seed = backoff_seed;

    cps::serve::FleetQuery fleet;
    fleet.n_apps = apps;
    fleet.target_utilization = parse_cli_double(util_s, "--util");
    fleet.max_app_utilization = parse_cli_double(max_app_util_s, "--max-app-util");
    fleet.period_lo = parse_cli_double(period_lo_s, "--period-lo");
    fleet.period_hi = parse_cli_double(period_hi_s, "--period-hi");
    fleet.deadline_frac_lo = parse_cli_double(deadline_frac_lo_s, "--deadline-frac-lo");
    fleet.deadline_frac_hi = parse_cli_double(deadline_frac_hi_s, "--deadline-frac-hi");
    fleet.seed = seed;

    const std::string& op = positionals.front();
    cps::util::BinaryWriter payload;
    if (op == "ping") {
      spec.opcode = Opcode::kPing;
      cps::serve::PingRequest request;
      request.echo = echo;
      request.sleep_ms = sleep_ms;
      request.encode(payload);
    } else if (op == "curve") {
      spec.opcode = Opcode::kCurve;
    } else if (op == "design") {
      spec.opcode = Opcode::kLoopDesign;
      cps::serve::LoopDesignRequest request;
      request.app_index = app_index;
      request.encode(payload);
    } else if (op == "alloc") {
      spec.opcode = Opcode::kAllocate;
      cps::serve::AllocateRequest request;
      request.fleet = fleet;
      if (allocator == "ff")
        request.allocator = static_cast<std::uint64_t>(cps::serve::AllocatorKind::kFirstFit);
      else if (allocator == "bf")
        request.allocator = static_cast<std::uint64_t>(cps::serve::AllocatorKind::kBestFit);
      else if (allocator == "exact")
        request.allocator = static_cast<std::uint64_t>(cps::serve::AllocatorKind::kExact);
      else
        throw CliError("--allocator must be ff, bf or exact");
      if (method == "bound")
        request.method = 0;
      else if (method == "fixed-point")
        request.method = 1;
      else
        throw CliError("--method must be bound or fixed-point");
      request.max_slots = max_slots;
      request.encode(payload);
    } else if (op == "sched") {
      spec.opcode = Opcode::kSchedCheck;
      cps::serve::SchedCheckRequest request;
      request.fleet = fleet;
      if (method == "bound")
        request.method = 0;
      else if (method == "fixed-point")
        request.method = 1;
      else
        throw CliError("--method must be bound or fixed-point");
      request.encode(payload);
    } else if (op == "stats") {
      spec.opcode = Opcode::kStats;
    } else {
      throw CliError("unknown operation '" + op + "'");
    }
    spec.payload = payload.take();
  } catch (const CliError& error) {
    std::fprintf(stderr, "cps_query: %s\n%s", error.what(), cli.help().c_str());
    return 2;
  }

  try {
    // One request with shed-retries; returns the final (status, payload).
    const auto run_once = [&](std::size_t stream) -> std::pair<Status, std::string> {
      for (int attempt = 1;; ++attempt) {
        Status status;
        std::string payload;
        if (local) {
          cps::serve::QueryContext context;  // no deadline, no server stats
          auto result = cps::serve::dispatch(spec.opcode, spec.payload, context);
          status = result.status;
          payload = std::move(result.payload);
        } else {
          cps::serve::ClientOptions options;
          options.socket_path = socket_path;
          options.tcp_port = static_cast<int>(tcp_port);
          options.timeout_ms = static_cast<int>(timeout_ms);
          cps::serve::QueryClient client(std::move(options));
          auto reply = client.call(spec.opcode, spec.payload,
                                   static_cast<std::uint32_t>(deadline_ms));
          status = reply.status();
          payload = std::move(reply.payload);
        }
        if (status != Status::kOverloaded || attempt > static_cast<int>(retries))
          return {status, std::move(payload)};
        const double delay = cps::runtime::backoff_delay(backoff, stream, attempt);
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    };

    if (local && !fixture_store_dir.empty())
      cps::runtime::FixtureCache::instance().set_store(
          std::make_shared<cps::runtime::FixtureStore>(fixture_store_dir));

    if (repeat <= 1 && concurrency <= 1) {
      const auto [status, payload] = run_once(0);
      print_reply(spec.opcode, status, payload);
      return status == Status::kOk ? 0 : 1;
    }

    // Load mode: `repeat` requests across `concurrency` threads; count
    // final statuses (after retries) per kind.
    const std::size_t n_threads = std::max<std::uint64_t>(1, concurrency);
    std::atomic<std::uint64_t> next{0};
    std::vector<std::vector<std::uint64_t>> counts(
        n_threads, std::vector<std::uint64_t>(6, 0));
    std::atomic<std::uint64_t> transport_errors{0};
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t] {
        while (next.fetch_add(1, std::memory_order_relaxed) < repeat) {
          try {
            const auto [status, payload] = run_once(t);
            const auto index = static_cast<std::size_t>(status);
            if (index < counts[t].size()) ++counts[t][index];
          } catch (const std::exception&) {
            transport_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();

    std::uint64_t total[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& per_thread : counts)
      for (std::size_t i = 0; i < 6; ++i) total[i] += per_thread[i];
    std::printf("repeat %llu concurrency %llu\n",
                static_cast<unsigned long long>(repeat),
                static_cast<unsigned long long>(n_threads));
    for (std::size_t i = 0; i < 6; ++i)
      std::printf("%s %llu\n", cps::serve::status_name(static_cast<Status>(i)),
                  static_cast<unsigned long long>(total[i]));
    std::printf("transport_error %llu\n",
                static_cast<unsigned long long>(transport_errors.load()));
    return (total[static_cast<std::size_t>(Status::kOk)] > 0 &&
            transport_errors.load() == 0)
               ? 0
               : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cps_query: %s\n", error.what());
    return 1;
  }
}
