// FixtureCache: compute-once semantics under concurrency, hit/miss
// accounting, content-addressed keys, type safety, and failure retry.
// The cache instance is process-global, so every test uses its own key
// namespace and compares stats deltas.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"

namespace {

using cps::runtime::FixtureCache;
using cps::runtime::FixtureKey;

TEST(FixtureKeyTest, StableAndContentSensitive) {
  const auto key = [] {
    FixtureKey k("domain");
    k.add(1.5).add(std::uint64_t{7}).add("text");
    return k.str();
  };
  EXPECT_EQ(key(), key());  // deterministic
  EXPECT_EQ(key().rfind("domain/", 0), 0u) << key();

  FixtureKey other("domain");
  other.add(1.5).add(std::uint64_t{7}).add("texu");
  EXPECT_NE(key(), other.str());

  // A changed double changes the key even at the last bit.
  FixtureKey a("d"), b("d");
  a.add(1.0);
  b.add(std::nextafter(1.0, 2.0));
  EXPECT_NE(a.str(), b.str());

  // Length-prefixed strings: "ab"+"c" must not alias "a"+"bc".
  FixtureKey ab_c("d"), a_bc("d");
  ab_c.add("ab").add("c");
  a_bc.add("a").add("bc");
  EXPECT_NE(ab_c.str(), a_bc.str());
}

TEST(FixtureKeyTest, MatrixAndVectorIncludeShape) {
  cps::linalg::Matrix m12(1, 2, 3.0);
  cps::linalg::Matrix m21(2, 1, 3.0);
  FixtureKey a("d"), b("d");
  a.add(m12);
  b.add(m21);
  EXPECT_NE(a.str(), b.str());

  cps::linalg::Vector v2(2, 3.0);
  FixtureKey c("d");
  c.add(v2);
  EXPECT_NE(a.str(), c.str());
}

TEST(FixtureCacheTest, HitReturnsTheSameObject) {
  auto& cache = FixtureCache::instance();
  const auto before = cache.stats();
  int computes = 0;
  auto first = cache.get_or_compute<std::string>("test/hit-object", [&] {
    ++computes;
    return std::string("payload");
  });
  auto second = cache.get_or_compute<std::string>("test/hit-object", [&] {
    ++computes;
    return std::string("payload");
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());  // shared, not equal-but-copied
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(FixtureCacheTest, ComputesOnceUnderConcurrency) {
  auto& cache = FixtureCache::instance();
  std::atomic<int> computes{0};
  constexpr int kThreads = 16;
  std::vector<std::shared_ptr<const int>> results(kThreads);
  {
    // Hammer one key from the same pool the experiments use.
    cps::runtime::ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    futures.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&cache, &computes, &results, t] {
        results[t] = cache.get_or_compute<int>("test/concurrent", [&computes] {
          ++computes;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));  // widen the race
          return 1234;
        });
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(computes.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
    EXPECT_EQ(*results[t], 1234);
  }
}

TEST(FixtureCacheTest, TypeMismatchThrows) {
  auto& cache = FixtureCache::instance();
  cache.get_or_compute<int>("test/typed", [] { return 1; });
  EXPECT_THROW(cache.get_or_compute<double>("test/typed", [] { return 2.0; }), cps::Error);
}

TEST(FixtureCacheTest, FailedComputeReleasesTheKey) {
  auto& cache = FixtureCache::instance();
  EXPECT_THROW(cache.get_or_compute<int>(
                   "test/failing",
                   []() -> int { throw std::runtime_error("fixture exploded"); }),
               std::runtime_error);
  // The key must be retryable after a failure.
  auto value = cache.get_or_compute<int>("test/failing", [] { return 7; });
  EXPECT_EQ(*value, 7);
}

TEST(FixtureCacheTest, DistinctKeysDistinctValues) {
  auto& cache = FixtureCache::instance();
  FixtureKey a("test/param"), b("test/param");
  a.add(1.0);
  b.add(2.0);
  auto va = cache.get_or_compute<double>(a, [] { return 1.0; });
  auto vb = cache.get_or_compute<double>(b, [] { return 2.0; });
  EXPECT_NE(va.get(), vb.get());
  EXPECT_EQ(*va, 1.0);
  EXPECT_EQ(*vb, 2.0);
}

TEST(FixtureCacheTest, ClearEmptiesEntries) {
  // Separate cache instance semantics are global; clear() then repopulate.
  auto& cache = FixtureCache::instance();
  cache.get_or_compute<int>("test/clear-me", [] { return 1; });
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  int computes = 0;
  cache.get_or_compute<int>("test/clear-me", [&] {
    ++computes;
    return 1;
  });
  EXPECT_EQ(computes, 1);
}

}  // namespace
