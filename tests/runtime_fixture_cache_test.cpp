// FixtureCache: compute-once semantics under concurrency, hit/miss
// accounting, content-addressed keys, type safety, and failure retry.
// The in-memory cache instance is process-global, so every test uses its
// own key namespace and compares stats deltas; the persistent-store
// tests below use LOCAL FixtureCache instances over throwaway
// directories, so a fresh instance models a fresh process.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace {

using cps::runtime::FixtureCache;
using cps::runtime::FixtureCodec;
using cps::runtime::FixtureKey;
using cps::runtime::FixtureStore;

TEST(FixtureKeyTest, StableAndContentSensitive) {
  const auto key = [] {
    FixtureKey k("domain");
    k.add(1.5).add(std::uint64_t{7}).add("text");
    return k.str();
  };
  EXPECT_EQ(key(), key());  // deterministic
  EXPECT_EQ(key().rfind("domain/", 0), 0u) << key();

  FixtureKey other("domain");
  other.add(1.5).add(std::uint64_t{7}).add("texu");
  EXPECT_NE(key(), other.str());

  // A changed double changes the key even at the last bit.
  FixtureKey a("d"), b("d");
  a.add(1.0);
  b.add(std::nextafter(1.0, 2.0));
  EXPECT_NE(a.str(), b.str());

  // Length-prefixed strings: "ab"+"c" must not alias "a"+"bc".
  FixtureKey ab_c("d"), a_bc("d");
  ab_c.add("ab").add("c");
  a_bc.add("a").add("bc");
  EXPECT_NE(ab_c.str(), a_bc.str());
}

TEST(FixtureKeyTest, MatrixAndVectorIncludeShape) {
  cps::linalg::Matrix m12(1, 2, 3.0);
  cps::linalg::Matrix m21(2, 1, 3.0);
  FixtureKey a("d"), b("d");
  a.add(m12);
  b.add(m21);
  EXPECT_NE(a.str(), b.str());

  cps::linalg::Vector v2(2, 3.0);
  FixtureKey c("d");
  c.add(v2);
  EXPECT_NE(a.str(), c.str());
}

TEST(FixtureCacheTest, HitReturnsTheSameObject) {
  auto& cache = FixtureCache::instance();
  const auto before = cache.stats();
  int computes = 0;
  auto first = cache.get_or_compute<std::string>("test/hit-object", [&] {
    ++computes;
    return std::string("payload");
  });
  auto second = cache.get_or_compute<std::string>("test/hit-object", [&] {
    ++computes;
    return std::string("payload");
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());  // shared, not equal-but-copied
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(FixtureCacheTest, ComputesOnceUnderConcurrency) {
  auto& cache = FixtureCache::instance();
  std::atomic<int> computes{0};
  constexpr int kThreads = 16;
  std::vector<std::shared_ptr<const int>> results(kThreads);
  {
    // Hammer one key from the same pool the experiments use.
    cps::runtime::ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    futures.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&cache, &computes, &results, t] {
        results[t] = cache.get_or_compute<int>("test/concurrent", [&computes] {
          ++computes;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));  // widen the race
          return 1234;
        });
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(computes.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
    EXPECT_EQ(*results[t], 1234);
  }
}

TEST(FixtureCacheTest, TypeMismatchThrows) {
  auto& cache = FixtureCache::instance();
  cache.get_or_compute<int>("test/typed", [] { return 1; });
  EXPECT_THROW(cache.get_or_compute<double>("test/typed", [] { return 2.0; }), cps::Error);
}

TEST(FixtureCacheTest, FailedComputeReleasesTheKey) {
  auto& cache = FixtureCache::instance();
  EXPECT_THROW(cache.get_or_compute<int>(
                   "test/failing",
                   []() -> int { throw std::runtime_error("fixture exploded"); }),
               std::runtime_error);
  // The key must be retryable after a failure.
  auto value = cache.get_or_compute<int>("test/failing", [] { return 7; });
  EXPECT_EQ(*value, 7);
}

TEST(FixtureCacheTest, DistinctKeysDistinctValues) {
  auto& cache = FixtureCache::instance();
  FixtureKey a("test/param"), b("test/param");
  a.add(1.0);
  b.add(2.0);
  auto va = cache.get_or_compute<double>(a, [] { return 1.0; });
  auto vb = cache.get_or_compute<double>(b, [] { return 2.0; });
  EXPECT_NE(va.get(), vb.get());
  EXPECT_EQ(*va, 1.0);
  EXPECT_EQ(*vb, 2.0);
}

// ---------------------------------------------------------------------------
// Persistent store (the second cache level)

/// Throwaway store directory, removed on scope exit.
struct TempStoreDir {
  TempStoreDir()
      : path((std::filesystem::temp_directory_path() /
              ("cps-fixture-store-test-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter++)))
                 .string()) {}
  ~TempStoreDir() {
    std::error_code error;
    std::filesystem::remove_all(path, error);
  }
  static std::atomic<int> counter;
  std::string path;
};
std::atomic<int> TempStoreDir::counter{0};

/// Codec used by the store tests: a double persisted via its exact bit
/// pattern (what every real codec does field by field).
FixtureCodec<double> double_codec() {
  return FixtureCodec<double>{
      "test_double/v1",
      [](const double& value, cps::util::BinaryWriter& out) { out.write_double(value); },
      [](cps::util::BinaryReader& in) { return in.read_double(); }};
}

std::uint64_t bits_of(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

TEST(FixtureStoreTest, ColdMissComputesAndWritesTheFile) {
  TempStoreDir dir;
  FixtureCache cache;
  cache.set_store(std::make_shared<FixtureStore>(dir.path));

  FixtureKey key("store_cold");
  key.add(1.25);
  int computes = 0;
  auto value = cache.get_or_compute<double>(key, double_codec(), [&] {
    ++computes;
    return 0.1 + 0.2;  // not exactly 0.3: the bits must survive as-is
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*value, 0.1 + 0.2);

  const auto stats = cache.store()->stats();
  EXPECT_EQ(stats.disk_misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_TRUE(std::filesystem::exists(cache.store()->path_of(key.str())))
      << cache.store()->path_of(key.str());
}

TEST(FixtureStoreTest, WarmHitSkipsComputeAndIsBitIdentical) {
  TempStoreDir dir;
  FixtureKey key("store_warm");
  key.add(2.5).add(std::uint64_t{17});
  const double expected = 0.1 + 0.2;

  {
    FixtureCache first_process;
    first_process.set_store(std::make_shared<FixtureStore>(dir.path));
    first_process.get_or_compute<double>(key, double_codec(), [&] { return expected; });
  }

  // A fresh cache instance models the next process of the campaign: its
  // memory level is empty, so the value must come from disk — without
  // running compute, and with the exact bit pattern.
  FixtureCache second_process;
  second_process.set_store(std::make_shared<FixtureStore>(dir.path));
  auto value = second_process.get_or_compute<double>(key, double_codec(), [&]() -> double {
    ADD_FAILURE() << "warm store hit must not recompute";
    return 0.0;
  });
  EXPECT_EQ(bits_of(*value), bits_of(expected));
  const auto stats = second_process.store()->stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.disk_misses, 0u);
  EXPECT_EQ(stats.writes, 0u);
}

TEST(FixtureStoreTest, CorruptedFileRecomputesLoudlyAndHeals) {
  TempStoreDir dir;
  FixtureKey key("store_corrupt");
  key.add(3.0);
  {
    FixtureCache writer;
    writer.set_store(std::make_shared<FixtureStore>(dir.path));
    writer.get_or_compute<double>(key, double_codec(), [] { return 42.0; });
  }

  // Flip a payload byte mid-file: the checksum must reject it.
  const std::string path = FixtureStore(dir.path).path_of(key.str());
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(32);
    file.put('\x5A');
  }

  FixtureCache reader;
  reader.set_store(std::make_shared<FixtureStore>(dir.path));
  int computes = 0;
  auto value = reader.get_or_compute<double>(key, double_codec(), [&] {
    ++computes;
    return 42.0;
  });
  EXPECT_EQ(computes, 1) << "corrupt file must fall back to compute";
  EXPECT_EQ(*value, 42.0);
  auto stats = reader.store()->stats();
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.writes, 1u) << "recompute must overwrite the corrupt file";

  // The rewritten file serves the next process again.
  FixtureCache healed;
  healed.set_store(std::make_shared<FixtureStore>(dir.path));
  auto again = healed.get_or_compute<double>(key, double_codec(), [&]() -> double {
    ADD_FAILURE() << "healed store must hit";
    return 0.0;
  });
  EXPECT_EQ(*again, 42.0);
}

TEST(FixtureStoreTest, TruncatedFileRecomputes) {
  TempStoreDir dir;
  FixtureKey key("store_truncated");
  key.add(4.0);
  {
    FixtureCache writer;
    writer.set_store(std::make_shared<FixtureStore>(dir.path));
    writer.get_or_compute<double>(key, double_codec(), [] { return 7.0; });
  }
  const std::string path = FixtureStore(dir.path).path_of(key.str());
  std::filesystem::resize_file(path, 10);  // shorter than the magic + trailer

  FixtureCache reader;
  reader.set_store(std::make_shared<FixtureStore>(dir.path));
  int computes = 0;
  auto value = reader.get_or_compute<double>(key, double_codec(), [&] {
    ++computes;
    return 7.0;
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*value, 7.0);
  EXPECT_EQ(reader.store()->stats().invalid, 1u);
}

TEST(FixtureStoreTest, KeyMaterialMismatchThrowsLoudly) {
  // The collision contract: same digest (same file) but different key
  // material must FAIL, never alias.  Exercised directly on the store —
  // a real 64-bit digest collision cannot be staged through FixtureKey.
  TempStoreDir dir;
  FixtureStore store(dir.path);
  store.save("domain/abc123", "fmt/v1", "material-A", "payload");
  EXPECT_THROW(store.load("domain/abc123", "fmt/v1", "material-B"), cps::Error);
  // Matching material still loads fine.
  auto payload = store.load("domain/abc123", "fmt/v1", "material-A");
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload");
}

TEST(FixtureStoreTest, FormatSkewRecomputesInsteadOfAliasing) {
  // A codec version bump must invalidate old files (recompute), not
  // misread them and not trip the collision error.
  TempStoreDir dir;
  FixtureStore store(dir.path);
  store.save("domain/def456", "fmt/v1", "material", "old-payload");
  auto payload = store.load("domain/def456", "fmt/v2", "material");
  EXPECT_FALSE(payload.has_value());
  EXPECT_EQ(store.stats().invalid, 1u);
}

TEST(FixtureStoreTest, UndecodablePayloadRecomputes) {
  // The file container is intact (checksum passes) but the payload does
  // not decode as the codec's type: the cache layer must warn and
  // recompute rather than propagate the decode error.
  TempStoreDir dir;
  FixtureKey key("store_badpayload");
  key.add(5.0);
  {
    FixtureStore store(dir.path);
    // Valid container, 3-byte payload — not a valid double encoding.
    store.save(key.str(), "test_double/v1", key.material(), "abc");
  }
  FixtureCache cache;
  cache.set_store(std::make_shared<FixtureStore>(dir.path));
  int computes = 0;
  auto value = cache.get_or_compute<double>(key, double_codec(), [&] {
    ++computes;
    return 11.0;
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*value, 11.0);
  // The load was reclassified: a payload the codec rejected was never a
  // served hit (record_undecodable), and the recompute overwrote it.
  const auto stats = cache.store()->stats();
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_misses, 1u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.writes, 1u);
}

TEST(FixtureStoreTest, UsageReportsPerDomainFilesAndBytes) {
  TempStoreDir dir;
  FixtureCache cache;
  cache.set_store(std::make_shared<FixtureStore>(dir.path));
  for (int i = 0; i < 3; ++i) {
    FixtureKey key("usage_domain_a");
    key.add(static_cast<double>(i));
    cache.get_or_compute<double>(key, double_codec(), [&] { return i * 1.5; });
  }
  FixtureKey key_b("usage_domain_b");
  key_b.add(9.0);
  cache.get_or_compute<double>(key_b, double_codec(), [&] { return 9.0; });

  const auto usage = cache.store()->usage();
  ASSERT_EQ(usage.size(), 2u);  // sorted by domain name
  EXPECT_EQ(usage[0].domain, "usage_domain_a");
  EXPECT_EQ(usage[0].files, 3u);
  EXPECT_GT(usage[0].bytes, 0u);
  EXPECT_GE(usage[0].oldest_age_seconds, usage[0].newest_age_seconds);
  EXPECT_EQ(usage[1].domain, "usage_domain_b");
  EXPECT_EQ(usage[1].files, 1u);
}

TEST(FixtureStoreTest, GcEvictsLeastRecentlyUsedFirstUntilUnderCap) {
  TempStoreDir dir;
  std::vector<std::string> paths;
  std::uintmax_t file_bytes = 0;
  {
    FixtureCache writer;
    writer.set_store(std::make_shared<FixtureStore>(dir.path));
    for (int i = 0; i < 4; ++i) {
      FixtureKey key("gc_domain");
      key.add(static_cast<double>(i));
      writer.get_or_compute<double>(key, double_codec(), [&] { return i * 2.0; });
      paths.push_back(writer.store()->path_of(key.str()));
    }
    file_bytes = std::filesystem::file_size(paths[0]);
  }
  // Age the files: paths[0] oldest ... paths[3] newest.
  const auto now = std::filesystem::file_time_type::clock::now();
  for (int i = 0; i < 4; ++i)
    std::filesystem::last_write_time(paths[static_cast<std::size_t>(i)],
                                     now - std::chrono::hours(10 - i));

  // A FRESH store instance models a later maintenance process: nothing is
  // "touched", so pure LRU applies.  Cap at two files' worth.
  const FixtureStore maintenance(dir.path);
  const auto gc = maintenance.gc_to_max_bytes(2 * file_bytes);
  EXPECT_EQ(gc.scanned, 4u);
  EXPECT_EQ(gc.evicted, 2u);
  EXPECT_EQ(gc.kept_in_use, 0u);
  EXPECT_EQ(gc.bytes_before, 4 * file_bytes);
  EXPECT_EQ(gc.bytes_after, 2 * file_bytes);
  EXPECT_FALSE(std::filesystem::exists(paths[0]));  // oldest two gone
  EXPECT_FALSE(std::filesystem::exists(paths[1]));
  EXPECT_TRUE(std::filesystem::exists(paths[2]));
  EXPECT_TRUE(std::filesystem::exists(paths[3]));

  // Already under the cap: a second pass is a no-op.
  const auto idle = maintenance.gc_to_max_bytes(2 * file_bytes);
  EXPECT_EQ(idle.evicted, 0u);
  EXPECT_EQ(idle.bytes_after, idle.bytes_before);
}

TEST(FixtureStoreTest, GcNeverEvictsFilesTouchedByTheCurrentRun) {
  TempStoreDir dir;
  FixtureCache cache;
  cache.set_store(std::make_shared<FixtureStore>(dir.path));
  FixtureKey key("gc_inuse");
  key.add(1.0);
  cache.get_or_compute<double>(key, double_codec(), [&] { return 1.0; });
  const std::string path = cache.store()->path_of(key.str());

  // Cap 0 would evict everything — but this process wrote the file, so
  // it is part of the current run's working set and must survive.
  const auto gc = cache.store()->gc_to_max_bytes(0);
  EXPECT_EQ(gc.scanned, 1u);
  EXPECT_EQ(gc.evicted, 0u);
  EXPECT_EQ(gc.kept_in_use, 1u);
  EXPECT_TRUE(std::filesystem::exists(path));

  // Loading (not just writing) also counts as touching: a fresh cache
  // over a fresh store instance loads the file, then gc spares it.
  FixtureCache reader;
  reader.set_store(std::make_shared<FixtureStore>(dir.path));
  reader.get_or_compute<double>(key, double_codec(), [&]() -> double {
    ADD_FAILURE() << "warm hit expected";
    return 0.0;
  });
  const auto gc2 = reader.store()->gc_to_max_bytes(0);
  EXPECT_EQ(gc2.evicted, 0u);
  EXPECT_EQ(gc2.kept_in_use, 1u);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(FixtureCacheTest, ClearEmptiesEntries) {
  // Separate cache instance semantics are global; clear() then repopulate.
  auto& cache = FixtureCache::instance();
  cache.get_or_compute<int>("test/clear-me", [] { return 1; });
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  int computes = 0;
  cache.get_or_compute<int>("test/clear-me", [&] {
    ++computes;
    return 1;
  });
  EXPECT_EQ(computes, 1);
}

}  // namespace
