// Unit tests for the plants module: the servo-motor model of Fig. 2, the
// second-order family, calibration, Table I data and disturbance processes.
#include <gtest/gtest.h>

#include <cmath>

#include "control/loop_design.hpp"
#include "linalg/eigen.hpp"
#include "plants/calibration.hpp"
#include "plants/disturbance.hpp"
#include "plants/second_order.hpp"
#include "plants/servo_motor.hpp"
#include "plants/table1.hpp"
#include "sim/dwell_wait.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::plants;

TEST(SecondOrderTest, OscillatorSpectrum) {
  const auto sys = make_oscillator(3.0, 0.2, 9.0);
  // Eigenvalues: -zeta*wn +- j wn sqrt(1-zeta^2).
  const auto eigs = linalg::eigenvalues(sys.a());
  ASSERT_EQ(eigs.size(), 2u);
  for (const auto& e : eigs) {
    EXPECT_NEAR(e.real(), -0.6, 1e-10);
    EXPECT_NEAR(std::abs(e), 3.0, 1e-10);
  }
  EXPECT_TRUE(sys.is_stable());
}

TEST(SecondOrderTest, UnstableStiffnessGivesUnstablePlant) {
  SecondOrderParams p;
  p.stiffness = 4.0;  // positive: inverted-pendulum-like
  p.damping = 0.5;
  p.input_gain = 1.0;
  EXPECT_FALSE(make_second_order(p).is_stable());
}

TEST(SecondOrderTest, ZeroInputGainRejected) {
  SecondOrderParams p;
  p.input_gain = 0.0;
  EXPECT_THROW(make_second_order(p), InvalidArgument);
}

TEST(SecondOrderTest, ResonantFamilySpectrumAndDcGain) {
  const auto sys = make_resonant(5.0, 0.1, 2.0);
  // Underdamped conjugate pair at -zeta*wn +- j wn sqrt(1 - zeta^2).
  const auto eigs = linalg::eigenvalues(sys.a());
  ASSERT_EQ(eigs.size(), 2u);
  for (const auto& e : eigs) {
    EXPECT_NEAR(e.real(), -0.5, 1e-10);
    EXPECT_NEAR(std::abs(e), 5.0, 1e-10);
    EXPECT_GT(std::abs(e.imag()), 4.9);  // genuinely oscillatory
  }
  EXPECT_TRUE(sys.is_stable());
  // B(1,0) = dc_gain * omega_n^2 makes the position DC gain dc_gain.
  EXPECT_NEAR(sys.b()(1, 0), 2.0 * 25.0, 1e-12);
}

TEST(SecondOrderTest, ResonantFamilyRejectsDegenerateDamping) {
  EXPECT_THROW(make_resonant(5.0, 0.0, 1.0), InvalidArgument);   // no peak
  EXPECT_THROW(make_resonant(5.0, 0.8, 1.0), InvalidArgument);   // beyond 1/sqrt(2)
  EXPECT_THROW(make_resonant(-1.0, 0.1, 1.0), InvalidArgument);  // bad omega_n
}

TEST(Table1Test, ExtraFleetCyclesThroughThePlantFamilies) {
  // Small pool: one per family, deterministic for a fixed seed; every
  // entry must be a usable two-mode design (the synthesizer validates
  // pure-mode settling before accepting a draw).
  const auto pool = synthesize_extra_fleet(3, 0xF1EE7E27ULL);
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[0].family, PlantFamily::kScaledOscillator);
  EXPECT_EQ(pool[1].family, PlantFamily::kUnderdampedResonant);
  EXPECT_EQ(pool[2].family, PlantFamily::kInvertedPendulum);
  // Reproducibility: the same (count, seed) resynthesizes identically.
  const auto again = synthesize_extra_fleet(3, 0xF1EE7E27ULL);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(pool[i].target.name, again[i].target.name);
    EXPECT_EQ(pool[i].target.r, again[i].target.r);            // bitwise
    EXPECT_EQ(pool[i].target.xi_et, again[i].target.xi_et);    // bitwise
    EXPECT_EQ(pool[i].plant.a()(1, 0), again[i].plant.a()(1, 0));
  }
  // Family realizations are qualitatively distinct: the pendulum is
  // open-loop unstable, the other two stable.
  EXPECT_TRUE(pool[0].plant.is_stable());
  EXPECT_TRUE(pool[1].plant.is_stable());
  EXPECT_FALSE(pool[2].plant.is_stable());
  EXPECT_STREQ(family_name(pool[1].family), "underdamped-resonant");
}

TEST(ServoMotorTest, OpenLoopIsUnstable) {
  // The upright stick falls without control.
  const auto servo = make_servo_motor();
  EXPECT_FALSE(servo.is_stable());
  // Unstable pole near sqrt(m g l / J) for small damping.
  const ServoMotorParams p;
  double lambda_max = -1e9;
  for (const auto& e : linalg::eigenvalues(servo.a())) lambda_max = std::max(lambda_max, e.real());
  EXPECT_GT(lambda_max, 0.3);
  EXPECT_LT(lambda_max, std::sqrt(p.mass * p.gravity * p.stick_length / p.inertia) + 0.1);
}

TEST(ServoMotorTest, ExperimentConstantsMatchThePaper) {
  const ServoExperiment exp;
  EXPECT_DOUBLE_EQ(exp.sampling_period, 0.02);   // h = 20 ms
  EXPECT_DOUBLE_EQ(exp.delay_tt, 0.0007);        // 0.7 ms
  EXPECT_DOUBLE_EQ(exp.delay_et, 0.02);          // worst-case ET = h
  EXPECT_DOUBLE_EQ(exp.threshold, 0.1);          // E_th
  EXPECT_NEAR(exp.disturbance_angle, M_PI / 4.0, 1e-12);  // 45 deg
}

TEST(ServoMotorTest, DisturbedStateIsAugmented) {
  const auto x0 = servo_disturbed_state();
  ASSERT_EQ(x0.size(), 3u);  // theta, omega, u_prev
  EXPECT_NEAR(x0[0], M_PI / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(x0[1], 0.0);
  EXPECT_DOUBLE_EQ(x0[2], 0.0);
}

TEST(ServoMotorTest, DesignedLoopsAreStable) {
  const auto design = design_servo_loops();
  EXPECT_LT(design.rho_tt, 1.0);
  EXPECT_LT(design.rho_et, 1.0);
  EXPECT_LT(design.rho_tt, design.rho_et);  // TT loop is the faster one
}

TEST(ServoMotorTest, ReproducesPaperSettlingTimes) {
  // Paper Fig. 3: xi_TT = 0.68 s, xi_ET = 2.16 s.  The calibrated design
  // pins xi_TT exactly and xi_ET within a few percent.
  const auto design = design_servo_loops();
  const ServoExperiment exp;
  const linalg::Vector x0{exp.disturbance_angle, 0.0};
  const auto tt = measure_pure_mode_settle(design, LoopMode::kTimeTriggered, x0, exp.threshold);
  const auto et = measure_pure_mode_settle(design, LoopMode::kEventTriggered, x0, exp.threshold);
  ASSERT_TRUE(tt && et);
  EXPECT_NEAR(*tt, 0.68, 0.021);
  EXPECT_NEAR(*et, 2.16, 0.11);
}

TEST(ServoMotorTest, DwellWaitCurveIsNonMonotonicTwoPhase) {
  // The paper's Fig. 3 phenomenon: a rising phase then a falling phase.
  const auto design = design_servo_loops();
  const ServoExperiment exp;
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = exp.threshold;
  const auto curve =
      sim::measure_dwell_wait_curve(sys, servo_disturbed_state(exp), exp.sampling_period, opts);
  EXPECT_TRUE(curve.is_non_monotonic());
  EXPECT_GT(curve.xi_m(), curve.xi_tt());
  EXPECT_GT(curve.k_p(), 0.0);
  EXPECT_GT(curve.xi_et() / curve.xi_tt(), 2.5);  // paper: 2.16 / 0.68 ~ 3.2
}

TEST(ServoMotorTest, LqrSpecAlsoStabilizes) {
  const auto design =
      control::design_hybrid_loops(make_servo_motor(), servo_lqr_spec());
  EXPECT_LT(design.rho_tt, 1.0);
  EXPECT_LT(design.rho_et, 1.0);
}

TEST(Table1Test, PublishedRowsAreInternallyConsistent) {
  const auto rows = paper_values();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_LT(row.xi_tt, row.xi_et) << row.name;          // TT faster than ET
    EXPECT_GE(row.xi_m, row.xi_tt) << row.name;           // peak above start
    EXPECT_LT(row.k_p, row.xi_et) << row.name;            // peak inside range
    EXPECT_LE(row.xi_d, row.r) << row.name;               // deadline <= inter-arrival
    EXPECT_GT(row.xi_m_mono, row.xi_m - 1e-9) << row.name;  // xi'_m >= xi_m
  }
}

TEST(Table1Test, ConservativeMaxDwellMatchesPublishedColumn) {
  for (const auto& row : paper_values()) {
    EXPECT_NEAR(conservative_max_dwell(row.xi_m, row.k_p, row.xi_et), row.xi_m_mono, 0.006)
        << row.name;
  }
}

TEST(Table1Test, SynthesizedFleetHitsSettlingTargets) {
  for (const auto& app : synthesize_fleet()) {
    const auto design = control::design_hybrid_loops(app.plant, app.spec);
    const auto tt = measure_pure_mode_settle(design, LoopMode::kTimeTriggered, app.x0,
                                             app.threshold);
    const auto et = measure_pure_mode_settle(design, LoopMode::kEventTriggered, app.x0,
                                             app.threshold);
    ASSERT_TRUE(tt && et) << app.target.name;
    // Within 10 % of the published settling times.
    EXPECT_NEAR(*tt, app.target.xi_tt, 0.1 * app.target.xi_tt + 0.02) << app.target.name;
    EXPECT_NEAR(*et, app.target.xi_et, 0.1 * app.target.xi_et + 0.02) << app.target.name;
  }
}

TEST(Table1Test, SynthesizedFleetLoopsAreStable) {
  for (const auto& app : synthesize_fleet()) {
    const auto design = control::design_hybrid_loops(app.plant, app.spec);
    EXPECT_LT(design.rho_tt, 1.0) << app.target.name;
    EXPECT_LT(design.rho_et, 1.0) << app.target.name;
  }
}

TEST(CalibrationTest, RadiusCalibrationReachesTarget) {
  const auto plant = make_oscillator(5.0, 0.1, 25.0);
  control::PolePlacementLoopSpec spec;
  spec.sampling_period = 0.02;
  spec.delay_tt = 0.0;
  spec.delay_et = 0.02;
  spec.poles_tt = control::oscillatory_pole_set(0.9, 0.05, 3);
  spec.poles_et = control::oscillatory_pole_set(0.97, 0.3, 3);
  const linalg::Vector x0{1.0, 0.0};
  const CalibrationTarget target{1.5, 0.1, 1.0};
  const auto tuned =
      calibrate_decay_radius(plant, spec, LoopMode::kTimeTriggered, x0, target);
  ASSERT_TRUE(tuned.has_value());
  const auto design = control::design_hybrid_loops(plant, *tuned);
  const auto settle = measure_pure_mode_settle(design, LoopMode::kTimeTriggered, x0, 0.1);
  ASSERT_TRUE(settle.has_value());
  EXPECT_NEAR(*settle, 1.5, 0.15);
}

TEST(CalibrationTest, UnreachableTargetReturnsNullopt) {
  const auto plant = make_oscillator(5.0, 0.1, 25.0);
  control::PolePlacementLoopSpec spec;
  spec.sampling_period = 0.02;
  spec.delay_tt = 0.0;
  spec.delay_et = 0.02;
  spec.poles_tt = control::oscillatory_pole_set(0.9, 0.05, 3);
  spec.poles_et = control::oscillatory_pole_set(0.97, 0.3, 3);
  const CalibrationTarget impossible{1e-6, 0.1, 0.1};  // faster than one step
  EXPECT_FALSE(calibrate_decay_radius(plant, spec, LoopMode::kTimeTriggered,
                                      linalg::Vector{1.0, 0.0}, impossible)
                   .has_value());
}

TEST(DisturbanceTest, PeriodicArrivals) {
  PeriodicDisturbance d(5.0, 1.0);
  const auto times = d.arrivals(16.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 6.0, 11.0}));
  EXPECT_DOUBLE_EQ(d.min_inter_arrival(), 5.0);
}

TEST(DisturbanceTest, WorstCaseArrivalsBackToBack) {
  WorstCaseDisturbance d(2.0);
  const auto times = d.arrivals(7.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
}

TEST(DisturbanceTest, SporadicRespectsMinimumGap) {
  SporadicDisturbance d(3.0, 2.0, Rng(99));
  const auto times = d.arrivals(100.0);
  ASSERT_GE(times.size(), 2u);
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GE(times[i] - times[i - 1], 3.0 - 1e-12);
}

TEST(DisturbanceTest, SporadicIsDeterministicGivenSeed) {
  SporadicDisturbance a(1.0, 0.5, Rng(7));
  SporadicDisturbance b(1.0, 0.5, Rng(7));
  EXPECT_EQ(a.arrivals(50.0), b.arrivals(50.0));
}

TEST(DisturbanceTest, ParameterValidation) {
  EXPECT_THROW(PeriodicDisturbance(0.0), InvalidArgument);
  EXPECT_THROW(PeriodicDisturbance(1.0, -0.5), InvalidArgument);
  EXPECT_THROW(SporadicDisturbance(0.0, 1.0, Rng()), InvalidArgument);
  EXPECT_THROW(WorstCaseDisturbance(-1.0), InvalidArgument);
}

}  // namespace
