// Unit tests for the hand-rolled TOML-subset reader behind campaign
// specs: typed round-trips, section flattening, strict typed getters,
// the canonical (digest-input) rendering's invariance to key order /
// comments / whitespace, and — most importantly — the malformed-input
// golden cases: everything outside the supported subset must be a LOUD
// TomlError naming the source line, never a silent skip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/toml.hpp"

namespace {

using namespace cps;
using cps::util::TomlError;
using cps::util::TomlTable;
using cps::util::TomlValue;
using cps::util::parse_toml;
using cps::util::parse_toml_file;

TEST(TomlParseTest, ParsesTypedScalars) {
  const auto table = parse_toml(
      "title = \"acceptance\"\n"
      "trials = 200\n"
      "scale = 1.5\n"
      "negative = -7\n"
      "exponent = 2e3\n"
      "flag = true\n"
      "other = false\n");
  EXPECT_EQ(table.get_string("title"), "acceptance");
  EXPECT_EQ(table.get_int("trials"), 200);
  EXPECT_DOUBLE_EQ(table.get_double("scale"), 1.5);
  EXPECT_EQ(table.get_int("negative"), -7);
  EXPECT_DOUBLE_EQ(table.get_double("exponent"), 2000.0);
  EXPECT_TRUE(table.get_bool("flag"));
  EXPECT_FALSE(table.get_bool("other"));
  EXPECT_EQ(table.size(), 7u);
}

TEST(TomlParseTest, GetDoubleAcceptsIntegers) {
  // 1 and 1.0 name the same grid value; the typed getter must not force
  // spec authors to write trailing ".0" everywhere.
  const auto table = parse_toml("u = 1\n");
  EXPECT_DOUBLE_EQ(table.get_double("u"), 1.0);
  EXPECT_EQ(table.get_int("u"), 1);
}

TEST(TomlParseTest, ParsesHomogeneousArrays) {
  const auto table = parse_toml(
      "utils = [0.5, 1.0, 1.5]\n"
      "mixed_numeric = [1, 2.5]\n"
      "names = [\"a\", \"b\"]\n"
      "empty = []\n");
  EXPECT_EQ(table.get_double_array("utils"), (std::vector<double>{0.5, 1.0, 1.5}));
  // Integers and floats are interchangeable NUMERIC kinds inside arrays.
  EXPECT_EQ(table.get_double_array("mixed_numeric"), (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(table.get_string_array("names"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(table.get_double_array("empty").empty());
}

TEST(TomlParseTest, ParsesMultiLineArraysAndTrailingCommas) {
  const auto table = parse_toml(
      "utils = [\n"
      "  0.5,  # first point\n"
      "  1.0,\n"
      "]\n");
  EXPECT_EQ(table.get_double_array("utils"), (std::vector<double>{0.5, 1.0}));
}

TEST(TomlParseTest, SectionsFlattenToDottedKeys) {
  const auto table = parse_toml(
      "root = 1\n"
      "[campaign]\n"
      "name = \"x\"\n"
      "[grid.inner]\n"
      "trials = 3\n");
  EXPECT_TRUE(table.has("root"));
  EXPECT_EQ(table.get_string("campaign.name"), "x");
  EXPECT_EQ(table.get_int("grid.inner.trials"), 3);
  EXPECT_EQ(table.keys_with_prefix("campaign."),
            (std::vector<std::string>{"campaign.name"}));
}

TEST(TomlParseTest, StringEscapesAndCommentsInsideStrings) {
  const auto table = parse_toml(
      "a = \"tab\\tnewline\\nquote\\\"backslash\\\\cr\\r\"\n"
      "b = \"not # a comment\"  # but this is\n");
  EXPECT_EQ(table.get_string("a"), "tab\tnewline\nquote\"backslash\\cr\r");
  EXPECT_EQ(table.get_string("b"), "not # a comment");
}

TEST(TomlParseTest, UnderscoreSeparatorsInNumbers) {
  const auto table = parse_toml("big = 1_000_000\nf = 1_0.5\n");
  EXPECT_EQ(table.get_int("big"), 1000000);
  EXPECT_DOUBLE_EQ(table.get_double("f"), 10.5);
}

TEST(TomlGetterTest, OptionalGettersFallBackWhenAbsent) {
  const auto table = parse_toml("present = 3\n");
  EXPECT_EQ(table.get_int_or("present", 9), 3);
  EXPECT_EQ(table.get_int_or("absent", 9), 9);
  EXPECT_DOUBLE_EQ(table.get_double_or("absent", 2.5), 2.5);
  EXPECT_EQ(table.get_string_or("absent", "d"), "d");
  EXPECT_TRUE(table.get_bool_or("absent", true));
  EXPECT_EQ(table.get_double_array_or("absent", {1.0}), (std::vector<double>{1.0}));
  EXPECT_EQ(table.get_string_array_or("absent", {"x"}), (std::vector<std::string>{"x"}));
}

TEST(TomlGetterTest, OptionalGettersStayLoudOnWrongKind) {
  // A typo'd VALUE must fail, not silently fall back — the fallback is
  // only for ABSENT keys.
  const auto table = parse_toml("trials = \"30\"\n");
  EXPECT_THROW(table.get_int_or("trials", 9), TomlError);
  EXPECT_THROW(table.get_double_or("trials", 1.0), TomlError);
  EXPECT_THROW(table.get_bool_or("trials", false), TomlError);
}

TEST(TomlGetterTest, MissingAndWrongKindErrorsNameTheKey) {
  const auto table = parse_toml("n = 1\n");
  try {
    table.get_string("absent");
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_NE(std::string(error.what()).find("absent"), std::string::npos);
  }
  try {
    table.get_string("n");
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_NE(std::string(error.what()).find("'n'"), std::string::npos);
  }
}

TEST(TomlCanonicalTest, IgnoresKeyOrderCommentsAndWhitespace) {
  const auto a = parse_toml(
      "# a comment\n"
      "b   =   2\n"
      "\n"
      "a = [1.5, 2]  # trailing comment\n");
  const auto b = parse_toml(
      "a=[1.5,2]\n"
      "b=2\n");
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(TomlCanonicalTest, DistinguishesValuesAndKinds) {
  // The canonical text is the spec DIGEST input: any value change — and
  // an int/float kind change — must change it.
  EXPECT_NE(parse_toml("a = 1\n").canonical(), parse_toml("a = 2\n").canonical());
  EXPECT_NE(parse_toml("a = 1\n").canonical(), parse_toml("a = 1.0\n").canonical());
  EXPECT_NE(parse_toml("a = 0.5\n").canonical(), parse_toml("a = 0.25\n").canonical());
  EXPECT_NE(parse_toml("a = \"1\"\n").canonical(), parse_toml("a = 1\n").canonical());
}

TEST(TomlCanonicalTest, FloatRenderingIsExactBitPattern) {
  // 0.1 is not exactly representable; the canonical form must carry the
  // bit pattern, not a rounded decimal.
  const auto table = parse_toml("a = 0.1\n");
  EXPECT_EQ(table.canonical(), "a=f:3fb999999999999a\n");
}

TEST(TomlTableArrayTest, EntriesFlattenToIndexedKeys) {
  const auto table = parse_toml(
      "[[event]]\n"
      "kind = \"drop_slot\"\n"
      "at_tick = 3\n"
      "[[event]]\n"
      "kind = \"drift\"\n");
  EXPECT_EQ(table.table_array_size("event"), 2u);
  EXPECT_EQ(table.table_array_size("absent"), 0u);
  EXPECT_EQ(table.get_string("event.0.kind"), "drop_slot");
  EXPECT_EQ(table.get_int("event.0.at_tick"), 3);
  EXPECT_EQ(table.get_string("event.1.kind"), "drift");
  // Header and key lines feed validation's "<source>:<line>:" errors.
  EXPECT_EQ(table.table_array_line("event", 0), 1u);
  EXPECT_EQ(table.table_array_line("event", 1), 4u);
  EXPECT_EQ(table.table_array_line("event", 2), 0u);  // out of range
  EXPECT_EQ(table.line_of("event.1.kind"), 5u);
  EXPECT_EQ(table.line_of("absent"), 0u);
}

TEST(TomlTableArrayTest, EmptyEntriesStayVisible) {
  // An [[event]] block with no keys must still count — validation has to
  // see it to reject it, not have it silently vanish.
  const auto table = parse_toml("[[event]]\n[[event]]\nx = 1\n");
  EXPECT_EQ(table.table_array_size("event"), 2u);
  EXPECT_FALSE(table.has("event.0.x"));
  EXPECT_EQ(table.get_int("event.1.x"), 1);
}

TEST(TomlTableArrayTest, CanonicalCarriesEntryCountsAndOldDigestsHold) {
  // Entry counts render as '@count.' lines (so one empty entry and two
  // digest differently), while files WITHOUT table arrays render exactly
  // as before — existing campaign-spec digests must not move.
  EXPECT_EQ(parse_toml("a = 1\n").canonical(), "a=1\n");
  EXPECT_EQ(parse_toml("[[e]]\n").canonical(), "@count.e=1\n");
  EXPECT_NE(parse_toml("[[e]]\n").canonical(), parse_toml("[[e]]\n[[e]]\n").canonical());
  EXPECT_EQ(parse_toml("[[e]]\nk = 2\n").canonical(), "@count.e=1\ne.0.k=2\n");
}

struct GoldenCase {
  const char* input;
  const char* expected_substring;
};

TEST(TomlGoldenTest, MalformedInputsFailLoudlyWithTheDocumentedMessage) {
  const std::vector<GoldenCase> cases = {
      {"a = {x = 1}\n", "inline tables"},
      {"a = 'literal'\n", "literal strings"},
      {"a.b = 1\n", "dotted keys"},
      {"[s]\nk = 1\n[[s]]\nk = 2\n", "already a plain [section]"},
      {"[[s]]\nk = 1\n[s]\nk = 2\n", "already a [[table array]]"},
      {"[[unclosed]\n", "expected ']]'"},
      {"a = 1\na = 2\n", "duplicate key 'a'"},
      {"[s]\nk = 1\n[s]\nk = 2\n", "duplicate key 's.k'"},
      {"a = [1, \"x\"]\n", "mixed value kinds in array"},
      {"a 1\n", "expected '=' after key 'a'"},
      {"a =\n", "expected a value"},
      {"a = \"unterminated\n", "unterminated string"},
      {"a = [1, 2\n", "unterminated array"},
      {"a = \"bad\\q\"\n", "unsupported escape"},
      {"a = 1979-05-27\n", "unexpected text after the value"},
      {"a = 1 junk\n", "unexpected text after the value"},
      {"a = yes\n", "unrecognized value 'yes'"},
      {"[unclosed\n", "expected ']'"},
      {"a = --3\n", "malformed number"},
  };
  for (const auto& test_case : cases) {
    try {
      parse_toml(test_case.input, "spec.toml");
      FAIL() << "no error for: " << test_case.input;
    } catch (const TomlError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(test_case.expected_substring), std::string::npos)
          << "input: " << test_case.input << "\nerror: " << what;
      EXPECT_EQ(what.rfind("spec.toml:", 0), 0u)
          << "error must lead with the source name: " << what;
    }
  }
}

TEST(TomlGoldenTest, ErrorsCarryTheOffendingLineNumber) {
  try {
    parse_toml("ok = 1\nbad = {x = 1}\n", "spec.toml");
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_NE(std::string(error.what()).find("spec.toml:2:"), std::string::npos)
        << error.what();
  }
  // Duplicate keys report the line of the SECOND definition.
  try {
    parse_toml("a = 1\n\n\na = 2\n", "spec.toml");
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_NE(std::string(error.what()).find("spec.toml:4:"), std::string::npos)
        << error.what();
  }
}

TEST(TomlFileTest, ParsesAFileAndFailsLoudlyOnAMissingOne) {
  const auto path = (std::filesystem::temp_directory_path() /
                     ("cps-toml-test-" + std::to_string(::getpid()) + ".toml"))
                        .string();
  {
    std::ofstream out(path);
    out << "[campaign]\nname = \"f\"\n";
  }
  const auto table = parse_toml_file(path);
  EXPECT_EQ(table.get_string("campaign.name"), "f");
  std::filesystem::remove(path);
  try {
    parse_toml_file(path);
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_NE(std::string(error.what()).find("cannot open spec file"), std::string::npos);
  }
}

TEST(TomlValueTest, BuildersAndCheckedAccessors) {
  EXPECT_TRUE(TomlValue::make_bool(true).as_bool());
  EXPECT_EQ(TomlValue::make_int(-3).as_int(), -3);
  EXPECT_DOUBLE_EQ(TomlValue::make_float(0.5).as_float(), 0.5);
  EXPECT_DOUBLE_EQ(TomlValue::make_int(2).as_float(), 2.0);  // int promotes
  EXPECT_EQ(TomlValue::make_string("s").as_string(), "s");
  EXPECT_THROW(TomlValue::make_int(1).as_string(), TomlError);
  EXPECT_THROW(TomlValue::make_string("s").as_int(), TomlError);
  EXPECT_THROW(TomlValue::make_string("s").as_float(), TomlError);
  EXPECT_THROW(TomlValue::make_bool(true).as_array(), TomlError);
}

}  // namespace
