// End-to-end determinism tests of the spec-driven acceptance-ratio
// campaign: running sweep_acceptance_ratio through the experiment
// registry with a declarative spec must produce BYTE-identical
// per-point CSVs for any --jobs value and for any shard partition
// (shards merged via merge_sweep_csv vs. one unsharded process) — the
// repo's determinism contract applied to the generative scenario
// engine.  Links cps_experiments for the registered experiment body.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "runtime/campaign_spec.hpp"
#include "runtime/experiment.hpp"
#include "runtime/shard.hpp"
#include "util/toml.hpp"

namespace {

using namespace cps;
using namespace cps::runtime;

/// Small grid (2 utilizations x 1 fleet size x 8 trials = 16 fleets) so
/// the whole suite stays sub-second while still spanning shard blocks.
const char* kTinySpec =
    "spec_version = 1\n"
    "[campaign]\n"
    "name = \"campaign_test\"\n"
    "experiments = [\"sweep_acceptance_ratio\"]\n"
    "seed = 71\n"
    "[grid]\n"
    "utilization = [1.0, 2.5]\n"
    "fleet_size = [6]\n"
    "trials = 8\n"
    "max_slots = 2\n";
constexpr std::size_t kTinyRows = 2 * 1 * 8;

struct CampaignFixture : public ::testing::Test {
  void SetUp() override {
    dir = (std::filesystem::temp_directory_path() /
           ("cps-campaign-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++)))
              .string();
    std::filesystem::create_directories(dir);
    spec = make_campaign_spec(util::parse_toml(kTinySpec, "tiny.toml"), "tiny.toml");
    sink = std::fopen("/dev/null", "w");
    ASSERT_NE(sink, nullptr);
  }
  void TearDown() override {
    if (sink != nullptr) std::fclose(sink);
    std::error_code error;
    std::filesystem::remove_all(dir, error);
  }

  /// Run the registered sweep_acceptance_ratio with this fixture's spec.
  void run_sweep(const std::string& csv_dir, int jobs, std::size_t shard_index = 0,
                 std::size_t shard_count = 1) {
    std::filesystem::create_directories(csv_dir);
    const Experiment* experiment =
        ExperimentRegistry::instance().find("sweep_acceptance_ratio");
    ASSERT_NE(experiment, nullptr);
    ASSERT_TRUE(experiment->shardable());
    ExperimentContext context;
    context.jobs = jobs;
    context.seed = spec.seed;
    context.csv_dir = csv_dir;
    context.out = sink;
    context.shard_index = shard_index;
    context.shard_count = shard_count;
    context.spec = &spec;
    experiment->run(context);
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing file: " << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static std::size_t count_lines(const std::string& text) {
    std::size_t lines = 0;
    for (const char c : text) lines += static_cast<std::size_t>(c == '\n');
    return lines;
  }

  static std::atomic<int> counter;
  std::string dir;
  CampaignSpec spec;
  std::FILE* sink = nullptr;
};
std::atomic<int> CampaignFixture::counter{0};

TEST_F(CampaignFixture, SpecParametersShapeTheArtifact) {
  run_sweep(dir + "/j1", 1);
  const auto csv = read_file(dir + "/j1/sweep_acceptance_ratio.csv");
  // Header + one row per (utilization, fleet_size, trial) grid cell.
  EXPECT_EQ(count_lines(csv), 1 + kTinyRows);
  EXPECT_EQ(csv.rfind("index,target_util,fleet_size,trial,achieved_util,", 0), 0u);
  // The aggregated curve is written by unsharded runs.
  const auto curve = read_file(dir + "/j1/sweep_acceptance_ratio_curve.csv");
  EXPECT_EQ(count_lines(curve), 1 + 2u);  // one curve row per grid point
}

TEST_F(CampaignFixture, JobCountNeverChangesTheArtifactBytes) {
  run_sweep(dir + "/j1", 1);
  run_sweep(dir + "/j4", 4);
  const auto j1 = read_file(dir + "/j1/sweep_acceptance_ratio.csv");
  const auto j4 = read_file(dir + "/j4/sweep_acceptance_ratio.csv");
  EXPECT_FALSE(j1.empty());
  // Exact equality on purpose: the contract is BYTE identity.
  EXPECT_EQ(j1, j4);
}

TEST_F(CampaignFixture, ShardsMergeToTheUnshardedArtifactBytes) {
  run_sweep(dir + "/single", 3);

  // Two shards, deliberately run with DIFFERENT job counts, stamped with
  // the provenance sidecars cps_run writes after a sharded success.
  const std::string sharded = dir + "/sharded";
  run_sweep(sharded, 2, /*shard_index=*/0, /*shard_count=*/2);
  run_sweep(sharded, 1, /*shard_index=*/1, /*shard_count=*/2);
  const std::string canonical = sharded + "/sweep_acceptance_ratio.csv";
  // Sharded processes must not write the canonical aggregate curve.
  EXPECT_FALSE(std::filesystem::exists(sharded + "/sweep_acceptance_ratio_curve.csv"));
  write_shard_meta(canonical + shard_suffix(0, 2), spec.seed, 0, 2);
  write_shard_meta(canonical + shard_suffix(1, 2), spec.seed, 1, 2);

  EXPECT_EQ(merge_sweep_csv(canonical, 2), kTinyRows);
  EXPECT_EQ(read_file(canonical), read_file(dir + "/single/sweep_acceptance_ratio.csv"));
}

}  // namespace
