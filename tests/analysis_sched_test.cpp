// Unit and property tests for the schedulability analysis (Section IV):
// blocking and interference terms, the closed-form bounds (20)-(21), the
// fixed point of recurrence (5), and the paper's published intermediate
// numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/schedulability.hpp"
#include "plants/table1.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

AppSchedParams make_app(std::string name, double r, double deadline, double xi_tt, double xi_m,
                        double k_p, double xi_et) {
  AppSchedParams app;
  app.name = std::move(name);
  app.min_inter_arrival = r;
  app.deadline = deadline;
  app.model = std::make_shared<NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
  return app;
}

AppSchedParams table1_app(const plants::AppTimingParams& row) {
  return make_app(row.name, row.r, row.xi_d, row.xi_tt, row.xi_m, row.k_p, row.xi_et);
}

std::vector<AppSchedParams> paper_apps() {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) apps.push_back(table1_app(row));
  sort_by_priority(apps);
  return apps;
}

TEST(PriorityTest, SortedByDeadline) {
  auto apps = paper_apps();
  // Deadlines: C3 (2) < C6 (6) < C2 (6.25) < C4 (7.5) < C5 (8.5) < C1 (9.5).
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0].name, "C3");
  EXPECT_EQ(apps[1].name, "C6");
  EXPECT_EQ(apps[2].name, "C2");
  EXPECT_EQ(apps[3].name, "C4");
  EXPECT_EQ(apps[4].name, "C5");
  EXPECT_EQ(apps[5].name, "C1");
}

TEST(BlockingTest, MaxOverLowerPriorityDwells) {
  auto apps = paper_apps();
  // For the highest-priority app the blocking is the largest xi_m below it.
  double expected = 0.0;
  for (std::size_t k = 1; k < apps.size(); ++k)
    expected = std::max(expected, apps[k].model->max_dwell());
  EXPECT_DOUBLE_EQ(blocking_term(apps, 0), expected);
  // The lowest-priority app has no one below: zero blocking.
  EXPECT_DOUBLE_EQ(blocking_term(apps, apps.size() - 1), 0.0);
}

TEST(InterferenceTest, UtilizationSum) {
  auto apps = paper_apps();
  // m for C2 (index 2) = xi_m3 / r3 + xi_m6 / r6.
  const double expected = 0.64 / 15.0 + 0.92 / 6.0;
  EXPECT_NEAR(interference_utilization(apps, 2), expected, 1e-12);
  EXPECT_DOUBLE_EQ(interference_utilization(apps, 0), 0.0);
}

// ---------------------------------------------------------------------------
// The paper's published intermediate values (Section V, slot S1 = {C3, C6}).

TEST(PaperNumbersTest, MaxWaitOfC6SharingWithC3) {
  // "According to (20), the maximum wait time k_hat_wait,6 = 0.669."
  std::vector<AppSchedParams> slot{table1_app(plants::paper_values()[2]),   // C3
                                   table1_app(plants::paper_values()[5])};  // C6
  sort_by_priority(slot);
  ASSERT_EQ(slot[1].name, "C6");
  const auto k_hat = max_wait_bound(slot, 1);
  ASSERT_TRUE(k_hat.has_value());
  EXPECT_NEAR(*k_hat, 0.669, 5e-4);
  // "...used to compute the worst-case response time xi_hat_6 = 1.589."
  EXPECT_NEAR(slot[1].model->response(*k_hat), 1.589, 2e-3);
}

TEST(PaperNumbersTest, MaxWaitOfC3SharingWithC6) {
  // "the maximum wait time k_hat_wait,3 = xi_M_6 = 0.92, ... the
  //  worst-case response time xi_hat_3 = 1.515."
  std::vector<AppSchedParams> slot{table1_app(plants::paper_values()[2]),
                                   table1_app(plants::paper_values()[5])};
  sort_by_priority(slot);
  const auto k_hat = max_wait_bound(slot, 0);
  ASSERT_TRUE(k_hat.has_value());
  EXPECT_NEAR(*k_hat, 0.92, 1e-12);
  EXPECT_NEAR(slot[0].model->response(*k_hat), 1.515, 2e-3);
}

TEST(PaperNumbersTest, C3NotSchedulableWhenC2Joins) {
  // Adding C2 to S1 makes C3 unschedulable (Section V).
  std::vector<AppSchedParams> slot{table1_app(plants::paper_values()[2]),
                                   table1_app(plants::paper_values()[5]),
                                   table1_app(plants::paper_values()[1])};
  const SlotAnalysis analysis = analyze_slot(slot);
  EXPECT_FALSE(analysis.all_schedulable);
  EXPECT_EQ(analysis.results[0].name, "C3");
  EXPECT_FALSE(analysis.results[0].schedulable);
  // C3's blocking is now max(xi_m6, xi_m2) = 2.95.
  EXPECT_NEAR(analysis.results[0].blocking, 2.95, 1e-12);
}

TEST(PaperNumbersTest, MonotonicCaseC2C4Clash) {
  // Monotonic analysis: k_hat'_2 = xi'_M4 = 4.94 -> xi_hat'_2 = 6.426 >
  // 6.25, so C2 is not schedulable with C4 (Section V).
  const auto rows = plants::paper_values();
  auto mono_app = [&](std::size_t i) {
    AppSchedParams app;
    app.name = rows[i].name;
    app.min_inter_arrival = rows[i].r;
    app.deadline = rows[i].xi_d;
    app.model = std::make_shared<ConservativeMonotonicModel>(rows[i].xi_m_mono, rows[i].xi_et);
    return app;
  };
  std::vector<AppSchedParams> slot{mono_app(1), mono_app(3)};  // C2, C4
  sort_by_priority(slot);
  ASSERT_EQ(slot[0].name, "C2");
  const auto k_hat = max_wait_bound(slot, 0);
  ASSERT_TRUE(k_hat.has_value());
  EXPECT_NEAR(*k_hat, 4.94, 1e-12);
  EXPECT_NEAR(slot[0].model->response(*k_hat), 6.426, 2e-3);
  EXPECT_FALSE(analyze_slot(slot).all_schedulable);
}

// ---------------------------------------------------------------------------
// Fixed point and bound properties.

TEST(FixedPointTest, EqualsBlockingWhenNoHigherPriority) {
  auto apps = paper_apps();
  const auto fp = max_wait_fixed_point(apps, 0);
  ASSERT_TRUE(fp.has_value());
  EXPECT_DOUBLE_EQ(*fp, blocking_term(apps, 0));
}

TEST(FixedPointTest, SatisfiesRecurrence) {
  auto apps = paper_apps();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto fp = max_wait_fixed_point(apps, i);
    ASSERT_TRUE(fp.has_value()) << i;
    // k = a + sum ceil(k / r_j) xi_m_j must hold at the fixed point (with
    // at least one arrival per higher-priority app).
    double rhs = blocking_term(apps, i);
    for (std::size_t j = 0; j < i; ++j) {
      const double arrivals =
          std::max(1.0, std::ceil(*fp / apps[j].min_inter_arrival - 1e-12));
      rhs += arrivals * apps[j].model->max_dwell();
    }
    EXPECT_NEAR(*fp, rhs, 1e-9) << i;
  }
}

class BoundBracketing : public ::testing::TestWithParam<int> {};

TEST_P(BoundBracketing, FixedPointLiesWithinTheClosedFormBounds) {
  // Property (Eqs. 20-21): a / (1-m) <= k_hat_fixed_point < a' / (1-m),
  // for random application sets with m < 1.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 17u);
  const int n = rng.uniform_int(2, 6);
  std::vector<AppSchedParams> apps;
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(0.2, 1.5);
    const double xi_m = xi_tt + rng.uniform(0.0, 1.5);
    const double xi_et = xi_m + rng.uniform(1.0, 6.0);
    const double k_p = rng.uniform(0.0, 0.8) * xi_et * 0.5;
    const double r = rng.uniform(4.0, 60.0) * xi_m;  // keeps m < 1
    const double deadline = std::min(r, xi_et + rng.uniform(0.0, 3.0));
    apps.push_back(make_app("A" + std::to_string(i), r, deadline, xi_tt, xi_m, k_p, xi_et));
  }
  sort_by_priority(apps);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (interference_utilization(apps, i) >= 1.0) continue;
    const auto lower = max_wait_lower_bound(apps, i);
    const auto upper = max_wait_bound(apps, i);
    const auto fp = max_wait_fixed_point(apps, i);
    ASSERT_TRUE(lower && upper && fp);
    EXPECT_LE(*lower, *fp + 1e-9) << "i=" << i;
    EXPECT_LT(*fp, *upper + 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAppSets, BoundBracketing, ::testing::Range(0, 30));

TEST(BoundTest, OverUtilizationReturnsNullopt) {
  // Higher-priority app with xi_m / r >= 1 saturates the slot.
  std::vector<AppSchedParams> apps{make_app("hp", 1.0, 1.0, 0.5, 1.0, 0.2, 3.0),
                                   make_app("lp", 10.0, 10.0, 0.5, 1.0, 0.2, 3.0)};
  sort_by_priority(apps);
  ASSERT_EQ(apps[0].name, "hp");
  EXPECT_FALSE(max_wait_bound(apps, 1).has_value());
  EXPECT_FALSE(max_wait_fixed_point(apps, 1).has_value());
  const SlotAnalysis analysis = analyze_slot(apps);
  EXPECT_FALSE(analysis.all_schedulable);
  EXPECT_FALSE(analysis.results[1].utilization_feasible);
}

TEST(BoundTest, UpperBoundIsConservativeVersusFixedPoint) {
  auto apps = paper_apps();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto fp = max_wait_fixed_point(apps, i);
    const auto ub = max_wait_bound(apps, i);
    ASSERT_TRUE(fp && ub);
    EXPECT_LE(*fp, *ub + 1e-9) << "i=" << i;
  }
}

TEST(AnalyzeSlotTest, SingleAppAloneUsesZeroWait) {
  std::vector<AppSchedParams> apps{make_app("solo", 10.0, 5.0, 1.0, 1.5, 0.4, 4.0)};
  const SlotAnalysis analysis = analyze_slot(apps);
  ASSERT_EQ(analysis.results.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.results[0].max_wait, 0.0);
  EXPECT_DOUBLE_EQ(analysis.results[0].response, 1.0);  // dwell at zero wait = xi_tt
  EXPECT_TRUE(analysis.results[0].schedulable);
}

TEST(AnalyzeSlotTest, ValidationErrors) {
  EXPECT_THROW(analyze_slot({}), InvalidArgument);
  AppSchedParams bad;
  bad.name = "no-model";
  bad.min_inter_arrival = 1.0;
  bad.deadline = 1.0;
  EXPECT_THROW(analyze_slot({bad}), InvalidArgument);
}

TEST(AnalyzeSlotTest, MethodChoiceAffectsTightness) {
  auto apps = paper_apps();
  const SlotAnalysis by_bound = analyze_slot(apps, MaxWaitMethod::kClosedFormBound);
  const SlotAnalysis by_fp = analyze_slot(apps, MaxWaitMethod::kFixedPoint);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_LE(by_fp.results[i].max_wait, by_bound.results[i].max_wait + 1e-9);
  }
}

}  // namespace
