// Unit and property tests for the dwell/wait envelope models (Fig. 4):
// tent geometry from Table I parameters, soundness of fitted envelopes on
// random switched systems, the xi'_m relation, and the demonstrated
// unsafety of the simple monotonic model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dwell_wait_model.hpp"
#include "linalg/eigen.hpp"
#include "plants/table1.hpp"
#include "sim/dwell_wait.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Tent geometry from explicit (Table I style) parameters.

TEST(NonMonotonicModelTest, TentGeometryFromParameters) {
  // C6's row: xi_tt = 0.71, xi_m = 0.92, k_p = 0.67, xi_et = 7.94.
  const NonMonotonicModel m(0.71, 0.92, 0.67, 7.94);
  EXPECT_NEAR(m.dwell(0.0), 0.71, 1e-12);
  EXPECT_NEAR(m.dwell(0.67), 0.92, 1e-12);
  EXPECT_NEAR(m.dwell(7.94), 0.0, 1e-12);
  EXPECT_NEAR(m.max_dwell(), 0.92, 1e-12);
  EXPECT_NEAR(m.k_p(), 0.67, 1e-9);
  EXPECT_NEAR(m.zero_wait(), 7.94, 1e-9);
  // Linear interpolation on both pieces.
  EXPECT_NEAR(m.dwell(0.335), (0.71 + 0.92) / 2.0, 1e-12);
  const double mid_fall = 0.67 + (7.94 - 0.67) / 2.0;
  EXPECT_NEAR(m.dwell(mid_fall), 0.92 / 2.0, 1e-12);
  // Clipped to zero past xi_et.
  EXPECT_DOUBLE_EQ(m.dwell(100.0), 0.0);
}

TEST(NonMonotonicModelTest, PaperCaseStudyDwellValues) {
  // Section V uses dwell(k_hat) on the falling piece:
  //   C6: dwell(0.669) with (0.71, 0.92, 0.67, 7.94) -> xi_hat = 1.589.
  const NonMonotonicModel c6(0.71, 0.92, 0.67, 7.94);
  EXPECT_NEAR(c6.response(0.669), 1.589, 1e-3);
  //   C3: dwell(0.92) with (0.39, 0.64, 0.69, 3.97) -> xi_hat = 1.515.
  const NonMonotonicModel c3(0.39, 0.64, 0.69, 3.97);
  EXPECT_NEAR(c3.response(0.92), 1.515, 1e-3);
}

TEST(NonMonotonicModelTest, DegenerateZeroPeakWait) {
  const NonMonotonicModel m(0.0, 0.5, 0.0, 2.0);
  EXPECT_NEAR(m.dwell(0.0), 0.5, 1e-12);
  EXPECT_NEAR(m.dwell(1.0), 0.25, 1e-12);
  EXPECT_NEAR(m.k_p(), 0.0, 1e-12);
}

TEST(NonMonotonicModelTest, ParameterValidation) {
  EXPECT_THROW(NonMonotonicModel(0.5, 0.4, 0.1, 2.0), Error);   // xi_m < xi_tt
  EXPECT_THROW(NonMonotonicModel(0.5, 0.6, 2.5, 2.0), Error);   // k_p >= xi_et
  EXPECT_THROW(NonMonotonicModel(-0.1, 0.6, 0.1, 2.0), Error);  // negative xi_tt
}

TEST(NonMonotonicModelTest, ResponseIncreasesWithWait) {
  // Section III: gradient of the falling piece is between 0 and -1, so the
  // total response time increases with the wait time.
  for (const auto& row : plants::paper_values()) {
    const NonMonotonicModel m(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    double prev = m.response(0.0);
    for (double w = 0.05; w <= row.xi_et; w += 0.05) {
      const double r = m.response(w);
      EXPECT_GE(r, prev - 1e-9) << row.name << " w=" << w;
      prev = r;
    }
  }
}

// ---------------------------------------------------------------------------
// The conservative monotonic model and the xi'_m column.

TEST(ConservativeModelTest, XiMPrimeMatchesPublishedColumn) {
  // The paper's xi'^M column equals xi_m * xi_et / (xi_et - k_p) for every
  // row, to the published rounding.
  for (const auto& row : plants::paper_values()) {
    const double computed = plants::conservative_max_dwell(row.xi_m, row.k_p, row.xi_et);
    EXPECT_NEAR(computed, row.xi_m_mono, 0.006) << row.name;
    const auto model = ConservativeMonotonicModel::from_non_monotonic(row.xi_m, row.k_p, row.xi_et);
    EXPECT_NEAR(model.max_dwell(), row.xi_m_mono, 0.006) << row.name;
  }
}

TEST(ConservativeModelTest, DominatesTheTentEverywhere) {
  for (const auto& row : plants::paper_values()) {
    const NonMonotonicModel tent(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    const auto mono =
        ConservativeMonotonicModel::from_non_monotonic(row.xi_m, row.k_p, row.xi_et);
    for (double w = 0.0; w <= row.xi_et; w += row.xi_et / 200.0)
      EXPECT_GE(mono.dwell(w) + 1e-9, tent.dwell(w)) << row.name << " w=" << w;
  }
}

TEST(SimpleModelTest, UnderestimatesTheTentBetweenEndpoints) {
  // The paper's Figure 4 argument: the simple monotonic line is below the
  // actual relation except at the two ends -> deadlines may be violated.
  const auto row = plants::paper_values()[5];  // C6
  const NonMonotonicModel tent(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
  const SimpleMonotonicModel simple(row.xi_tt, row.xi_et);
  EXPECT_LT(simple.dwell(row.k_p), tent.dwell(row.k_p));
  EXPECT_NEAR(simple.dwell(0.0), tent.dwell(0.0), 1e-12);
  EXPECT_NEAR(simple.dwell(row.xi_et), tent.dwell(row.xi_et), 1e-12);
}

// ---------------------------------------------------------------------------
// Fitting on measured curves: soundness properties over random systems.

sim::DwellWaitCurve random_curve(Rng& rng) {
  // Random stable pair with a non-normal ET loop (transient growth).
  for (;;) {
    const double rho_et = rng.uniform(0.85, 0.97);
    const double growth = rng.uniform(0.0, 1.2);
    Matrix a1{{rho_et, growth}, {0.0, rho_et}};
    const double rho_tt = rng.uniform(0.4, 0.8);
    Matrix a2{{rho_tt, 0.0}, {0.1, rho_tt * 0.9}};
    sim::SwitchedLinearSystem sys(a1, a2, 2);
    sim::DwellWaitSweepOptions opts;
    opts.settling.threshold = 0.1;
    const double angle = rng.uniform(0.0, 6.28);
    const Vector x0{std::cos(angle), std::sin(angle)};
    try {
      return measure_dwell_wait_curve(sys, x0, 0.02, opts);
    } catch (const Error&) {
      continue;  // degenerate draw; retry
    }
  }
}

class EnvelopeSoundness : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopeSoundness, FittedModelsDominateTheMeasuredCurve) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 3u);
  const sim::DwellWaitCurve curve = random_curve(rng);

  const NonMonotonicModel tent = NonMonotonicModel::fit(curve);
  EXPECT_TRUE(tent.dominates(curve, 1e-9)) << "violation " << tent.max_violation(curve);

  const ConservativeMonotonicModel mono = ConservativeMonotonicModel::fit(curve);
  EXPECT_TRUE(mono.dominates(curve, 1e-9)) << "violation " << mono.max_violation(curve);

  const ConcaveEnvelopeModel hull(curve);
  EXPECT_TRUE(hull.dominates(curve, 1e-9)) << "violation " << hull.max_violation(curve);

  // Tightness ordering: hull <= tent <= conservative, pointwise.
  for (const auto& p : curve.points()) {
    EXPECT_LE(hull.dwell(p.wait_s), tent.dwell(p.wait_s) + 1e-9);
    EXPECT_LE(tent.dwell(p.wait_s), mono.dwell(p.wait_s) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, EnvelopeSoundness, ::testing::Range(0, 25));

TEST(FitTest, TentPeakMatchesMeasuredPeak) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const sim::DwellWaitCurve curve = random_curve(rng);
    const NonMonotonicModel tent = NonMonotonicModel::fit(curve);
    EXPECT_NEAR(tent.max_dwell(), curve.xi_m(), 1e-9) << "trial " << trial;
  }
}

TEST(FitTest, ConcaveHullIsConcave) {
  Rng rng(103);
  const sim::DwellWaitCurve curve = random_curve(rng);
  const auto hull = concave_hull(curve);
  ASSERT_GE(hull.size(), 2u);
  // Slopes strictly decreasing along the hull.
  for (std::size_t i = 2; i < hull.size(); ++i) {
    const double s1 =
        (hull[i - 1].second - hull[i - 2].second) / (hull[i - 1].first - hull[i - 2].first);
    const double s2 = (hull[i].second - hull[i - 1].second) / (hull[i].first - hull[i - 1].first);
    EXPECT_LT(s2, s1 + 1e-12);
  }
  // Hull ends at zero dwell.
  EXPECT_DOUBLE_EQ(hull.back().second, 0.0);
}

TEST(FitTest, SimpleMonotonicCanViolateMeasuredCurves) {
  // Find at least one random system where the simple monotonic model
  // under-approximates — the unsafety the paper warns about.
  Rng rng(107);
  bool found_violation = false;
  for (int trial = 0; trial < 40 && !found_violation; ++trial) {
    const sim::DwellWaitCurve curve = random_curve(rng);
    const SimpleMonotonicModel simple = SimpleMonotonicModel::fit(curve);
    if (curve.is_non_monotonic() && simple.max_violation(curve) > 1e-6) found_violation = true;
  }
  EXPECT_TRUE(found_violation);
}

TEST(FitTest, ConcaveHullTighterOrEqualPieceCount) {
  Rng rng(109);
  const sim::DwellWaitCurve curve = random_curve(rng);
  const ConcaveEnvelopeModel hull(curve);
  EXPECT_GE(hull.piece_count(), 1u);
  EXPECT_GT(hull.zero_wait(), 0.0);
  EXPECT_GT(hull.max_dwell(), 0.0);
}

TEST(ModelInterfaceTest, NegativeWaitRejected) {
  const NonMonotonicModel m(0.5, 0.8, 0.3, 3.0);
  EXPECT_THROW(m.dwell(-0.1), InvalidArgument);
}

}  // namespace
