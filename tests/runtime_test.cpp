// Unit tests for the runtime layer: work-stealing ThreadPool semantics
// (results, ordering, exception propagation, destructor draining), the
// deterministic per-task seeding of SweepRunner (a 2-job sweep must be
// bit-identical to the serial run), and the experiment registry catalog.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::runtime;

TEST(ThreadPoolTest, ReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) futures.push_back(pool.submit([i]() { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([]() { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return std::string("fine"); });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), "fine");
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExecutesEveryTaskExactlyOnce) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i)
      futures.push_back(pool.submit([&counter]() { counter.fetch_add(1); }));
    for (auto& future : futures) future.get();
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter]() { counter.fetch_add(1); });
    }
    // No explicit wait: the destructor must run all 100 tasks.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasksOnly) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::promise<void> release;
  auto release_future = release.get_future();
  auto gate = pool.submit([&]() {
    started = true;
    release_future.wait();
  });
  while (!started) std::this_thread::yield();  // the lone worker is now in-flight
  std::atomic<int> ran{0};
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 10; ++i)
    queued.push_back(pool.submit([&ran]() { ran.fetch_add(1); }));
  pool.cancel_pending();
  release.set_value();
  gate.get();  // the in-flight task completes normally
  for (auto& future : queued) EXPECT_THROW(future.get(), std::future_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskSeedTest, IsStableAndIndexSensitive) {
  // Pinned values: per-task streams must never silently change, or every
  // recorded sweep becomes irreproducible.
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  EXPECT_NE(task_seed(1, 0), task_seed(1, 1));
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(task_seed(0x5EED5EEDULL, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SweepRunnerTest, ResultsComeBackInIndexOrder) {
  SweepRunner sweep({4, 123});
  const auto results =
      sweep.run(100, [](std::size_t i, Rng&) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 3);
}

TEST(SweepRunnerTest, TwoJobSweepBitIdenticalToSerial) {
  const auto task = [](std::size_t i, Rng& rng) {
    // Mix several draw kinds so any per-task stream divergence shows up.
    double acc = rng.uniform(-1.0, 1.0) + rng.gaussian(0.0, 2.0);
    for (int k = 0; k < static_cast<int>(i % 7); ++k) acc += rng.uniform(0.0, 1.0);
    return acc;
  };
  SweepRunner serial({1, 0xC0FFEE});
  SweepRunner parallel({2, 0xC0FFEE});
  const auto expected = serial.run(64, task);
  const auto actual = parallel.run(64, task);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Exact equality on purpose: the determinism contract is bit-identity.
    EXPECT_EQ(expected[i], actual[i]) << "index " << i;
  }
}

TEST(SweepRunnerTest, PropagatesTaskExceptions) {
  SweepRunner sweep({2, 9});
  EXPECT_THROW(sweep.run(8,
                         [](std::size_t i, Rng&) -> int {
                           if (i == 5) throw std::runtime_error("boom");
                           return 0;
                         }),
               std::runtime_error);
}

TEST(ExperimentRegistryTest, RegistersFindsAndRejectsDuplicates) {
  ExperimentRegistry registry;
  registry.add(Experiment("demo", "a demo experiment", [](ExperimentContext&) {}));
  ASSERT_NE(registry.find("demo"), nullptr);
  EXPECT_EQ(registry.find("demo")->description(), "a demo experiment");
  EXPECT_EQ(registry.find("absent"), nullptr);
  EXPECT_THROW(registry.add(Experiment("demo", "again", [](ExperimentContext&) {})),
               cps::Error);
}

TEST(ExperimentRegistryTest, ListIsSortedByName) {
  ExperimentRegistry registry;
  for (const char* name : {"zeta", "alpha", "mid"})
    registry.add(Experiment(name, "d", [](ExperimentContext&) {}));
  const auto listed = registry.list();
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0]->name(), "alpha");
  EXPECT_EQ(listed[1]->name(), "mid");
  EXPECT_EQ(listed[2]->name(), "zeta");
}

TEST(ExperimentRegistryTest, ExperimentRunReceivesContext) {
  ExperimentRegistry registry;
  int seen_jobs = 0;
  registry.add(Experiment("probe", "records ctx",
                          [&seen_jobs](ExperimentContext& ctx) { seen_jobs = ctx.jobs; }));
  ExperimentContext context;
  context.jobs = 5;
  registry.find("probe")->run(context);
  EXPECT_EQ(seen_jobs, 5);
}

TEST(ExperimentContextTest, CsvPathJoinsDirectory) {
  ExperimentContext context;
  EXPECT_EQ(context.csv_path("a.csv"), "a.csv");
  context.csv_dir = "out";
  EXPECT_EQ(context.csv_path("a.csv"), "out/a.csv");
  context.csv_dir = "out/";
  EXPECT_EQ(context.csv_path("a.csv"), "out/a.csv");
}

// The global registry, populated by the CPS_EXPERIMENT registrars linked
// into this binary (src/experiments/).
TEST(ExperimentCatalogTest, AllPaperExperimentsRegistered) {
  auto& registry = ExperimentRegistry::instance();
  EXPECT_GE(registry.size(), 10u);
  for (const char* name :
       {"fig3", "fig4", "fig5", "table1", "table_alloc", "ablation_allocator",
        "ablation_bounds", "ablation_envelope", "ablation_jitter", "sweep_alloc"}) {
    EXPECT_NE(registry.find(name), nullptr) << "missing experiment: " << name;
  }
}

}  // namespace
