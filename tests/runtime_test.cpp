// Unit tests for the runtime layer: work-stealing ThreadPool semantics
// (results, ordering, exception propagation, destructor draining), the
// deterministic per-task seeding of SweepRunner (any job count, chunk
// size, and shard partition must be bit-identical to the serial run),
// the shard partition/merge machinery, and the experiment registry
// catalog.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/parallel_search.hpp"
#include "runtime/shard.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::runtime;

TEST(ThreadPoolTest, ReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) futures.push_back(pool.submit([i]() { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([]() { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return std::string("fine"); });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), "fine");
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExecutesEveryTaskExactlyOnce) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i)
      futures.push_back(pool.submit([&counter]() { counter.fetch_add(1); }));
    for (auto& future : futures) future.get();
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter]() { counter.fetch_add(1); });
    }
    // No explicit wait: the destructor must run all 100 tasks.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasksOnly) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::promise<void> release;
  auto release_future = release.get_future();
  auto gate = pool.submit([&]() {
    started = true;
    release_future.wait();
  });
  while (!started) std::this_thread::yield();  // the lone worker is now in-flight
  std::atomic<int> ran{0};
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 10; ++i)
    queued.push_back(pool.submit([&ran]() { ran.fetch_add(1); }));
  pool.cancel_pending();
  release.set_value();
  gate.get();  // the in-flight task completes normally
  for (auto& future : queued) EXPECT_THROW(future.get(), std::future_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskSeedTest, IsStableAndIndexSensitive) {
  // Pinned values: per-task streams must never silently change, or every
  // recorded sweep becomes irreproducible.
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  EXPECT_NE(task_seed(1, 0), task_seed(1, 1));
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(task_seed(0x5EED5EEDULL, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SweepRunnerTest, ResultsComeBackInIndexOrder) {
  SweepRunner sweep({4, 123});
  const auto results =
      sweep.run(100, [](std::size_t i, Rng&) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 3);
}

TEST(SweepRunnerTest, TwoJobSweepBitIdenticalToSerial) {
  const auto task = [](std::size_t i, Rng& rng) {
    // Mix several draw kinds so any per-task stream divergence shows up.
    double acc = rng.uniform(-1.0, 1.0) + rng.gaussian(0.0, 2.0);
    for (int k = 0; k < static_cast<int>(i % 7); ++k) acc += rng.uniform(0.0, 1.0);
    return acc;
  };
  SweepRunner serial({1, 0xC0FFEE});
  SweepRunner parallel({2, 0xC0FFEE});
  const auto expected = serial.run(64, task);
  const auto actual = parallel.run(64, task);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Exact equality on purpose: the determinism contract is bit-identity.
    EXPECT_EQ(expected[i], actual[i]) << "index " << i;
  }
}

TEST(SweepRunnerTest, ChunkSizeNeverChangesResults) {
  const auto task = [](std::size_t i, Rng& rng) {
    return rng.uniform(0.0, 1.0) + static_cast<double>(i);
  };
  SweepRunner serial({1, 0xABCDEF});
  const auto expected = serial.run(97, task);  // prime count: ragged chunks
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{32},
                            std::size_t{97}, std::size_t{1000}}) {
    SweepOptions options{3, 0xABCDEF};
    options.chunk = chunk;
    const auto actual = SweepRunner(options).run(97, task);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(expected[i], actual[i]) << "chunk " << chunk << " index " << i;
  }
}

TEST(SweepRunnerTest, WorkspaceIsReusedWithinAWorkerAndResultsStayOrdered) {
  struct CountingWorkspace {
    int uses = 0;
  };
  const auto count_use = [](std::size_t, Rng&, CountingWorkspace& workspace) {
    return ++workspace.uses;  // how many indices THIS workspace has served
  };
  // Serial: one workspace serves every index, so the counter must climb
  // 1..50 — a regression to a fresh workspace per index would return
  // all-ones here.
  SweepRunner serial({1, 7});
  const auto serial_uses = serial.run_with_workspace<CountingWorkspace>(50, count_use);
  ASSERT_EQ(serial_uses.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(serial_uses[static_cast<std::size_t>(i)], i + 1);
  // Parallel with a pinned chunk size: one workspace per CHUNK, so the
  // counter restarts at each chunk boundary and climbs within it.
  SweepOptions options{2, 7};
  options.chunk = 10;
  const auto chunked_uses =
      SweepRunner(options).run_with_workspace<CountingWorkspace>(50, count_use);
  ASSERT_EQ(chunked_uses.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(chunked_uses[static_cast<std::size_t>(i)], i % 10 + 1) << "index " << i;
}

TEST(ShardRangeTest, BlocksTileTheRangeExactly) {
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{100}, std::size_t{101}}) {
    for (std::size_t shards = 1; shards <= 5; ++shards) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (std::size_t i = 0; i < shards; ++i) {
        const auto range = shard_range(count, i, shards);
        EXPECT_EQ(range.begin, previous_end) << count << "/" << shards << " shard " << i;
        EXPECT_LE(range.begin, range.end);
        covered += range.size();
        previous_end = range.end;
      }
      EXPECT_EQ(previous_end, count);
      EXPECT_EQ(covered, count);
    }
  }
  EXPECT_THROW(shard_range(10, 2, 2), cps::Error);
  EXPECT_THROW(shard_range(10, 0, 0), cps::Error);
}

TEST(SweepRunnerTest, ShardsReproduceTheUnshardedResultsBitForBit) {
  const auto task = [](std::size_t i, Rng& rng) {
    double acc = rng.gaussian(0.0, 1.0);
    for (int k = 0; k < static_cast<int>(i % 5); ++k) acc += rng.uniform(-1.0, 1.0);
    return acc;
  };
  const std::size_t count = 83;  // prime: uneven shard blocks
  SweepRunner unsharded({2, 0xFEED});
  const auto expected = unsharded.run(count, task);
  for (std::size_t shards : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    std::vector<double> stitched;
    for (std::size_t i = 0; i < shards; ++i) {
      SweepOptions options{2, 0xFEED};
      options.shard_index = i;
      options.shard_count = shards;
      SweepRunner runner(options);
      EXPECT_EQ(runner.range(count).begin, stitched.size());
      const auto block = runner.run(count, task);
      stitched.insert(stitched.end(), block.begin(), block.end());
    }
    ASSERT_EQ(stitched.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(expected[i], stitched[i]) << shards << " shards, index " << i;
  }
}

TEST(SweepRunnerTest, PropagatesTaskExceptions) {
  SweepRunner sweep({2, 9});
  EXPECT_THROW(sweep.run(8,
                         [](std::size_t i, Rng&) -> int {
                           if (i == 5) throw std::runtime_error("boom");
                           return 0;
                         }),
               std::runtime_error);
}

TEST(SharedIncumbentTest, ImproveIsAMonotoneMinimum) {
  SharedIncumbent incumbent(10);
  EXPECT_EQ(incumbent.load(), 10u);
  EXPECT_TRUE(incumbent.improve(7));
  EXPECT_FALSE(incumbent.improve(7));   // equal: no improvement
  EXPECT_FALSE(incumbent.improve(12));  // worse: never goes back up
  EXPECT_EQ(incumbent.load(), 7u);
  EXPECT_TRUE(incumbent.improve(2));
  EXPECT_EQ(incumbent.load(), 2u);
}

TEST(ParallelSearchTest, MapReturnsResultsInTaskIndexOrder) {
  ParallelSearch search({4});
  const auto results = search.map(23, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 23u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelSearchTest, SharedIncumbentReachesTheGlobalMinimumAtAnyJobCount) {
  // Tasks race to lower the incumbent; the final minimum must be the
  // true minimum regardless of the worker count or schedule.
  for (const int jobs : {1, 2, 8}) {
    SharedIncumbent incumbent(1000);
    ParallelSearch search({jobs});
    search.map(64, [&](std::size_t i) {
      incumbent.improve(900 - (i * 13) % 700);
      return 0;
    });
    std::uint64_t expected = 1000;
    for (std::size_t i = 0; i < 64; ++i)
      expected = std::min(expected, 900 - (i * 13) % 700);
    EXPECT_EQ(incumbent.load(), expected) << jobs << " jobs";
  }
}

TEST(ParallelSearchTest, MapPropagatesTaskExceptions) {
  ParallelSearch search({2});
  EXPECT_THROW(search.map(16,
                          [](std::size_t i) -> int {
                            if (i == 11) throw std::runtime_error("subtree boom");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(ParallelSearchTest, MapTimedRecordsOneDurationPerTask) {
  ParallelSearch search({8});  // map_timed is inline regardless of jobs
  std::vector<double> seconds;
  std::vector<std::size_t> order;
  search.map_timed(
      5,
      [&](std::size_t i) {
        order.push_back(i);
        return i;
      },
      seconds);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  ASSERT_EQ(seconds.size(), 5u);
  for (const double s : seconds) EXPECT_GE(s, 0.0);
}

TEST(ParallelSearchTest, ListScheduleMakespanMatchesHandComputedSchedules) {
  // Greedy earliest-free-worker schedule: {4,3,2,1} on 2 workers ->
  // worker A: 4+1, worker B: 3+2 -> makespan 5.
  EXPECT_DOUBLE_EQ(ParallelSearch::list_schedule_makespan({4, 3, 2, 1}, 2), 5.0);
  // One worker: the serial sum.
  EXPECT_DOUBLE_EQ(ParallelSearch::list_schedule_makespan({4, 3, 2, 1}, 1), 10.0);
  // More workers than tasks: the longest task.
  EXPECT_DOUBLE_EQ(ParallelSearch::list_schedule_makespan({4, 3, 2, 1}, 8), 4.0);
  // Empty task list: zero.
  EXPECT_DOUBLE_EQ(ParallelSearch::list_schedule_makespan({}, 4), 0.0);
  EXPECT_THROW(ParallelSearch::list_schedule_makespan({1.0}, 0), InvalidArgument);
}

TEST(ExperimentRegistryTest, RegistersFindsAndRejectsDuplicates) {
  ExperimentRegistry registry;
  registry.add(Experiment("demo", "a demo experiment", [](ExperimentContext&) {}));
  ASSERT_NE(registry.find("demo"), nullptr);
  EXPECT_EQ(registry.find("demo")->description(), "a demo experiment");
  EXPECT_EQ(registry.find("absent"), nullptr);
  EXPECT_THROW(registry.add(Experiment("demo", "again", [](ExperimentContext&) {})),
               cps::Error);
}

TEST(ExperimentRegistryTest, ListIsSortedByName) {
  ExperimentRegistry registry;
  for (const char* name : {"zeta", "alpha", "mid"})
    registry.add(Experiment(name, "d", [](ExperimentContext&) {}));
  const auto listed = registry.list();
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0]->name(), "alpha");
  EXPECT_EQ(listed[1]->name(), "mid");
  EXPECT_EQ(listed[2]->name(), "zeta");
}

TEST(ExperimentRegistryTest, ExperimentRunReceivesContext) {
  ExperimentRegistry registry;
  int seen_jobs = 0;
  registry.add(Experiment("probe", "records ctx",
                          [&seen_jobs](ExperimentContext& ctx) { seen_jobs = ctx.jobs; }));
  ExperimentContext context;
  context.jobs = 5;
  registry.find("probe")->run(context);
  EXPECT_EQ(seen_jobs, 5);
}

TEST(ExperimentContextTest, CsvPathJoinsDirectory) {
  ExperimentContext context;
  EXPECT_EQ(context.csv_path("a.csv"), "a.csv");
  context.csv_dir = "out";
  EXPECT_EQ(context.csv_path("a.csv"), "out/a.csv");
  context.csv_dir = "out/";
  EXPECT_EQ(context.csv_path("a.csv"), "out/a.csv");
}

TEST(ExperimentContextTest, ArtifactPathCarriesTheShardSuffix) {
  ExperimentContext context;
  context.csv_dir = "out";
  EXPECT_FALSE(context.sharded());
  EXPECT_EQ(context.artifact_path("a.csv"), "out/a.csv");  // canonical when unsharded
  context.shard_index = 1;
  context.shard_count = 4;
  EXPECT_TRUE(context.sharded());
  EXPECT_EQ(context.artifact_path("a.csv"), "out/a.csv.shard1of4");
}

TEST(ExperimentTest, SweepArtifactsMakeAnExperimentShardable) {
  const Experiment plain("plain", "d", [](ExperimentContext&) {});
  EXPECT_FALSE(plain.shardable());
  const Experiment sweep("sweep", "d", [](ExperimentContext&) {}, {"sweep.csv"});
  EXPECT_TRUE(sweep.shardable());
  ASSERT_EQ(sweep.sweep_artifacts().size(), 1u);
  EXPECT_EQ(sweep.sweep_artifacts()[0], "sweep.csv");
}

// ---------------------------------------------------------------------------
// Shard-CSV merge invariants

struct MergeFixture : public ::testing::Test {
  void SetUp() override {
    dir = (std::filesystem::temp_directory_path() /
           ("cps-merge-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++)))
              .string();
    std::filesystem::create_directories(dir);
    canonical = dir + "/sweep.csv";
  }
  void TearDown() override {
    std::error_code error;
    std::filesystem::remove_all(dir, error);
  }
  void write_shard(std::size_t index, std::size_t count, const std::string& header,
                   const std::vector<std::size_t>& rows, std::uint64_t seed = 0x5EED) {
    {
      std::ofstream out(canonical + shard_suffix(index, count));
      out << header << '\n';
      for (auto row : rows) out << row << ",value" << row << '\n';
    }  // closed before the sidecar stamp reads the file back
    write_shard_meta(canonical + shard_suffix(index, count), seed, index, count);
  }
  std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    return content;
  }
  static std::atomic<int> counter;
  std::string dir;
  std::string canonical;
};
std::atomic<int> MergeFixture::counter{0};

TEST_F(MergeFixture, ConcatenatesContiguousShardsInOrder) {
  write_shard(0, 2, "index,v", {0, 1, 2});
  write_shard(1, 2, "index,v", {3, 4});
  EXPECT_EQ(merge_sweep_csv(canonical, 2), 5u);
  EXPECT_EQ(read_file(canonical),
            "index,v\n0,value0\n1,value1\n2,value2\n3,value3\n4,value4\n");
}

TEST_F(MergeFixture, MissingShardFileFailsLoudly) {
  write_shard(0, 2, "index,v", {0, 1});
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);  // shard 1 absent
}

TEST_F(MergeFixture, GapBetweenShardsFailsLoudly) {
  write_shard(0, 2, "index,v", {0, 1});
  write_shard(1, 2, "index,v", {3, 4});  // index 2 missing
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, OverlappingShardsFailLoudly) {
  write_shard(0, 2, "index,v", {0, 1, 2});
  write_shard(1, 2, "index,v", {2, 3});  // index 2 twice
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, HeaderMismatchFailsLoudly) {
  write_shard(0, 2, "index,v", {0, 1});
  write_shard(1, 2, "index,other", {2, 3});
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, NonNumericIndexColumnFailsLoudly) {
  write_shard(0, 2, "index,v", {0});
  {
    std::ofstream out(canonical + shard_suffix(1, 2));
    out << "index,v\nnot-a-number,value\n";
  }
  write_shard_meta(canonical + shard_suffix(1, 2), 0x5EED, 1, 2);
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, MixedCampaignSeedsFailLoudly) {
  // Structurally perfect partials (contiguous indices, matching headers)
  // from two DIFFERENT campaigns: only the provenance sidecar can tell,
  // and it must refuse.
  write_shard(0, 2, "index,v", {0, 1}, /*seed=*/0xAAAA);
  write_shard(1, 2, "index,v", {2, 3}, /*seed=*/0xBBBB);
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, MissingSidecarFailsLoudly) {
  write_shard(0, 2, "index,v", {0, 1});
  {
    std::ofstream out(canonical + shard_suffix(1, 2));
    out << "index,v\n2,value2\n";  // CSV present, .meta absent
  }
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, SidecarClaimingWrongSlotFailsLoudly) {
  write_shard(0, 2, "index,v", {0, 1});
  write_shard(1, 2, "index,v", {2, 3});
  // Simulate a renamed partial: shard 1's sidecar claims slot 0.
  write_shard_meta(canonical + shard_suffix(1, 2), 0x5EED, 0, 2);
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

TEST_F(MergeFixture, OneErrorReportsEveryBrokenShard) {
  // Three distinct problems in one campaign: shard 0 is missing, shard
  // 2's sidecar is gone.  The single error must name BOTH so one failed
  // merge diagnoses the whole campaign instead of forcing serial
  // rediscovery.
  write_shard(1, 3, "index,v", {2, 3});
  {
    std::ofstream out(canonical + shard_suffix(2, 3));
    out << "index,v\n4,value4\n";  // CSV present, .meta absent
  }
  try {
    merge_sweep_csv(canonical, 3);
    FAIL() << "merge of a broken campaign must throw";
  } catch (const cps::Error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("shard 0/3"), std::string::npos) << message;
    EXPECT_NE(message.find("shard 2/3"), std::string::npos) << message;
    EXPECT_NE(message.find("missing sidecar"), std::string::npos) << message;
  }
}

TEST_F(MergeFixture, TruncatedSidecarIsRefusedAsInterruptedPublication) {
  // A sidecar that lost its tail (e.g. a pre-atomic-publication crash)
  // must be refused even though the CSV itself is fine.
  write_shard(0, 2, "index,v", {0, 1});
  write_shard(1, 2, "index,v", {2, 3});
  {
    std::ofstream out(canonical + shard_suffix(1, 2) + ".meta", std::ios::trunc);
    out << "seed=0x0000000000005eed\n";  // shard= and rows= lines lost
  }
  try {
    merge_sweep_csv(canonical, 2);
    FAIL() << "a truncated sidecar must be refused";
  } catch (const cps::Error& error) {
    EXPECT_NE(std::string(error.what()).find("truncated sidecar"), std::string::npos)
        << error.what();
  }
}

TEST_F(MergeFixture, PartialMergePublishesWhatLandedAndReportsTheRest) {
  write_shard(0, 3, "index,v", {0, 1});
  write_shard(2, 3, "index,v", {4, 5});  // shard 1 (indices 2..3) never landed
  const auto report = cps::runtime::merge_sweep_csv_partial(canonical, 3);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.rows_merged, 4u);
  ASSERT_EQ(report.merged_shards.size(), 2u);
  EXPECT_EQ(report.merged_shards[0], 0u);
  EXPECT_EQ(report.merged_shards[1], 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].shard, 1u);
  // The published partial holds exactly the landed rows, in index order.
  EXPECT_EQ(read_file(canonical), "index,v\n0,value0\n1,value1\n4,value4\n5,value5\n");
  // And the coverage arithmetic pinpoints the hole.
  const auto missing = report.missing_ranges();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].begin, 2u);
  EXPECT_EQ(missing[0].end, 4u);
  EXPECT_FALSE(missing[0].open_ended);
}

TEST_F(MergeFixture, PartialMergeMissingFinalShardIsOpenEnded) {
  write_shard(0, 2, "index,v", {0, 1, 2});
  const auto report = cps::runtime::merge_sweep_csv_partial(canonical, 2);
  const auto missing = report.missing_ranges();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].begin, 3u);
  EXPECT_TRUE(missing[0].open_ended);  // total sweep size is unknowable
}

TEST_F(MergeFixture, PartialMergeWithNothingLandedPublishesNothing) {
  const auto report = cps::runtime::merge_sweep_csv_partial(canonical, 2);
  EXPECT_EQ(report.rows_merged, 0u);
  EXPECT_TRUE(report.merged_shards.empty());
  EXPECT_EQ(report.failures.size(), 2u);
  EXPECT_FALSE(std::filesystem::exists(canonical));
}

TEST_F(MergeFixture, ShardArtifactLandedVerifiesSeedAndIntegrity) {
  using cps::runtime::shard_artifact_landed;
  write_shard(0, 2, "index,v", {0, 1}, /*seed=*/0xCAFE);
  EXPECT_TRUE(shard_artifact_landed(canonical, 0, 2, 0xCAFE));
  EXPECT_FALSE(shard_artifact_landed(canonical, 0, 2, 0xBEEF));  // stale campaign
  EXPECT_FALSE(shard_artifact_landed(canonical, 1, 2, 0xCAFE));  // never written
  // Truncate the CSV below the sidecar's row count: no longer landed.
  {
    std::ofstream out(canonical + shard_suffix(0, 2), std::ios::trunc);
    out << "index,v\n0,value0\n";
  }
  EXPECT_FALSE(shard_artifact_landed(canonical, 0, 2, 0xCAFE));
}

TEST_F(MergeFixture, TruncatedFinalShardFailsLoudly) {
  // Losing the TAIL of the LAST shard keeps the index column contiguous
  // (any prefix is), so only the sidecar's recorded row count can catch
  // it — e.g. an interrupted copy from a shard machine.
  write_shard(0, 2, "index,v", {0, 1});
  write_shard(1, 2, "index,v", {2, 3, 4});  // sidecar records 3 rows
  {
    std::ofstream out(canonical + shard_suffix(1, 2), std::ios::trunc);
    out << "index,v\n2,value2\n";  // tail rows 3, 4 lost in transit
  }
  EXPECT_THROW(merge_sweep_csv(canonical, 2), cps::Error);
}

// The global registry, populated by the CPS_EXPERIMENT registrars linked
// into this binary (src/experiments/).
TEST(ExperimentCatalogTest, AllPaperExperimentsRegistered) {
  auto& registry = ExperimentRegistry::instance();
  EXPECT_GE(registry.size(), 10u);
  for (const char* name :
       {"fig3", "fig4", "fig5", "table1", "table_alloc", "ablation_allocator",
        "ablation_bounds", "ablation_envelope", "ablation_jitter", "sweep_alloc"}) {
    EXPECT_NE(registry.find(name), nullptr) << "missing experiment: " << name;
  }
}

}  // namespace
