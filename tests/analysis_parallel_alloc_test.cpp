// Tests for the parallel exact slot allocator (the PR-5 search layers):
// permutation invariance of the proven optimum, exact_jobs determinism
// (j1 vs j8 byte-identical Allocation), symmetry breaking on
// interchangeable applications, the conflict-screen model helpers, and
// the strong-scaling profile's consistency with the real search.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "analysis/dwell_wait_model.hpp"
#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void expect_same_allocation(const Allocation& a, const Allocation& b) {
  ASSERT_EQ(a.slot_count(), b.slot_count());
  EXPECT_EQ(a.slots, b.slots);  // same apps, same slots, same order
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  for (std::size_t s = 0; s < a.analyses.size(); ++s) {
    ASSERT_EQ(a.analyses[s].results.size(), b.analyses[s].results.size());
    for (std::size_t i = 0; i < a.analyses[s].results.size(); ++i) {
      EXPECT_EQ(a.analyses[s].results[i].name, b.analyses[s].results[i].name);
      EXPECT_EQ(a.analyses[s].results[i].max_wait, b.analyses[s].results[i].max_wait);
      EXPECT_EQ(a.analyses[s].results[i].response, b.analyses[s].results[i].response);
    }
  }
}

TEST(ParallelAllocTest, OptimumInvariantUnderInputPermutations) {
  // The exact optimum is a property of the application SET; shuffling the
  // input vector must not change it (n <= 12 so the frozen reference
  // stays tractable as the anchor).
  Rng rng(0x9E12137AULL);
  std::mt19937_64 shuffler(0xC0FFEEULL);
  int checked = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 5 + trial % 8;  // sizes 5..12
    auto set =
        experiments::random_sched_params(rng, n, experiments::allocator_ablation_ranges());
    try {
      const Allocation baseline = optimal_allocate(set);
      ASSERT_EQ(baseline.slot_count(), optimal_allocate_reference(set).slot_count());
      for (int perm = 0; perm < 4; ++perm) {
        std::shuffle(set.begin(), set.end(), shuffler);
        const Allocation shuffled = optimal_allocate(set);
        // Priorities (deadlines) are continuous draws, so the stable
        // priority sort reproduces one canonical order from any input
        // permutation — the whole Allocation must match, not just the
        // count.
        expect_same_allocation(shuffled, baseline);
      }
      ++checked;
    } catch (const InfeasibleError&) {
      EXPECT_THROW(optimal_allocate_reference(set), InfeasibleError);
    }
  }
  EXPECT_GE(checked, 12);
}

TEST(ParallelAllocTest, AllocationIdenticalAtEveryJobCount) {
  // The ParallelSearch determinism contract: byte-identical Allocation
  // for exact_jobs in {1, 2, 4, 8}, including on instances large enough
  // that the fan-out actually runs (n >= 14) — the same shared proving
  // instances the sweep_alloc_parallel experiment and the
  // alloc_parallel bench use (the n = 20 one is left to the bench).
  for (const auto& inst : experiments::alloc_proving_instances()) {
    if (inst.n >= 20) continue;
    const auto set = experiments::alloc_proving_params(inst);
    AllocationOptions options;
    options.exact_jobs = 1;
    const Allocation sequential = optimal_allocate(set, options);
    for (const int jobs : {2, 4, 8}) {
      options.exact_jobs = jobs;
      expect_same_allocation(optimal_allocate(set, options), sequential);
    }
  }
}

TEST(ParallelAllocTest, InterchangeableApplicationsMatchReference) {
  // Clones of one application (same model object, same r/deadline) are
  // the symmetry-breaking fast path; the proven partition must still be
  // exactly the reference's canonical-first witness.
  Rng rng(0x7711A5EDULL);
  for (int trial = 0; trial < 10; ++trial) {
    auto set =
        experiments::random_sched_params(rng, 5, experiments::allocator_ablation_ranges());
    // Triplicate one app (shared model pointer) and duplicate another
    // with an equal-parameter but DISTINCT model object.
    auto clone_a = set[1];
    clone_a.name = "A1-clone";
    set.push_back(clone_a);
    auto clone_b = set[1];
    clone_b.name = "A1-clone2";
    set.push_back(clone_b);
    auto clone_c = set[3];
    clone_c.name = "A3-clone";
    const auto* tent = dynamic_cast<const NonMonotonicModel*>(set[3].model.get());
    ASSERT_NE(tent, nullptr);
    clone_c.model = std::make_shared<NonMonotonicModel>(tent->xi_tt(), tent->xi_m(),
                                                        tent->k_p(), tent->zero_wait());
    set.push_back(clone_c);
    try {
      expect_same_allocation(optimal_allocate(set), optimal_allocate_reference(set));
    } catch (const InfeasibleError&) {
      EXPECT_THROW(optimal_allocate_reference(set), InfeasibleError);
    }
  }
}

TEST(ParallelAllocTest, InterleavedTwinsWithSharedDeadlinesMatchReference) {
  // Regression guard for the symmetry screen's adjacency requirement:
  // identical twins SEPARATED by a distinct application with the same
  // deadline.  Swapping non-adjacent twins changes intra-slot priority
  // structure (the middle app can sit above one twin and below the
  // other), so a twin rule applied across the gap could prune every
  // optimal partition; the allocator must only pair adjacent twins and
  // keep matching the reference exactly.
  Rng rng(0xAD7ACE17ULL);
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto set =
        experiments::random_sched_params(rng, 6, experiments::allocator_ablation_ranges());
    // Twin of set[0] and a distinct same-deadline app between them (the
    // stable priority sort keeps the insertion order for equal
    // deadlines, so the final order is: set[0], middle, twin).
    auto middle = set[1];
    middle.name = "M";
    middle.deadline = set[0].deadline;
    auto twin = set[0];
    twin.name = "T";
    set.push_back(middle);
    set.push_back(twin);
    try {
      expect_same_allocation(optimal_allocate(set), optimal_allocate_reference(set));
      ++checked;
    } catch (const InfeasibleError&) {
      EXPECT_THROW(optimal_allocate_reference(set), InfeasibleError);
    }
  }
  EXPECT_GE(checked, 15);
}

/// A small synthetic dwell/wait curve with a genuine tent shape, for the
/// concave-envelope model checks.
sim::DwellWaitCurve synthetic_curve(double peak) {
  std::vector<sim::DwellWaitPoint> points;
  const double h = 0.5;
  const double dwells[] = {1.0, 2.0, peak, 2.5, 1.2, 0.8, 0.3, 0.1};
  for (std::size_t i = 0; i < 8; ++i) {
    sim::DwellWaitPoint p;
    p.wait_steps = i;
    p.wait_s = static_cast<double>(i) * h;
    p.dwell_s = dwells[i];
    p.dwell_steps = static_cast<std::size_t>(dwells[i] / h);
    points.push_back(p);
  }
  return sim::DwellWaitCurve(h, std::move(points));
}

TEST(ParallelAllocTest, MinResponseFromIsASoundLowerBound) {
  // The conflict screen leans on min_response_from being a true infimum
  // of response over [wait, inf); check it against dense sampling for
  // every model family the allocator sees.
  const NonMonotonicModel tent(1.0, 3.0, 2.0, 9.0);
  const ConservativeMonotonicModel mono(4.0, 9.0);
  const SimpleMonotonicModel simple(1.0, 9.0);
  const auto curve = synthetic_curve(3.0);
  const ConcaveEnvelopeModel concave(curve);
  const std::vector<const DwellWaitModel*> models = {&tent, &mono, &simple, &concave};
  for (const auto* model : models) {
    for (double wait = 0.0; wait < 12.0; wait += 0.37) {
      const double bound = model->min_response_from(wait);
      double sampled = 1e100;
      for (double w = wait; w < 20.0; w += 0.001)
        sampled = std::min(sampled, model->response(w));
      EXPECT_LE(bound, sampled + 1e-9) << model->name() << " at wait " << wait;
      // The bound must also be nontrivial: never below `wait` itself.
      EXPECT_GE(bound, wait);
    }
  }
}

TEST(ParallelAllocTest, SameCurveDistinguishesParameters) {
  const auto a = std::make_shared<NonMonotonicModel>(1.0, 3.0, 2.0, 9.0);
  const auto b = std::make_shared<NonMonotonicModel>(1.0, 3.0, 2.0, 9.0);
  const auto c = std::make_shared<NonMonotonicModel>(1.0, 3.5, 2.0, 9.0);
  const auto mono = std::make_shared<ConservativeMonotonicModel>(3.0, 9.0);
  EXPECT_TRUE(a->same_curve(*a));
  EXPECT_TRUE(a->same_curve(*b));  // equal parameters, distinct objects
  EXPECT_FALSE(a->same_curve(*c));
  EXPECT_FALSE(a->same_curve(*mono));  // different family

  const ConcaveEnvelopeModel hull_a(synthetic_curve(3.0));
  const ConcaveEnvelopeModel hull_b(synthetic_curve(3.0));
  const ConcaveEnvelopeModel hull_c(synthetic_curve(3.25));
  EXPECT_TRUE(hull_a.same_curve(hull_b));   // identical hulls, distinct objects
  EXPECT_FALSE(hull_a.same_curve(hull_c));  // different peak vertex
  EXPECT_FALSE(hull_a.same_curve(*a));      // different family
}

TEST(ParallelAllocTest, ProfileAgreesWithTheRealSearch) {
  Rng rng(0x5EED6619ULL);
  const auto set =
      experiments::random_sched_params(rng, 18, experiments::allocator_ablation_ranges());
  const Allocation alloc = optimal_allocate(set);
  const ExactSearchProfile profile = profile_exact_search(set);
  EXPECT_EQ(profile.n, 18u);
  EXPECT_EQ(profile.optimal_slots, alloc.slot_count());
  EXPECT_GE(profile.seed_slots, profile.optimal_slots);
  EXPECT_LE(profile.root_lower_bound, profile.optimal_slots);
  ASSERT_FALSE(profile.task_seconds.empty());
  // Makespans are monotone in the worker count and bounded by the serial
  // sum.
  const double cp1 = profile.critical_path_seconds(1);
  const double cp4 = profile.critical_path_seconds(4);
  const double cp8 = profile.critical_path_seconds(8);
  EXPECT_GE(cp1, cp4);
  EXPECT_GE(cp4, cp8);
  EXPECT_GE(cp8, profile.setup_seconds + profile.witness_seconds);
}

TEST(ParallelAllocTest, RaisedDefaultCapProvesTwentyApplications) {
  // The headline contract: a 20-application fleet's exact optimum under
  // the DEFAULT cap (no explicit max_apps_for_exact), with the first-fit
  // seed strictly improved — so the search genuinely proved something.
  Rng rng(0x5EED860DULL);
  const auto set =
      experiments::random_sched_params(rng, 20, experiments::allocator_ablation_ranges());
  const std::size_t ff = first_fit_allocate(set).slot_count();
  const Allocation exact = optimal_allocate(set);
  EXPECT_LT(exact.slot_count(), ff);
  for (const auto& analysis : exact.analyses) EXPECT_TRUE(analysis.all_schedulable);
}

}  // namespace
