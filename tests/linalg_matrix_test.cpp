// Unit tests for Matrix and Vector: construction, arithmetic, norms,
// block operations and dimension checking.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/error.hpp"

namespace {

using cps::DimensionMismatch;
using cps::linalg::Matrix;
using cps::linalg::Vector;

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), DimensionMismatch);
}

TEST(MatrixTest, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), DimensionMismatch);
  EXPECT_THROW(m(0, 2), DimensionMismatch);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
  const Matrix d = Matrix::diagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, ArithmeticBasics) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix neg = -a;
  EXPECT_DOUBLE_EQ(neg(0, 0), -1.0);
  EXPECT_DOUBLE_EQ((2.0 * a)(0, 1), 4.0);
  EXPECT_DOUBLE_EQ((a / 2.0)(0, 1), 1.0);
}

TEST(MatrixTest, ProductMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(MatrixTest, ProductDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, DimensionMismatch);
  EXPECT_THROW(a + Matrix(3, 2), DimensionMismatch);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  Matrix a{{1.5, -2.0, 0.25}, {0.0, 3.0, 1.0}, {4.0, 0.5, -1.0}};
  EXPECT_TRUE((a * Matrix::identity(3)).approx_equal(a, 1e-15));
  EXPECT_TRUE((Matrix::identity(3) * a).approx_equal(a, 1e-15));
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  EXPECT_TRUE(at.transpose().approx_equal(a, 0.0));
}

TEST(MatrixTest, PowMatchesRepeatedProduct) {
  Matrix a{{0.5, 0.2}, {0.1, 0.7}};
  const Matrix a3 = a.pow(3);
  EXPECT_TRUE(a3.approx_equal(a * a * a, 1e-14));
  EXPECT_TRUE(a.pow(0).approx_equal(Matrix::identity(2), 0.0));
  EXPECT_TRUE(a.pow(1).approx_equal(a, 0.0));
}

TEST(MatrixTest, TraceAndNorms) {
  Matrix a{{3.0, -4.0}, {0.0, 5.0}};
  EXPECT_DOUBLE_EQ(a.trace(), 8.0);
  EXPECT_DOUBLE_EQ(a.norm_frobenius(), std::sqrt(9.0 + 16.0 + 25.0));
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);  // row 0: 3 + 4
  EXPECT_DOUBLE_EQ(a.norm_one(), 9.0);  // col 1: 4 + 5
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

TEST(MatrixTest, BlockAndSetBlock) {
  Matrix a(3, 3);
  Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  a.set_block(1, 1, b);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 4.0);
  const Matrix back = a.block(1, 1, 2, 2);
  EXPECT_TRUE(back.approx_equal(b, 0.0));
  EXPECT_THROW(a.block(2, 2, 2, 2), DimensionMismatch);
  EXPECT_THROW(a.set_block(2, 2, b), DimensionMismatch);
}

TEST(MatrixTest, StackingRoundTrips) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0}, {4.0}};
  const Matrix h = Matrix::hstack(a, b);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
  const Matrix v = Matrix::vstack(a.transpose(), b.transpose());
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_DOUBLE_EQ(v(1, 0), 3.0);
  EXPECT_THROW(Matrix::hstack(a, Matrix(3, 1)), DimensionMismatch);
}

TEST(MatrixTest, AllFiniteDetectsNan) {
  Matrix a(2, 2, 1.0);
  EXPECT_TRUE(a.all_finite());
  a(0, 1) = std::nan("");
  EXPECT_FALSE(a.all_finite());
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{5.0, 6.0};
  const Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
  EXPECT_THROW(a * Vector{1.0}, DimensionMismatch);
}

TEST(VectorTest, BasicsAndNorms) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(v.dot(v), 25.0);
  EXPECT_DOUBLE_EQ((v + v)[0], 6.0);
  EXPECT_DOUBLE_EQ((v - v).norm(), 0.0);
  EXPECT_DOUBLE_EQ((v * 2.0)[1], 8.0);
  EXPECT_DOUBLE_EQ((2.0 * v)[1], 8.0);
  EXPECT_DOUBLE_EQ((-v)[0], -3.0);
}

TEST(VectorTest, UnitAndConcat) {
  const Vector e1 = Vector::unit(3, 1);
  EXPECT_DOUBLE_EQ(e1[1], 1.0);
  EXPECT_DOUBLE_EQ(e1.norm(), 1.0);
  const Vector c = Vector::concat(Vector{1.0, 2.0}, Vector{3.0});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_TRUE(c.head(2).approx_equal(Vector{1.0, 2.0}, 0.0));
  EXPECT_THROW(Vector::unit(2, 2), DimensionMismatch);
}

TEST(VectorTest, OuterProduct) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0, 5.0};
  const Matrix o = a.outer(b);
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(VectorTest, DimensionChecks) {
  Vector a{1.0};
  EXPECT_THROW((a + Vector{1.0, 2.0}), DimensionMismatch);
  EXPECT_THROW((void)a.dot(Vector{1.0, 2.0}), DimensionMismatch);
  EXPECT_THROW(a[5], DimensionMismatch);
}

TEST(MatrixTest, RowColExtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(a.row(0).approx_equal(Vector{1.0, 2.0}, 0.0));
  EXPECT_TRUE(a.col(1).approx_equal(Vector{2.0, 4.0}, 0.0));
}

}  // namespace
