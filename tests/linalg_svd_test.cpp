// Unit and property tests for the SVD (one-sided Jacobi) and the norms /
// condition numbers built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cps::NumericalError;
using cps::Rng;
using namespace cps::linalg;

TEST(SvdTest, DiagonalMatrixSingularValues) {
  const auto sigma = singular_values(Matrix::diagonal({3.0, -5.0, 1.0}));
  ASSERT_EQ(sigma.size(), 3u);
  EXPECT_NEAR(sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(sigma[2], 1.0, 1e-12);
}

TEST(SvdTest, OrthogonalMatrixHasUnitSpectrum) {
  const double theta = 0.83;
  Matrix rot{{std::cos(theta), -std::sin(theta)}, {std::sin(theta), std::cos(theta)}};
  for (double s : singular_values(rot)) EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_NEAR(norm_two(rot), 1.0, 1e-12);
  EXPECT_NEAR(condition_number(rot), 1.0, 1e-10);
}

TEST(SvdTest, ReconstructionProperty) {
  Rng rng(211);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-3, 3);
    const SvdResult result = svd(a);
    // A = U S V^T.
    Matrix s(result.sigma.size(), result.sigma.size());
    for (std::size_t i = 0; i < result.sigma.size(); ++i) s(i, i) = result.sigma[i];
    const Matrix reconstructed = result.u * s * result.v.transpose();
    EXPECT_TRUE(reconstructed.approx_equal(a, 1e-9))
        << "trial " << trial << " m=" << m << " n=" << n;
    // Singular values decreasing and non-negative.
    for (std::size_t i = 1; i < result.sigma.size(); ++i) {
      EXPECT_LE(result.sigma[i], result.sigma[i - 1] + 1e-12);
      EXPECT_GE(result.sigma[i], 0.0);
    }
  }
}

TEST(SvdTest, NormTwoBoundsAndConsistency) {
  Rng rng(223);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-2, 2);
    const double two = norm_two(a);
    // Standard norm inequalities: ||A||_2 <= ||A||_F and
    // ||A||_2 >= max_abs entry.
    EXPECT_LE(two, a.norm_frobenius() + 1e-12);
    EXPECT_GE(two + 1e-12, a.max_abs());
    // ||A x|| <= ||A||_2 ||x|| for random x.
    Vector x(3);
    for (std::size_t i = 0; i < 3; ++i) x[i] = rng.uniform(-1, 1);
    EXPECT_LE((a * x).norm(), two * x.norm() + 1e-9);
  }
}

TEST(SvdTest, ConditionNumberOfScaledIdentity) {
  EXPECT_NEAR(condition_number(Matrix::diagonal({10.0, 0.1})), 100.0, 1e-8);
}

TEST(SvdTest, SingularMatrixConditionThrows) {
  Matrix rank1{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(condition_number(rank1), NumericalError);
}

TEST(SvdTest, RankDeficientSingularValueIsZero) {
  Matrix rank1{{1.0, 2.0}, {2.0, 4.0}};
  const auto sigma = singular_values(rank1);
  EXPECT_NEAR(sigma[1], 0.0, 1e-10);
  EXPECT_NEAR(sigma[0], std::sqrt(25.0), 1e-10);  // Frobenius = sigma_0 here
}

TEST(SvdTest, WideMatrixHandledViaTranspose) {
  Matrix wide{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}};
  const auto sigma = singular_values(wide);
  ASSERT_EQ(sigma.size(), 2u);
  EXPECT_NEAR(sigma[0], 3.0, 1e-10);
  EXPECT_NEAR(sigma[1], std::sqrt(5.0), 1e-10);
}

TEST(SvdTest, AgreesWithDeterminantMagnitude) {
  // |det A| = product of singular values (square case).
  Rng rng(227);
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-2, 2);
  double prod = 1.0;
  for (double s : singular_values(a)) prod *= s;
  EXPECT_NEAR(prod, std::fabs(determinant(a)), 1e-8);
}

}  // namespace
