// serve/server.hpp end to end: in-process daemons on temp Unix sockets.
// Covers the robustness headline of the server — admission-control
// sheds, per-request deadlines (queued and mid-handler), the malformed-
// frame fuzz corpus, graceful drain, and the fork-based process-level
// checks (SIGTERM exit 0, CPS_CRASH_AT kill + warm restart on the same
// fixture store).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "runtime/fixture_cache.hpp"
#include "runtime/fixture_store.hpp"
#include "serve/client.hpp"
#include "serve/queries.hpp"
#include "util/serialize.hpp"

namespace {

using namespace cps::serve;

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/cps_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// In-process daemon on its own thread; drains on destruction.
class TestServer {
 public:
  explicit TestServer(ServeOptions options) {
    options_ = std::move(options);
    if (options_.socket_path.empty()) options_.socket_path = unique_socket_path();
    server_ = std::make_unique<Server>(options_);
    thread_ = std::thread([this] { server_->run(); });
    for (int i = 0; i < 500 && !server_->serving(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(server_->serving()) << "server did not come up";
  }

  ~TestServer() {
    if (thread_.joinable()) {
      server_->request_drain();
      thread_.join();
    }
  }

  void drain_and_join() {
    server_->request_drain();
    thread_.join();
  }

  const std::string& socket_path() const { return options_.socket_path; }
  Server& server() { return *server_; }

  QueryClient connect(int timeout_ms = 10000) const {
    ClientOptions options;
    options.socket_path = options_.socket_path;
    options.timeout_ms = timeout_ms;
    return QueryClient(std::move(options));
  }

 private:
  ServeOptions options_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

std::string encode_ping(const std::string& echo, std::uint64_t sleep_ms) {
  PingRequest ping{echo, sleep_ms};
  cps::util::BinaryWriter out;
  ping.encode(out);
  return out.take();
}

std::string encode_sched(std::uint64_t n_apps, double util, std::uint64_t seed) {
  SchedCheckRequest request;
  request.fleet.n_apps = n_apps;
  request.fleet.target_utilization = util;
  request.fleet.seed = seed;
  cps::util::BinaryWriter out;
  request.encode(out);
  return out.take();
}

/// Raw byte-level peer for the fuzz corpus (no client framing help).
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "raw connect to " << path;
  return fd;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

TEST(ServeServerTest, PingRoundTripsThroughTheSocket) {
  TestServer daemon{ServeOptions{}};
  auto client = daemon.connect();
  const auto reply = client.call(Opcode::kPing, encode_ping("over-the-wire", 0));
  ASSERT_EQ(reply.status(), Status::kOk);
  cps::util::BinaryReader in(reply.payload);
  EXPECT_EQ(PingRequest::decode(in).echo, "over-the-wire");
}

TEST(ServeServerTest, DaemonAnswersAreByteIdenticalToLocalDispatch) {
  TestServer daemon{ServeOptions{}};
  auto client = daemon.connect();
  const std::string request = encode_sched(8, 0.7, 42);

  const auto over_socket = client.call(Opcode::kSchedCheck, request);
  const auto local = dispatch(Opcode::kSchedCheck, request, QueryContext{});
  ASSERT_EQ(over_socket.status(), Status::kOk);
  ASSERT_EQ(local.status, Status::kOk);
  EXPECT_EQ(over_socket.payload, local.payload);  // byte-for-byte

  // And again: the second daemon answer comes from the resident cache
  // and must still be the identical bytes.
  const auto warm = client.call(Opcode::kSchedCheck, request);
  ASSERT_EQ(warm.status(), Status::kOk);
  EXPECT_EQ(warm.payload, over_socket.payload);
}

TEST(ServeServerTest, SaturationShedsWithExplicitOverloaded) {
  ServeOptions options;
  options.workers = 1;
  options.max_queue = 1;
  TestServer daemon{std::move(options)};

  // Occupy the single worker...
  auto busy = daemon.connect();
  std::thread busy_thread([&] {
    const auto reply = busy.call(Opcode::kPing, encode_ping("busy", 600));
    EXPECT_EQ(reply.status(), Status::kOk);
  });
  while (daemon.server().stats().requests_admitted.load() < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // let it start running

  // ...fill the queue with a second...
  auto queued = daemon.connect();
  std::thread queued_thread([&] {
    const auto reply = queued.call(Opcode::kPing, encode_ping("queued", 0));
    EXPECT_EQ(reply.status(), Status::kOk);
  });
  while (daemon.server().stats().requests_admitted.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // ...and the third must be shed, immediately and machine-readably.
  auto shed = daemon.connect();
  const auto reply = shed.call(Opcode::kPing, encode_ping("shed", 0));
  EXPECT_EQ(reply.status(), Status::kOverloaded);
  EXPECT_FALSE(decode_error_payload(reply.payload).empty());
  EXPECT_GE(daemon.server().stats().requests_shed.load(), 1u);

  busy_thread.join();
  queued_thread.join();
}

TEST(ServeServerTest, DeadlineCutsARunningHandlerWithinTwiceTheBudget) {
  TestServer daemon{ServeOptions{}};
  auto client = daemon.connect();
  const auto start = std::chrono::steady_clock::now();
  // 5 s of handler work against a 300 ms budget: the poll thread flips
  // the cancel flag at expiry and the sleep loop observes it within a
  // slice.
  const auto reply = client.call(Opcode::kPing, encode_ping("slow", 5000), 300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(reply.status(), Status::kDeadlineExceeded);
  EXPECT_LT(elapsed, 600) << "deadline overshot 2x the requested budget";
  EXPECT_GE(daemon.server().stats().deadline_expired.load(), 1u);
}

TEST(ServeServerTest, DeadlineTaggedExactAllocationDeadlinesOutWhileQueued) {
  ServeOptions options;
  options.workers = 1;
  TestServer daemon{std::move(options)};

  // Hold the single worker past the alloc request's deadline...
  auto busy = daemon.connect();
  std::thread busy_thread([&] {
    EXPECT_EQ(busy.call(Opcode::kPing, encode_ping("busy", 300)).status(), Status::kOk);
  });
  while (daemon.server().stats().requests_admitted.load() < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // ...so the deadline-tagged exact allocation expires in the queue and
  // is answered without the branch-and-bound ever starting.
  AllocateRequest request;
  request.fleet.n_apps = 16;
  request.fleet.target_utilization = 0.85;
  request.fleet.seed = 5;
  request.allocator = static_cast<std::uint64_t>(AllocatorKind::kExact);
  cps::util::BinaryWriter out;
  request.encode(out);
  auto client = daemon.connect();
  const auto start = std::chrono::steady_clock::now();
  const auto reply = client.call(Opcode::kAllocate, out.bytes(), 150);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(reply.status(), Status::kDeadlineExceeded);
  EXPECT_LT(elapsed, 400);  // bounded by the busy ping, well under any B&B
  busy_thread.join();
}

// Satellite: the malformed-frame fuzz corpus.  None of these may crash,
// hang, or poison the server for well-formed peers.
TEST(ServeServerTest, MalformedFramesNeverTakeTheServerDown) {
  TestServer daemon{ServeOptions{}};
  const std::string& path = daemon.socket_path();

  {  // truncated header, then disconnect
    const int fd = raw_connect(path);
    write_all(fd, std::string(10, '\x07'));
    ::close(fd);
  }
  {  // garbage that is not even a magic (long enough to parse as header)
    const int fd = raw_connect(path);
    write_all(fd, "GET /index.html HTTP/1.1\r\nHost: nope\r\n\r\n");
    ::close(fd);
  }
  {  // valid magic, oversized payload_size: must be dropped unread
    FrameHeader header;
    header.kind = static_cast<std::uint16_t>(Opcode::kPing);
    header.payload_size = kMaxPayloadBytes + 17;
    std::string bytes;
    encode_header(header, bytes);
    const int fd = raw_connect(path);
    write_all(fd, bytes);
    ::close(fd);
  }
  {  // wrong version: answered kBadRequest, connection survives
    FrameHeader header;
    header.version = kProtocolVersion + 3;
    header.kind = static_cast<std::uint16_t>(Opcode::kPing);
    const int fd = raw_connect(path);
    write_all(fd, encode_frame(header, ""));
    char buf[256];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GE(n, static_cast<ssize_t>(kHeaderSize));
    FrameHeader response;
    ASSERT_EQ(decode_header(std::string_view(buf, kHeaderSize), kMaxPayloadBytes,
                            response),
              HeaderError::kNone);
    EXPECT_EQ(static_cast<Status>(response.kind), Status::kBadRequest);
    ::close(fd);
  }
  {  // well-formed header, garbage payload: kBadRequest, no crash
    FrameHeader header;
    header.kind = static_cast<std::uint16_t>(Opcode::kAllocate);
    const int fd = raw_connect(path);
    write_all(fd, encode_frame(header, "\xff\xfe\xfd garbage"));
    char buf[4096];
    EXPECT_GT(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);
  }
  {  // mid-frame disconnect: header promises 100 bytes, 20 arrive
    FrameHeader header;
    header.kind = static_cast<std::uint16_t>(Opcode::kPing);
    header.payload_size = 100;
    std::string bytes;
    encode_header(header, bytes);
    bytes.append(20, 'x');
    const int fd = raw_connect(path);
    write_all(fd, bytes);
    ::close(fd);
  }

  // After the whole corpus, a well-formed peer still gets its answer.
  auto client = daemon.connect();
  const auto reply = client.call(Opcode::kPing, encode_ping("still-alive", 0));
  ASSERT_EQ(reply.status(), Status::kOk);
  cps::util::BinaryReader in(reply.payload);
  EXPECT_EQ(PingRequest::decode(in).echo, "still-alive");
  EXPECT_GE(daemon.server().stats().bad_frames.load(), 3u);
}

TEST(ServeServerTest, DrainFinishesInFlightAndRejectsNewRequests) {
  TestServer daemon{ServeOptions{}};
  auto inflight = daemon.connect();
  auto late = daemon.connect();  // connected BEFORE the drain begins

  std::thread inflight_thread([&] {
    const auto reply = inflight.call(Opcode::kPing, encode_ping("finish-me", 300));
    EXPECT_EQ(reply.status(), Status::kOk);  // drain completed it
  });
  while (daemon.server().stats().requests_admitted.load() < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  daemon.server().request_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // drain observed

  // A request on a pre-existing connection is rejected machine-readably.
  const auto rejected = late.call(Opcode::kPing, encode_ping("too-late", 0));
  EXPECT_EQ(rejected.status(), Status::kShuttingDown);

  inflight_thread.join();
  daemon.drain_and_join();

  // The socket is gone: new connections must fail.
  ClientOptions options;
  options.socket_path = daemon.socket_path();
  EXPECT_THROW(QueryClient{std::move(options)}, cps::Error);
}

// Process-level drain: a forked daemon receiving a real SIGTERM must
// exit 0 with no partial state (the signal handler only raises a flag;
// the poll loop runs the drain).
TEST(ServeServerTest, SigtermDrainsAndExitsZero) {
  const std::string socket_path = unique_socket_path();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: plain flag-raising handler, then serve until drained.
    static volatile std::sig_atomic_t drain = 0;
    std::signal(SIGTERM, [](int) { drain = 1; });
    ServeOptions options;
    options.socket_path = socket_path;
    options.drain_flag = &drain;
    Server server(std::move(options));
    server.run();
    ::_exit(0);
  }
  // Parent: wait until it serves, exercise it, then SIGTERM it.
  {
    bool up = false;
    for (int i = 0; i < 500 && !up; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      try {
        ClientOptions options;
        options.socket_path = socket_path;
        QueryClient client(std::move(options));
        up = client.call(Opcode::kPing, encode_ping("up?", 0)).ok();
      } catch (const cps::Error&) {
      }
    }
    ASSERT_TRUE(up) << "forked daemon never served";
  }
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0) << "socket not unlinked on drain";
}

// Crash-restart safety: a daemon SIGKILLed at the serve_ready crash
// site must leave its fixture store consumable by a restarted daemon,
// which then answers byte-identically to a cold local dispatch.
TEST(ServeServerTest, CrashAtServeReadyLeavesTheStoreConsumable) {
  const std::string store_dir =
      "/tmp/cps_srv_store_" + std::to_string(::getpid());
  ::mkdir(store_dir.c_str(), 0755);
  const std::string socket_path = unique_socket_path();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::setenv("CPS_CRASH_AT", "serve_ready", 1);
    cps::runtime::FixtureCache::instance().set_store(
        std::make_shared<cps::runtime::FixtureStore>(store_dir));
    // Warm the store first (the fleet draw the parent will re-ask for),
    // so the kill exercises "store written, daemon dead before ready".
    dispatch(Opcode::kSchedCheck, encode_sched(6, 0.55, 11), QueryContext{});
    ServeOptions options;
    options.socket_path = socket_path;
    Server server(std::move(options));
    server.run();       // SIGKILL fires inside (serve_ready)
    ::_exit(42);        // unreachable when the crash site armed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child was supposed to be SIGKILLed";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Restart against the same store (in-process this time) and compare
  // a daemon answer against the pure dispatcher: the crash must not
  // have corrupted anything the warm path consumes.
  cps::runtime::FixtureCache::instance().set_store(
      std::make_shared<cps::runtime::FixtureStore>(store_dir));
  TestServer daemon{ServeOptions{}};
  auto client = daemon.connect();
  const std::string request = encode_sched(6, 0.55, 11);
  const auto over_socket = client.call(Opcode::kSchedCheck, request);
  const auto local = dispatch(Opcode::kSchedCheck, request, QueryContext{});
  ASSERT_EQ(over_socket.status(), Status::kOk);
  ASSERT_EQ(local.status, Status::kOk);
  EXPECT_EQ(over_socket.payload, local.payload);
}

TEST(ServeServerTest, StatsReportTheLifecycleCounters) {
  TestServer daemon{ServeOptions{}};
  auto client = daemon.connect();
  ASSERT_TRUE(client.call(Opcode::kPing, encode_ping("count-me", 0)).ok());
  const auto reply = client.call(Opcode::kStats, "");
  ASSERT_EQ(reply.status(), Status::kOk);
  cps::util::BinaryReader in(reply.payload);
  const auto stats = StatsResponse::decode(in);
  bool saw_admitted = false;
  for (const auto& [name, value] : stats.counters)
    if (name == "requests_admitted") {
      saw_admitted = true;
      EXPECT_GE(value, 2u);  // the ping and this very stats request
    }
  EXPECT_TRUE(saw_admitted);
}

}  // namespace
