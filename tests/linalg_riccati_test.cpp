// Unit and property tests for the discrete Lyapunov and Riccati solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/lyapunov.hpp"
#include "linalg/matrix.hpp"
#include "linalg/riccati.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cps::NumericalError;
using cps::Rng;
using namespace cps::linalg;

Matrix random_stable(Rng& rng, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1, 1);
  const double rho = spectral_radius(m);
  return m * (0.8 / std::max(rho, 0.1));
}

Matrix random_spd(Rng& rng, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1, 1);
  return m * m.transpose() + Matrix::identity(n) * 0.1;
}

TEST(LyapunovTest, ScalarClosedForm) {
  // a^2 x - x + q = 0 -> x = q / (1 - a^2).
  const double a = 0.6, q = 2.0;
  const Matrix x = solve_discrete_lyapunov(Matrix{{a}}, Matrix{{q}});
  EXPECT_NEAR(x(0, 0), q / (1.0 - a * a), 1e-10);
}

TEST(LyapunovTest, ResidualVanishes) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const Matrix a = random_stable(rng, n);
    const Matrix q = random_spd(rng, n);
    const Matrix x = solve_discrete_lyapunov(a, q);
    const Matrix residual = a.transpose() * x * a - x + q;
    EXPECT_LT(residual.max_abs(), 1e-8) << "trial " << trial;
  }
}

TEST(LyapunovTest, SmithAndDirectAgree) {
  Rng rng(47);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const Matrix a = random_stable(rng, n);
    const Matrix q = random_spd(rng, n);
    const Matrix x1 = solve_discrete_lyapunov(a, q);
    const Matrix x2 = solve_discrete_lyapunov_direct(a, q);
    EXPECT_TRUE(x1.approx_equal(x2, 1e-7)) << "trial " << trial;
  }
}

TEST(LyapunovTest, SolutionIsPositiveSemidefiniteForPsdQ) {
  Rng rng(53);
  const Matrix a = random_stable(rng, 3);
  const Matrix q = random_spd(rng, 3);
  const Matrix x = solve_discrete_lyapunov(a, q);
  // Symmetric and positive diagonal; eigenvalues of X all positive.
  EXPECT_TRUE(x.approx_equal(x.transpose(), 1e-9));
  for (const auto& e : eigenvalues(x)) EXPECT_GT(e.real(), 0.0);
}

TEST(LyapunovTest, UnstableAThrowsInSmith) {
  EXPECT_THROW(solve_discrete_lyapunov(Matrix{{1.1}}, Matrix{{1.0}}), NumericalError);
}

TEST(LyapunovTest, DirectWorksForMildlyUnstableA) {
  // The Kronecker solve only needs 1 - a^2 != 0.
  const double a = 1.2, q = 1.0;
  const Matrix x = solve_discrete_lyapunov_direct(Matrix{{a}}, Matrix{{q}});
  EXPECT_NEAR(x(0, 0), q / (1.0 - a * a), 1e-10);
}

TEST(DareTest, ScalarClosedForm) {
  // Scalar DARE: x = a^2 x - a^2 b^2 x^2 / (r + b^2 x) + q.
  // With a = 1, b = 1, q = 1, r = 1 the stabilizing root satisfies
  // x^2 - x - 1 = 0 -> x = golden ratio.
  const auto result = solve_dare(Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{1.0}});
  EXPECT_NEAR(result.x(0, 0), (1.0 + std::sqrt(5.0)) / 2.0, 1e-9);
  EXPECT_LT(result.residual, 1e-9);
}

TEST(DareTest, SdaAndIterativeAgree) {
  Rng rng(59);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const Matrix a = random_stable(rng, n) * 1.2;  // mildly expansive is fine
    Matrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i) b(i, 0) = rng.uniform(0.2, 1.0);
    const Matrix q = random_spd(rng, n);
    const Matrix r = Matrix{{rng.uniform(0.1, 2.0)}};
    const auto sda = solve_dare(a, b, q, r);
    const auto it = solve_dare_iterative(a, b, q, r);
    EXPECT_TRUE(sda.x.approx_equal(it.x, 1e-6)) << "trial " << trial;
    EXPECT_LT(sda.residual, 1e-7);
  }
}

TEST(DareTest, GainStabilizesUnstablePlant) {
  // Discretized inverted-pendulum-like unstable plant.
  Matrix a{{1.1, 0.1}, {0.3, 1.05}};
  Matrix b{{0.0}, {0.5}};
  Matrix q = Matrix::identity(2);
  Matrix r{{1.0}};
  const auto result = solve_dare(a, b, q, r);
  const Matrix k = lqr_gain_from_dare(a, b, r, result.x);
  EXPECT_TRUE(is_schur_stable(a - b * k, 0.0));
}

TEST(DareTest, SolutionIsSymmetricPsd) {
  Rng rng(61);
  const Matrix a = random_stable(rng, 3);
  Matrix b(3, 1);
  for (std::size_t i = 0; i < 3; ++i) b(i, 0) = rng.uniform(0.1, 1.0);
  const auto result = solve_dare(a, b, random_spd(rng, 3), Matrix{{0.5}});
  EXPECT_TRUE(result.x.approx_equal(result.x.transpose(), 1e-9));
  for (const auto& e : eigenvalues(result.x)) EXPECT_GE(e.real(), -1e-9);
}

TEST(DareTest, ZeroQGivesMinimumEnergyMirror) {
  // With Q -> 0 the LQR merely mirrors the unstable pole: |closed-loop
  // pole| ~ 1 / |open-loop pole| for scalar systems.
  const double a = 1.5;
  const auto result = solve_dare(Matrix{{a}}, Matrix{{1.0}}, Matrix{{1e-12}}, Matrix{{1.0}});
  const Matrix k = lqr_gain_from_dare(Matrix{{a}}, Matrix{{1.0}}, Matrix{{1.0}}, result.x);
  EXPECT_NEAR(a - k(0, 0), 1.0 / a, 1e-4);
}

TEST(DareTest, DimensionValidation) {
  EXPECT_THROW(solve_dare(Matrix(2, 3), Matrix(2, 1), Matrix(2, 2), Matrix{{1.0}}),
               cps::DimensionMismatch);
  EXPECT_THROW(solve_dare(Matrix::identity(2), Matrix(3, 1), Matrix::identity(2), Matrix{{1.0}}),
               cps::DimensionMismatch);
  // Asymmetric Q rejected.
  Matrix q{{1.0, 0.5}, {0.0, 1.0}};
  EXPECT_THROW(solve_dare(Matrix::identity(2), Matrix{{0.0}, {1.0}}, q, Matrix{{1.0}}),
               cps::InvalidArgument);
}

TEST(DareTest, ResidualFunctionIsZeroAtSolution) {
  Matrix a{{0.9, 0.2}, {0.0, 0.8}};
  Matrix b{{0.0}, {1.0}};
  Matrix q = Matrix::identity(2);
  Matrix r{{1.0}};
  const auto result = solve_dare(a, b, q, r);
  EXPECT_LT(dare_residual(a, b, q, r, result.x), 1e-9);
  // And clearly nonzero away from it.
  EXPECT_GT(dare_residual(a, b, q, r, result.x + Matrix::identity(2)), 0.01);
}

}  // namespace
