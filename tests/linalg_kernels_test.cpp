// Unit tests for the in-place kernel layer (linalg/kernels.hpp) and the
// small-object storage underneath it (linalg/small_store.hpp).
//
// The kernels promise bit-identical results to the operator expressions
// they replace, so every comparison here is EXPECT_EQ on exact doubles —
// no tolerances — across randomized sizes 1..12, which crosses the inline
// -> heap storage boundary of both Matrix (8x8 inline) and Vector
// (8 inline) in both directions.
#include <gtest/gtest.h>

#include <cstddef>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/small_store.hpp"
#include "linalg/vector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::linalg;

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      // Sprinkle exact zeros so the zero-skip branch of the product
      // kernels is exercised.
      m(i, j) = rng.bernoulli(0.15) ? 0.0 : rng.uniform(-2.0, 2.0);
    }
  return m;
}

Vector random_vector(Rng& rng, std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(-2.0, 2.0);
  return v;
}

void expect_bits_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(a(i, j), b(i, j)) << i << "," << j;
}

TEST(Kernels, MultiplyIntoMatchesOperator) {
  Rng rng(0xC0FFEEULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, k, n);
    Matrix out;
    multiply_into(a, b, out);
    expect_bits_equal(out, a * b);
  }
}

TEST(Kernels, MultiplyIntoReusesBufferAcrossShapes) {
  Rng rng(0xBADF00DULL);
  Matrix out;  // deliberately reused for every shape
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, k, m);
    multiply_into(a, b, out);
    expect_bits_equal(out, a * b);
  }
}

TEST(Kernels, MultiplySquaresAliasedInputs) {
  Rng rng(0xABCDULL);
  for (std::size_t n : {1, 3, 8, 9, 12}) {
    const Matrix a = random_matrix(rng, n, n);
    Matrix out;
    multiply_into(a, a, out);  // inputs may alias each other
    expect_bits_equal(out, a * a);
  }
}

TEST(Kernels, MultiplyTransposeIntoMatchesOperator) {
  Rng rng(0x7E57ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, n, k);  // b^T is k x n
    Matrix out;
    multiply_transpose_into(a, b, out);
    expect_bits_equal(out, a * b.transpose());
  }
}

TEST(Kernels, TransposeMultiplyIntoMatchesOperator) {
  Rng rng(0xFEEDULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, k, m);  // a^T is m x k
    const Matrix b = random_matrix(rng, k, n);
    Matrix out;
    transpose_multiply_into(a, b, out);
    expect_bits_equal(out, a.transpose() * b);
  }
}

TEST(Kernels, TransposeIntoMatchesOperator) {
  Rng rng(0xDEAFULL);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, n);
    Matrix out;
    transpose_into(a, out);
    expect_bits_equal(out, a.transpose());
  }
}

TEST(Kernels, AddScaledIntoMatchesOperator) {
  Rng rng(0x5CA1EULL);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix x = random_matrix(rng, m, n);
    const double s = rng.uniform(-3.0, 3.0);
    Matrix acc = random_matrix(rng, m, n);
    Matrix expected = acc;
    expected += x * s;
    add_scaled_into(acc, x, s);
    expect_bits_equal(acc, expected);
  }
}

TEST(Kernels, AddIdentityIntoMatchesOperator) {
  Rng rng(0x1DE47ULL);
  for (std::size_t n : {1, 2, 5, 8, 9, 12}) {
    const Matrix m0 = random_matrix(rng, n, n);
    Matrix m = m0;
    add_identity_into(m);
    expect_bits_equal(m, Matrix::identity(n) + m0);
  }
}

TEST(Kernels, SymmetrizeInPlaceMatchesOperator) {
  Rng rng(0x51DEULL);
  for (std::size_t n : {1, 2, 5, 8, 9, 12}) {
    const Matrix x0 = random_matrix(rng, n, n);
    Matrix x = x0;
    symmetrize_in_place(x);
    expect_bits_equal(x, (x0 + x0.transpose()) * 0.5);
  }
}

TEST(Kernels, ApplyIntoMatchesOperator) {
  Rng rng(0xAB1EULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, n);
    const Vector x = random_vector(rng, n);
    Vector out;
    apply_into(a, x, out);
    const Vector expected = a * x;
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
  }
}

TEST(Kernels, MaxAbsDiffMatchesOperator) {
  Rng rng(0xD1FFULL);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, m, n);
    const Matrix b = random_matrix(rng, m, n);
    EXPECT_EQ(max_abs_diff(a, b), (a - b).max_abs());
  }
}

TEST(Kernels, AliasedOutputThrows) {
  Matrix a = Matrix::identity(3);
  Matrix b = Matrix::identity(3);
  EXPECT_THROW(multiply_into(a, b, a), InvalidArgument);
  EXPECT_THROW(multiply_into(a, b, b), InvalidArgument);
  EXPECT_THROW(multiply_transpose_into(a, b, b), InvalidArgument);
  EXPECT_THROW(transpose_multiply_into(a, b, a), InvalidArgument);
  EXPECT_THROW(transpose_into(a, a), InvalidArgument);
  EXPECT_THROW(add_scaled_into(a, a, 2.0), InvalidArgument);
  Vector v{1.0, 2.0, 3.0};
  EXPECT_THROW(apply_into(a, v, v), InvalidArgument);
}

TEST(Kernels, DimensionMismatchThrows) {
  const Matrix a(2, 3, 1.0);
  const Matrix b(2, 3, 1.0);
  Matrix out;
  EXPECT_THROW(multiply_into(a, b, out), DimensionMismatch);
  EXPECT_THROW(add_identity_into(out = a), DimensionMismatch);
  Matrix sq = a;
  EXPECT_THROW(symmetrize_in_place(sq), DimensionMismatch);
  EXPECT_THROW(max_abs_diff(a, Matrix(3, 2)), DimensionMismatch);
}

// --- small-object storage semantics across the inline/heap boundary ---

TEST(SmallStore, InlineAndHeapRoundTrip) {
  using Store = linalg::detail::SmallStore<double, 4>;
  Store s(3, 1.5);
  EXPECT_TRUE(s.is_inline());
  EXPECT_EQ(s.size(), 3u);
  s.resize_discard(9);
  EXPECT_FALSE(s.is_inline());
  EXPECT_EQ(s.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) s[i] = static_cast<double>(i);
  s.resize_discard(2);  // back to inline, heap released
  EXPECT_TRUE(s.is_inline());
  EXPECT_EQ(s.size(), 2u);
}

TEST(SmallStore, CopyAndMoveAcrossBoundary) {
  using Store = linalg::detail::SmallStore<double, 4>;
  Store small(3);
  for (std::size_t i = 0; i < 3; ++i) small[i] = static_cast<double>(i + 1);
  Store big(7);
  for (std::size_t i = 0; i < 7; ++i) big[i] = static_cast<double>(10 + i);

  Store copy = big;
  EXPECT_TRUE(copy == big);
  copy = small;  // heap -> inline shrink via copy assignment
  EXPECT_TRUE(copy == small);

  Store moved = std::move(big);
  EXPECT_EQ(moved.size(), 7u);
  EXPECT_EQ(moved[6], 16.0);

  Store target(2, 0.0);
  target = std::move(moved);
  EXPECT_EQ(target.size(), 7u);
  EXPECT_EQ(target[0], 10.0);
}

TEST(SmallStore, SwapAllCombinations) {
  using Store = linalg::detail::SmallStore<double, 4>;
  auto filled = [](std::size_t n, double base) {
    Store s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = base + static_cast<double>(i);
    return s;
  };
  // inline/inline (unequal sizes), heap/heap, inline/heap.
  for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{2, 4},
                        {6, 9},
                        {3, 8},
                        {8, 3}}) {
    Store a = filled(na, 1.0);
    Store b = filled(nb, 100.0);
    const Store a0 = a;
    const Store b0 = b;
    a.swap(b);
    EXPECT_TRUE(a == b0);
    EXPECT_TRUE(b == a0);
  }
}

TEST(MatrixStorage, InlineBoundaryOperations) {
  // 8x8 = 64 doubles sits exactly at the inline capacity; 9x9 spills.
  Rng rng(0xB0DULL);
  for (std::size_t n : {8, 9}) {
    const Matrix a = random_matrix(rng, n, n);
    const Matrix b = random_matrix(rng, n, n);
    Matrix sum = a;
    sum += b;
    const Matrix prod = a * b;
    Matrix prod2;
    multiply_into(a, b, prod2);
    expect_bits_equal(prod2, prod);
    Matrix moved = std::move(sum);
    EXPECT_EQ(moved.rows(), n);
    Matrix swapped(1, 1, 0.0);
    swapped.swap(moved);
    EXPECT_EQ(swapped.rows(), n);
    EXPECT_EQ(moved.rows(), 1u);
  }
}

TEST(VectorStorage, RawAccessorsMatchChecked) {
  Rng rng(0xACEULL);
  for (std::size_t n : {1, 8, 9, 24}) {
    const Vector v = random_vector(rng, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v.data()[i], v[i]);
    Vector filled;
    filled.assign(v.data(), n);
    EXPECT_TRUE(filled == v);
    const auto std_copy = v.to_std_vector();
    ASSERT_EQ(std_copy.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(std_copy[i], v[i]);
  }
}

TEST(MatrixStorage, RowDataMatchesChecked) {
  Rng rng(0xF00ULL);
  const Matrix m = random_matrix(rng, 5, 7);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_EQ(m.row_data(r)[c], m(r, c));
      EXPECT_EQ(m.data()[r * 7 + c], m(r, c));
    }
  EXPECT_EQ(m.element_count(), 35u);
}

}  // namespace
