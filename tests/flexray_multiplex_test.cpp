// Tests for FlexRay cycle multiplexing (slot repetition) and the slot
// occupancy/Gantt additions to the co-simulation.
#include <gtest/gtest.h>

#include "core/co_simulation.hpp"
#include "core/report.hpp"
#include "flexray/static_segment.hpp"
#include "plants/servo_motor.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::flexray;

FlexRayConfig case_study_config() {
  FlexRayConfig cfg;
  cfg.cycle_length = 0.005;
  cfg.static_slot_count = 10;
  cfg.static_slot_length = 0.0002;
  cfg.minislot_length = 0.00005;
  return cfg;
}

TEST(MultiplexTest, AssignmentValidation) {
  StaticSchedule sched(case_study_config());
  EXPECT_THROW(sched.assign_multiplexed(0, 1, 0, 0), InvalidArgument);  // rep 0
  EXPECT_THROW(sched.assign_multiplexed(0, 1, 2, 2), InvalidArgument);  // base >= rep
  EXPECT_NO_THROW(sched.assign_multiplexed(0, 1, 4, 1));
  const auto a = sched.assignment(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->repetition, 4u);
  EXPECT_EQ(a->base_cycle, 1u);
}

TEST(MultiplexTest, CompletionRespectsOwnedCycles) {
  StaticSchedule sched(case_study_config());
  // Slot 0 owned only in odd cycles (rep 2, base 1).
  sched.assign_multiplexed(0, 7, 2, 1);
  // Released at t = 0: cycle 0 is not owned; first owned start is cycle 1
  // (t = 0.005), completion at 0.0052.
  EXPECT_DOUBLE_EQ(sched.completion_time(0, 0.0), 0.005 + 0.0002);
  // Released just after cycle 1's occurrence: wait for cycle 3.
  EXPECT_DOUBLE_EQ(sched.completion_time(0, 0.0051), 0.015 + 0.0002);
}

TEST(MultiplexTest, DefaultRepetitionOneEveryCycle) {
  StaticSchedule sched(case_study_config());
  sched.assign(3, 9);
  EXPECT_DOUBLE_EQ(sched.completion_time(3, 0.0), 0.0006 + 0.0002);
  EXPECT_DOUBLE_EQ(sched.worst_case_delay(3), 0.005 + 0.0002);
}

TEST(MultiplexTest, WorstCaseScalesWithRepetition) {
  StaticSchedule sched(case_study_config());
  sched.assign_multiplexed(0, 1, 4, 0);
  EXPECT_DOUBLE_EQ(sched.worst_case_delay(0), 4 * 0.005 + 0.0002);
  // Observed completions never exceed the bound.
  for (double release : {0.0, 0.0001, 0.0049, 0.012, 0.0199}) {
    const double delay = sched.completion_time(0, release) - release;
    EXPECT_LE(delay, sched.worst_case_delay(0) + 1e-12) << release;
  }
}

TEST(MultiplexTest, BandwidthLatencyTradeoff) {
  // Higher repetition = proportionally less bandwidth but longer worst
  // case: the core trade FlexRay multiplexing offers.
  StaticSchedule sched(case_study_config());
  sched.assign_multiplexed(0, 1, 1, 0);
  sched.assign_multiplexed(1, 2, 2, 0);
  sched.assign_multiplexed(2, 3, 8, 0);
  EXPECT_LT(sched.worst_case_delay(0), sched.worst_case_delay(1));
  EXPECT_LT(sched.worst_case_delay(1), sched.worst_case_delay(2));
}

// ---------------------------------------------------------------------------
// Slot timeline / Gantt additions.

core::ControlApplication make_servo_app(const std::string& name, double deadline) {
  auto design = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  return core::ControlApplication(name, std::move(design), {10.0, deadline, 0.1},
                                  linalg::Vector{exp.disturbance_angle, 0.0});
}

TEST(SlotTimelineTest, SoloAppOccupancyMatchesResponse) {
  auto app = make_servo_app("solo", 5.0);
  core::CoSimulationOptions options;
  options.horizon = 4.0;
  core::CoSimulator cosim(options);
  cosim.add_application(app, 0, {0.0});
  const auto result = cosim.run();
  ASSERT_EQ(result.slots.size(), 1u);
  const auto& tl = result.slots[0];
  EXPECT_GT(tl.occupancy(), 0.0);
  EXPECT_LT(tl.occupancy(), 1.0);
  EXPECT_GE(tl.grant_count(), 1u);
  // Occupied steps ~ response time / horizon.
  EXPECT_NEAR(tl.occupancy(), result.apps[0].worst_response / options.horizon, 0.1);
}

TEST(SlotTimelineTest, NonPreemptionVisibleInTimeline) {
  auto hi = make_servo_app("hi", 3.0);
  auto lo = make_servo_app("lo", 8.0);
  core::CoSimulationOptions options;
  options.horizon = 8.0;
  core::CoSimulator cosim(options);
  cosim.add_application(hi, 0, {0.0});
  cosim.add_application(lo, 0, {0.0});
  const auto result = cosim.run();
  const auto& owner = result.slots[0].owner;
  // First holder is the high-priority app (index 0), later the low one.
  std::size_t first_holder = core::SlotTimeline::npos;
  bool saw_second = false;
  for (std::size_t o : owner) {
    if (o != core::SlotTimeline::npos && first_holder == core::SlotTimeline::npos)
      first_holder = o;
    if (o == 1) saw_second = true;
  }
  EXPECT_EQ(first_holder, 0u);
  EXPECT_TRUE(saw_second);
  // While held by one app, never switches without a free gap in between
  // (non-preemption): transitions 0 -> 1 require a released step unless the
  // owner settled exactly at the grant boundary of the other.
  EXPECT_GE(result.slots[0].grant_count(), 2u);
}

TEST(SlotTimelineTest, GanttRendersLegendAndStrips) {
  auto app = make_servo_app("solo", 5.0);
  core::CoSimulationOptions options;
  options.horizon = 3.0;
  core::CoSimulator cosim(options);
  cosim.add_application(app, 0, {0.0});
  const auto result = cosim.run();
  const std::string gantt = core::render_slot_gantt(result);
  EXPECT_NE(gantt.find("S1"), std::string::npos);
  EXPECT_NE(gantt.find("occupancy"), std::string::npos);
  EXPECT_NE(gantt.find("0=solo"), std::string::npos);
}

}  // namespace
