// Unit tests for the matrix exponential and the ZOH discretization
// integrals built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cps::Rng;
using namespace cps::linalg;

TEST(ExpmTest, ZeroMatrixGivesIdentity) {
  EXPECT_TRUE(expm(Matrix::zero(3, 3)).approx_equal(Matrix::identity(3), 1e-14));
}

TEST(ExpmTest, DiagonalMatrixExponentiatesEntries) {
  const Matrix e = expm(Matrix::diagonal({1.0, -2.0, 0.5}));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
}

TEST(ExpmTest, NilpotentIsExactPolynomial) {
  // exp([[0, a], [0, 0]]) = [[1, a], [0, 1]].
  Matrix n{{0.0, 3.5}, {0.0, 0.0}};
  const Matrix e = expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 3.5, 1e-13);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(ExpmTest, RotationGenerator) {
  // exp([[0, -w], [w, 0]] t) is a rotation by w t.
  const double w = 2.0, t = 0.6;
  Matrix gen{{0.0, -w}, {w, 0.0}};
  const Matrix e = expm(gen * t);
  EXPECT_NEAR(e(0, 0), std::cos(w * t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(w * t), 1e-12);
}

TEST(ExpmTest, InverseProperty) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-2, 2);
    const Matrix prod = expm(a) * expm(-a);
    EXPECT_TRUE(prod.approx_equal(Matrix::identity(3), 1e-9)) << "trial " << trial;
  }
}

TEST(ExpmTest, SemigroupProperty) {
  Rng rng(41);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
  const Matrix e2 = expm(a * 2.0);
  const Matrix e1sq = expm(a) * expm(a);
  EXPECT_TRUE(e2.approx_equal(e1sq, 1e-9));
}

TEST(ExpmTest, LargeNormUsesScaling) {
  // A matrix with a big norm still exponentiates accurately (diagonal
  // comparison keeps the oracle exact).
  const Matrix e = expm(Matrix::diagonal({10.0, -10.0}));
  EXPECT_NEAR(e(0, 0) / std::exp(10.0), 1.0, 1e-9);
  EXPECT_NEAR(e(1, 1) / std::exp(-10.0), 1.0, 1e-9);
}

TEST(ExpmTest, NonSquareThrows) { EXPECT_THROW(expm(Matrix(2, 3)), cps::DimensionMismatch); }

TEST(ZohTest, ScalarSystemClosedForm) {
  // x' = a x + b u: Phi = e^{a t}, Gamma = (e^{a t} - 1) b / a.
  const double a = -1.5, b = 2.0, t = 0.3;
  const auto [phi, gamma] = zoh_integrals(Matrix{{a}}, Matrix{{b}}, t);
  EXPECT_NEAR(phi(0, 0), std::exp(a * t), 1e-12);
  EXPECT_NEAR(gamma(0, 0), (std::exp(a * t) - 1.0) * b / a, 1e-12);
}

TEST(ZohTest, SingularAIsHandledExactly) {
  // Double integrator (A singular): Gamma = [t^2/2; t] for B = [0; 1].
  Matrix a{{0.0, 1.0}, {0.0, 0.0}};
  Matrix b{{0.0}, {1.0}};
  const double t = 0.25;
  const auto [phi, gamma] = zoh_integrals(a, b, t);
  EXPECT_NEAR(phi(0, 1), t, 1e-13);
  EXPECT_NEAR(gamma(0, 0), t * t / 2.0, 1e-13);
  EXPECT_NEAR(gamma(1, 0), t, 1e-13);
}

TEST(ZohTest, ZeroHorizonGivesIdentityAndZero) {
  Matrix a{{0.0, 1.0}, {-4.0, -0.4}};
  Matrix b{{0.0}, {1.0}};
  const auto [phi, gamma] = zoh_integrals(a, b, 0.0);
  EXPECT_TRUE(phi.approx_equal(Matrix::identity(2), 1e-14));
  EXPECT_NEAR(gamma.max_abs(), 0.0, 1e-14);
}

TEST(ZohTest, AdditivityOverSubintervals) {
  // Discretizing over t1+t2 equals composing the two sub-discretizations:
  // Phi = Phi2 Phi1, Gamma = Phi2 Gamma1 + Gamma2.
  Matrix a{{0.0, 1.0}, {-9.0, -0.6}};
  Matrix b{{0.0}, {3.0}};
  const double t1 = 0.07, t2 = 0.13;
  const auto [phi1, gamma1] = zoh_integrals(a, b, t1);
  const auto [phi2, gamma2] = zoh_integrals(a, b, t2);
  const auto [phi, gamma] = zoh_integrals(a, b, t1 + t2);
  EXPECT_TRUE(phi.approx_equal(phi2 * phi1, 1e-11));
  EXPECT_TRUE(gamma.approx_equal(phi2 * gamma1 + gamma2, 1e-11));
}

TEST(ZohTest, NegativeHorizonThrows) {
  EXPECT_THROW(zoh_integrals(Matrix{{1.0}}, Matrix{{1.0}}, -0.1), cps::InvalidArgument);
}

}  // namespace
