// runtime/backoff.hpp: the deterministic jittered exponential backoff
// extracted from the PR-8 campaign supervisor.  The extraction contract
// is BIT-IDENTITY: supervisor retry schedules must not move.

#include "runtime/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/supervisor.hpp"
#include "util/error.hpp"

namespace {

using cps::runtime::backoff_delay;
using cps::runtime::BackoffPolicy;

TEST(RuntimeBackoffTest, DeterministicAcrossCalls) {
  BackoffPolicy policy;
  for (int attempt = 1; attempt <= 8; ++attempt)
    EXPECT_DOUBLE_EQ(backoff_delay(policy, 3, attempt), backoff_delay(policy, 3, attempt));
}

TEST(RuntimeBackoffTest, JitterStaysWithinHalfToOneAndAHalf) {
  BackoffPolicy policy;
  policy.base_seconds = 1.0;
  policy.factor = 1.0;  // isolate the jitter term
  policy.max_seconds = 100.0;
  for (std::size_t stream = 0; stream < 50; ++stream) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const double delay = backoff_delay(policy, stream, attempt);
      EXPECT_GE(delay, 0.5);
      EXPECT_LT(delay, 1.5);
    }
  }
}

TEST(RuntimeBackoffTest, GrowsGeometricallyUntilTheCap) {
  BackoffPolicy policy;
  policy.base_seconds = 0.5;
  policy.factor = 2.0;
  policy.max_seconds = 4.0;
  // Strip the jitter by dividing it back out: jitter = delay / raw.
  auto raw = [&](int attempt) {
    double delay = policy.base_seconds;
    for (int i = 1; i < attempt; ++i) delay *= policy.factor;
    return std::min(delay, policy.max_seconds);
  };
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const double jitter = backoff_delay(policy, 0, attempt) / raw(attempt);
    EXPECT_GE(jitter, 0.5);
    EXPECT_LT(jitter, 1.5);
  }
  // Far past the cap the un-jittered part must stay pinned at max.
  EXPECT_DOUBLE_EQ(raw(30), policy.max_seconds);
}

TEST(RuntimeBackoffTest, StreamsDecorrelate) {
  BackoffPolicy policy;
  // Same attempt, different streams: the jitter must differ (that is
  // the point — shards/clients retrying in lockstep would thundering-
  // herd the very resource that shed them).
  bool any_differ = false;
  const double first = backoff_delay(policy, 0, 1);
  for (std::size_t stream = 1; stream < 8; ++stream)
    if (backoff_delay(policy, stream, 1) != first) any_differ = true;
  EXPECT_TRUE(any_differ);
}

TEST(RuntimeBackoffTest, NeedsAtLeastOneFailedAttempt) {
  EXPECT_THROW(backoff_delay(BackoffPolicy{}, 0, 0), cps::InvalidArgument);
}

// The extraction's bit-identity contract: the supervisor's wrapper must
// produce EXACTLY the schedule the library computes from the equivalent
// policy — byte-for-byte equal doubles, every (shard, attempt).
TEST(RuntimeBackoffTest, SupervisorWrapperIsBitIdentical) {
  cps::runtime::SupervisorOptions options;
  options.backoff_base_seconds = 0.25;
  options.backoff_factor = 3.0;
  options.backoff_max_seconds = 10.0;
  options.backoff_seed = 1234567;

  BackoffPolicy policy;
  policy.base_seconds = options.backoff_base_seconds;
  policy.factor = options.backoff_factor;
  policy.max_seconds = options.backoff_max_seconds;
  policy.seed = options.backoff_seed;

  for (std::size_t shard = 0; shard < 6; ++shard)
    for (int attempt = 1; attempt <= 12; ++attempt)
      EXPECT_DOUBLE_EQ(cps::runtime::backoff_delay_seconds(options, shard, attempt),
                       backoff_delay(policy, shard, attempt))
          << "shard " << shard << " attempt " << attempt;
}

}  // namespace
