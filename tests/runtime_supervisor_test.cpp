// Supervisor robustness policy: backoff determinism, timeout escalation,
// retry-until-success, artifact-verified success, resume, interruption,
// exec-template wrapping, and the degraded partial-merge manifest.
//
// The process tests run REAL children (fork/exec of /bin/sh and friends)
// with tight timeouts, so the whole suite stays fast while exercising
// the same code paths `cps_run --launch` drives.
#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/shard.hpp"
#include "util/error.hpp"

namespace {

using cps::runtime::backoff_delay_seconds;
using cps::runtime::merge_sweep_csv_partial;
using cps::runtime::shard_suffix;
using cps::runtime::ShardOutcome;
using cps::runtime::ShardSupervisor;
using cps::runtime::SupervisorOptions;
using cps::runtime::SupervisorReport;
using cps::runtime::write_campaign_manifest;
using cps::runtime::write_shard_meta;

struct SupervisorFixture : public ::testing::Test {
  void SetUp() override {
    dir = (std::filesystem::temp_directory_path() /
           ("cps-supervisor-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++)))
              .string();
    std::filesystem::create_directories(dir);
  }
  void TearDown() override {
    std::error_code error;
    std::filesystem::remove_all(dir, error);
  }
  /// Fast-poll options so process tests finish in tens of milliseconds.
  SupervisorOptions fast_options(std::size_t shards) {
    SupervisorOptions options;
    options.shard_count = shards;
    options.poll_interval_seconds = 0.005;
    options.backoff_base_seconds = 0.01;
    options.backoff_max_seconds = 0.05;
    options.work_dir = dir + "/launch";
    return options;
  }
  /// A landed shard partial: whole CSV plus a consistent sidecar.
  void write_shard(const std::string& canonical, std::size_t index, std::size_t count,
                   const std::vector<std::size_t>& rows, std::uint64_t seed) {
    {
      std::ofstream out(canonical + shard_suffix(index, count));
      out << "index,v\n";
      for (auto row : rows) out << row << ",value" << row << '\n';
    }
    write_shard_meta(canonical + shard_suffix(index, count), seed, index, count);
  }
  static std::atomic<int> counter;
  std::string dir;
};
std::atomic<int> SupervisorFixture::counter{0};

// ---------------------------------------------------------------------------
// Backoff schedule: a pure, deterministic function

TEST(BackoffTest, ScheduleIsDeterministicUnderAFixedSeed) {
  SupervisorOptions options;
  options.backoff_base_seconds = 0.5;
  options.backoff_factor = 2.0;
  options.backoff_max_seconds = 30.0;
  options.backoff_seed = 42;
  for (std::size_t shard = 0; shard < 4; ++shard)
    for (int attempt = 1; attempt <= 6; ++attempt)
      EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, shard, attempt),
                       backoff_delay_seconds(options, shard, attempt))
          << "shard " << shard << " attempt " << attempt;
}

TEST(BackoffTest, DelayGrowsExponentiallyWithinTheJitterBand) {
  SupervisorOptions options;
  options.backoff_base_seconds = 0.5;
  options.backoff_factor = 2.0;
  options.backoff_max_seconds = 1e9;  // no cap for this check
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double nominal = 0.5 * std::pow(2.0, attempt - 1);
    const double delay = backoff_delay_seconds(options, 0, attempt);
    EXPECT_GE(delay, 0.5 * nominal);
    EXPECT_LT(delay, 1.5 * nominal);
  }
}

TEST(BackoffTest, DelayIsCappedAtTheMaximum) {
  SupervisorOptions options;
  options.backoff_base_seconds = 1.0;
  options.backoff_factor = 10.0;
  options.backoff_max_seconds = 5.0;
  EXPECT_LT(backoff_delay_seconds(options, 3, 20), 1.5 * 5.0);
}

TEST(BackoffTest, DifferentShardsGetDecorrelatedJitter) {
  SupervisorOptions options;
  bool any_difference = false;
  for (std::size_t shard = 1; shard < 8; ++shard)
    if (backoff_delay_seconds(options, shard, 1) != backoff_delay_seconds(options, 0, 1))
      any_difference = true;
  EXPECT_TRUE(any_difference);  // identical delays would stampede retries
}

// ---------------------------------------------------------------------------
// Process supervision

TEST_F(SupervisorFixture, RunsEveryShardToSuccess) {
  ShardSupervisor supervisor({"true"}, fast_options(3));
  const SupervisorReport report = supervisor.run();
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.all_ok());
  for (const auto& outcome : report.outcomes) {
    EXPECT_EQ(outcome.status, ShardOutcome::Status::kSucceeded);
    EXPECT_EQ(outcome.attempts, 1);
  }
}

TEST_F(SupervisorFixture, RetriesAFlakyShardUntilItSucceeds) {
  // First attempt leaves a marker and fails; the retry sees it and exits
  // 0 — the supervised analogue of "crashed once, healed on retry".
  SupervisorOptions options = fast_options(2);
  options.max_attempts = 3;
  ShardSupervisor supervisor(
      {"/bin/sh", "-c",
       "if [ -e " + dir + "/marker{i} ]; then exit 0; else touch " + dir +
           "/marker{i}; exit 3; fi"},
      options);
  const SupervisorReport report = supervisor.run();
  EXPECT_TRUE(report.all_ok());
  for (const auto& outcome : report.outcomes) EXPECT_EQ(outcome.attempts, 2);
}

TEST_F(SupervisorFixture, PermanentFailureReportsEveryAttempt) {
  SupervisorOptions options = fast_options(2);
  options.max_attempts = 2;
  ShardSupervisor supervisor({"/bin/sh", "-c", "echo shard-{i}-stderr >&2; exit 7"},
                             options);
  const SupervisorReport report = supervisor.run();
  EXPECT_FALSE(report.all_ok());
  ASSERT_EQ(report.failed_shards().size(), 2u);
  for (const auto& outcome : report.outcomes) {
    EXPECT_EQ(outcome.status, ShardOutcome::Status::kFailed);
    EXPECT_EQ(outcome.attempts, 2);
    EXPECT_NE(outcome.detail.find("exit status 7"), std::string::npos) << outcome.detail;
    // The report carries the child's own words (log tail), not just codes.
    EXPECT_NE(outcome.detail.find("shard-"), std::string::npos) << outcome.detail;
  }
}

TEST_F(SupervisorFixture, TimeoutSendsTermThenEscalatesToKill) {
  // The child ignores SIGTERM, so only the SIGKILL escalation can end it.
  SupervisorOptions options = fast_options(1);
  options.max_attempts = 1;
  options.timeout_seconds = 0.2;
  options.term_grace_seconds = 0.15;
  ShardSupervisor supervisor({"/bin/sh", "-c", "trap '' TERM; sleep 30"}, options);
  const auto start = std::chrono::steady_clock::now();
  const SupervisorReport report = supervisor.run();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_EQ(report.outcomes.size(), 1u);
  const auto& outcome = report.outcomes[0];
  EXPECT_EQ(outcome.status, ShardOutcome::Status::kFailed);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_TRUE(outcome.killed);
  EXPECT_NE(outcome.detail.find("signal 9"), std::string::npos) << outcome.detail;
  EXPECT_LT(elapsed, 10.0);  // never waits out the sleep
}

TEST_F(SupervisorFixture, TimeoutTermableChildDiesWithoutEscalation) {
  SupervisorOptions options = fast_options(1);
  options.max_attempts = 1;
  options.timeout_seconds = 0.2;
  options.term_grace_seconds = 2.0;
  ShardSupervisor supervisor({"sleep", "30"}, options);
  const SupervisorReport report = supervisor.run();
  const auto& outcome = report.outcomes[0];
  EXPECT_EQ(outcome.status, ShardOutcome::Status::kFailed);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_FALSE(outcome.killed);  // SIGTERM sufficed
  EXPECT_NE(outcome.detail.find("signal 15"), std::string::npos) << outcome.detail;
}

TEST_F(SupervisorFixture, ExitZeroWithoutALandedArtifactIsAFailure) {
  // A shard that "succeeds" without publishing must be treated as failed:
  // exit status alone cannot certify the artifact landed whole.
  SupervisorOptions options = fast_options(2);
  options.max_attempts = 1;
  options.expected_artifacts = {dir + "/sweep.csv"};
  options.expected_seed = 0x5EED;
  ShardSupervisor supervisor({"true"}, options);
  const SupervisorReport report = supervisor.run();
  EXPECT_FALSE(report.all_ok());
  for (const auto& outcome : report.outcomes)
    EXPECT_NE(outcome.detail.find("did not land"), std::string::npos) << outcome.detail;
}

TEST_F(SupervisorFixture, ResumeSkipsShardsWhoseArtifactsAlreadyLanded) {
  // Both shards' partials are on disk with the right seed; the command
  // would fail if it ever ran — resume must not launch it at all.
  const std::string canonical = dir + "/sweep.csv";
  write_shard(canonical, 0, 2, {0, 1}, 0xCAFE);
  write_shard(canonical, 1, 2, {2, 3}, 0xCAFE);
  SupervisorOptions options = fast_options(2);
  options.expected_artifacts = {canonical};
  options.expected_seed = 0xCAFE;
  ShardSupervisor supervisor({"false"}, options);
  const SupervisorReport report = supervisor.run();
  EXPECT_TRUE(report.all_ok());
  for (const auto& outcome : report.outcomes) {
    EXPECT_EQ(outcome.status, ShardOutcome::Status::kSkipped);
    EXPECT_EQ(outcome.attempts, 0);
  }
}

TEST_F(SupervisorFixture, ResumeWithTheWrongSeedRerunsInsteadOfSkipping) {
  const std::string canonical = dir + "/sweep.csv";
  write_shard(canonical, 0, 1, {0, 1}, 0xAAAA);  // stale campaign
  SupervisorOptions options = fast_options(1);
  options.max_attempts = 1;
  options.expected_artifacts = {canonical};
  options.expected_seed = 0xBBBB;
  ShardSupervisor supervisor({"false"}, options);
  const SupervisorReport report = supervisor.run();
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, ShardOutcome::Status::kFailed);
  EXPECT_EQ(report.outcomes[0].attempts, 1);  // launched, not skipped
}

TEST_F(SupervisorFixture, InterruptFlagTearsDownRunningChildren) {
  static volatile std::sig_atomic_t interrupt = 1;  // pre-set: stop immediately
  SupervisorOptions options = fast_options(2);
  options.interrupt_flag = &interrupt;
  ShardSupervisor supervisor({"sleep", "30"}, options);
  const auto start = std::chrono::steady_clock::now();
  const SupervisorReport report = supervisor.run();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_TRUE(report.interrupted);
  for (const auto& outcome : report.outcomes)
    EXPECT_EQ(outcome.status, ShardOutcome::Status::kInterrupted);
  EXPECT_LT(elapsed, 10.0);
}

TEST_F(SupervisorFixture, ExecTemplateWrapsEveryShardCommand) {
  SupervisorOptions options = fast_options(2);
  options.exec_template = "echo wrapped-{i} >> " + dir + "/calls; exec {cmd}";
  ShardSupervisor supervisor({"true"}, options);
  const SupervisorReport report = supervisor.run();
  EXPECT_TRUE(report.all_ok());
  std::ifstream in(dir + "/calls");
  const std::string calls((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(calls.find("wrapped-0"), std::string::npos) << calls;
  EXPECT_NE(calls.find("wrapped-1"), std::string::npos) << calls;
}

// ---------------------------------------------------------------------------
// Degraded campaign manifest

TEST_F(SupervisorFixture, ManifestNamesMissingShardsAndExactIndexRanges) {
  const std::string canonical = dir + "/sweep.csv";
  write_shard(canonical, 0, 3, {0, 1}, 0x5EED);
  write_shard(canonical, 2, 3, {4, 5}, 0x5EED);  // shard 1 (indices 2..3) lost
  auto merge = merge_sweep_csv_partial(canonical, 3);
  EXPECT_EQ(merge.rows_merged, 4u);

  SupervisorReport report;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    ShardOutcome outcome;
    outcome.shard = shard;
    outcome.attempts = shard == 1 ? 3 : 1;
    outcome.status =
        shard == 1 ? ShardOutcome::Status::kFailed : ShardOutcome::Status::kSucceeded;
    if (shard == 1) outcome.detail = "attempt 3/3: exit status 9";
    report.outcomes.push_back(outcome);
  }

  const std::string path =
      write_campaign_manifest(dir, report, 0x5EED, {canonical}, {merge});
  std::ifstream in(path);
  const std::string manifest((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("\"missing_shards\": [1]"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"covered_index_ranges\": [[0, 2], [4, 6]]"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"missing_index_ranges\": [[2, 4]]"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"status\": \"failed\""), std::string::npos) << manifest;
}

TEST_F(SupervisorFixture, ManifestMarksAnUnknownTailAsOpenEnded) {
  // When the FINAL shard never landed the sweep's total size is unknown:
  // the missing range must say so (null end), not invent a bound.
  const std::string canonical = dir + "/sweep.csv";
  write_shard(canonical, 0, 2, {0, 1, 2}, 0x5EED);
  auto merge = merge_sweep_csv_partial(canonical, 2);
  SupervisorReport report;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    ShardOutcome outcome;
    outcome.shard = shard;
    outcome.status =
        shard == 1 ? ShardOutcome::Status::kFailed : ShardOutcome::Status::kSucceeded;
    report.outcomes.push_back(outcome);
  }
  const std::string path =
      write_campaign_manifest(dir, report, 0x5EED, {canonical}, {merge});
  std::ifstream in(path);
  const std::string manifest((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("\"missing_index_ranges\": [[3, null]]"), std::string::npos)
      << manifest;
}

}  // namespace
