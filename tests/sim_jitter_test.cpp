// Tests for the time-varying-delay (jitter) simulation of the ET loop.
#include <gtest/gtest.h>

#include <cmath>

#include "control/loop_design.hpp"
#include "linalg/eigen.hpp"
#include "plants/second_order.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/settling.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::sim;

/// Worst-case ET design for the servo, returning (plant, h, gain).
struct JitterSetup {
  control::StateSpace plant;
  double h;
  linalg::Matrix gain;
  linalg::Vector z0;
  control::HybridLoopDesign design;
};

JitterSetup make_setup() {
  const plants::ServoExperiment exp;
  auto design = plants::design_servo_loops();
  return JitterSetup{plants::make_servo_motor(), exp.sampling_period, design.gain_et,
               plants::servo_disturbed_state(exp), std::move(design)};
}

TEST(JitterTest, ConstructionValidation) {
  const JitterSetup s = make_setup();
  EXPECT_THROW(JitteryClosedLoop(s.plant, s.h, {}, s.gain), InvalidArgument);
  EXPECT_THROW(JitteryClosedLoop(s.plant, s.h, {s.h * 2.0}, s.gain), InvalidArgument);
  EXPECT_THROW(JitteryClosedLoop(s.plant, s.h, {0.01}, linalg::Matrix(1, 2)), InvalidArgument);
  EXPECT_NO_THROW(JitteryClosedLoop(s.plant, s.h, {0.0, 0.01, s.h}, s.gain));
}

TEST(JitterTest, WorstCaseDelayReproducesDesignLoop) {
  // With the delay grid = {d_et} the jittery loop must equal the designed
  // ET closed loop exactly.
  const JitterSetup s = make_setup();
  const JitteryClosedLoop loop(s.plant, s.h, {s.h}, s.gain);
  ASSERT_EQ(loop.delay_count(), 1u);
  EXPECT_TRUE(loop.loop_matrix(0).approx_equal(s.design.a_et, 1e-10));
}

TEST(JitterTest, EveryDelayRealizationIsStable) {
  // The worst-case gain keeps the loop stable for every smaller delay too
  // (not guaranteed in general; holds for this design and is the premise
  // of using it on the real jittery bus).
  const JitterSetup s = make_setup();
  const JitteryClosedLoop loop(s.plant, s.h, {0.0, 0.005, 0.01, 0.015, s.h}, s.gain);
  for (std::size_t i = 0; i < loop.delay_count(); ++i)
    EXPECT_TRUE(linalg::is_schur_stable(loop.loop_matrix(i), 0.0)) << "delay idx " << i;
}

TEST(JitterTest, RandomJitterSettles) {
  const JitterSetup s = make_setup();
  const JitteryClosedLoop loop(s.plant, s.h, {0.0, 0.005, 0.01, 0.015, s.h}, s.gain);
  Rng rng(314159);
  const auto settle = loop.settle_under_random_delays(s.z0, 0.1, rng);
  ASSERT_TRUE(settle.has_value());
  EXPECT_GT(*settle, 0u);
  // Within a sane multiple of the worst-case constant-delay settling time.
  SettlingOptions opts;
  opts.threshold = 0.1;
  const auto wc = settling_step(s.design.a_et, s.z0, 2, opts);
  ASSERT_TRUE(wc.has_value());
  EXPECT_LT(*settle, 3 * *wc + 10);
}

TEST(JitterTest, CampaignStatisticsConsistent) {
  const JitterSetup s = make_setup();
  const JitteryClosedLoop loop(s.plant, s.h, {0.0, 0.01, s.h}, s.gain);
  Rng rng(2718);
  const JitterCampaignResult result = run_jitter_campaign(loop, s.z0, 0.1, s.h, 50, rng);
  EXPECT_EQ(result.runs, 50u);
  EXPECT_EQ(result.settled_runs, 50u);
  EXPECT_LE(result.best_settle_s, result.mean_settle_s + 1e-12);
  EXPECT_LE(result.mean_settle_s, result.worst_settle_s + 1e-12);
  EXPECT_GT(result.best_settle_s, 0.0);
}

TEST(JitterTest, CampaignIsDeterministicGivenSeed) {
  const JitterSetup s = make_setup();
  const JitteryClosedLoop loop(s.plant, s.h, {0.0, 0.01, s.h}, s.gain);
  Rng a(5), b(5);
  const auto ra = run_jitter_campaign(loop, s.z0, 0.1, s.h, 20, a);
  const auto rb = run_jitter_campaign(loop, s.z0, 0.1, s.h, 20, b);
  EXPECT_DOUBLE_EQ(ra.mean_settle_s, rb.mean_settle_s);
  EXPECT_DOUBLE_EQ(ra.worst_settle_s, rb.worst_settle_s);
}

TEST(JitterTest, SmallerDelaysSettleNoSlowerOnAverage) {
  // Sanity: a grid of only tiny delays should not settle slower than the
  // all-worst-case grid (the controller has fresher inputs).
  const JitterSetup s = make_setup();
  const JitteryClosedLoop fresh(s.plant, s.h, {0.0005}, s.gain);
  const JitteryClosedLoop stale(s.plant, s.h, {s.h}, s.gain);
  Rng rng(11);
  const auto fast = run_jitter_campaign(fresh, s.z0, 0.1, s.h, 5, rng);
  const auto slow = run_jitter_campaign(stale, s.z0, 0.1, s.h, 5, rng);
  EXPECT_LE(fast.mean_settle_s, slow.mean_settle_s + 0.25);
}

}  // namespace
