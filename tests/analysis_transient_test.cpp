// Tests for the transient-growth analysis: the bridge between the ET
// loop's non-normality, the non-monotonic dwell/wait relation, and the
// steady-state excursions after a TT-slot release.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/transient.hpp"
#include "linalg/matrix.hpp"
#include "plants/servo_motor.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;
using linalg::Matrix;

TEST(TransientTest, NormalMatrixDoesNotGrow) {
  // Symmetric (normal) stable matrices satisfy ||A^k||_2 = rho^k <= 1.
  const Matrix a = Matrix::diagonal({0.8, 0.5});
  const TransientGrowth g = transient_growth(a);
  EXPECT_NEAR(g.peak_gain, 1.0, 1e-12);
  EXPECT_EQ(g.peak_step, 0u);
  EXPECT_FALSE(g.growing);
}

TEST(TransientTest, JordanBlockGrowsBeforeDecaying) {
  // [[r, c], [0, r]]: ||A^k|| ~ k c r^{k-1} initially grows for large c.
  Matrix a{{0.9, 2.0}, {0.0, 0.9}};
  const TransientGrowth g = transient_growth(a);
  EXPECT_TRUE(g.growing);
  EXPECT_GT(g.peak_gain, 2.0);
  EXPECT_GT(g.peak_step, 0u);
}

TEST(TransientTest, PeakGainBoundsSimulatedNormGrowth) {
  // Property: for any x0, max_k ||A^k x0|| <= peak_gain * ||x0||.
  Matrix a{{0.9, 1.5}, {-0.1, 0.85}};
  const TransientGrowth g = transient_growth(a);
  for (double angle = 0.0; angle < 6.28; angle += 0.37) {
    linalg::Vector x{std::cos(angle), std::sin(angle)};
    double peak = 0.0;
    for (int k = 0; k < 500; ++k) {
      peak = std::max(peak, x.norm());
      x = a * x;
    }
    EXPECT_LE(peak, g.peak_gain + 1e-9) << "angle " << angle;
  }
}

TEST(TransientTest, UnstableLoopRejected) {
  EXPECT_THROW(transient_growth(Matrix{{1.05}}), NumericalError);
}

TEST(TransientTest, ExcursionBoundArithmetic) {
  TransientGrowth g;
  g.peak_gain = 3.0;
  EXPECT_NEAR(excursion_bound(g, 0.1), 0.3, 1e-12);
  EXPECT_NEAR(excursion_bound(g, 0.1, 0.2), 0.06, 1e-12);
  EXPECT_THROW(excursion_bound(g, -0.1), InvalidArgument);
  EXPECT_THROW(excursion_bound(g, 0.1, 1.5), InvalidArgument);
}

TEST(TransientTest, ChatterFreeFactorInverseOfGain) {
  Matrix a{{0.9, 2.0}, {0.0, 0.9}};
  const TransientGrowth g = transient_growth(a);
  const double factor = chatter_free_release_factor(a);
  EXPECT_NEAR(factor, 1.0 / g.peak_gain, 1e-12);
  // Releasing at factor * E_th keeps the excursion at or below E_th.
  EXPECT_LE(excursion_bound(g, 0.1, factor), 0.1 + 1e-12);
}

TEST(TransientTest, NormalLoopAllowsFullThresholdRelease) {
  EXPECT_NEAR(chatter_free_release_factor(Matrix::diagonal({0.7, 0.4})), 1.0, 1e-12);
}

TEST(TransientTest, RestrictedGrowthIgnoresHeldInputUnits) {
  // On the servo's augmented loop the held-input coordinate carries
  // actuator units; restricting to the plant states gives the growth the
  // threshold norm actually sees, which is far smaller.
  const auto design = plants::design_servo_loops();
  const TransientGrowth full = transient_growth(design.a_et);
  const TransientGrowth plant_only =
      transient_growth_restricted(design.a_et, design.state_dim);
  EXPECT_LT(plant_only.peak_gain, full.peak_gain);
  EXPECT_TRUE(plant_only.growing);
}

TEST(TransientTest, RestrictedGrowthBoundsPlantNormSimulation) {
  const auto design = plants::design_servo_loops();
  const TransientGrowth g = transient_growth_restricted(design.a_et, design.state_dim);
  // From any plant-state unit disturbance with zero held input, the plant
  // norm never exceeds gamma.
  for (double angle = 0.0; angle < 6.28; angle += 0.5) {
    linalg::Vector z{std::cos(angle), std::sin(angle), 0.0};
    double peak = 0.0;
    for (int k = 0; k < 400; ++k) {
      peak = std::max(peak, std::hypot(z[0], z[1]));
      z = design.a_et * z;
    }
    EXPECT_LE(peak, g.peak_gain + 1e-9) << "angle " << angle;
  }
}

TEST(TransientTest, RestrictedGrowthValidation) {
  EXPECT_THROW(transient_growth_restricted(Matrix::diagonal({0.5, 0.5}), 0), InvalidArgument);
  EXPECT_THROW(transient_growth_restricted(Matrix::diagonal({0.5, 0.5}), 3), InvalidArgument);
  EXPECT_THROW(transient_growth_restricted(Matrix{{1.2}}, 1), NumericalError);
}

TEST(TransientTest, ServoEtLoopIsTheNonMonotonicityDriver) {
  // The servo's ET loop must exhibit transient growth — that growth IS the
  // rising phase of the paper's Fig. 3 curve.
  const auto design = plants::design_servo_loops();
  const TransientGrowth et = transient_growth(design.a_et);
  EXPECT_TRUE(et.growing);
  // The TT loop grows less than the ET loop (its job is crisp rejection).
  const TransientGrowth tt = transient_growth(design.a_tt);
  EXPECT_LT(tt.peak_gain, et.peak_gain);
}

}  // namespace
