// Golden-output regression tests for the PR-2 hot-path optimizations.
//
// Both optimized kernels ship next to their frozen pre-optimization
// implementations (measure_dwell_wait_curve_reference,
// optimal_allocate_reference); these tests assert bit-identical results —
// exact integer step counts, exact double bit patterns, exact partitions —
// on the seed fixtures (servo motor, synthesized Table I fleet, published
// Table I scheduling parameters) and on randomized instances.  Any
// floating-point reordering or search-order change in the optimized paths
// fails loudly here.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "control/loop_design.hpp"
#include "experiments/fixtures.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "plants/table1.hpp"
#include "sim/dwell_wait.hpp"
#include "sim/switched_system.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void expect_bit_identical(const sim::DwellWaitCurve& optimized,
                          const sim::DwellWaitCurve& reference) {
  EXPECT_EQ(optimized.sampling_period(), reference.sampling_period());
  ASSERT_EQ(optimized.points().size(), reference.points().size());
  for (std::size_t i = 0; i < optimized.points().size(); ++i) {
    const auto& a = optimized.points()[i];
    const auto& b = reference.points()[i];
    EXPECT_EQ(a.wait_steps, b.wait_steps) << "point " << i;
    EXPECT_EQ(a.dwell_steps, b.dwell_steps) << "point " << i;
    // Bitwise equality, not approximate: the incremental kernel promises
    // the identical floating-point op order.
    EXPECT_EQ(a.wait_s, b.wait_s) << "point " << i;
    EXPECT_EQ(a.dwell_s, b.dwell_s) << "point " << i;
  }
}

TEST(DwellWaitGolden, ServoCurveBitIdentical) {
  const auto design = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = exp.threshold;
  const auto x0 = plants::servo_disturbed_state(exp);

  const auto optimized = sim::measure_dwell_wait_curve(sys, x0, exp.sampling_period, opts);
  const auto reference =
      sim::measure_dwell_wait_curve_reference(sys, x0, exp.sampling_period, opts);
  expect_bit_identical(optimized, reference);
  EXPECT_TRUE(optimized.is_non_monotonic());  // still the Fig. 3 shape
}

TEST(DwellWaitGolden, SynthesizedFleetBitIdentical) {
  for (const auto& app : *experiments::paper_fleet()) {
    const auto design = control::design_hybrid_loops(app.plant, app.spec);
    const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
    sim::DwellWaitSweepOptions opts;
    opts.settling.threshold = app.threshold;
    const auto x0 = linalg::Vector::concat(app.x0, linalg::Vector::zero(design.input_dim));
    const double h = design.sys_tt.sampling_period();

    const auto optimized = sim::measure_dwell_wait_curve(sys, x0, h, opts);
    const auto reference = sim::measure_dwell_wait_curve_reference(sys, x0, h, opts);
    expect_bit_identical(optimized, reference);
  }
}

TEST(DwellWaitGolden, RandomStableSystemsBitIdentical) {
  Rng rng(0xD0D0F00DULL);
  int measured = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Random 3x3 pair scaled to spectral-radius proxies < 1 (infinity
    // norm), the ET loop slower than the TT loop so a sweep exists.
    linalg::Matrix a_et(3, 3), a_tt(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) {
        a_et(r, c) = rng.uniform(-1.0, 1.0);
        a_tt(r, c) = rng.uniform(-1.0, 1.0);
      }
    const double et_scale = rng.uniform(0.90, 0.985) / a_et.norm_inf();
    const double tt_scale = rng.uniform(0.3, 0.8) / a_tt.norm_inf();
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) {
        a_et(r, c) *= et_scale;
        a_tt(r, c) *= tt_scale;
      }
    const sim::SwitchedLinearSystem sys(a_et, a_tt, 2);
    const linalg::Vector x0{rng.uniform(0.5, 2.0), rng.uniform(-1.0, 1.0),
                            rng.uniform(-0.5, 0.5)};
    sim::DwellWaitSweepOptions opts;
    opts.settling.threshold = 0.1;
    try {
      const auto optimized = sim::measure_dwell_wait_curve(sys, x0, 0.02, opts);
      const auto reference = sim::measure_dwell_wait_curve_reference(sys, x0, 0.02, opts);
      expect_bit_identical(optimized, reference);
      ++measured;
    } catch (const NumericalError&) {
      // Non-settling draw: both kernels must agree on the failure too.
      EXPECT_THROW(sim::measure_dwell_wait_curve_reference(sys, x0, 0.02, opts),
                   NumericalError);
    }
  }
  EXPECT_GE(measured, 10) << "random-system generator produced too few settling draws";
}

void expect_same_allocation(const Allocation& optimized, const Allocation& reference) {
  ASSERT_EQ(optimized.slot_count(), reference.slot_count());
  EXPECT_EQ(optimized.slots, reference.slots);  // same apps, same slots, same order
  ASSERT_EQ(optimized.analyses.size(), reference.analyses.size());
  for (std::size_t s = 0; s < optimized.analyses.size(); ++s) {
    const auto& a = optimized.analyses[s];
    const auto& b = reference.analyses[s];
    EXPECT_EQ(a.all_schedulable, b.all_schedulable);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].name, b.results[i].name);
      EXPECT_EQ(a.results[i].max_wait, b.results[i].max_wait);    // bitwise
      EXPECT_EQ(a.results[i].response, b.results[i].response);    // bitwise
      EXPECT_EQ(a.results[i].schedulable, b.results[i].schedulable);
    }
  }
}

TEST(AllocatorGolden, PaperTableIBitIdentical) {
  for (const bool monotonic : {false, true}) {
    const auto apps = experiments::paper_sched_params(monotonic);
    for (const auto method : {MaxWaitMethod::kClosedFormBound, MaxWaitMethod::kFixedPoint}) {
      AllocationOptions options;
      options.method = method;
      expect_same_allocation(optimal_allocate(apps, options),
                             optimal_allocate_reference(apps, options));
    }
  }
}

TEST(AllocatorGolden, RandomInstancesBitIdentical) {
  Rng rng(0xA110CA7EULL);
  int compared = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int n = 3 + trial % 10;  // sizes 3..12
    const auto set =
        experiments::random_sched_params(rng, n, experiments::allocator_ablation_ranges());
    try {
      const Allocation optimized = optimal_allocate(set);
      const Allocation reference = optimal_allocate_reference(set);
      expect_same_allocation(optimized, reference);
      ++compared;
    } catch (const InfeasibleError&) {
      EXPECT_THROW(optimal_allocate_reference(set), InfeasibleError);
    }
  }
  EXPECT_GE(compared, 60);
}

TEST(AllocatorGolden, FixedPointMethodRandomInstances) {
  Rng rng(0xBEEFCAFEULL);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + trial % 6;  // sizes 3..8
    const auto set =
        experiments::random_sched_params(rng, n, experiments::bounds_ablation_ranges());
    AllocationOptions options;
    options.method = MaxWaitMethod::kFixedPoint;
    try {
      expect_same_allocation(optimal_allocate(set, options),
                             optimal_allocate_reference(set, options));
    } catch (const InfeasibleError&) {
      EXPECT_THROW(optimal_allocate_reference(set, options), InfeasibleError);
    }
  }
}

TEST(AllocatorGolden, HeuristicsStillProduceSchedulableSlots) {
  // first_fit/best_fit now run on the memoized feasibility engine; their
  // verdicts must still agree with the full per-slot analysis.
  Rng rng(0x0DDBA11ULL);
  for (int trial = 0; trial < 40; ++trial) {
    const auto set = experiments::random_sched_params(
        rng, 3 + trial % 8, experiments::allocator_ablation_ranges());
    try {
      for (const auto& alloc : {first_fit_allocate(set), best_fit_allocate(set)}) {
        for (const auto& analysis : alloc.analyses) EXPECT_TRUE(analysis.all_schedulable);
      }
    } catch (const InfeasibleError&) {
      // Infeasible even on dedicated slots — nothing to check.
    }
  }
}

}  // namespace
