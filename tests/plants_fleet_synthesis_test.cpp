// Tests for the utilization-controlled fleet generator
// (plants/fleet_synthesis.hpp): UUniFast share properties, the
// documented achieved-utilization tolerance, per-seed determinism, the
// per-family tent invariants every drawn application must satisfy, the
// dedicated-slot schedulability guarantee, and the cached
// sched_fleet_batch fixture (one draw shared across requesters).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/schedulability.hpp"
#include "experiments/fixtures.hpp"
#include "plants/fleet_synthesis.hpp"
#include "plants/table1.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::plants;

// The documented reproduction tolerance of the generator (see
// fleet_synthesis.hpp): the achieved utilization is the target up to
// floating-point summation error.
double utilization_tolerance(double target) { return 1e-9 * std::max(1.0, target); }

TEST(UUniFastTest, SharesSumToTheTotalAndStayPositive) {
  Rng rng(42);
  for (const double total : {0.3, 1.0, 2.5, 6.0}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{10},
                                std::size_t{64}}) {
      const auto shares = uunifast(rng, n, total);
      ASSERT_EQ(shares.size(), n);
      double sum = 0.0;
      for (const double share : shares) {
        EXPECT_GE(share, 0.0);
        EXPECT_LE(share, total + 1e-12);
        sum += share;
      }
      EXPECT_NEAR(sum, total, utilization_tolerance(total)) << "n=" << n;
    }
  }
  EXPECT_THROW(uunifast(rng, 0, 1.0), InvalidArgument);
  EXPECT_THROW(uunifast(rng, 3, 0.0), InvalidArgument);
}

TEST(UUniFastTest, ConsumesExactlyNMinusOneDraws) {
  // The draw count is part of the generator's format contract: a change
  // shifts every downstream draw and silently invalidates cached fleets.
  Rng a(7), b(7);
  (void)uunifast(a, 5, 1.0);
  for (int i = 0; i < 4; ++i) (void)b.uniform(0.0, 1.0);
  EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(FleetSynthesisTest, AchievedUtilizationHitsTheTargetWithinTolerance) {
  FleetSynthesisSpec spec;
  for (const double target : {0.5, 1.0, 2.0, 3.5}) {
    for (const std::size_t n : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
      if (target > static_cast<double>(n) * spec.max_app_utilization) continue;
      FleetSynthesisSpec point = spec;
      point.target_utilization = target;
      point.n_apps = n;
      for (const std::uint64_t seed : {1u, 99u, 4242u}) {
        const auto fleet = synthesize_sched_fleet(point, seed);
        ASSERT_EQ(fleet.apps.size(), n);
        EXPECT_DOUBLE_EQ(fleet.target_utilization, target);
        EXPECT_NEAR(fleet.achieved_utilization, target, utilization_tolerance(target))
            << "target=" << target << " n=" << n << " seed=" << seed;
        // The bookkeeping matches the per-app shares it summed.
        double sum = 0.0;
        for (const auto& app : fleet.apps) sum += app.utilization();
        EXPECT_DOUBLE_EQ(sum, fleet.achieved_utilization);
      }
    }
  }
}

TEST(FleetSynthesisTest, SameSeedReproducesTheFleetExactly) {
  FleetSynthesisSpec spec;
  spec.target_utilization = 2.0;
  spec.n_apps = 12;
  const auto a = synthesize_sched_fleet(spec, 77);
  const auto b = synthesize_sched_fleet(spec, 77);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    // Exact equality on purpose: the determinism contract is bit-identity.
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].family, b.apps[i].family);
    EXPECT_EQ(a.apps[i].r, b.apps[i].r);
    EXPECT_EQ(a.apps[i].deadline, b.apps[i].deadline);
    EXPECT_EQ(a.apps[i].xi_tt, b.apps[i].xi_tt);
    EXPECT_EQ(a.apps[i].xi_m, b.apps[i].xi_m);
    EXPECT_EQ(a.apps[i].k_p, b.apps[i].k_p);
    EXPECT_EQ(a.apps[i].xi_et, b.apps[i].xi_et);
  }
  const auto c = synthesize_sched_fleet(spec, 78);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.apps.size(); ++i)
    any_difference = any_difference || a.apps[i].r != c.apps[i].r;
  EXPECT_TRUE(any_difference) << "different seeds must draw different fleets";
}

TEST(FleetSynthesisTest, EveryAppSatisfiesTheTentAndRangeInvariants) {
  FleetSynthesisSpec spec;
  spec.target_utilization = 3.0;
  spec.n_apps = 10;
  for (const std::uint64_t seed : {3u, 1234u, 98765u}) {
    const auto fleet = synthesize_sched_fleet(spec, seed);
    for (const auto& app : fleet.apps) {
      // Period range and per-app utilization cap.
      EXPECT_GE(app.r, spec.period_lo);
      EXPECT_LE(app.r, spec.period_hi);
      EXPECT_LE(app.utilization(), spec.max_app_utilization + 1e-12);
      // Tent ordering: 0 < xi_tt < xi_m < xi_et, 0 < k_p < xi_et.
      EXPECT_GT(app.xi_tt, 0.0);
      EXPECT_LT(app.xi_tt, app.xi_m);
      EXPECT_LT(app.xi_m, app.xi_et);
      EXPECT_GT(app.k_p, 0.0);
      EXPECT_LT(app.k_p, app.xi_et);
      // Deadline: above the dedicated-slot response, at most one horizon.
      EXPECT_GE(app.deadline, 1.05 * app.xi_tt - 1e-12);
      EXPECT_LE(app.deadline, app.r + 1e-12);
    }
  }
}

TEST(FleetSynthesisTest, EveryDrawnAppIsSchedulableOnADedicatedSlot) {
  // The generator's design guarantee: acceptance curves measure PACKING
  // quality, never single-app infeasibility.
  FleetSynthesisSpec spec;
  spec.target_utilization = 3.5;
  spec.n_apps = 8;
  const auto fleet = synthesize_sched_fleet(spec, 11);
  const auto params = to_sched_params(fleet);
  for (const auto& app : params) {
    const auto analysis = analysis::analyze_slot({app});
    EXPECT_TRUE(analysis.all_schedulable) << app.name;
  }
}

TEST(FleetSynthesisTest, ToSchedParamsMapsEveryField) {
  FleetSynthesisSpec spec;
  spec.n_apps = 3;
  const auto fleet = synthesize_sched_fleet(spec, 5);
  const auto params = to_sched_params(fleet);
  ASSERT_EQ(params.size(), fleet.apps.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].name, fleet.apps[i].name);
    EXPECT_EQ(params[i].min_inter_arrival, fleet.apps[i].r);
    EXPECT_EQ(params[i].deadline, fleet.apps[i].deadline);
    ASSERT_NE(params[i].model, nullptr);
    // The model carries the tent: dwell at zero wait is xi_tt, the zero
    // crossing sits at xi_et.
    EXPECT_DOUBLE_EQ(params[i].model->dwell(0.0), fleet.apps[i].xi_tt);
    EXPECT_NEAR(params[i].model->zero_wait(), fleet.apps[i].xi_et,
                1e-9 * fleet.apps[i].xi_et);
  }
}

TEST(FleetSynthesisTest, FamilySelectionRespectsTheSpec) {
  FleetSynthesisSpec spec;
  spec.n_apps = 16;
  spec.families = {PlantFamily::kInvertedPendulum};
  const auto fleet = synthesize_sched_fleet(spec, 9);
  for (const auto& app : fleet.apps)
    EXPECT_EQ(app.family, PlantFamily::kInvertedPendulum);
}

TEST(FleetSynthesisTest, MalformedSpecsThrow) {
  FleetSynthesisSpec spec;
  spec.n_apps = 0;
  EXPECT_THROW(synthesize_sched_fleet(spec, 1), InvalidArgument);
  spec = {};
  spec.target_utilization = 0.0;
  EXPECT_THROW(synthesize_sched_fleet(spec, 1), InvalidArgument);
  spec = {};
  // No per-app split can reach target > n * cap.
  spec.n_apps = 2;
  spec.max_app_utilization = 0.5;
  spec.target_utilization = 1.5;
  EXPECT_THROW(synthesize_sched_fleet(spec, 1), InvalidArgument);
  spec = {};
  spec.period_lo = 10.0;
  spec.period_hi = 5.0;
  EXPECT_THROW(synthesize_sched_fleet(spec, 1), InvalidArgument);
  spec = {};
  spec.families.clear();
  EXPECT_THROW(synthesize_sched_fleet(spec, 1), InvalidArgument);
}

TEST(FamilyNameTest, RoundTripsAndRejectsUnknownNames) {
  for (const PlantFamily family :
       {PlantFamily::kScaledOscillator, PlantFamily::kUnderdampedResonant,
        PlantFamily::kInvertedPendulum}) {
    EXPECT_EQ(family_from_name(family_name(family)), family);
  }
  EXPECT_THROW(family_from_name("quadrotor"), InvalidArgument);
  EXPECT_THROW(family_from_name(""), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The cached batch fixture (experiments::sched_fleet_batch).

TEST(SchedFleetBatchTest, BatchIsCachedAndDeterministic) {
  FleetSynthesisSpec spec;
  spec.target_utilization = 1.5;
  spec.n_apps = 6;
  const auto a = experiments::sched_fleet_batch(spec, 4, 0xBA7C4);
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 4u);
  // Same request: the cache returns the IDENTICAL object, not a re-draw.
  const auto b = experiments::sched_fleet_batch(spec, 4, 0xBA7C4);
  EXPECT_EQ(a.get(), b.get());
  // Each trial matches a direct draw with the batch's per-trial seed.
  for (std::size_t t = 0; t < a->size(); ++t) {
    const auto direct =
        synthesize_sched_fleet(spec, runtime::task_seed(0xBA7C4, t));
    ASSERT_EQ((*a)[t].apps.size(), direct.apps.size());
    for (std::size_t i = 0; i < direct.apps.size(); ++i) {
      EXPECT_EQ((*a)[t].apps[i].r, direct.apps[i].r);
      EXPECT_EQ((*a)[t].apps[i].deadline, direct.apps[i].deadline);
      EXPECT_EQ((*a)[t].apps[i].xi_m, direct.apps[i].xi_m);
    }
  }
}

TEST(SchedFleetBatchTest, DistinctParametersGetDistinctCacheEntries) {
  FleetSynthesisSpec spec;
  spec.target_utilization = 1.5;
  spec.n_apps = 6;
  const auto base = experiments::sched_fleet_batch(spec, 3, 0xF00D);
  // Different seed, trials, or any generator knob: a different entry.
  EXPECT_NE(base.get(), experiments::sched_fleet_batch(spec, 3, 0xF00E).get());
  EXPECT_NE(base.get(), experiments::sched_fleet_batch(spec, 2, 0xF00D).get());
  FleetSynthesisSpec tweaked = spec;
  tweaked.deadline_frac_lo = 0.8;
  EXPECT_NE(base.get(), experiments::sched_fleet_batch(tweaked, 3, 0xF00D).get());
  FleetSynthesisSpec fewer_families = spec;
  fewer_families.families = {PlantFamily::kScaledOscillator};
  EXPECT_NE(base.get(),
            experiments::sched_fleet_batch(fewer_families, 3, 0xF00D).get());
}

}  // namespace
