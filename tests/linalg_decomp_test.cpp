// Unit and property tests for the LU and QR decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cps::NumericalError;
using cps::Rng;
using namespace cps::linalg;

Matrix random_matrix(Rng& rng, std::size_t n, double scale = 1.0) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-scale, scale);
  return m;
}

TEST(LuTest, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector b{5.0, 10.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, DeterminantMatchesCofactorExpansion) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 10.0}};
  EXPECT_NEAR(determinant(a), -3.0, 1e-10);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-14);
}

TEST(LuTest, InverseTimesSelfIsIdentity) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    Matrix a = random_matrix(rng, n) + Matrix::identity(n) * 3.0;  // well-conditioned
    const Matrix inv = inverse(a);
    EXPECT_TRUE((a * inv).approx_equal(Matrix::identity(n), 1e-9)) << "trial " << trial;
    EXPECT_TRUE((inv * a).approx_equal(Matrix::identity(n), 1e-9)) << "trial " << trial;
  }
}

TEST(LuTest, ResidualIsSmallOnRandomSystems) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    Matrix a = random_matrix(rng, n) + Matrix::identity(n) * 2.0;
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5, 5);
    const Vector x = solve(a, b);
    const Vector residual = a * x - b;
    EXPECT_LT(residual.norm(), 1e-9) << "trial " << trial;
  }
}

TEST(LuTest, SingularMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition lu(a), NumericalError);
  Matrix zero_row{{0.0, 0.0}, {1.0, 2.0}};
  EXPECT_THROW(LuDecomposition lu(zero_row), NumericalError);
}

TEST(LuTest, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition lu(Matrix(2, 3)), cps::DimensionMismatch);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};  // needs a row swap
  const Vector x = solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(determinant(a), -1.0, 1e-14);
}

TEST(LuTest, MatrixRhsSolve) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const Matrix x = solve(a, Matrix::identity(2));
  EXPECT_TRUE((a * x).approx_equal(Matrix::identity(2), 1e-12));
}

TEST(QrTest, ReconstructsInput) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(2, 7));
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(m)));
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2, 2);
    QrDecomposition qr(a);
    EXPECT_TRUE((qr.q() * qr.r()).approx_equal(a, 1e-10)) << "trial " << trial;
    // Q orthogonal.
    EXPECT_TRUE((qr.q().transpose() * qr.q()).approx_equal(Matrix::identity(m), 1e-10));
  }
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(19);
  Matrix a(5, 3);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-1, 1);
  const Matrix r = QrDecomposition(a).r();
  for (std::size_t i = 1; i < r.rows(); ++i)
    for (std::size_t j = 0; j < std::min<std::size_t>(i, r.cols()); ++j)
      EXPECT_NEAR(r(i, j), 0.0, 1e-12);
}

TEST(QrTest, SolveSquareMatchesLu) {
  Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  Vector b{9.0, 8.0};
  const Vector x_qr = QrDecomposition(a).solve(b);
  const Vector x_lu = solve(a, b);
  EXPECT_TRUE(x_qr.approx_equal(x_lu, 1e-10));
}

TEST(QrTest, LeastSquaresFitsLine) {
  // Fit y = 2x + 1 through noisy-free samples: exact recovery expected.
  Matrix a(4, 2);
  Vector b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0;
  }
  const Vector coeff = least_squares(a, b);
  EXPECT_NEAR(coeff[0], 2.0, 1e-12);
  EXPECT_NEAR(coeff[1], 1.0, 1e-12);
}

TEST(QrTest, LeastSquaresMinimizesResidual) {
  // Overdetermined inconsistent system: residual must be orthogonal to the
  // column space (normal equations hold).
  Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
  Vector b{1.0, 0.0, 2.0};
  const Vector x = least_squares(a, b);
  const Vector r = a * x - b;
  const Vector atr = a.transpose() * r;
  EXPECT_NEAR(atr.norm(), 0.0, 1e-10);
}

TEST(QrTest, RankDetection) {
  Matrix full{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(QrDecomposition(full).rank(), 2u);
  Matrix deficient{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  EXPECT_EQ(QrDecomposition(deficient).rank(), 1u);
}

TEST(QrTest, RankDeficientSolveThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(QrDecomposition(a).solve(Vector{1.0, 2.0}), NumericalError);
}

}  // namespace
