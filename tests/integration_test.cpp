// Cross-module integration tests: the full paper pipeline on the Table I
// fleet, consistency between the analytical worst cases and co-simulated
// behaviour, and the end-to-end reproduction invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/slot_allocation.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "plants/servo_motor.hpp"
#include "plants/disturbance.hpp"
#include "plants/table1.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::core;

/// Build the synthesized Table I fleet as ControlApplications.
std::vector<ControlApplication> synthesized_applications() {
  std::vector<ControlApplication> apps;
  for (const auto& item : plants::synthesize_fleet()) {
    auto design = control::design_hybrid_loops(item.plant, item.spec);
    TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    apps.emplace_back(item.target.name, std::move(design), req, item.x0);
  }
  return apps;
}

TEST(IntegrationTest, FullPipelineOnSynthesizedFleetMeetsAllDeadlines) {
  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));

  PipelineOptions options;
  options.cosim.horizon = 14.0;
  const PipelineResult result = design.run(options);

  ASSERT_EQ(result.summaries.size(), 6u);
  for (const auto& s : result.summaries)
    EXPECT_TRUE(s.curve_non_monotonic) << s.name << " curve should be non-monotonic";

  // The allocation uses at most 2/3 of the six dedicated slots.
  EXPECT_LE(result.slot_count(), 4u);
  for (const auto& analysis : result.allocation.analyses)
    EXPECT_TRUE(analysis.all_schedulable);

  ASSERT_TRUE(result.verification.has_value());
  EXPECT_TRUE(result.verification->all_deadlines_met);
}

TEST(IntegrationTest, CoSimulatedResponseRespectsAnalyticalWorstCase) {
  // For each app in the pipeline allocation, the co-simulated response
  // (disturbances at t = 0, which is benign compared to the analytical
  // adversarial scenario) must not exceed the analytical worst case.
  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));
  PipelineOptions options;
  options.cosim.horizon = 14.0;
  const PipelineResult result = design.run(options);
  ASSERT_TRUE(result.verification.has_value());

  for (const auto& app_result : result.verification->apps) {
    double analytical = 0.0;
    for (const auto& analysis : result.allocation.analyses)
      for (const auto& r : analysis.results)
        if (r.name == app_result.name) analytical = r.response;
    ASSERT_GT(analytical, 0.0) << app_result.name;
    EXPECT_LE(app_result.worst_response, analytical + 1e-9)
        << app_result.name << ": simulation exceeded the analytical worst case";
  }
}

TEST(IntegrationTest, PaperAllocationVerifiesOnSynthesizedPlants) {
  // Apply the paper's published 3-slot allocation (S1 = {C3, C6},
  // S2 = {C2, C4}, S3 = {C5, C1}) to the synthesized plants and verify by
  // co-simulation that all deadlines hold (Fig. 5).
  auto apps = synthesized_applications();
  CoSimulationOptions options;
  options.horizon = 14.0;
  CoSimulator cosim(options);
  const std::vector<std::pair<std::string, std::size_t>> slots{
      {"C3", 0}, {"C6", 0}, {"C2", 1}, {"C4", 1}, {"C5", 2}, {"C1", 2}};
  for (auto& app : apps) {
    for (const auto& [name, slot] : slots)
      if (app.name() == name) cosim.add_application(app, slot, {0.0});
  }
  const auto result = cosim.run();
  EXPECT_TRUE(result.all_deadlines_met);
  for (const auto& r : result.apps)
    EXPECT_TRUE(r.all_deadlines_met) << r.name << " missed its deadline";
}

TEST(IntegrationTest, MonotonicModelNeverBeatsNonMonotonicOnSlots) {
  // The paper's resource argument: the conservative monotonic model can
  // only require at least as many TT slots as the non-monotonic one.
  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));

  PipelineOptions non_mono;
  non_mono.verify = false;
  const auto slots_non_mono = design.run(non_mono).slot_count();

  PipelineOptions mono;
  mono.model_kind = ControlApplication::ModelKind::kConservativeMonotonic;
  mono.verify = false;
  const auto slots_mono = design.run(mono).slot_count();

  EXPECT_GE(slots_mono, slots_non_mono);
}

TEST(IntegrationTest, ConcaveEnvelopeIsAtLeastAsGoodAsTent) {
  // Envelope-granularity ablation invariant: the tighter concave hull can
  // never need more slots than the two-piece tent.
  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));

  PipelineOptions tent;
  tent.verify = false;
  const auto slots_tent = design.run(tent).slot_count();

  PipelineOptions hull;
  hull.model_kind = ControlApplication::ModelKind::kConcave;
  hull.verify = false;
  const auto slots_hull = design.run(hull).slot_count();

  EXPECT_LE(slots_hull, slots_tent);
}

TEST(IntegrationTest, ServoAppWorstCaseScenarioCoSim) {
  // Engineer the analytical worst case for a two-app slot and check the
  // co-simulated response stays within the analytical bound: the lower
  // priority app's disturbance arrives exactly when the higher-priority
  // app's dwell starts.
  auto design_a = plants::design_servo_loops();
  auto design_b = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  const linalg::Vector x0{exp.disturbance_angle, 0.0};
  ControlApplication hi("hi", std::move(design_a), {10.0, 3.0, exp.threshold}, x0);
  ControlApplication lo("lo", std::move(design_b), {10.0, 8.0, exp.threshold}, x0);

  hi.fit_model(ControlApplication::ModelKind::kNonMonotonic);
  lo.fit_model(ControlApplication::ModelKind::kNonMonotonic);
  const auto analysis = analysis::analyze_slot({hi.sched_params(), lo.sched_params()});
  ASSERT_TRUE(analysis.all_schedulable);
  const double lo_bound = analysis.results[1].response;

  CoSimulationOptions options;
  options.horizon = 12.0;
  CoSimulator cosim(options);
  cosim.add_application(hi, 0, {0.0});
  cosim.add_application(lo, 0, {0.0});  // simultaneous: lo must wait for hi
  const auto result = cosim.run();
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_LE(result.apps[1].worst_response, lo_bound + 1e-9);
  EXPECT_TRUE(result.apps[1].all_deadlines_met);
}

class SporadicCampaign : public ::testing::TestWithParam<int> {};

TEST_P(SporadicCampaign, RandomSporadicDisturbancesNeverExceedAnalyticalBound) {
  // Long-horizon property check of the whole analysis chain: random
  // sporadic disturbances (respecting each app's minimum inter-arrival
  // time) on the pipeline's own allocation — every observed response must
  // stay within the analytical worst case, and every deadline must hold.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 92821u + 5u);

  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));
  PipelineOptions options;
  options.verify = false;
  const PipelineResult pipeline = design.run(options);

  CoSimulationOptions cosim_options;
  cosim_options.horizon = 60.0;
  CoSimulator cosim(cosim_options);
  for (auto& app : design.applications()) {
    std::size_t slot = 0;
    for (std::size_t si = 0; si < pipeline.allocation.slots.size(); ++si)
      for (const auto& name : pipeline.allocation.slots[si])
        if (name == app.name()) slot = si;
    plants::SporadicDisturbance process(app.timing().min_inter_arrival,
                                        0.5 * app.timing().min_inter_arrival,
                                        Rng(rng.engine()()));
    cosim.add_application(app, slot, process.arrivals(cosim_options.horizon));
  }
  const CoSimulationResult result = cosim.run();

  for (const auto& app_result : result.apps) {
    double analytical = 0.0;
    for (const auto& analysis : pipeline.allocation.analyses)
      for (const auto& r : analysis.results)
        if (r.name == app_result.name) analytical = r.response;
    // A disturbance arriving mid-sample is only seen at the next control
    // step, so the measured response includes up to one sampling period of
    // alignment on top of the analytical (step-quantized) bound.
    const double h = design.applications().front().sampling_period();
    for (std::size_t d = 0; d < app_result.response_times.size(); ++d) {
      EXPECT_LE(app_result.response_times[d], analytical + h + 1e-9)
          << app_result.name << " disturbance " << d;
    }
    EXPECT_TRUE(app_result.all_deadlines_met) << app_result.name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, SporadicCampaign, ::testing::Range(0, 5));

TEST(IntegrationTest, ReportsRenderForTheFullFleet) {
  HybridCommDesign design;
  for (auto& app : synthesized_applications()) design.add_application(std::move(app));
  PipelineOptions options;
  options.cosim.horizon = 14.0;
  const PipelineResult result = design.run(options);
  EXPECT_FALSE(render_summaries(result.summaries).empty());
  EXPECT_FALSE(render_allocation(result.allocation).empty());
  ASSERT_TRUE(result.verification.has_value());
  EXPECT_FALSE(render_cosim(*result.verification).empty());
  for (const auto& app : result.verification->apps)
    EXPECT_FALSE(render_response_ascii(app, 0.1).empty());
}

}  // namespace
