// Unit tests for the core module: ControlApplication, the multi-app
// co-simulation (Fig. 1 state machine), the pipeline and the reports.
#include <gtest/gtest.h>

#include <cmath>

#include "core/application.hpp"
#include "core/co_simulation.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "plants/second_order.hpp"
#include "plants/servo_motor.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::core;

ControlApplication make_servo_app(const std::string& name, double r, double deadline) {
  auto design = plants::design_servo_loops();
  TimingRequirements req{r, deadline, 0.1};
  const plants::ServoExperiment exp;
  return ControlApplication(name, std::move(design), req,
                            linalg::Vector{exp.disturbance_angle, 0.0});
}

TEST(ApplicationTest, ConstructionValidation) {
  auto design = plants::design_servo_loops();
  const linalg::Vector x0{0.5, 0.0};
  EXPECT_THROW(ControlApplication("", design, {10.0, 5.0, 0.1}, x0), InvalidArgument);
  EXPECT_THROW(ControlApplication("a", design, {10.0, 5.0, 0.1}, linalg::Vector{0.5}),
               InvalidArgument);
  // The paper assumes deadline <= inter-arrival time.
  EXPECT_THROW(ControlApplication("a", design, {5.0, 10.0, 0.1}, x0), InvalidArgument);
  EXPECT_THROW(ControlApplication("a", design, {10.0, 5.0, -0.1}, x0), InvalidArgument);
}

TEST(ApplicationTest, DisturbedStateIsAugmentedWithZeroHeldInput) {
  const auto app = make_servo_app("A", 10.0, 5.0);
  EXPECT_EQ(app.disturbed_state().size(), 3u);
  EXPECT_DOUBLE_EQ(app.disturbed_state()[2], 0.0);
}

TEST(ApplicationTest, CurveMeasurementIsCached) {
  auto app = make_servo_app("A", 10.0, 5.0);
  const auto& c1 = app.measure_curve();
  const auto& c2 = app.measure_curve();
  EXPECT_EQ(&c1, &c2);
  EXPECT_TRUE(app.curve().has_value());
}

TEST(ApplicationTest, SchedParamsRequireModel) {
  auto app = make_servo_app("A", 10.0, 5.0);
  EXPECT_THROW(app.sched_params(), InvalidArgument);
  app.fit_model(ControlApplication::ModelKind::kNonMonotonic);
  const auto params = app.sched_params();
  EXPECT_EQ(params.name, "A");
  EXPECT_DOUBLE_EQ(params.deadline, 5.0);
  ASSERT_NE(params.model, nullptr);
  EXPECT_GT(params.model->max_dwell(), 0.0);
}

TEST(ApplicationTest, AllModelKindsFitAndDominate) {
  auto app = make_servo_app("A", 10.0, 5.0);
  using MK = ControlApplication::ModelKind;
  for (MK kind : {MK::kNonMonotonic, MK::kConservativeMonotonic, MK::kConcave}) {
    const auto model = app.fit_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_TRUE(model->dominates(*app.curve(), 1e-9)) << model->name();
  }
  // The simple monotonic fit exists but is allowed to violate.
  EXPECT_NE(app.fit_model(MK::kSimpleMonotonic), nullptr);
}

TEST(CoSimTest, SingleAppSettlesNearPureTtTime) {
  // Alone on its slot with a disturbance at t = 0 the app is granted TT
  // immediately and settles in ~xi_tt.
  auto app = make_servo_app("solo", 10.0, 5.0);
  CoSimulationOptions options;
  options.horizon = 6.0;
  CoSimulator cosim(options);
  cosim.add_application(app, 0, {0.0});
  const auto result = cosim.run();
  ASSERT_EQ(result.apps.size(), 1u);
  EXPECT_TRUE(result.apps[0].all_deadlines_met);
  EXPECT_NEAR(result.apps[0].worst_response, 0.68, 0.05);
  // The transient must have used the TT slot.
  bool used_tt = false;
  for (const auto& s : result.apps[0].trajectory.samples())
    if (s.mode == sim::Mode::kTimeTriggered) used_tt = true;
  EXPECT_TRUE(used_tt);
}

TEST(CoSimTest, ContendingAppIsDelayedByNonPreemption) {
  // Two identical apps on one slot, simultaneous disturbances: the
  // lower-priority one (longer deadline) must wait and respond later.
  auto hi = make_servo_app("hi", 10.0, 3.0);
  auto lo = make_servo_app("lo", 10.0, 8.0);
  CoSimulationOptions options;
  options.horizon = 9.0;
  CoSimulator cosim(options);
  cosim.add_application(hi, 0, {0.0});
  cosim.add_application(lo, 0, {0.0});
  const auto result = cosim.run();
  const auto& r_hi = result.apps[0];
  const auto& r_lo = result.apps[1];
  EXPECT_LT(r_hi.worst_response, r_lo.worst_response);
  // The high-priority app responds like a solo app.
  EXPECT_NEAR(r_hi.worst_response, 0.68, 0.05);
}

TEST(CoSimTest, SeparateSlotsRemoveTheInterference) {
  auto a = make_servo_app("a", 10.0, 3.0);
  auto b = make_servo_app("b", 10.0, 8.0);
  CoSimulationOptions options;
  options.horizon = 9.0;
  CoSimulator cosim(options);
  cosim.add_application(a, 0, {0.0});
  cosim.add_application(b, 1, {0.0});
  const auto result = cosim.run();
  EXPECT_NEAR(result.apps[0].worst_response, result.apps[1].worst_response, 0.05);
}

TEST(CoSimTest, NoDisturbanceMeansNoTransient) {
  auto app = make_servo_app("quiet", 10.0, 5.0);
  CoSimulationOptions options;
  options.horizon = 2.0;
  CoSimulator cosim(options);
  cosim.add_application(app, 0, {});
  const auto result = cosim.run();
  EXPECT_TRUE(result.apps[0].response_times.empty());
  EXPECT_TRUE(result.apps[0].all_deadlines_met);
  for (const auto& s : result.apps[0].trajectory.samples()) {
    EXPECT_EQ(s.mode, sim::Mode::kEventTriggered);
    EXPECT_NEAR(s.norm, 0.0, 1e-12);
  }
}

TEST(CoSimTest, BusDelaysAreBoundedByWorstCase) {
  auto app = make_servo_app("bus", 10.0, 5.0);
  CoSimulationOptions options;
  options.horizon = 4.0;
  CoSimulator cosim(options);
  cosim.add_application(app, 0, {0.0});
  const auto result = cosim.run();
  // Static: at most one cycle + slot; dynamic: bounded by the analysis.
  EXPECT_GT(result.apps[0].max_tt_delay, 0.0);
  EXPECT_LE(result.apps[0].max_tt_delay, 0.005 + 0.0002 + 1e-12);
  EXPECT_GT(result.apps[0].max_et_delay, 0.0);
  EXPECT_LT(result.apps[0].max_et_delay, 0.02);  // below the control period
}

TEST(CoSimTest, LaterDisturbanceAlsoHandled) {
  auto app = make_servo_app("late", 10.0, 5.0);
  CoSimulationOptions options;
  options.horizon = 10.0;
  CoSimulator cosim(options);
  cosim.add_application(app, 0, {3.0});
  const auto result = cosim.run();
  ASSERT_EQ(result.apps[0].response_times.size(), 1u);
  EXPECT_NEAR(result.apps[0].response_times[0], 0.68, 0.05);
}

TEST(CoSimTest, ValidationErrors) {
  CoSimulationOptions options;
  options.horizon = 2.0;
  CoSimulator cosim(options);
  EXPECT_THROW(cosim.run(), InvalidArgument);  // no apps
  auto app = make_servo_app("v", 10.0, 5.0);
  EXPECT_THROW(cosim.add_application(app, 0, {5.0}), InvalidArgument);  // beyond horizon
  CoSimulationOptions bad;
  bad.release_factor = 0.0;
  EXPECT_THROW(CoSimulator{bad}, InvalidArgument);
}

TEST(PipelineTest, ServoPairEndToEnd) {
  HybridCommDesign design;
  design.add_application(make_servo_app("A1", 10.0, 3.0));
  design.add_application(make_servo_app("A2", 10.0, 8.0));
  PipelineOptions options;
  options.cosim.horizon = 10.0;
  const PipelineResult result = design.run(options);
  ASSERT_EQ(result.summaries.size(), 2u);
  EXPECT_TRUE(result.summaries[0].curve_non_monotonic);
  EXPECT_GE(result.slot_count(), 1u);
  ASSERT_TRUE(result.verification.has_value());
  EXPECT_TRUE(result.verification->all_deadlines_met);
}

TEST(PipelineTest, EmptyPipelineThrows) {
  HybridCommDesign design;
  EXPECT_THROW(design.run(), InvalidArgument);
}

TEST(ReportTest, RenderingsContainTheKeyFigures) {
  HybridCommDesign design;
  design.add_application(make_servo_app("A1", 10.0, 3.0));
  design.add_application(make_servo_app("A2", 10.0, 8.0));
  PipelineOptions options;
  options.cosim.horizon = 10.0;
  const PipelineResult result = design.run(options);

  const std::string summaries = render_summaries(result.summaries);
  EXPECT_NE(summaries.find("A1"), std::string::npos);
  EXPECT_NE(summaries.find("xi_TT"), std::string::npos);

  const std::string alloc = render_allocation(result.allocation);
  EXPECT_NE(alloc.find("TT slots required"), std::string::npos);
  EXPECT_NE(alloc.find("S1"), std::string::npos);

  ASSERT_TRUE(result.verification.has_value());
  const std::string cosim = render_cosim(*result.verification);
  EXPECT_NE(cosim.find("worst response"), std::string::npos);

  const std::string ascii =
      render_response_ascii(result.verification->apps[0], 0.1);
  EXPECT_NE(ascii.find("A1"), std::string::npos);
  EXPECT_NE(ascii.find("T"), std::string::npos);  // TT markers present
}

}  // namespace
