// Allocation-guard tests for the per-step simulation loops.
//
// This binary replaces the global operator new/new[] with counting
// wrappers (malloc-backed, so ASan still tracks every block) and asserts
// the core contract of the PR-3 rework: the settle, trajectory and jitter
// inner loops — scalar AND batched (linalg/batch_kernels.hpp) — perform
// ZERO heap allocations per step.  The assertion is
// made robust by comparison, not by absolute counts: running the same
// kernel for N and for 4N steps must allocate the identical number of
// blocks (the setup cost), so any per-step allocation fails the test by a
// margin of thousands.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "linalg/batch_kernels.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/settling.hpp"
#include "sim/switched_system.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cps;

/// Allocations performed by `f()`.
template <typename F>
std::size_t allocations_of(F&& f) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  f();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

struct ServoFixture {
  ServoFixture()
      : design(plants::design_servo_loops()),
        sys(design.a_et, design.a_tt, design.state_dim),
        x0(plants::servo_disturbed_state()) {}
  control::HybridLoopDesign design;
  sim::SwitchedLinearSystem sys;
  linalg::Vector x0;
};

TEST(AllocGuard, SettleLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  // The servo ET loop settles slowly; cap the step budget instead and
  // compare equal-work calls of different lengths.  A tiny threshold keeps
  // the loop running to the cap.
  sim::SettlingOptions short_opts;
  short_opts.threshold = 1e-12;
  short_opts.max_steps = 500;
  sim::SettlingOptions long_opts = short_opts;
  long_opts.max_steps = 2000;

  // Warm-up (first call may lazily initialize library internals).
  (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, short_opts);

  const std::size_t short_allocs = allocations_of(
      [&] { (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, short_opts); });
  const std::size_t long_allocs = allocations_of(
      [&] { (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, long_opts); });
  EXPECT_EQ(short_allocs, long_allocs) << "settle loop allocates per step";
}

TEST(AllocGuard, TrajectoryLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  (void)f.sys.simulate(f.x0, 40, 100, 0.02);

  // simulate() reserves the sample storage up front (one allocation whose
  // SIZE depends on the step count) and then must not allocate per step:
  // the allocation COUNT is step-count-independent.
  const std::size_t short_allocs =
      allocations_of([&] { (void)f.sys.simulate(f.x0, 40, 500, 0.02); });
  const std::size_t long_allocs =
      allocations_of([&] { (void)f.sys.simulate(f.x0, 40, 2000, 0.02); });
  EXPECT_EQ(short_allocs, long_allocs) << "trajectory loop allocates per step";
}

TEST(AllocGuard, JitterLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  const sim::JitteryClosedLoop loop(plants::make_servo_motor(), 0.02,
                                    {0.0, 0.005, 0.01, 0.015, 0.02}, f.design.gain_et);
  // An unreachable threshold pins the loop to max_steps, making the two
  // runs differ only in step count.
  Rng rng(0x90A7ULL);
  (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 100);

  const std::size_t short_allocs = allocations_of(
      [&] { (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 500); });
  const std::size_t long_allocs = allocations_of(
      [&] { (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 2000); });
  EXPECT_EQ(short_allocs, long_allocs) << "jitter loop allocates per step";
}

TEST(AllocGuard, BatchedSettleLoopAllocatesNothingOnceBuffersAreWarm) {
  const ServoFixture f;
  constexpr std::size_t W = linalg::kSimdWidth;
  const std::size_t dim = f.design.a_et.rows();
  // Warm workspace: both SoA buffers sized to the state dimension, as the
  // dwell/wait sweep workspace keeps them between curves.
  linalg::BatchVec state(dim), scratch(dim);
  std::vector<double> x0(dim, 1.0);
  sim::SettlingOptions opts;
  opts.threshold = 1e-12;  // unreachable: pins the loop to max_steps
  opts.max_steps = 2000;
  std::optional<std::size_t> results[W];

  for (std::size_t l = 0; l < W; ++l) state.load_lane(l, x0.data());
  sim::detail::settle_batch(f.design.a_et, state, scratch, f.design.state_dim, opts, W,
                            results);

  const std::size_t allocs = allocations_of([&] {
    for (std::size_t l = 0; l < W; ++l) state.load_lane(l, x0.data());
    sim::detail::settle_batch(f.design.a_et, state, scratch, f.design.state_dim, opts, W,
                              results);
  });
  EXPECT_EQ(allocs, 0u) << "batched settle loop allocates with warm buffers";
}

TEST(AllocGuard, BatchedTrajectoryLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  constexpr std::size_t W = linalg::kSimdWidth;
  std::vector<linalg::Vector> x0s(W, f.x0);
  (void)f.sys.simulate_batch(x0s.data(), W, 40, 100, 0.02);

  // Like the scalar trajectory guard: sample storage is reserved up front
  // (allocation SIZE depends on the step count), then the lockstep loop
  // must not allocate per step — the COUNT is step-count-independent.
  const std::size_t short_allocs =
      allocations_of([&] { (void)f.sys.simulate_batch(x0s.data(), W, 40, 500, 0.02); });
  const std::size_t long_allocs =
      allocations_of([&] { (void)f.sys.simulate_batch(x0s.data(), W, 40, 2000, 0.02); });
  EXPECT_EQ(short_allocs, long_allocs) << "batched trajectory loop allocates per step";
}

TEST(AllocGuard, BatchedTrajectoryWorkspaceRecyclesSampleStorage) {
  const ServoFixture f;
  constexpr std::size_t W = linalg::kSimdWidth;
  std::vector<linalg::Vector> x0s(W, f.x0);
  sim::TrajectoryBatchWorkspace workspace;
  auto warmup = f.sys.simulate_batch(x0s.data(), W, 40, 500, 0.02, workspace);
  for (auto& traj : warmup) workspace.recycle(std::move(traj));

  // Warm workspace: the per-lane sample vectors come back from the pool
  // with their capacity intact, so a same-shape call performs only the
  // small fixed-count bookkeeping allocations (result vector + lane
  // table), not W sample-storage allocations — and recycling keeps it
  // that way call after call.
  const std::size_t warm_allocs = allocations_of([&] {
    auto trajs = f.sys.simulate_batch(x0s.data(), W, 40, 500, 0.02, workspace);
    for (auto& traj : trajs) workspace.recycle(std::move(traj));
  });
  EXPECT_LE(warm_allocs, 3u) << "warm workspace call re-allocates sample storage";
}

TEST(AllocGuard, BatchedKernelsAllocateNothingOnceShaped) {
  const ServoFixture f;
  constexpr std::size_t W = linalg::kSimdWidth;
  const std::size_t n = f.design.a_et.rows();
  linalg::BatchMat a(n, n), b(n, n), out;
  linalg::BatchVec x(n), v_out(n);
  double lane_scale[W];
  std::vector<double> x0(n, 0.5);
  for (std::size_t l = 0; l < W; ++l) {
    a.load_lane(l, f.design.a_et);
    b.load_lane(l, f.design.a_tt);
    x.load_lane(l, x0.data());
    lane_scale[l] = 0.99;
  }
  // First calls shape the outputs; the steady state is under test.
  linalg::batch_multiply_into(a, b, out);
  linalg::batch_apply_into(a, x, v_out);

  const std::size_t kernel_allocs = allocations_of([&] {
    for (int i = 0; i < 100; ++i) {
      linalg::batch_multiply_into(a, b, out);
      linalg::batch_apply_into(a, x, v_out);
      linalg::batch_apply_shared_into(f.design.a_et, x, v_out);
      linalg::batch_add_scaled_into(a, b, 0.5);
      linalg::batch_add_identity_into(a);
      linalg::batch_scale_lanes(a, lane_scale);
    }
  });
  EXPECT_EQ(kernel_allocs, 0u);
}

TEST(AllocGuard, InPlaceKernelsAllocateNothingOnceShaped) {
  const ServoFixture f;
  const linalg::Matrix& a = f.design.a_et;
  const linalg::Matrix& b = f.design.a_tt;
  linalg::Matrix m_out;
  linalg::Vector v_out;
  linalg::Matrix acc = a;
  // First calls shape the outputs (inline storage: still no heap for
  // these 3x3 fixtures, but the contract under test is the steady state).
  linalg::multiply_into(a, b, m_out);
  linalg::apply_into(a, f.x0, v_out);

  const std::size_t kernel_allocs = allocations_of([&] {
    for (int i = 0; i < 100; ++i) {
      linalg::multiply_into(a, b, m_out);
      linalg::multiply_transpose_into(a, b, m_out);
      linalg::transpose_multiply_into(a, b, m_out);
      linalg::transpose_into(a, m_out);
      linalg::add_scaled_into(acc, b, 0.5);
      linalg::apply_into(a, f.x0, v_out);
      (void)linalg::max_abs_diff(a, b);
    }
  });
  EXPECT_EQ(kernel_allocs, 0u);
}

TEST(AllocGuard, InlineMatrixArithmeticNeverTouchesTheHeap) {
  // Whole-object arithmetic on inline-sized (<= 8x8) matrices and
  // (<= 8) vectors is allocation-free even through the operator forms.
  const linalg::Matrix a(8, 8, 1.25);
  const linalg::Matrix b(8, 8, -0.5);
  const linalg::Vector v(8, 2.0);
  const std::size_t allocs = allocations_of([&] {
    for (int i = 0; i < 50; ++i) {
      linalg::Matrix c = a * b;
      c += a;
      c *= 0.99;
      linalg::Matrix d = c.transpose();
      c.swap(d);
      linalg::Vector w = c * v;
      (void)w;
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
