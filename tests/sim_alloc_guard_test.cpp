// Allocation-guard tests for the per-step simulation loops.
//
// This binary replaces the global operator new/new[] with counting
// wrappers (malloc-backed, so ASan still tracks every block) and asserts
// the core contract of the PR-3 rework: the settle, trajectory and jitter
// inner loops perform ZERO heap allocations per step.  The assertion is
// made robust by comparison, not by absolute counts: running the same
// kernel for N and for 4N steps must allocate the identical number of
// blocks (the setup cost), so any per-step allocation fails the test by a
// margin of thousands.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/settling.hpp"
#include "sim/switched_system.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cps;

/// Allocations performed by `f()`.
template <typename F>
std::size_t allocations_of(F&& f) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  f();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

struct ServoFixture {
  ServoFixture()
      : design(plants::design_servo_loops()),
        sys(design.a_et, design.a_tt, design.state_dim),
        x0(plants::servo_disturbed_state()) {}
  control::HybridLoopDesign design;
  sim::SwitchedLinearSystem sys;
  linalg::Vector x0;
};

TEST(AllocGuard, SettleLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  // The servo ET loop settles slowly; cap the step budget instead and
  // compare equal-work calls of different lengths.  A tiny threshold keeps
  // the loop running to the cap.
  sim::SettlingOptions short_opts;
  short_opts.threshold = 1e-12;
  short_opts.max_steps = 500;
  sim::SettlingOptions long_opts = short_opts;
  long_opts.max_steps = 2000;

  // Warm-up (first call may lazily initialize library internals).
  (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, short_opts);

  const std::size_t short_allocs = allocations_of(
      [&] { (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, short_opts); });
  const std::size_t long_allocs = allocations_of(
      [&] { (void)sim::settling_step(f.design.a_et, f.x0, f.design.state_dim, long_opts); });
  EXPECT_EQ(short_allocs, long_allocs) << "settle loop allocates per step";
}

TEST(AllocGuard, TrajectoryLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  (void)f.sys.simulate(f.x0, 40, 100, 0.02);

  // simulate() reserves the sample storage up front (one allocation whose
  // SIZE depends on the step count) and then must not allocate per step:
  // the allocation COUNT is step-count-independent.
  const std::size_t short_allocs =
      allocations_of([&] { (void)f.sys.simulate(f.x0, 40, 500, 0.02); });
  const std::size_t long_allocs =
      allocations_of([&] { (void)f.sys.simulate(f.x0, 40, 2000, 0.02); });
  EXPECT_EQ(short_allocs, long_allocs) << "trajectory loop allocates per step";
}

TEST(AllocGuard, JitterLoopIsAllocationFreePerStep) {
  const ServoFixture f;
  const sim::JitteryClosedLoop loop(plants::make_servo_motor(), 0.02,
                                    {0.0, 0.005, 0.01, 0.015, 0.02}, f.design.gain_et);
  // An unreachable threshold pins the loop to max_steps, making the two
  // runs differ only in step count.
  Rng rng(0x90A7ULL);
  (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 100);

  const std::size_t short_allocs = allocations_of(
      [&] { (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 500); });
  const std::size_t long_allocs = allocations_of(
      [&] { (void)loop.settle_under_random_delays(f.x0, 1e-15, rng, 2000); });
  EXPECT_EQ(short_allocs, long_allocs) << "jitter loop allocates per step";
}

TEST(AllocGuard, InPlaceKernelsAllocateNothingOnceShaped) {
  const ServoFixture f;
  const linalg::Matrix& a = f.design.a_et;
  const linalg::Matrix& b = f.design.a_tt;
  linalg::Matrix m_out;
  linalg::Vector v_out;
  linalg::Matrix acc = a;
  // First calls shape the outputs (inline storage: still no heap for
  // these 3x3 fixtures, but the contract under test is the steady state).
  linalg::multiply_into(a, b, m_out);
  linalg::apply_into(a, f.x0, v_out);

  const std::size_t kernel_allocs = allocations_of([&] {
    for (int i = 0; i < 100; ++i) {
      linalg::multiply_into(a, b, m_out);
      linalg::multiply_transpose_into(a, b, m_out);
      linalg::transpose_multiply_into(a, b, m_out);
      linalg::transpose_into(a, m_out);
      linalg::add_scaled_into(acc, b, 0.5);
      linalg::apply_into(a, f.x0, v_out);
      (void)linalg::max_abs_diff(a, b);
    }
  });
  EXPECT_EQ(kernel_allocs, 0u);
}

TEST(AllocGuard, InlineMatrixArithmeticNeverTouchesTheHeap) {
  // Whole-object arithmetic on inline-sized (<= 8x8) matrices and
  // (<= 8) vectors is allocation-free even through the operator forms.
  const linalg::Matrix a(8, 8, 1.25);
  const linalg::Matrix b(8, 8, -0.5);
  const linalg::Vector v(8, 2.0);
  const std::size_t allocs = allocations_of([&] {
    for (int i = 0; i < 50; ++i) {
      linalg::Matrix c = a * b;
      c += a;
      c *= 0.99;
      linalg::Matrix d = c.transpose();
      c.swap(d);
      linalg::Vector w = c * v;
      (void)w;
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
