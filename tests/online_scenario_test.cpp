// Scenario-script validation tests: the malformed-scenario table (every
// broken script must die with a loud "<source>:<line>:" TomlError, never
// a crash or a half-run), the full-schema happy path, the fault
// application helpers, and the three-way seed precedence of
// effective_scenario_seed ("explicit flags win").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/scenario.hpp"
#include "runtime/experiment.hpp"
#include "util/toml.hpp"

namespace {

using namespace cps;
using cps::online::ScenarioSpec;
using cps::util::TomlError;

/// A minimal valid header (lines 1-8); cases append events below it.
std::string base(const std::string& events) {
  return
      "scenario_version = 1\n"  // 1
      "[scenario]\n"            // 2
      "name = \"t\"\n"          // 3
      "ticks = 20\n"            // 4
      "tick_seconds = 0.5\n"    // 5
      "[fleet]\n"               // 6
      "n_apps = 4\n"            // 7
      "utilization = 1.2\n" +   // 8
      events;
}

ScenarioSpec parse_scenario(const std::string& text) {
  return online::make_scenario(util::parse_toml(text, "s.toml"), "s.toml");
}

struct BrokenScript {
  std::string text;
  const char* expected_substring;
};

TEST(ScenarioValidationTest, EveryBrokenScriptFailsLoudlyWithSourceAndLine) {
  const std::vector<BrokenScript> cases = {
      // -- header-level breakage --
      {"[scenario]\nname = \"t\"\n", "missing required key 'scenario_version'"},
      {"scenario_version = 2\n", "unsupported scenario_version 2"},
      {base("bogus = 1\n"), "unknown key 'fleet.bogus'"},
      {base("[typo]\nx = 1\n"), "unknown key 'typo.x'"},
      {"scenario_version = 1\n[fleet]\nn_apps = 4\nutilization = 1.2\n",
       "missing required key 'scenario.name'"},
      {"scenario_version = 1\n[scenario]\nname = \"\"\nticks = 20\n"
       "tick_seconds = 0.5\n[fleet]\nn_apps = 4\nutilization = 1.2\n",
       "scenario.name must be non-empty"},
      {"scenario_version = 1\n[scenario]\nname = \"t\"\nticks = 0\n"
       "tick_seconds = 0.5\n[fleet]\nn_apps = 4\nutilization = 1.2\n",
       "scenario.ticks must be in [1, 1000000]"},
      {"scenario_version = 1\n[scenario]\nname = \"t\"\nticks = 20\n"
       "[fleet]\nn_apps = 4\nutilization = 1.2\n",
       "scenario.tick_seconds must be > 0"},
      {"scenario_version = 1\n[scenario]\nname = \"t\"\nticks = 20\n"
       "tick_seconds = 0.5\nseed = -1\n[fleet]\nn_apps = 4\nutilization = 1.2\n",
       "scenario.seed must be >= 0"},
      {"scenario_version = 1\n[scenario]\nname = \"t\"\nticks = 20\n"
       "tick_seconds = 0.5\n[fleet]\nutilization = 1.2\n",
       "fleet.n_apps must be in [1, 64]"},
      {"scenario_version = 1\n[scenario]\nname = \"t\"\nticks = 20\n"
       "tick_seconds = 0.5\n[fleet]\nn_apps = 4\nutilization = 9.0\n",
       "exceeds 0.95 * n_apps"},
      // -- event-level breakage --
      {base("[[event]]\nat_tick = 3\n"), "missing required key 'kind'"},
      {base("[[event]]\nat_tick = 3\nkind = \"melt\"\n"),
       "unknown event kind 'melt' (valid: drop_slot, drop_frames, delay_frames, "
       "drift, join, leave)"},
      {base("[[event]]\nkind = \"drop_slot\"\n"), "missing required key 'at_tick'"},
      {base("[[event]]\nat_tick = 25\nkind = \"drop_slot\"\n"),
       "at_tick 25 is past the scenario's 20 ticks"},
      {base("[[event]]\nat_tick = 9\nkind = \"drop_slot\"\n"
            "[[event]]\nat_tick = 4\nkind = \"drop_slot\"\n"),
       "non-decreasing at_tick order"},
      {base("[[event]]\nat_tick = 3\nkind = \"drop_slot\"\nfactor = 2.0\n"),
       "key 'event.0.factor' is not valid for a drop_slot event"},
      {base("[[event]]\nat_tick = 3\nkind = \"drop_frames\"\napp = \"G0\"\n"),
       "drop_frames event is missing required key 'factor'"},
      {base("[[event]]\nat_tick = 3\nkind = \"drop_frames\"\napp = \"G0\"\n"
            "factor = 0.5\n"),
       "drop_frames factor must be >= 1"},
      {base("[[event]]\nat_tick = 3\nkind = \"delay_frames\"\napp = \"G0\"\n"
            "delay = 0.0\n"),
       "delay_frames delay must be > 0"},
      {base("[[event]]\nat_tick = 3\nkind = \"drift\"\napp = \"G0\"\nfactor = 0.0\n"),
       "drift factor must be > 0"},
      {base("[[event]]\nat_tick = 3\nkind = \"join\"\napp = \"H\"\nr = 10.0\n"
            "deadline = 8.0\nxi_tt = 2.0\nxi_m = 1.0\nk_p = 0.2\nxi_et = 3.0\n"),
       "join xi_m must be >= xi_tt"},
      {base("[[event]]\nat_tick = 3\nkind = \"join\"\napp = \"G2\"\nr = 10.0\n"
            "deadline = 8.0\nxi_tt = 0.5\nxi_m = 1.5\nk_p = 0.2\nxi_et = 3.0\n"),
       "join app 'G2' is already in the fleet at tick 3"},
      {base("[[event]]\nat_tick = 3\nkind = \"drift\"\napp = \"G9\"\nfactor = 1.1\n"),
       "event targets app 'G9', which is not in the fleet at tick 3"},
      {base("[[event]]\nat_tick = 3\nkind = \"leave\"\napp = \"G1\"\n"
            "[[event]]\nat_tick = 5\nkind = \"drift\"\napp = \"G1\"\nfactor = 1.1\n"),
       "app 'G1', which is not in the fleet at tick 5"},
      // -- parse-level breakage of the [[event]] extension --
      {base("[event]\nat_tick = 3\n"
            "[[event]]\nat_tick = 5\nkind = \"drop_slot\"\n"),
       "already a plain [section]"},
  };
  for (const auto& test_case : cases) {
    try {
      parse_scenario(test_case.text);
      FAIL() << "no error for:\n" << test_case.text;
    } catch (const TomlError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(test_case.expected_substring), std::string::npos)
          << "script:\n" << test_case.text << "\nerror: " << what;
      EXPECT_EQ(what.rfind("s.toml:", 0), 0u)
          << "error must lead with '<source>:<line>:': " << what;
    }
  }
}

TEST(ScenarioValidationTest, ErrorsBlameTheOffendingLine) {
  // The base header is lines 1-8; the [[event]] header lands on line 9
  // and its kind key on line 11.
  try {
    parse_scenario(base("[[event]]\nat_tick = 3\nkind = \"melt\"\n"));
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_EQ(std::string(error.what()).rfind("s.toml:11:", 0), 0u) << error.what();
  }
  // A MISSING key blames the [[event]] header line.
  try {
    parse_scenario(base("[[event]]\nat_tick = 3\n"));
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    EXPECT_EQ(std::string(error.what()).rfind("s.toml:9:", 0), 0u) << error.what();
  }
}

TEST(ScenarioValidationTest, FullSchemaRoundTrips) {
  const ScenarioSpec scenario = parse_scenario(
      "scenario_version = 1\n"
      "[scenario]\n"
      "name = \"full\"\n"
      "ticks = 40\n"
      "tick_seconds = 0.25\n"
      "seed = 9\n"
      "[fleet]\n"
      "n_apps = 4\n"
      "utilization = 1.2\n"
      "slot_budget = 5\n"
      "[[event]]\nat_tick = 0\nkind = \"drop_slot\"\n"
      "[[event]]\nat_tick = 5\nkind = \"drop_frames\"\napp = \"G0\"\nfactor = 1.5\n"
      "[[event]]\nat_tick = 5\nkind = \"delay_frames\"\napp = \"G1\"\ndelay = 0.25\n"
      "[[event]]\nat_tick = 8\nkind = \"drift\"\napp = \"G2\"\nfactor = 0.8\n"
      "[[event]]\nat_tick = 10\nkind = \"join\"\napp = \"H\"\nr = 10.0\n"
      "deadline = 8.0\nxi_tt = 0.5\nxi_m = 1.5\nk_p = 0.5\nxi_et = 2.0\n"
      "[[event]]\nat_tick = 12\nkind = \"leave\"\napp = \"H\"\n");
  EXPECT_EQ(scenario.name, "full");
  EXPECT_EQ(scenario.source, "s.toml");
  EXPECT_EQ(scenario.ticks, 40u);
  EXPECT_DOUBLE_EQ(scenario.tick_seconds, 0.25);
  EXPECT_TRUE(scenario.has_seed);
  EXPECT_EQ(scenario.seed, 9u);
  EXPECT_EQ(scenario.n_apps, 4u);
  EXPECT_DOUBLE_EQ(scenario.utilization, 1.2);
  EXPECT_EQ(scenario.slot_budget, 5u);
  ASSERT_EQ(scenario.events.size(), 6u);
  EXPECT_EQ(scenario.events[0].kind, online::EventKind::kDropSlot);
  EXPECT_EQ(scenario.events[1].kind, online::EventKind::kDropFrames);
  EXPECT_DOUBLE_EQ(scenario.events[1].factor, 1.5);
  EXPECT_EQ(scenario.events[2].kind, online::EventKind::kDelayFrames);
  EXPECT_DOUBLE_EQ(scenario.events[2].delay, 0.25);
  EXPECT_EQ(scenario.events[3].kind, online::EventKind::kDrift);
  EXPECT_EQ(scenario.events[4].kind, online::EventKind::kJoin);
  EXPECT_EQ(scenario.events[4].app, "H");
  EXPECT_DOUBLE_EQ(scenario.events[4].xi_et, 2.0);
  EXPECT_EQ(scenario.events[5].kind, online::EventKind::kLeave);
  // A scenario with no seed reports has_seed = false.
  EXPECT_FALSE(parse_scenario(base("")).has_seed);
  // An event-free scenario is valid (a pure steady-state run).
  EXPECT_TRUE(parse_scenario(base("")).events.empty());
}

TEST(ScenarioFaultTest, ApplyHelpersMutateExactlyTheDocumentedFields) {
  plants::SynthesizedSchedApp app;
  app.r = 10.0;
  app.deadline = 8.0;
  app.xi_tt = 0.5;
  app.xi_m = 1.5;
  app.k_p = 0.5;
  app.xi_et = 2.0;

  auto dropped = app;
  online::apply_drop_frames(dropped, 2.0);
  EXPECT_DOUBLE_EQ(dropped.xi_tt, 0.5);  // untouched
  EXPECT_DOUBLE_EQ(dropped.deadline, 8.0);
  EXPECT_DOUBLE_EQ(dropped.xi_m, 3.0);
  EXPECT_DOUBLE_EQ(dropped.k_p, 1.0);
  EXPECT_DOUBLE_EQ(dropped.xi_et, 4.0);

  auto delayed = app;
  online::apply_delay_frames(delayed, 3.0);
  EXPECT_DOUBLE_EQ(delayed.deadline, 5.0);
  online::apply_delay_frames(delayed, 100.0);  // floors just above zero
  EXPECT_GT(delayed.deadline, 0.0);

  auto drifted = app;
  online::apply_drift(drifted, 2.0);
  EXPECT_DOUBLE_EQ(drifted.xi_tt, 1.0);  // the WHOLE tent scales
  EXPECT_DOUBLE_EQ(drifted.xi_m, 3.0);
  EXPECT_DOUBLE_EQ(drifted.k_p, 1.0);
  EXPECT_DOUBLE_EQ(drifted.xi_et, 4.0);
  EXPECT_DOUBLE_EQ(drifted.deadline, 8.0);  // untouched
}

TEST(ScenarioSeedTest, ThreeWayPrecedenceExplicitFlagsWin) {
  ScenarioSpec with_seed = parse_scenario(base(""));
  with_seed.has_seed = true;
  with_seed.seed = 222;
  ScenarioSpec without_seed = parse_scenario(base(""));

  runtime::ExperimentContext ctx;  // default seed, nothing explicit

  // 1. An explicit --seed beats the scenario's own seed.
  ctx.seed = 111;
  ctx.seed_explicit = true;
  EXPECT_EQ(online::effective_scenario_seed(ctx, with_seed), 111u);

  // 2. Without --seed, the scenario's seed beats whatever ctx.seed holds
  //    (the spec's seed, already folded in by cps_run).
  ctx.seed_explicit = false;
  ctx.seed = 333;
  EXPECT_EQ(online::effective_scenario_seed(ctx, with_seed), 222u);

  // 3. No --seed and no scenario seed: ctx.seed (spec seed or default).
  EXPECT_EQ(online::effective_scenario_seed(ctx, without_seed), 333u);
  runtime::ExperimentContext defaults;
  EXPECT_EQ(online::effective_scenario_seed(defaults, without_seed), defaults.seed);
}

}  // namespace
