// Unit and property tests for the eigenvalue solver (Hessenberg + shifted
// QR), including the stability predicates used throughout the control and
// analysis layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using cps::Rng;
using namespace cps::linalg;

std::vector<double> sorted_real_parts(const std::vector<std::complex<double>>& eigs) {
  std::vector<double> out;
  out.reserve(eigs.size());
  for (const auto& e : eigs) out.push_back(e.real());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EigenTest, DiagonalMatrix) {
  const auto eigs = eigenvalues(Matrix::diagonal({3.0, -1.0, 0.5}));
  const auto re = sorted_real_parts(eigs);
  ASSERT_EQ(re.size(), 3u);
  EXPECT_NEAR(re[0], -1.0, 1e-10);
  EXPECT_NEAR(re[1], 0.5, 1e-10);
  EXPECT_NEAR(re[2], 3.0, 1e-10);
}

TEST(EigenTest, CompanionMatrixKnownSpectrum) {
  // Characteristic polynomial (z+1)(z+2)(z+3) = z^3 + 6z^2 + 11z + 6.
  Matrix c{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {-6.0, -11.0, -6.0}};
  const auto re = sorted_real_parts(eigenvalues(c));
  EXPECT_NEAR(re[0], -3.0, 1e-8);
  EXPECT_NEAR(re[1], -2.0, 1e-8);
  EXPECT_NEAR(re[2], -1.0, 1e-8);
}

TEST(EigenTest, RotationMatrixComplexPair) {
  const double theta = 0.7;
  Matrix rot{{std::cos(theta), -std::sin(theta)}, {std::sin(theta), std::cos(theta)}};
  const auto eigs = eigenvalues(rot);
  ASSERT_EQ(eigs.size(), 2u);
  for (const auto& e : eigs) {
    EXPECT_NEAR(std::abs(e), 1.0, 1e-10);
    EXPECT_NEAR(std::abs(e.imag()), std::sin(theta), 1e-10);
  }
}

TEST(EigenTest, ScaledRotationSpectralRadius) {
  const double rho = 0.85, theta = 0.4;
  Matrix m{{rho * std::cos(theta), -rho * std::sin(theta)},
           {rho * std::sin(theta), rho * std::cos(theta)}};
  EXPECT_NEAR(spectral_radius(m), rho, 1e-10);
}

TEST(EigenTest, UpperTriangularReadsDiagonal) {
  Matrix t{{2.0, 5.0, -1.0}, {0.0, -0.5, 3.0}, {0.0, 0.0, 1.25}};
  const auto re = sorted_real_parts(eigenvalues(t));
  EXPECT_NEAR(re[0], -0.5, 1e-8);
  EXPECT_NEAR(re[1], 1.25, 1e-8);
  EXPECT_NEAR(re[2], 2.0, 1e-8);
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-2, 2);
    const auto eigs = eigenvalues(m);
    std::complex<double> sum = 0.0;
    for (const auto& e : eigs) sum += e;
    EXPECT_NEAR(sum.real(), m.trace(), 1e-6) << "trial " << trial;
    EXPECT_NEAR(sum.imag(), 0.0, 1e-6) << "trial " << trial;
  }
}

TEST(EigenTest, DeterminantEqualsEigenvalueProduct) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.5, 1.5);
    std::complex<double> prod = 1.0;
    for (const auto& e : eigenvalues(m)) prod *= e;
    // det via characteristic property: compare with eigen product.
    // (determinant() from the LU module; include indirectly via trace-free check)
    // Here we instead verify against the 2x2/3x3 closed forms when small.
    if (n == 2) {
      const double det = m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0);
      EXPECT_NEAR(prod.real(), det, 1e-8) << "trial " << trial;
    }
    EXPECT_NEAR(prod.imag(), 0.0, 1e-7) << "trial " << trial;
  }
}

TEST(EigenTest, HessenbergPreservesTraceAndShape) {
  Rng rng(31);
  const std::size_t n = 6;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1, 1);
  const Matrix h = hessenberg(m);
  EXPECT_NEAR(h.trace(), m.trace(), 1e-10);
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_DOUBLE_EQ(h(i, j), 0.0);
  // Similarity: same spectrum.
  const auto em = sorted_real_parts(eigenvalues(m));
  const auto eh = sorted_real_parts(eigenvalues(h));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(em[i], eh[i], 1e-6);
}

TEST(EigenTest, SchurStabilityPredicate) {
  EXPECT_TRUE(is_schur_stable(Matrix::diagonal({0.5, -0.9})));
  EXPECT_FALSE(is_schur_stable(Matrix::diagonal({0.5, 1.01})));
  EXPECT_FALSE(is_schur_stable(Matrix::identity(2)));  // marginal
}

TEST(EigenTest, HurwitzStabilityPredicate) {
  EXPECT_TRUE(is_hurwitz_stable(Matrix::diagonal({-1.0, -0.1})));
  EXPECT_FALSE(is_hurwitz_stable(Matrix::diagonal({-1.0, 0.1})));
  // The inverted pendulum open loop is unstable.
  Matrix pend{{0.0, 1.0}, {29.4, -3.0}};
  EXPECT_FALSE(is_hurwitz_stable(pend));
}

TEST(EigenTest, SpectralRadiusGovernsAsymptoticPower) {
  // ||A^k||^{1/k} -> rho(A): check the power decays iff rho < 1.
  Matrix stable{{0.4, 0.5}, {-0.3, 0.6}};
  const double rho = spectral_radius(stable);
  ASSERT_LT(rho, 1.0);
  EXPECT_LT(stable.pow(200).max_abs(), 1e-8);

  Matrix unstable{{1.02, 0.1}, {0.0, 0.5}};
  EXPECT_GT(unstable.pow(500).max_abs(), 1e3);
}

TEST(EigenTest, EmptyAndTinyMatrices) {
  EXPECT_TRUE(eigenvalues(Matrix()).empty());
  const auto one = eigenvalues(Matrix{{7.0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NEAR(one[0].real(), 7.0, 1e-14);
  EXPECT_THROW(eigenvalues(Matrix(2, 3)), cps::DimensionMismatch);
}

TEST(EigenTest, DefectiveJordanBlock) {
  // Jordan block: defective eigenvalue 2 with multiplicity 3.
  Matrix j{{2.0, 1.0, 0.0}, {0.0, 2.0, 1.0}, {0.0, 0.0, 2.0}};
  for (const auto& e : eigenvalues(j)) {
    EXPECT_NEAR(e.real(), 2.0, 1e-5);
    EXPECT_NEAR(e.imag(), 0.0, 1e-5);
  }
}

}  // namespace
