// Tests for the first-fit TT-slot allocator, including the paper's
// headline Section V result: 3 slots with the non-monotonic model versus
// 5 with the conservative monotonic one (67 % more).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "plants/table1.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> paper_apps_non_monotonic() {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    app.model = std::make_shared<NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

std::vector<AppSchedParams> paper_apps_monotonic() {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    app.model = std::make_shared<ConservativeMonotonicModel>(row.xi_m_mono, row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

TEST(PaperAllocationTest, NonMonotonicNeedsThreeSlots) {
  const Allocation alloc = first_fit_allocate(paper_apps_non_monotonic());
  ASSERT_EQ(alloc.slot_count(), 3u);
  // S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1} (priority order inside).
  EXPECT_EQ(alloc.slots[0], (std::vector<std::string>{"C3", "C6"}));
  EXPECT_EQ(alloc.slots[1], (std::vector<std::string>{"C2", "C4"}));
  EXPECT_EQ(alloc.slots[2], (std::vector<std::string>{"C5", "C1"}));
  for (const auto& analysis : alloc.analyses) EXPECT_TRUE(analysis.all_schedulable);
}

TEST(PaperAllocationTest, MonotonicNeedsFiveSlots) {
  const Allocation alloc = first_fit_allocate(paper_apps_monotonic());
  ASSERT_EQ(alloc.slot_count(), 5u);
  // "C3 and C6 can still share S1"; everyone else gets a dedicated slot.
  EXPECT_EQ(alloc.slots[0], (std::vector<std::string>{"C3", "C6"}));
  for (std::size_t s = 1; s < 5; ++s) EXPECT_EQ(alloc.slots[s].size(), 1u);
}

TEST(PaperAllocationTest, SixtySevenPercentMoreResources) {
  const auto non_mono = first_fit_allocate(paper_apps_non_monotonic()).slot_count();
  const auto mono = first_fit_allocate(paper_apps_monotonic()).slot_count();
  const double overhead =
      100.0 * (static_cast<double>(mono) - static_cast<double>(non_mono)) /
      static_cast<double>(non_mono);
  EXPECT_NEAR(overhead, 66.7, 1.0);
}

TEST(AllocationTest, EveryAppPlacedExactlyOnce) {
  const Allocation alloc = first_fit_allocate(paper_apps_non_monotonic());
  std::vector<std::string> seen;
  for (const auto& slot : alloc.slots)
    for (const auto& name : slot) seen.push_back(name);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::string>{"C1", "C2", "C3", "C4", "C5", "C6"}));
}

TEST(AllocationTest, SingleAppGetsOneSlot) {
  auto apps = paper_apps_non_monotonic();
  const Allocation alloc = first_fit_allocate({apps[0]});
  EXPECT_EQ(alloc.slot_count(), 1u);
  EXPECT_TRUE(alloc.analyses[0].all_schedulable);
}

TEST(AllocationTest, InfeasibleDeadlineThrows) {
  AppSchedParams app;
  app.name = "impossible";
  app.min_inter_arrival = 10.0;
  app.deadline = 0.5;  // below xi_tt: cannot be met even alone
  app.model = std::make_shared<NonMonotonicModel>(1.0, 1.5, 0.3, 5.0);
  EXPECT_THROW(first_fit_allocate({app}), InfeasibleError);
}

TEST(AllocationTest, MaxSlotsCapEnforced) {
  AllocationOptions options;
  options.max_slots = 2;
  EXPECT_THROW(first_fit_allocate(paper_apps_non_monotonic(), options), InfeasibleError);
  options.max_slots = 3;
  EXPECT_NO_THROW(first_fit_allocate(paper_apps_non_monotonic(), options));
}

TEST(AllocationTest, FixedPointMethodNeverNeedsMoreSlots) {
  // The exact fixed point is tighter than the closed-form bound, so the
  // allocation can only improve (or stay the same).
  AllocationOptions bound_opts;  // default: closed-form bound
  AllocationOptions fp_opts;
  fp_opts.method = MaxWaitMethod::kFixedPoint;
  const auto by_bound = first_fit_allocate(paper_apps_non_monotonic(), bound_opts).slot_count();
  const auto by_fp = first_fit_allocate(paper_apps_non_monotonic(), fp_opts).slot_count();
  EXPECT_LE(by_fp, by_bound);
}

TEST(AllocationTest, IndependentOfInputOrder) {
  auto apps = paper_apps_non_monotonic();
  std::reverse(apps.begin(), apps.end());
  const Allocation alloc = first_fit_allocate(apps);
  EXPECT_EQ(alloc.slot_count(), 3u);
  EXPECT_EQ(alloc.slots[0], (std::vector<std::string>{"C3", "C6"}));
}

TEST(AllocationTest, DedicatedSlotsAlwaysWorkWhenDeadlineAboveXiTt) {
  // With one app per slot (max interference zero), any deadline above
  // xi_tt is met; the heuristic should find at most n slots.
  auto apps = paper_apps_non_monotonic();
  const Allocation alloc = first_fit_allocate(apps);
  EXPECT_LE(alloc.slot_count(), apps.size());
}

TEST(AllocationTest, ReportedAnalysesMatchSlotContents) {
  const Allocation alloc = first_fit_allocate(paper_apps_non_monotonic());
  ASSERT_EQ(alloc.analyses.size(), alloc.slots.size());
  for (std::size_t s = 0; s < alloc.slots.size(); ++s) {
    ASSERT_EQ(alloc.analyses[s].results.size(), alloc.slots[s].size());
    for (std::size_t i = 0; i < alloc.slots[s].size(); ++i)
      EXPECT_EQ(alloc.analyses[s].results[i].name, alloc.slots[s][i]);
  }
}

}  // namespace
