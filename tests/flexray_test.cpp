// Unit tests for the FlexRay bus model: cycle configuration, static-slot
// timing, dynamic-segment arbitration and worst-case delay bounds.
#include <gtest/gtest.h>

#include "flexray/bus.hpp"
#include "flexray/config.hpp"
#include "flexray/dynamic_segment.hpp"
#include "flexray/static_segment.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::flexray;

FlexRayConfig case_study_config() {
  // Section V: 5 ms cycle, 2 ms static segment with 10 slots.
  FlexRayConfig cfg;
  cfg.cycle_length = 0.005;
  cfg.static_slot_count = 10;
  cfg.static_slot_length = 0.0002;
  cfg.minislot_length = 0.00005;
  return cfg;
}

TEST(ConfigTest, CaseStudyGeometry) {
  const FlexRayConfig cfg = case_study_config();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_DOUBLE_EQ(cfg.static_segment_length(), 0.002);
  EXPECT_DOUBLE_EQ(cfg.dynamic_segment_length(), 0.003);
  EXPECT_EQ(cfg.minislot_count(), 60u);
  EXPECT_DOUBLE_EQ(cfg.static_slot_offset(0), 0.0);
  EXPECT_DOUBLE_EQ(cfg.static_slot_offset(9), 0.0018);
  EXPECT_DOUBLE_EQ(cfg.cycle_start(3), 0.015);
  EXPECT_EQ(cfg.cycle_of(0.012), 2u);
}

TEST(ConfigTest, ValidationRejectsBadGeometry) {
  FlexRayConfig cfg = case_study_config();
  cfg.static_slot_count = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = case_study_config();
  cfg.static_slot_length = 0.001;  // 10 x 1 ms > 5 ms cycle
  EXPECT_THROW(cfg.validate(), InvalidArgument);

  cfg = case_study_config();
  cfg.minislot_length = 0.0003;  // psi >= Psi violates psi << Psi
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(StaticScheduleTest, AssignReleaseOwnership) {
  StaticSchedule sched(case_study_config());
  sched.assign(2, 42);
  EXPECT_EQ(sched.owner(2), std::optional<std::size_t>(42));
  EXPECT_EQ(sched.slot_of(42), std::optional<std::size_t>(2));
  EXPECT_FALSE(sched.owner(3).has_value());
  // Double assignment of a taken slot is rejected.
  EXPECT_THROW(sched.assign(2, 43), InvalidArgument);
  // Re-assigning the same frame is idempotent.
  EXPECT_NO_THROW(sched.assign(2, 42));
  sched.release(2);
  EXPECT_FALSE(sched.owner(2).has_value());
}

TEST(StaticScheduleTest, CompletionTimeIsSlotEnd) {
  StaticSchedule sched(case_study_config());
  // Release exactly at cycle start: slot 0 begins immediately, completes
  // after one slot length.
  EXPECT_DOUBLE_EQ(sched.completion_time(0, 0.0), 0.0002);
  // Slot 3 of cycle 0 starts at 0.0006.
  EXPECT_DOUBLE_EQ(sched.completion_time(3, 0.0), 0.0008);
  // Releasing just after slot 3 started -> wait for the next cycle.
  EXPECT_DOUBLE_EQ(sched.completion_time(3, 0.00061), 0.005 + 0.0006 + 0.0002);
  // Release mid-cycle, slot later in the same cycle still catches it.
  EXPECT_DOUBLE_EQ(sched.completion_time(9, 0.001), 0.0018 + 0.0002);
}

TEST(StaticScheduleTest, WorstCaseDelayIsCyclePlusSlot) {
  StaticSchedule sched(case_study_config());
  EXPECT_DOUBLE_EQ(sched.worst_case_delay(), 0.005 + 0.0002);
  // No observed completion exceeds the bound.
  for (double release : {0.0, 0.0001, 0.00059, 0.0021, 0.0049, 0.005}) {
    for (std::size_t slot : {0u, 4u, 9u}) {
      const double delay = sched.completion_time(slot, release) - release;
      EXPECT_LE(delay, sched.worst_case_delay() + 1e-12);
      EXPECT_GT(delay, 0.0);
    }
  }
}

TEST(DynamicSegmentTest, RegistrationValidation) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "a", 4});
  EXPECT_THROW(arb.register_frame({1, "dup", 2}), InvalidArgument);
  EXPECT_THROW(arb.register_frame({2, "zero", 0}), InvalidArgument);
  EXPECT_THROW(arb.register_frame({3, "huge", 100}), InvalidArgument);
}

TEST(DynamicSegmentTest, PriorityOrderWithinCycle) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "hi", 4});
  arb.register_frame({5, "lo", 4});
  // Both released at cycle start: high priority (smaller id) first.
  auto results = arb.arbitrate({{5, 0.0}, {1, 0.0}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].completion_time, results[1].completion_time);  // id 5 after id 1
  // Completion = dynamic start (2 ms) + consumed minislots.
  EXPECT_DOUBLE_EQ(results[1].completion_time, 0.002 + 4 * 0.00005);
  EXPECT_DOUBLE_EQ(results[0].completion_time, 0.002 + 8 * 0.00005);
  EXPECT_EQ(results[0].segment, Segment::kDynamic);
}

TEST(DynamicSegmentTest, LateReleaseWaitsForNextCycle) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "a", 2});
  // Released after this cycle's dynamic segment started -> next cycle.
  auto results = arb.arbitrate({{1, 0.0021}});
  EXPECT_DOUBLE_EQ(results[0].completion_time, 0.005 + 0.002 + 2 * 0.00005);
  EXPECT_GT(results[0].delay(), 0.0048);
}

TEST(DynamicSegmentTest, OverflowDefersToNextCycle) {
  DynamicSegmentArbiter arb(case_study_config());  // 60 minislots per cycle
  arb.register_frame({1, "big", 40});
  arb.register_frame({2, "second", 40});
  auto results = arb.arbitrate({{1, 0.0}, {2, 0.0}});
  // Frame 1 fits in cycle 0; frame 2 (40 more minislots) does not -> cycle 1.
  EXPECT_LT(results[0].completion_time, 0.005);
  EXPECT_GT(results[1].completion_time, 0.005);
  EXPECT_DOUBLE_EQ(results[1].completion_time, 0.005 + 0.002 + 40 * 0.00005);
}

TEST(DynamicSegmentTest, WorstCaseDelayBoundsSimulation) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "hp", 10});
  arb.register_frame({2, "mid", 10});
  arb.register_frame({3, "lp", 10});
  const double bound = arb.worst_case_delay(3);
  // Adversarial releases: everything together, just after segment start.
  for (double release : {0.0, 0.0019, 0.002001, 0.0049}) {
    auto results = arb.arbitrate({{1, release}, {2, release}, {3, release}});
    EXPECT_LE(results[2].delay(), bound + 1e-12) << "release=" << release;
  }
}

TEST(DynamicSegmentTest, WorstCaseDelayGrowsWithPriority) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "hp", 10});
  arb.register_frame({2, "mid", 10});
  arb.register_frame({3, "lp", 10});
  EXPECT_LT(arb.worst_case_delay(1), arb.worst_case_delay(2));
  EXPECT_LT(arb.worst_case_delay(2), arb.worst_case_delay(3));
}

TEST(DynamicSegmentTest, OverloadedSegmentThrowsInfeasible) {
  DynamicSegmentArbiter arb(case_study_config());
  arb.register_frame({1, "a", 40});
  arb.register_frame({2, "b", 40});
  EXPECT_THROW(arb.worst_case_delay(2), InfeasibleError);
}

TEST(DynamicSegmentTest, UnregisteredFrameRejected) {
  DynamicSegmentArbiter arb(case_study_config());
  EXPECT_THROW(arb.arbitrate({{9, 0.0}}), InvalidArgument);
  EXPECT_THROW(arb.worst_case_delay(9), InvalidArgument);
}

TEST(BusTest, StaticTransmissionRequiresSlotOwnership) {
  FlexRayBus bus(case_study_config());
  bus.register_frame({7, "ctrl", 4});
  EXPECT_THROW(bus.transmit_static(7, 0.0), InvalidArgument);
  bus.static_schedule().assign(0, 7);
  const auto tx = bus.transmit_static(7, 0.0);
  EXPECT_EQ(tx.segment, Segment::kStatic);
  EXPECT_DOUBLE_EQ(tx.completion_time, 0.0002);
  EXPECT_EQ(bus.log().size(), 1u);
}

TEST(BusTest, LogAccumulatesBothSegments) {
  FlexRayBus bus(case_study_config());
  bus.register_frame({1, "a", 2});
  bus.register_frame({2, "b", 2});
  bus.static_schedule().assign(0, 1);
  bus.transmit_static(1, 0.0);
  bus.transmit_dynamic({{2, 0.0}});
  ASSERT_EQ(bus.log().size(), 2u);
  EXPECT_EQ(bus.log()[0].segment, Segment::kStatic);
  EXPECT_EQ(bus.log()[1].segment, Segment::kDynamic);
  bus.clear_log();
  EXPECT_TRUE(bus.log().empty());
}

TEST(BusTest, TtDelayIsFarBelowEtWorstCase) {
  // The paper's premise: TT communication is far more deterministic and
  // prompt than worst-case ET.  With the case-study geometry, the static
  // worst case (5.2 ms) is below the ET bound for a low-priority frame
  // behind several others.
  FlexRayBus bus(case_study_config());
  for (std::size_t id = 1; id <= 6; ++id)
    bus.register_frame({id, "app" + std::to_string(id), 8});
  EXPECT_LT(bus.worst_case_static_delay(), bus.worst_case_dynamic_delay(6));
}

}  // namespace
