// Fixture-store crash-safety under REAL process faults: concurrent
// writers racing the same digest, children SIGKILLed mid-write by the
// deterministic CPS_CRASH_AT hook (runtime/crash_point.hpp), and the
// GC's reclamation of the temp debris crashes leave behind.
//
// These tests fork: the child performs the racing/crashing save and the
// parent asserts the store never publishes a torn file — corruption may
// cost a recompute, never a wrong payload.
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>

#include "runtime/fixture_store.hpp"
#include "util/error.hpp"

namespace {

using cps::runtime::FixtureStore;

struct StoreConcurrencyFixture : public ::testing::Test {
  void SetUp() override {
    dir = (std::filesystem::temp_directory_path() /
           ("cps-store-conc-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++)))
              .string();
    std::filesystem::create_directories(dir);
  }
  void TearDown() override {
    std::error_code error;
    std::filesystem::remove_all(dir, error);
  }
  /// Fork, run `child` in the child process, return its wait status.
  template <typename Fn>
  int run_in_child(Fn child) {
    const ::pid_t pid = ::fork();
    if (pid == 0) {
      child();
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  }
  static std::atomic<int> counter;
  std::string dir;
};
std::atomic<int> StoreConcurrencyFixture::counter{0};

TEST_F(StoreConcurrencyFixture, TwoProcessesRacingTheSameDigestNeverTearTheFile) {
  // Both processes publish the same key concurrently, many rounds.  The
  // O_EXCL-unique temps + atomic rename guarantee a reader sees ONE
  // writer's whole payload — never an interleaving.
  const std::string payload_parent(4096, 'P');
  const std::string payload_child(4096, 'C');
  for (int round = 0; round < 10; ++round) {
    const std::string key = "race/digest" + std::to_string(round);
    const int status = run_in_child([&] {
      FixtureStore child_store(dir);
      child_store.save(key, "fmt/v1", "material", payload_child);
    });
    FixtureStore store(dir);
    store.save(key, "fmt/v1", "material", payload_parent);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    FixtureStore reader(dir);
    const auto loaded = reader.load(key, "fmt/v1", "material");
    ASSERT_TRUE(loaded.has_value()) << "round " << round;
    EXPECT_TRUE(*loaded == payload_parent || *loaded == payload_child)
        << "torn payload in round " << round;
    EXPECT_EQ(reader.stats().invalid, 0u);
  }
}

TEST_F(StoreConcurrencyFixture, CrashMidWritePublishesNothingAndHealsOnRetry) {
  const std::string key = "crash/mid";
  const int status = run_in_child([&] {
    ::setenv("CPS_CRASH_AT", "store_save_mid:1", 1);
    FixtureStore doomed(dir);
    doomed.save(key, "fmt/v1", "material", "payload-that-never-lands");
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Torn temp debris is allowed; a PUBLISHED file is not.
  FixtureStore store(dir);
  EXPECT_FALSE(store.load(key, "fmt/v1", "material").has_value());

  // Heal: a clean retry (no injection) publishes normally.
  store.save(key, "fmt/v1", "material", "healed-payload");
  const auto loaded = store.load(key, "fmt/v1", "material");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "healed-payload");
}

TEST_F(StoreConcurrencyFixture, CrashBeforeRenameLeavesOnlyTempDebris) {
  const std::string key = "crash/rename";
  const int status = run_in_child([&] {
    ::setenv("CPS_CRASH_AT", "store_save_rename:1", 1);
    FixtureStore doomed(dir);
    doomed.save(key, "fmt/v1", "material", "fully-written-but-unpublished");
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  // The payload was completely written to the temp — but the rename never
  // ran, so the store must still report a miss.
  FixtureStore store(dir);
  EXPECT_FALSE(store.load(key, "fmt/v1", "material").has_value());
  // And the debris is visible as a ".tmp." file awaiting GC reclamation.
  bool temp_found = false;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir))
    if (entry.is_regular_file() &&
        entry.path().filename().string().find(".tmp.") != std::string::npos)
      temp_found = true;
  EXPECT_TRUE(temp_found);
}

TEST_F(StoreConcurrencyFixture, CrashCounterFiresOnTheNthHitOnly) {
  // CPS_CRASH_AT=<site>:2 must let the first save through untouched and
  // kill the second — that is what makes injected faults deterministic.
  const int status = run_in_child([&] {
    ::setenv("CPS_CRASH_AT", "store_save_mid:2", 1);
    FixtureStore doomed(dir);
    doomed.save("count/first", "fmt/v1", "material", "survives");
    doomed.save("count/second", "fmt/v1", "material", "never-lands");
  });
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  FixtureStore store(dir);
  const auto first = store.load("count/first", "fmt/v1", "material");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "survives");
  EXPECT_FALSE(store.load("count/second", "fmt/v1", "material").has_value());
}

TEST_F(StoreConcurrencyFixture, GcReclaimsStaleTempDebrisButSparesFreshTemps) {
  FixtureStore store(dir);
  store.save("domain/live", "fmt/v1", "material", "payload");

  // Fake a crashed writer from two hours ago and one from just now.
  const std::string stale = dir + "/domain/dead.fix.tmp.1234";
  const std::string fresh = dir + "/domain/racing.fix.tmp.5678";
  { std::ofstream(stale) << "half-written"; }
  { std::ofstream(fresh) << "half-written"; }
  struct timespec times[2];
  times[0].tv_sec = ::time(nullptr) - 7200;
  times[0].tv_nsec = 0;
  times[1] = times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, stale.c_str(), times, 0), 0);

  store.gc_to_max_bytes(1ull << 40);  // cap far above usage: evicts nothing
  EXPECT_FALSE(std::filesystem::exists(stale)) << "stale temp not reclaimed";
  EXPECT_TRUE(std::filesystem::exists(fresh)) << "fresh temp wrongly reclaimed";
  // The published file is untouched either way.
  EXPECT_TRUE(store.load("domain/live", "fmt/v1", "material").has_value());
}

TEST_F(StoreConcurrencyFixture, ConcurrentGcPassesAreSerializedByTheLock) {
  // Two simultaneous GC passes over the same store (child + parent) must
  // both complete and leave every in-cap file intact — the flock means
  // they cannot double-unlink or race each other's scans.
  FixtureStore store(dir);
  for (int i = 0; i < 8; ++i)
    store.save("domain/key" + std::to_string(i), "fmt/v1", "material", std::string(100, 'x'));
  const int status = run_in_child([&] {
    FixtureStore child_store(dir);
    child_store.gc_to_max_bytes(1ull << 40);
  });
  store.gc_to_max_bytes(1ull << 40);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  FixtureStore reader(dir);
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(
        reader.load("domain/key" + std::to_string(i), "fmt/v1", "material").has_value())
        << "key" << i;
}

}  // namespace
