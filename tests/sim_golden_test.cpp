// Golden-output regression tests for the PR-3 allocation-free simulation
// kernels, in the style of tests/analysis_golden_test.cpp: each reworked
// per-step loop ships next to its frozen pre-optimization implementation
// (SwitchedLinearSystem::simulate_reference,
// JitteryClosedLoop::settle_under_random_delays_reference,
// analysis::transient_growth*_reference) and these tests assert
// bit-identical results — exact double bit patterns, exact step counts —
// on the servo fixture, the synthesized Table I fleet, and randomized
// stable systems.  Any floating-point reordering in the optimized paths
// fails loudly here.
#include <gtest/gtest.h>

#include <cstddef>

#include "analysis/transient.hpp"
#include "control/loop_design.hpp"
#include "experiments/fixtures.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/switched_system.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;

void expect_bit_identical(const sim::Trajectory& optimized, const sim::Trajectory& reference) {
  EXPECT_EQ(optimized.sampling_period(), reference.sampling_period());
  ASSERT_EQ(optimized.length(), reference.length());
  for (std::size_t k = 0; k < optimized.length(); ++k) {
    const auto& a = optimized.at(k);
    const auto& b = reference.at(k);
    EXPECT_EQ(a.mode, b.mode) << "step " << k;
    EXPECT_EQ(a.norm, b.norm) << "step " << k;  // bitwise, not approximate
    ASSERT_EQ(a.state.size(), b.state.size()) << "step " << k;
    for (std::size_t i = 0; i < a.state.size(); ++i)
      EXPECT_EQ(a.state[i], b.state[i]) << "step " << k << " component " << i;
  }
}

TEST(TrajectoryGolden, ServoBitIdentical) {
  const auto design = plants::design_servo_loops();
  const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  const auto x0 = plants::servo_disturbed_state();
  for (const std::size_t switch_step : {std::size_t{0}, std::size_t{17}, std::size_t{500}}) {
    expect_bit_identical(sys.simulate(x0, switch_step, 400, 0.02),
                         sys.simulate_reference(x0, switch_step, 400, 0.02));
  }
}

TEST(TrajectoryGolden, SynthesizedFleetBitIdentical) {
  for (const auto& app : *experiments::paper_fleet()) {
    const auto design = control::design_hybrid_loops(app.plant, app.spec);
    const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
    const auto x0 = linalg::Vector::concat(app.x0, linalg::Vector::zero(design.input_dim));
    expect_bit_identical(sys.simulate(x0, 25, 600, 0.02),
                         sys.simulate_reference(x0, 25, 600, 0.02));
  }
}

TEST(TrajectoryGolden, RandomSystemsBitIdentical) {
  Rng rng(0x7124AECULL);
  for (int trial = 0; trial < 30; ++trial) {
    // Dimensions 2..8 cross the Vector inline capacity.
    const std::size_t dim = 2 + static_cast<std::size_t>(trial % 7);
    linalg::Matrix a_et(dim, dim), a_tt(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c) {
        a_et(r, c) = rng.uniform(-1.0, 1.0);
        a_tt(r, c) = rng.uniform(-1.0, 1.0);
      }
    const double et_scale = 0.95 / a_et.norm_inf();
    const double tt_scale = 0.6 / a_tt.norm_inf();
    a_et *= et_scale;
    a_tt *= tt_scale;
    const sim::SwitchedLinearSystem sys(a_et, a_tt, dim > 1 ? dim - 1 : 1);
    linalg::Vector x0(dim);
    for (std::size_t i = 0; i < dim; ++i) x0[i] = rng.uniform(-1.5, 1.5);
    expect_bit_identical(sys.simulate(x0, 11, 200, 0.01),
                         sys.simulate_reference(x0, 11, 200, 0.01));
  }
}

TEST(JitterGolden, SettleBitIdenticalUnderSameDraws) {
  const auto design = plants::design_servo_loops();
  const sim::JitteryClosedLoop loop(plants::make_servo_motor(), 0.02,
                                    {0.0, 0.005, 0.01, 0.015, 0.02}, design.gain_et);
  const auto z0 = plants::servo_disturbed_state();
  for (std::uint64_t seed : {0x1ULL, 0xABCULL, 0xDEADBEEFULL, 0x5EED5EEDULL}) {
    // Identical seeds -> identical delay draws -> the settle step must
    // match exactly (the optimized loop consumes the Rng in the same
    // order as the reference).
    Rng rng_opt(seed);
    Rng rng_ref(seed);
    const auto optimized = loop.settle_under_random_delays(z0, 0.1, rng_opt);
    const auto reference = loop.settle_under_random_delays_reference(z0, 0.1, rng_ref);
    ASSERT_EQ(optimized.has_value(), reference.has_value()) << "seed " << seed;
    if (optimized.has_value()) {
      EXPECT_EQ(*optimized, *reference) << "seed " << seed;
    }
    // The Rng streams must also end in the same state (same number of
    // draws consumed), or campaign-level results would diverge.
    EXPECT_EQ(rng_opt.uniform_int(0, 1 << 30), rng_ref.uniform_int(0, 1 << 30));
  }
}

TEST(JitterGolden, CampaignBitIdentical) {
  const auto design = plants::design_servo_loops();
  const sim::JitteryClosedLoop loop(plants::make_servo_motor(), 0.02,
                                    {0.0, 0.01, 0.02}, design.gain_et);
  const auto z0 = plants::servo_disturbed_state();
  Rng rng_a(0xCA3Full);
  Rng rng_b(0xCA3Full);
  const auto campaign = sim::run_jitter_campaign(loop, z0, 0.1, 0.02, 50, rng_a);
  // Replicate the campaign through the reference settle kernel.
  std::size_t settled = 0;
  double sum = 0.0;
  for (std::size_t r = 0; r < 50; ++r) {
    const auto settle = loop.settle_under_random_delays_reference(z0, 0.1, rng_b);
    if (!settle.has_value()) continue;
    ++settled;
    sum += static_cast<double>(*settle) * 0.02;
  }
  EXPECT_EQ(campaign.settled_runs, settled);
  if (settled > 0) {
    EXPECT_EQ(campaign.mean_settle_s, sum / static_cast<double>(settled));  // bitwise
  }
}

TEST(TransientGolden, EnvelopeBitIdentical) {
  const auto design = plants::design_servo_loops();
  for (const auto* a : {&design.a_et, &design.a_tt}) {
    const auto optimized = analysis::transient_growth(*a);
    const auto reference = analysis::transient_growth_reference(*a);
    EXPECT_EQ(optimized.peak_gain, reference.peak_gain);  // bitwise
    EXPECT_EQ(optimized.peak_step, reference.peak_step);
    EXPECT_EQ(optimized.growing, reference.growing);

    const auto opt_restricted = analysis::transient_growth_restricted(*a, design.state_dim);
    const auto ref_restricted =
        analysis::transient_growth_restricted_reference(*a, design.state_dim);
    EXPECT_EQ(opt_restricted.peak_gain, ref_restricted.peak_gain);
    EXPECT_EQ(opt_restricted.peak_step, ref_restricted.peak_step);
    EXPECT_EQ(opt_restricted.growing, ref_restricted.growing);
  }
}

TEST(TransientGolden, FleetEnvelopesBitIdentical) {
  for (const auto& app : *experiments::paper_fleet()) {
    const auto design = control::design_hybrid_loops(app.plant, app.spec);
    const auto optimized = analysis::transient_growth(design.a_et);
    const auto reference = analysis::transient_growth_reference(design.a_et);
    EXPECT_EQ(optimized.peak_gain, reference.peak_gain);
    EXPECT_EQ(optimized.peak_step, reference.peak_step);
  }
}

}  // namespace
