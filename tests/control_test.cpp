// Unit tests for the control module: discretization with intra-sample
// delay, LQR, pole placement, and the two-mode hybrid loop design.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "control/discretize.hpp"
#include "control/loop_design.hpp"
#include "control/lqr.hpp"
#include "control/pole_placement.hpp"
#include "control/state_space.hpp"
#include "linalg/eigen.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::control;
using cps::linalg::Matrix;
using cps::linalg::Vector;

StateSpace double_integrator() {
  return StateSpace(Matrix{{0.0, 1.0}, {0.0, 0.0}}, Matrix{{0.0}, {1.0}});
}

StateSpace servo_like() {
  return StateSpace(Matrix{{0.0, 1.0}, {0.98, -0.55}}, Matrix{{0.0}, {1.1}});
}

TEST(StateSpaceTest, DimensionValidation) {
  EXPECT_THROW(StateSpace(Matrix(2, 3), Matrix(2, 1)), InvalidArgument);
  EXPECT_THROW(StateSpace(Matrix::identity(2), Matrix(3, 1)), InvalidArgument);
  const StateSpace ok(Matrix::identity(2), Matrix(2, 1));
  EXPECT_EQ(ok.state_dim(), 2u);
  EXPECT_EQ(ok.input_dim(), 1u);
  EXPECT_EQ(ok.output_dim(), 2u);
}

TEST(StateSpaceTest, StabilityPredicate) {
  EXPECT_FALSE(servo_like().is_stable());  // has a positive eigenvalue
  StateSpace stable(Matrix{{-1.0, 0.0}, {0.0, -2.0}}, Matrix{{1.0}, {1.0}});
  EXPECT_TRUE(stable.is_stable());
}

TEST(ControllabilityTest, DoubleIntegratorControllable) {
  const StateSpace sys = double_integrator();
  EXPECT_TRUE(is_controllable(sys.a(), sys.b()));
}

TEST(ControllabilityTest, DisconnectedStateNotControllable) {
  Matrix a{{-1.0, 0.0}, {0.0, -2.0}};
  Matrix b{{1.0}, {0.0}};  // second state unreachable
  EXPECT_FALSE(is_controllable(a, b));
}

TEST(DiscretizeTest, DoubleIntegratorClosedForm) {
  // Phi = [[1, h], [0, 1]], Gamma = [[h^2/2], [h]].
  const double h = 0.1;
  const DiscreteSystem d = c2d(double_integrator(), h, 0.0);
  EXPECT_NEAR(d.phi()(0, 1), h, 1e-13);
  EXPECT_NEAR(d.gamma_total()(0, 0), h * h / 2.0, 1e-13);
  EXPECT_NEAR(d.gamma_total()(1, 0), h, 1e-13);
  EXPECT_FALSE(d.has_input_delay());
  EXPECT_NEAR(d.gamma1().max_abs(), 0.0, 1e-15);
}

TEST(DiscretizeTest, DelaySplitsGammaConsistently) {
  // For any delay d, Gamma0 + Gamma1 equals the ZOH Gamma (the same total
  // input energy enters per period).
  const double h = 0.02;
  const StateSpace sys = servo_like();
  const DiscreteSystem zoh = c2d(sys, h, 0.0);
  for (double d : {0.003, 0.01, 0.02}) {
    const DiscreteSystem delayed = c2d(sys, h, d);
    EXPECT_TRUE(delayed.gamma_total().approx_equal(zoh.gamma_total(), 1e-11)) << "d=" << d;
    EXPECT_TRUE(delayed.phi().approx_equal(zoh.phi(), 1e-12));
  }
}

TEST(DiscretizeTest, FullDelayMovesAllInputToGamma1) {
  const DiscreteSystem d = c2d(servo_like(), 0.02, 0.02);
  EXPECT_NEAR(d.gamma0().max_abs(), 0.0, 1e-12);
  EXPECT_TRUE(d.has_input_delay());
}

TEST(DiscretizeTest, InvalidDelayThrows) {
  EXPECT_THROW(c2d(servo_like(), 0.02, 0.03), InvalidArgument);
  EXPECT_THROW(c2d(servo_like(), 0.0, 0.0), InvalidArgument);
  EXPECT_THROW(c2d(servo_like(), 0.02, -0.001), InvalidArgument);
}

TEST(DiscretizeTest, AugmentedRealizationShape) {
  const DiscreteSystem d = c2d(servo_like(), 0.02, 0.01);
  const auto aug = d.augmented();
  ASSERT_EQ(aug.a.rows(), 3u);
  ASSERT_EQ(aug.b.rows(), 3u);
  // Top-left block is Phi, top-right is Gamma1, bottom row zero.
  EXPECT_TRUE(aug.a.block(0, 0, 2, 2).approx_equal(d.phi(), 0.0));
  EXPECT_TRUE(aug.a.block(0, 2, 2, 1).approx_equal(d.gamma1(), 0.0));
  EXPECT_NEAR(aug.a.block(2, 0, 1, 3).max_abs(), 0.0, 0.0);
  EXPECT_TRUE(aug.b.block(0, 0, 2, 1).approx_equal(d.gamma0(), 0.0));
  EXPECT_NEAR(aug.b(2, 0), 1.0, 0.0);
}

TEST(DlqrTest, StabilizesUnstableDiscretePlant) {
  const DiscreteSystem d = c2d(servo_like(), 0.02, 0.0);
  ASSERT_FALSE(linalg::is_schur_stable(d.phi(), 0.0));
  const LqrDesign design = dlqr(d.phi(), d.gamma_total(), Matrix::identity(2), Matrix{{1.0}});
  EXPECT_TRUE(linalg::is_schur_stable(design.closed_loop, 0.0));
  EXPECT_LT(design.dare_residual, 1e-8);
}

TEST(DlqrTest, CheaperControlGivesFasterLoop) {
  const DiscreteSystem d = c2d(servo_like(), 0.02, 0.0);
  const auto slow = dlqr(d.phi(), d.gamma_total(), Matrix::identity(2), Matrix{{10.0}});
  const auto fast = dlqr(d.phi(), d.gamma_total(), Matrix::identity(2), Matrix{{0.01}});
  EXPECT_LT(linalg::spectral_radius(fast.closed_loop),
            linalg::spectral_radius(slow.closed_loop));
}

TEST(PolePlacementTest, CharacteristicPolynomialFromRoots) {
  // (z - 1)(z + 2) = z^2 + z - 2 -> coefficients {-2, 1} ascending.
  const auto c = characteristic_polynomial({{1.0, 0.0}, {-2.0, 0.0}});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], -2.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(PolePlacementTest, ConjugatePairGivesRealPolynomial) {
  const auto c = characteristic_polynomial({{0.5, 0.3}, {0.5, -0.3}});
  // (z - 0.5)^2 + 0.09 = z^2 - z + 0.34.
  EXPECT_NEAR(c[0], 0.34, 1e-12);
  EXPECT_NEAR(c[1], -1.0, 1e-12);
}

TEST(PolePlacementTest, NonConjugateSetThrows) {
  EXPECT_THROW(characteristic_polynomial({{0.5, 0.3}, {0.5, 0.3}}), InvalidArgument);
}

TEST(PolePlacementTest, PlacesRequestedPoles) {
  const DiscreteSystem d = c2d(servo_like(), 0.02, 0.0);
  const std::vector<std::complex<double>> want{{0.8, 0.1}, {0.8, -0.1}};
  const Matrix k = place_poles(d.phi(), d.gamma_total(), want);
  const auto got = linalg::eigenvalues(d.phi() - d.gamma_total() * k);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& e : got) {
    EXPECT_NEAR(std::abs(e), std::abs(std::complex<double>(0.8, 0.1)), 1e-8);
    EXPECT_NEAR(std::fabs(e.imag()), 0.1, 1e-8);
  }
}

TEST(PolePlacementTest, MultiInputRejected) {
  EXPECT_THROW(place_poles(Matrix::identity(2), Matrix(2, 2), {{0.1, 0.0}, {0.2, 0.0}}),
               InvalidArgument);
}

TEST(PolePlacementTest, UncontrollablePairThrows) {
  Matrix a{{0.5, 0.0}, {0.0, 0.6}};
  Matrix b{{1.0}, {0.0}};
  EXPECT_THROW(place_poles(a, b, {{0.1, 0.0}, {0.2, 0.0}}), NumericalError);
}

TEST(LoopDesignTest, LqrFlavourBothLoopsStable) {
  HybridLoopSpec spec;
  spec.sampling_period = 0.02;
  spec.delay_tt = 0.0;
  spec.delay_et = 0.02;
  spec.q_tt = Matrix::identity(2);
  spec.r_tt = Matrix{{0.1}};
  spec.q_et = Matrix::identity(2);
  spec.r_et = Matrix{{5.0}};
  const HybridLoopDesign design = design_hybrid_loops(servo_like(), spec);
  EXPECT_LT(design.rho_tt, 1.0);
  EXPECT_LT(design.rho_et, 1.0);
  EXPECT_EQ(design.state_dim, 2u);
  EXPECT_EQ(design.a_tt.rows(), 3u);  // augmented
  EXPECT_EQ(design.a_et.rows(), 3u);
}

TEST(LoopDesignTest, PolePlacementFlavourHitsRequestedRadii) {
  PolePlacementLoopSpec spec;
  spec.sampling_period = 0.02;
  spec.delay_tt = 0.0;
  spec.delay_et = 0.02;
  spec.poles_tt = oscillatory_pole_set(0.85, 0.05, 3);
  spec.poles_et = oscillatory_pole_set(0.96, 0.4, 3);
  const HybridLoopDesign design = design_hybrid_loops(servo_like(), spec);
  EXPECT_NEAR(design.rho_tt, 0.85, 1e-6);
  EXPECT_NEAR(design.rho_et, 0.96, 1e-6);
}

TEST(LoopDesignTest, PoleCountValidation) {
  PolePlacementLoopSpec spec;
  spec.poles_tt = oscillatory_pole_set(0.8, 0.1, 2);  // too few for n+1 = 3
  spec.poles_et = oscillatory_pole_set(0.9, 0.1, 3);
  EXPECT_THROW(design_hybrid_loops(servo_like(), spec), InvalidArgument);
}

TEST(LoopDesignTest, UnstablePoleRequestRejected) {
  PolePlacementLoopSpec spec;
  spec.poles_tt = {{1.05, 0.0}, {0.5, 0.0}, {0.1, 0.0}};
  spec.poles_et = oscillatory_pole_set(0.9, 0.1, 3);
  EXPECT_THROW(design_hybrid_loops(servo_like(), spec), InvalidArgument);
}

TEST(LoopDesignTest, OscillatoryPoleSetShape) {
  const auto poles = oscillatory_pole_set(0.9, 0.3, 4, 0.05);
  ASSERT_EQ(poles.size(), 4u);
  EXPECT_NEAR(std::abs(poles[0]), 0.9, 1e-15);
  EXPECT_NEAR(poles[0].imag(), -poles[1].imag(), 1e-15);
  EXPECT_NEAR(poles[2].real(), 0.05, 1e-15);
  EXPECT_THROW(oscillatory_pole_set(1.1, 0.1, 3), InvalidArgument);
}

TEST(LoopDesignTest, AugmentStateWeightPlacesInputWeight) {
  const Matrix q = augment_state_weight(Matrix::identity(2) * 3.0, 1, 0.25);
  ASSERT_EQ(q.rows(), 3u);
  EXPECT_DOUBLE_EQ(q(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(q(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(q(0, 2), 0.0);
}

}  // namespace
