// Unit tests for the switched-system simulator, settling detection, and the
// dwell/wait curve sweep (Section III machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "sim/dwell_wait.hpp"
#include "sim/settling.hpp"
#include "sim/switched_system.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using namespace cps::sim;
using linalg::Matrix;
using linalg::Vector;

/// Scalar-pair switched system: ET decays by rho_et per step, TT by rho_tt.
SwitchedLinearSystem scalar_pair(double rho_et, double rho_tt) {
  return SwitchedLinearSystem(Matrix{{rho_et}}, Matrix{{rho_tt}}, 1);
}

TEST(SwitchedSystemTest, DimensionValidation) {
  EXPECT_THROW(SwitchedLinearSystem(Matrix(2, 2), Matrix(3, 3), 1), InvalidArgument);
  EXPECT_THROW(SwitchedLinearSystem(Matrix(2, 3), Matrix(2, 3), 1), InvalidArgument);
  EXPECT_THROW(SwitchedLinearSystem(Matrix::identity(2), Matrix::identity(2), 3),
               InvalidArgument);
  EXPECT_THROW(SwitchedLinearSystem(Matrix::identity(2), Matrix::identity(2), 0),
               InvalidArgument);
}

TEST(SwitchedSystemTest, ThresholdNormUsesLeadingComponents) {
  SwitchedLinearSystem sys(Matrix::identity(3), Matrix::identity(3), 2);
  EXPECT_DOUBLE_EQ(sys.threshold_norm(Vector{3.0, 4.0, 100.0}), 5.0);
}

TEST(SwitchedSystemTest, TrajectoryMatchesMatrixPowers) {
  // Paper Eq. (3)-(4): x2[kwait, k] = A2^k A1^kwait x0.
  Matrix a1{{0.9, 0.1}, {0.0, 0.8}};
  Matrix a2{{0.5, 0.0}, {0.2, 0.4}};
  SwitchedLinearSystem sys(a1, a2, 2);
  const Vector x0{1.0, -1.0};
  const std::size_t kwait = 3, total = 7;
  const Trajectory traj = sys.simulate(x0, kwait, total, 0.01);

  for (std::size_t k = 0; k <= total; ++k) {
    Vector expected = x0;
    for (std::size_t j = 0; j < k; ++j)
      expected = (j < kwait ? a1 : a2) * expected;
    EXPECT_TRUE(traj.at(k).state.approx_equal(expected, 1e-12)) << "k=" << k;
    EXPECT_EQ(traj.at(k).mode, k < kwait ? Mode::kEventTriggered : Mode::kTimeTriggered);
  }
}

TEST(SwitchedSystemTest, NoSwitchWhenSwitchStepBeyondHorizon) {
  SwitchedLinearSystem sys = scalar_pair(0.9, 0.5);
  const Trajectory traj = sys.simulate(Vector{1.0}, 100, 10, 0.02);
  for (const auto& s : traj.samples()) EXPECT_EQ(s.mode, Mode::kEventTriggered);
}

TEST(TrajectoryTest, TimeAxisAndPeak) {
  SwitchedLinearSystem sys = scalar_pair(0.9, 0.5);
  const Trajectory traj = sys.simulate(Vector{2.0}, 0, 5, 0.02);
  EXPECT_DOUBLE_EQ(traj.time_at(3), 0.06);
  EXPECT_DOUBLE_EQ(traj.peak_norm(), 2.0);
  EXPECT_EQ(traj.length(), 6u);
  EXPECT_THROW(traj.at(6), DimensionMismatch);
}

TEST(SettlingTest, GeometricDecayClosedForm) {
  // ||x[k]|| = rho^k: settles when rho^k <= threshold, i.e. at
  // k = ceil(log(threshold) / log(rho)).
  const double rho = 0.8, threshold = 0.1;
  SettlingOptions opts;
  opts.threshold = threshold;
  const auto settle = settling_step(Matrix{{rho}}, Vector{1.0}, 1, opts);
  ASSERT_TRUE(settle.has_value());
  const auto expected =
      static_cast<std::size_t>(std::ceil(std::log(threshold) / std::log(rho)));
  EXPECT_EQ(*settle, expected);
}

TEST(SettlingTest, AlreadySettledReturnsZero) {
  SettlingOptions opts;
  opts.threshold = 0.5;
  const auto settle = settling_step(Matrix{{0.5}}, Vector{0.1}, 1, opts);
  ASSERT_TRUE(settle.has_value());
  EXPECT_EQ(*settle, 0u);
}

TEST(SettlingTest, UnstableLoopReturnsNullopt) {
  SettlingOptions opts;
  opts.threshold = 0.1;
  opts.max_steps = 2000;
  EXPECT_FALSE(settling_step(Matrix{{1.05}}, Vector{1.0}, 1, opts).has_value());
}

TEST(SettlingTest, OscillatoryReentryIsNotSettled) {
  // A rotation-dominant loop dips below the threshold and comes back: the
  // settling step must be after the LAST violation, not the first dip.
  const double rho = 0.97, theta = 0.8;
  Matrix a{{rho * std::cos(theta), -rho * std::sin(theta)},
           {rho * std::sin(theta), rho * std::cos(theta)}};
  // Norm here is |x| * rho^k only in 2-norm; restrict the threshold norm to
  // the first component, which oscillates through zero repeatedly.
  SettlingOptions opts;
  opts.threshold = 0.3;
  const auto settle = settling_step(a, Vector{1.0, 0.0}, 1, opts);
  ASSERT_TRUE(settle.has_value());
  // At the settling step, verify no later sample violates.
  Vector x{1.0, 0.0};
  for (std::size_t k = 0; k < *settle; ++k) x = a * x;
  for (std::size_t k = *settle; k < *settle + 500; ++k) {
    EXPECT_LE(std::fabs(x[0]), opts.threshold + 1e-12) << "k=" << k;
    x = a * x;
  }
}

TEST(DwellStepsTest, MatchesManualSimulation) {
  SwitchedLinearSystem sys = scalar_pair(0.95, 0.6);
  SettlingOptions opts;
  opts.threshold = 0.1;
  const Vector x0{1.0};
  for (std::size_t wait : {0u, 3u, 10u}) {
    const auto dwell = dwell_steps(sys, x0, wait, opts);
    ASSERT_TRUE(dwell.has_value());
    // Manual: after `wait` ET steps the norm is 0.95^wait; TT then needs
    // ceil(log(0.1 / 0.95^wait) / log(0.6)) steps (0 if already below).
    const double norm_at_switch = std::pow(0.95, static_cast<double>(wait));
    const std::size_t expected =
        norm_at_switch <= 0.1
            ? 0u
            : static_cast<std::size_t>(
                  std::ceil(std::log(0.1 / norm_at_switch) / std::log(0.6)));
    EXPECT_EQ(*dwell, expected) << "wait=" << wait;
  }
}

TEST(DwellWaitCurveTest, ScalarPairIsMonotonic) {
  SwitchedLinearSystem sys = scalar_pair(0.95, 0.6);
  DwellWaitSweepOptions opts;
  opts.settling.threshold = 0.1;
  const DwellWaitCurve curve = measure_dwell_wait_curve(sys, Vector{1.0}, 0.02, opts);
  EXPECT_FALSE(curve.is_non_monotonic());
  // xi_tt = dwell at zero wait, xi_et = last wait in the sweep.
  EXPECT_DOUBLE_EQ(curve.xi_tt(), curve.points().front().dwell_s);
  EXPECT_DOUBLE_EQ(curve.xi_et(), curve.points().back().wait_s);
  // Dwell at the end of the sweep is zero (disturbance already rejected).
  EXPECT_DOUBLE_EQ(curve.points().back().dwell_s, 0.0);
  // For scalar loops xi_m is attained at zero wait.
  EXPECT_DOUBLE_EQ(curve.xi_m(), curve.xi_tt());
  EXPECT_DOUBLE_EQ(curve.k_p(), 0.0);
}

TEST(DwellWaitCurveTest, NonMonotonicityDetectedForGrowingEtTransient) {
  // ET loop with transient growth (non-normal): ||x|| rises before falling,
  // so switching later needs a longer dwell — the paper's core phenomenon.
  Matrix a1{{0.9, 0.8}, {0.0, 0.9}};  // Jordan-like: transient growth
  Matrix a2{{0.6, 0.0}, {0.0, 0.6}};
  SwitchedLinearSystem sys(a1, a2, 2);
  DwellWaitSweepOptions opts;
  opts.settling.threshold = 0.1;
  const DwellWaitCurve curve = measure_dwell_wait_curve(sys, Vector{0.0, 1.0}, 0.02, opts);
  EXPECT_TRUE(curve.is_non_monotonic());
  EXPECT_GT(curve.xi_m(), curve.xi_tt());
  EXPECT_GT(curve.k_p(), 0.0);
}

TEST(DwellWaitCurveTest, ResponseIsWaitPlusDwell) {
  SwitchedLinearSystem sys = scalar_pair(0.95, 0.6);
  DwellWaitSweepOptions opts;
  opts.settling.threshold = 0.1;
  const DwellWaitCurve curve = measure_dwell_wait_curve(sys, Vector{1.0}, 0.02, opts);
  for (std::size_t i = 0; i < curve.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.response_at(i),
                     curve.points()[i].wait_s + curve.points()[i].dwell_s);
  }
}

TEST(DwellWaitCurveTest, UnstableEtLoopThrows) {
  SwitchedLinearSystem sys = scalar_pair(1.02, 0.5);
  DwellWaitSweepOptions opts;
  opts.settling.threshold = 0.1;
  opts.settling.max_steps = 2000;
  EXPECT_THROW(measure_dwell_wait_curve(sys, Vector{1.0}, 0.02, opts), NumericalError);
}

TEST(DwellWaitCurveTest, PointsAreDenseInWaitSteps) {
  SwitchedLinearSystem sys = scalar_pair(0.9, 0.5);
  DwellWaitSweepOptions opts;
  opts.settling.threshold = 0.1;
  const DwellWaitCurve curve = measure_dwell_wait_curve(sys, Vector{1.0}, 0.02, opts);
  for (std::size_t i = 0; i < curve.points().size(); ++i)
    EXPECT_EQ(curve.points()[i].wait_steps, i);
}

}  // namespace
