// Scenario-script regression suite: replay every committed scenario in
// examples/scenarios/ and byte-compare its event-log CSV against the
// frozen golden in tests/golden/.  Any drift in fleet synthesis, the
// arrival streams, the allocator, or the CSV format shows up here as a
// byte diff — regenerate the goldens (and justify the change) with:
//
//   build/tools/cps_run --scenario examples/scenarios/<name>.toml --csv tests/golden/
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "online/scenario.hpp"
#include "online/world.hpp"
#include "runtime/experiment.hpp"

namespace {

using namespace cps;

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::string> committed_scenarios() {
  const std::filesystem::path dir = std::filesystem::path(CPS_REPO_DIR) / "examples" /
                                    "scenarios";
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".toml") paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ScenarioGoldenTest, EveryCommittedScenarioReplaysItsFrozenEventLog) {
  const auto paths = committed_scenarios();
  ASSERT_GE(paths.size(), 6u) << "the committed scenario suite must stay >= 6 scripts";

  for (const auto& path : paths) {
    SCOPED_TRACE(path);
    const online::ScenarioSpec scenario = online::load_scenario(path);
    // The file stem IS the scenario name — keeps script, golden and CSV
    // artifact names in one-to-one correspondence.
    EXPECT_EQ(std::filesystem::path(path).stem().string(), scenario.name);

    // Replay exactly as a bare `cps_run --scenario FILE` would: default
    // context, so the scenario's own seed (or the default) applies.
    const runtime::ExperimentContext ctx;
    online::World world(scenario, online::effective_scenario_seed(ctx, scenario));
    world.run();

    const auto temp = (std::filesystem::temp_directory_path() /
                       ("cps-golden-" + scenario.name + "-" + std::to_string(::getpid()) +
                        ".csv"))
                          .string();
    online::write_event_log_csv(temp, world);
    const std::string actual = read_bytes(temp);
    std::filesystem::remove(temp);

    const auto golden = std::filesystem::path(CPS_REPO_DIR) / "tests" / "golden" /
                        ("scenario_" + scenario.name + "_events.csv");
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing golden " << golden << " — generate it with cps_run --scenario";
    EXPECT_EQ(actual, read_bytes(golden.string()))
        << "event log drifted from the frozen golden";
  }
}

TEST(ScenarioGoldenTest, CommittedSuiteCoversEveryEventKind) {
  // The six scripts are the regression net for the whole fault-injection
  // surface; a suite that quietly stopped exercising a kind would let
  // that kind rot.
  std::vector<bool> seen(6, false);
  for (const auto& path : committed_scenarios())
    for (const auto& event : online::load_scenario(path).events)
      seen[static_cast<std::size_t>(event.kind)] = true;
  for (std::size_t kind = 0; kind < seen.size(); ++kind)
    EXPECT_TRUE(seen[kind]) << "no committed scenario injects "
                            << online::event_kind_name(static_cast<online::EventKind>(kind));
}

}  // namespace
