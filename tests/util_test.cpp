// Unit tests for the util module: error contracts, formatting, tables,
// CSV output and the deterministic RNG.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

TEST(ErrorTest, EnsureThrowsInvalidArgumentWithLocation) {
  try {
    CPS_ENSURE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, EnsurePassesQuietly) {
  EXPECT_NO_THROW(CPS_ENSURE(2 + 2 == 4, "fine"));
}

TEST(ErrorTest, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw DimensionMismatch("d"), Error);
  EXPECT_THROW(throw NumericalError("n"), Error);
  EXPECT_THROW(throw InfeasibleError("i"), Error);
  EXPECT_THROW(throw InvalidArgument("a"), Error);
}

TEST(FormatTest, FixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(FormatTest, GeneralIntegersRenderWithoutDecimals) {
  EXPECT_EQ(format_general(42.0), "42");
  EXPECT_EQ(format_general(-3.0), "-3");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(FormatTest, JoinAndRepeat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, NumericRowHelper) {
  TextTable t({"app", "a", "b"});
  t.add_row("C1", {1.234, 5.678}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
  EXPECT_NE(t.render().find("5.68"), std::string::npos);
}

TEST(TableTest, RaggedRowsExtendColumns) {
  TextTable t({"one"});
  t.add_row({"a", "b", "c"});
  EXPECT_NO_THROW(t.render());
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/cps_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.write_row(std::vector<std::string>{"1", "2"});
    csv.write_row(std::vector<double>{3.5, 4.5}, 1);
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.5");
  std::remove(path.c_str());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  const std::string path = testing::TempDir() + "/cps_csv_escape.csv";
  {
    CsvWriter csv(path, {"field"});
    csv.write_row(std::vector<std::string>{"a,b \"quoted\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b \"\"quoted\"\"\"");
  std::remove(path.c_str());
}

TEST(CsvTest, ArityMismatchThrows) {
  const std::string path = testing::TempDir() + "/cps_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row(std::vector<std::string>{"only-one"}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

TEST(RngTest, InvalidRangesThrow) {
  Rng rng;
  EXPECT_THROW(rng.uniform(1.0, 1.0), InvalidArgument);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

}  // namespace
