// Online world tests: the tick engine's determinism contract (identical
// scenario + seed => byte-identical event log, at any exact_jobs and any
// advance() call pattern), the sim-time/wall-clock decoupling, and the
// semantics of each fault kind as seen through the world.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "online/scenario.hpp"
#include "online/world.hpp"
#include "util/toml.hpp"

namespace {

using namespace cps;
using cps::online::ScenarioSpec;
using cps::online::World;

ScenarioSpec parse_scenario(const std::string& text) {
  return online::make_scenario(util::parse_toml(text, "s.toml"), "s.toml");
}

/// The churn demo: slot loss, drift, frame loss and join/leave over a
/// small fleet — every event kind except an outage.
ScenarioSpec churn_scenario() {
  return parse_scenario(
      "scenario_version = 1\n"
      "[scenario]\nname = \"churn\"\nticks = 24\ntick_seconds = 0.5\n"
      "[fleet]\nn_apps = 6\nutilization = 1.5\n"
      "[[event]]\nat_tick = 4\nkind = \"drop_slot\"\n"
      "[[event]]\nat_tick = 8\nkind = \"drift\"\napp = \"G1\"\nfactor = 1.3\n"
      "[[event]]\nat_tick = 10\nkind = \"drop_frames\"\napp = \"G3\"\nfactor = 1.4\n"
      "[[event]]\nat_tick = 12\nkind = \"join\"\napp = \"H\"\nr = 20.0\n"
      "deadline = 15.0\nxi_tt = 0.4\nxi_m = 1.2\nk_p = 0.4\nxi_et = 1.6\n"
      "[[event]]\nat_tick = 16\nkind = \"leave\"\napp = \"G0\"\n"
      "[[event]]\nat_tick = 18\nkind = \"delay_frames\"\napp = \"G2\"\ndelay = 0.5\n");
}

/// The event log as the CSV bytes the golden/CI comparisons see.
std::string csv_bytes(const World& world) {
  const auto path = (std::filesystem::temp_directory_path() /
                     ("cps-world-test-" + std::to_string(::getpid()) + ".csv"))
                        .string();
  online::write_event_log_csv(path, world);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  std::filesystem::remove(path);
  return text.str();
}

TEST(WorldDeterminismTest, SameScenarioAndSeedGiveByteIdenticalEventLogs) {
  World a(churn_scenario(), 7);
  World b(churn_scenario(), 7);
  a.run();
  b.run();
  EXPECT_EQ(csv_bytes(a), csv_bytes(b));
  // A different seed draws different arrival streams (and possibly a
  // different fleet), so the log must differ — the seed is load-bearing.
  World c(churn_scenario(), 8);
  c.run();
  EXPECT_NE(csv_bytes(a), csv_bytes(c));
}

TEST(WorldDeterminismTest, ExactJobsNeverChangesTheEventLog) {
  online::ReallocationPolicy one, four;
  one.exact_jobs = 1;
  four.exact_jobs = 4;
  World a(churn_scenario(), 7, one);
  World b(churn_scenario(), 7, four);
  a.run();
  b.run();
  EXPECT_EQ(csv_bytes(a), csv_bytes(b));
}

TEST(WorldDeterminismTest, AdvanceCallPatternIsIrrelevant) {
  // Sim time advances ONLY as ticks compute: single-stepping the whole
  // scenario replays exactly what one run() call produces.
  World stepped(churn_scenario(), 7);
  World batched(churn_scenario(), 7);
  std::uint64_t steps = 0;
  while (!stepped.done()) {
    ASSERT_EQ(stepped.advance(1), 1u);
    ++steps;
    EXPECT_DOUBLE_EQ(stepped.sim_time(),
                     static_cast<double>(stepped.tick()) * stepped.scenario().tick_seconds);
  }
  batched.run();
  EXPECT_EQ(steps, stepped.scenario().ticks);
  EXPECT_EQ(stepped.advance(5), 0u);  // past the end: nothing computes
  EXPECT_EQ(csv_bytes(stepped), csv_bytes(batched));
}

TEST(WorldSemanticsTest, EventsReshapeTheFleetAndTheLogRecordsThem) {
  World world(churn_scenario(), 7);
  EXPECT_EQ(world.app_names().size(), 6u);  // G0..G5 resident at tick 0
  world.run();

  // Churn: H joined, G0 left.
  const auto names = world.app_names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_NE(std::find(names.begin(), names.end(), "H"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "G0"), names.end());

  // The log: one init row first, one row per fired event, one end row
  // last, and a report per re-allocation (init + 6 events).
  const auto& log = world.event_log();
  ASSERT_GE(log.size(), 8u);
  EXPECT_EQ(log.front().event, "init");
  EXPECT_EQ(log.front().tick, 0u);
  EXPECT_EQ(log.back().event, "end");
  for (const char* kind : {"drop_slot", "drift", "drop_frames", "join", "leave",
                           "delay_frames"}) {
    EXPECT_TRUE(std::any_of(log.begin(), log.end(),
                            [&](const online::EventLogRow& row) { return row.event == kind; }))
        << kind;
  }
  ASSERT_EQ(world.reports().size(), 7u);
  EXPECT_EQ(world.reports().front().trigger, "init");
  EXPECT_EQ(world.reports()[1].trigger, "drop_slot");

  // Ticks are monotone in the log, and the world actually simulated.
  for (std::size_t i = 1; i < log.size(); ++i) EXPECT_GE(log[i].tick, log[i - 1].tick);
  EXPECT_GT(world.total_arrivals(), 0u);
  EXPECT_TRUE(world.done());
}

TEST(WorldSemanticsTest, DropSlotExhaustionIsAnAbsorbingOutage) {
  // A one-slot budget and one drop_slot: every slot is gone, the world
  // degrades to an empty allocation, and every later arrival misses.
  const ScenarioSpec scenario = parse_scenario(
      "scenario_version = 1\n"
      "[scenario]\nname = \"outage\"\nticks = 30\ntick_seconds = 1.0\n"
      "[fleet]\nn_apps = 3\nutilization = 0.6\nslot_budget = 1\n"
      "[[event]]\nat_tick = 5\nkind = \"drop_slot\"\n");
  World world(scenario, 7);
  world.run();
  EXPECT_TRUE(world.outage());
  EXPECT_FALSE(world.feasible());
  EXPECT_EQ(world.allocation().slot_count(), 0u);
  EXPECT_GT(world.total_misses(), 0u);
  // Before the outage the budgeted slot was the whole allocation.
  EXPECT_EQ(world.event_log().front().slots, 1u);
  // Still deterministic all the way through the outage.
  World again(scenario, 7);
  again.run();
  EXPECT_EQ(csv_bytes(world), csv_bytes(again));
}

}  // namespace
