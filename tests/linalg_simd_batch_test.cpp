// Per-lane differential suite for the batched SIMD kernel layer
// (linalg/simd_batch.hpp, linalg/batch_kernels.hpp) and the batch front
// ends built on it (sim::detail::settle_batch, SwitchedLinearSystem::
// simulate_batch, control::c2d_pair_batch, design_hybrid_loops_batch).
//
// The layer's contract is BIT-identity per lane to the scalar kernels, so
// every comparison here is on exact bit patterns — including NaN payloads
// and signed zeros, which EXPECT_EQ on doubles cannot see (NaN != NaN,
// -0.0 == +0.0); we compare the raw 64-bit representations instead.
// Sizes run 1..12 (crossing the inline -> heap storage boundary of
// Matrix/Vector), batches run ragged (1..kSimdWidth lanes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "control/discretize.hpp"
#include "control/loop_design.hpp"
#include "control/state_space.hpp"
#include "linalg/batch_kernels.hpp"
#include "linalg/expm.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd_batch.hpp"
#include "linalg/vector.hpp"
#include "plants/second_order.hpp"
#include "plants/servo_motor.hpp"
#include "sim/settling.hpp"
#include "sim/switched_system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::linalg;

constexpr std::size_t W = kSimdWidth;

std::uint64_t bits_of(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void expect_same_bits(double a, double b, const char* what) {
  EXPECT_EQ(bits_of(a), bits_of(b)) << what << ": " << a << " vs " << b;
}

void expect_matrix_bits(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) expect_same_bits(a(i, j), b(i, j), what);
}

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols, bool sprinkle_zeros = true) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = (sprinkle_zeros && rng.bernoulli(0.2)) ? 0.0 : rng.uniform(-2.0, 2.0);
  return m;
}

// ---------------------------------------------------------------------------
// simd_batch value-type semantics.

TEST(SimdBatch, WidthAndIsaAgree) {
  EXPECT_GE(kSimdWidth, 2u);
  EXPECT_STREQ(simd_isa_name(), kSimdIsaName);
}

TEST(SimdBatch, LoadStoreRoundTripsBits) {
  double src[W], dst[W];
  src[0] = -0.0;
  src[1] = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 2; i < W; ++i) src[i] = 1.25 * static_cast<double>(i);
  DoubleBatch::load(src).store(dst);
  for (std::size_t i = 0; i < W; ++i) expect_same_bits(src[i], dst[i], "roundtrip");
}

TEST(SimdBatch, MultiplyAddUsesTwoRoundings) {
  // Pick operands where fma(a, b, acc) != acc + a * b so a fused path
  // would be caught: a*b rounds away the low-order part that an FMA keeps.
  const double a = 1.0 + 0x1p-30, b = 1.0 + 0x1p-30, acc = -1.0 - 0x1p-29;
  const double two_rounding = acc + (a * b);
  const double fused = std::fma(a, b, acc);
  ASSERT_NE(bits_of(two_rounding), bits_of(fused)) << "probe operands too benign";
  double out[W];
  DoubleBatch::multiply_add(DoubleBatch::broadcast(a), DoubleBatch::broadcast(b),
                            DoubleBatch::broadcast(acc))
      .store(out);
  for (std::size_t i = 0; i < W; ++i) expect_same_bits(out[i], two_rounding, "multiply_add");
}

TEST(SimdBatch, AccumulateSkipZeroMatchesScalarBranch) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Per lane: (aik, b, acc) -> aik == 0.0 ? acc : acc + aik * b, the exact
  // scalar `if (aik == 0.0) continue;` including the cases where skipping
  // is bit-visible: 0 * NaN (skip keeps acc finite) and -0.0 + 0.0 (skip
  // keeps acc's -0.0).
  struct Case {
    double aik, b, acc;
  };
  const Case cases[] = {
      {0.0, nan, 3.5},    // skip: acc survives a NaN b
      {-0.0, 2.0, -0.0},  // -0.0 == 0.0 -> skip: acc stays -0.0
      {nan, 2.0, 1.0},    // NaN != 0.0 -> accumulate: NaN propagates
      {2.0, -3.0, 0.5},   // plain accumulate
  };
  for (const Case& c : cases) {
    const double expected = c.aik == 0.0 ? c.acc : c.acc + c.aik * c.b;
    double out[W];
    DoubleBatch::accumulate_skip_zero(DoubleBatch::broadcast(c.aik), DoubleBatch::broadcast(c.b),
                                      DoubleBatch::broadcast(c.acc))
        .store(out);
    for (std::size_t i = 0; i < W; ++i) expect_same_bits(out[i], expected, "skip_zero");
  }
}

TEST(SimdBatch, SqrtIsCorrectlyRoundedPerLane) {
  Rng rng(0x51237ULL);
  for (int trial = 0; trial < 64; ++trial) {
    double src[W], out[W];
    for (std::size_t i = 0; i < W; ++i) src[i] = rng.uniform(0.0, 100.0);
    DoubleBatch::sqrt(DoubleBatch::load(src)).store(out);
    for (std::size_t i = 0; i < W; ++i) expect_same_bits(out[i], std::sqrt(src[i]), "sqrt");
  }
}

TEST(SimdBatch, BatchMatrixLanesAreInterleaved) {
  BatchMat m(2, 3);
  Matrix a(2, 3);
  for (std::size_t e = 0; e < 6; ++e) a.data()[e] = static_cast<double>(e);
  m.load_lane(1, a);
  // Element (r, c) of lane L sits at data()[(r * cols + c) * W + L].
  for (std::size_t e = 0; e < 6; ++e)
    EXPECT_EQ(m.data()[e * W + 1], static_cast<double>(e));
  Matrix back;
  m.store_lane(1, back);
  expect_matrix_bits(back, a, "lane roundtrip");
}

// ---------------------------------------------------------------------------
// Batched elementwise/product kernels vs their scalar counterparts.

TEST(BatchKernels, MultiplyMatchesScalarPerLane) {
  Rng rng(0xBA7C4ULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    std::vector<Matrix> as, bs;
    BatchMat ba(m, k), bb(k, n), bout;
    for (std::size_t l = 0; l < W; ++l) {
      as.push_back(random_matrix(rng, m, k));
      bs.push_back(random_matrix(rng, k, n));
      ba.load_lane(l, as[l]);
      bb.load_lane(l, bs[l]);
    }
    batch_multiply_into(ba, bb, bout);
    for (std::size_t l = 0; l < W; ++l) {
      Matrix expected, got;
      multiply_into(as[l], bs[l], expected);
      bout.store_lane(l, got);
      expect_matrix_bits(got, expected, "batch_multiply_into");
    }
  }
}

TEST(BatchKernels, MultiplyPropagatesNaNAndSignedZeroLikeTheScalarSkip) {
  // One lane carries a NaN row and a -0.0 that only survive in the output
  // iff the zero-skip is replicated exactly; the other lanes stay benign,
  // proving the blend never leaks across lanes.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Matrix a0(2, 2);
  a0(0, 0) = 0.0;  a0(0, 1) = nan;   // skip then accumulate NaN
  a0(1, 0) = -0.0; a0(1, 1) = 0.0;   // all skipped: output row stays +0.0
  Matrix b0(2, 2);
  b0(0, 0) = 1.0; b0(0, 1) = -0.0;
  b0(1, 0) = 2.0; b0(1, 1) = 3.0;
  Rng rng(0x5EEDULL);
  std::vector<Matrix> as{a0}, bs{b0};
  BatchMat ba(2, 2), bb(2, 2), bout;
  for (std::size_t l = 1; l < W; ++l) {
    as.push_back(random_matrix(rng, 2, 2));
    bs.push_back(random_matrix(rng, 2, 2));
  }
  for (std::size_t l = 0; l < W; ++l) {
    ba.load_lane(l, as[l]);
    bb.load_lane(l, bs[l]);
  }
  batch_multiply_into(ba, bb, bout);
  for (std::size_t l = 0; l < W; ++l) {
    Matrix expected, got;
    multiply_into(as[l], bs[l], expected);
    bout.store_lane(l, got);
    expect_matrix_bits(got, expected, "NaN/signed-zero lane");
  }
}

TEST(BatchKernels, ApplyMatchesScalarPerLane) {
  Rng rng(0xAB71EULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    std::vector<Matrix> as;
    std::vector<Vector> xs;
    BatchMat ba(m, n);
    BatchVec bx(n), bout;
    for (std::size_t l = 0; l < W; ++l) {
      as.push_back(random_matrix(rng, m, n));
      Vector x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-2.0, 2.0);
      xs.push_back(x);
      ba.load_lane(l, as[l]);
      bx.load_lane(l, xs[l].data());
    }
    bout.resize(m);
    batch_apply_into(ba, bx, bout);
    for (std::size_t l = 0; l < W; ++l) {
      Vector expected, got(m);
      apply_into(as[l], xs[l], expected);
      bout.store_lane(l, got.data());
      for (std::size_t i = 0; i < m; ++i)
        expect_same_bits(got[i], expected[i], "batch_apply_into");
    }
  }
}

TEST(BatchKernels, ApplySharedMatchesScalarPerLane) {
  Rng rng(0x54A3EDULL);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const Matrix a = random_matrix(rng, n, n);
    std::vector<Vector> xs;
    BatchVec bx(n), bout(n);
    for (std::size_t l = 0; l < W; ++l) {
      Vector x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-2.0, 2.0);
      xs.push_back(x);
      bx.load_lane(l, xs[l].data());
    }
    batch_apply_shared_into(a, bx, bout);
    for (std::size_t l = 0; l < W; ++l) {
      Vector expected, got(n);
      apply_into(a, xs[l], expected);
      bout.store_lane(l, got.data());
      for (std::size_t i = 0; i < n; ++i)
        expect_same_bits(got[i], expected[i], "batch_apply_shared_into");
    }
  }
}

TEST(BatchKernels, AddScaledAndIdentityAndScaleLanesMatchScalar) {
  Rng rng(0xADD5CULL);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const double s = rng.uniform(-3.0, 3.0);
    std::vector<Matrix> accs, xs;
    double lane_scale[W];
    BatchMat bacc(n, n), bx(n, n);
    for (std::size_t l = 0; l < W; ++l) {
      accs.push_back(random_matrix(rng, n, n));
      xs.push_back(random_matrix(rng, n, n));
      lane_scale[l] = rng.uniform(-2.0, 2.0);
      bacc.load_lane(l, accs[l]);
      bx.load_lane(l, xs[l]);
    }
    batch_add_scaled_into(bacc, bx, s);
    batch_add_identity_into(bacc);
    batch_scale_lanes(bacc, lane_scale);
    for (std::size_t l = 0; l < W; ++l) {
      Matrix expected = accs[l];
      add_scaled_into(expected, xs[l], s);
      add_identity_into(expected);
      expected *= lane_scale[l];
      Matrix got;
      bacc.store_lane(l, got);
      expect_matrix_bits(got, expected, "add_scaled/identity/scale_lanes");
    }
  }
}

TEST(BatchKernels, MultiplyRejectsAliasAndMismatch) {
  BatchMat a(2, 2), b(2, 3), out;
  EXPECT_THROW(batch_multiply_into(a, b, a), InvalidArgument);
  BatchMat wrong(3, 2);
  EXPECT_THROW(batch_multiply_into(a, wrong, out), DimensionMismatch);
}

// ---------------------------------------------------------------------------
// Batched expm / ZOH / c2d vs the scalar pipeline.

TEST(BatchKernels, ExpmMatchesScalarPerLane) {
  Rng rng(0xE4931ULL);
  for (std::size_t n = 1; n <= 6; ++n) {
    for (std::size_t count = 1; count <= W; ++count) {  // ragged tails
      std::vector<Matrix> inputs;
      std::vector<const Matrix*> ptrs;
      for (std::size_t l = 0; l < count; ++l) {
        Matrix m = random_matrix(rng, n, n, false);
        // Spread the norms so the per-lane scaling exponents s differ —
        // the lane-masked squaring rounds are what is under test.
        m *= std::pow(4.0, static_cast<double>(l % 4));
        inputs.push_back(std::move(m));
      }
      for (const Matrix& m : inputs) ptrs.push_back(&m);
      std::vector<Matrix> out(count);
      expm_batch(ptrs.data(), count, out.data());
      for (std::size_t l = 0; l < count; ++l)
        expect_matrix_bits(out[l], expm(inputs[l]), "expm_batch");
    }
  }
}

TEST(BatchKernels, ExpmBatchThrowsOnNonFiniteLikeScalar) {
  Matrix bad(2, 2);
  bad(0, 0) = std::numeric_limits<double>::infinity();
  const Matrix good = Matrix::identity(2);
  const Matrix* ptrs[2] = {&good, &bad};
  std::vector<Matrix> out(2);
  EXPECT_THROW(expm_batch(ptrs, std::min<std::size_t>(2, W), out.data()), NumericalError);
}

TEST(BatchKernels, ZohIntegralsMatchesScalarPerLane) {
  Rng rng(0x20431ULL);
  for (std::size_t n = 1; n <= 4; ++n) {
    const std::size_t m = 1 + (n % 2);
    for (std::size_t count = 1; count <= W; ++count) {
      std::vector<Matrix> as, bs;
      std::vector<const Matrix*> ap, bp;
      std::vector<double> ts;
      for (std::size_t l = 0; l < count; ++l) {
        as.push_back(random_matrix(rng, n, n, false));
        bs.push_back(random_matrix(rng, n, m, false));
        // Lane 1 rides along with t = 0 (the exact {I, 0} shortcut).
        ts.push_back(l == 1 ? 0.0 : rng.uniform(0.005, 0.1));
      }
      for (std::size_t l = 0; l < count; ++l) {
        ap.push_back(&as[l]);
        bp.push_back(&bs[l]);
      }
      std::vector<ZohPair> out(count);
      zoh_integrals_batch(ap.data(), bp.data(), ts.data(), count, out.data());
      for (std::size_t l = 0; l < count; ++l) {
        const ZohPair expected = zoh_integrals(as[l], bs[l], ts[l]);
        expect_matrix_bits(out[l].phi, expected.phi, "zoh phi");
        expect_matrix_bits(out[l].gamma, expected.gamma, "zoh gamma");
      }
    }
  }
}

void expect_discrete_bits(const control::DiscreteSystem& got,
                          const control::DiscreteSystem& expected) {
  expect_matrix_bits(got.phi(), expected.phi(), "phi");
  expect_matrix_bits(got.gamma0(), expected.gamma0(), "gamma0");
  expect_matrix_bits(got.gamma1(), expected.gamma1(), "gamma1");
  expect_matrix_bits(got.c(), expected.c(), "c");
  EXPECT_EQ(got.sampling_period(), expected.sampling_period());
  EXPECT_EQ(got.delay(), expected.delay());
}

TEST(BatchKernels, C2dPairBatchMatchesScalarAcrossDelayClasses) {
  std::vector<control::StateSpace> plants;
  plants.push_back(plants::make_oscillator(8.0, 0.15, 1.0));
  plants.push_back(plants::make_resonant(12.0, 0.4, 2.0));
  plants.push_back(plants::make_oscillator(3.0, 0.7, 0.5));
  for (std::size_t count = 1; count <= W; ++count) {
    std::vector<const control::StateSpace*> ptrs;
    std::vector<double> h(count), d_first(count), d_second(count);
    for (std::size_t l = 0; l < count; ++l) {
      ptrs.push_back(&plants[l % plants.size()]);
      h[l] = 0.02 + 0.005 * static_cast<double>(l);
      // Cycle through the three delay classes: d == 0, d == h, general.
      d_first[l] = (l % 3 == 0) ? 0.0 : (l % 3 == 1 ? h[l] : 0.4 * h[l]);
      d_second[l] = (l % 3 == 0) ? h[l] : (l % 3 == 1 ? 0.25 * h[l] : 0.0);
    }
    const auto batch = control::c2d_pair_batch(ptrs.data(), h.data(), d_first.data(),
                                               d_second.data(), count);
    ASSERT_EQ(batch.size(), count);
    for (std::size_t l = 0; l < count; ++l) {
      const auto scalar = control::c2d_pair(*ptrs[l], h[l], d_first[l], d_second[l]);
      expect_discrete_bits(batch[l].first, scalar.first);
      expect_discrete_bits(batch[l].second, scalar.second);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched settle / trajectory / design front ends.

TEST(BatchFrontEnds, SettleBatchMatchesSettleInPlacePerLane) {
  const auto design = plants::design_servo_loops();
  const Matrix& a = design.a_tt;
  const std::size_t dim = a.rows();
  sim::SettlingOptions opts;
  opts.threshold = 0.1;
  Rng rng(0x5E77ULL);
  for (std::size_t active = 1; active <= W; ++active) {
    std::vector<std::vector<double>> x0s;
    for (std::size_t l = 0; l < W; ++l) {
      std::vector<double> x(dim);
      for (std::size_t i = 0; i < dim; ++i) x[i] = rng.uniform(-3.0, 3.0);
      x0s.push_back(x);
    }
    BatchVec state(dim), scratch(dim);
    for (std::size_t l = 0; l < W; ++l) state.load_lane(l, x0s[l].data());
    std::optional<std::size_t> results[W];
    sim::detail::settle_batch(a, state, scratch, design.state_dim, opts, active, results);
    for (std::size_t l = 0; l < active; ++l) {
      std::vector<double> s = x0s[l], sc;
      const auto expected =
          sim::detail::settle_in_place(a, s, sc, design.state_dim, opts);
      EXPECT_EQ(results[l], expected) << "lane " << l << " active " << active;
    }
  }
}

TEST(BatchFrontEnds, SettleBatchReportsNulloptAtTheCapLikeScalar) {
  const auto design = plants::design_servo_loops();
  const Matrix& a = design.a_et;  // slow loop + tiny threshold: hits the cap
  const std::size_t dim = a.rows();
  sim::SettlingOptions opts;
  opts.threshold = 1e-12;
  opts.max_steps = 200;
  BatchVec state(dim), scratch(dim);
  std::vector<double> x0(dim, 1.0);
  for (std::size_t l = 0; l < W; ++l) state.load_lane(l, x0.data());
  std::optional<std::size_t> results[W];
  sim::detail::settle_batch(a, state, scratch, design.state_dim, opts, W, results);
  std::vector<double> s = x0, sc;
  const auto expected = sim::detail::settle_in_place(a, s, sc, design.state_dim, opts);
  EXPECT_FALSE(expected.has_value());
  for (std::size_t l = 0; l < W; ++l) EXPECT_EQ(results[l], expected);
}

TEST(BatchFrontEnds, SimulateBatchMatchesSimulatePerLane) {
  const auto design = plants::design_servo_loops();
  const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  Rng rng(0x7124ECULL);
  for (std::size_t count = 1; count <= W; ++count) {
    std::vector<Vector> x0s;
    for (std::size_t l = 0; l < count; ++l) {
      Vector x(sys.dimension());
      for (std::size_t i = 0; i < sys.dimension(); ++i) x[i] = rng.uniform(-2.0, 2.0);
      x0s.push_back(x);
    }
    const auto batch = sys.simulate_batch(x0s.data(), count, 17, 60, 0.02);
    ASSERT_EQ(batch.size(), count);
    for (std::size_t l = 0; l < count; ++l) {
      const auto scalar = sys.simulate(x0s[l], 17, 60, 0.02);
      ASSERT_EQ(batch[l].length(), scalar.length());
      EXPECT_EQ(batch[l].sampling_period(), scalar.sampling_period());
      for (std::size_t k = 0; k < scalar.length(); ++k) {
        const auto& bs = batch[l].at(k);
        const auto& ss = scalar.at(k);
        EXPECT_EQ(bs.mode, ss.mode);
        expect_same_bits(bs.norm, ss.norm, "sample norm");
        ASSERT_EQ(bs.state.size(), ss.state.size());
        for (std::size_t i = 0; i < ss.state.size(); ++i)
          expect_same_bits(bs.state[i], ss.state[i], "sample state");
      }
    }
  }
}

TEST(BatchFrontEnds, SimulateBatchWorkspaceRecyclingStaysBitIdentical) {
  // Warm workspace calls reuse recycled sample storage; results must stay
  // bit-identical to the cold overload call after call.
  const auto design = plants::design_servo_loops();
  const sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  Rng rng(0x9C1BAULL);
  sim::TrajectoryBatchWorkspace workspace;
  for (int round = 0; round < 3; ++round) {
    std::vector<Vector> x0s;
    for (std::size_t l = 0; l < W; ++l) {
      Vector x(sys.dimension());
      for (std::size_t i = 0; i < sys.dimension(); ++i) x[i] = rng.uniform(-2.0, 2.0);
      x0s.push_back(x);
    }
    auto warm = sys.simulate_batch(x0s.data(), W, 17, 60, 0.02, workspace);
    const auto cold = sys.simulate_batch(x0s.data(), W, 17, 60, 0.02);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t l = 0; l < W; ++l) {
      ASSERT_EQ(warm[l].length(), cold[l].length());
      for (std::size_t k = 0; k < cold[l].length(); ++k) {
        expect_same_bits(warm[l].at(k).norm, cold[l].at(k).norm, "warm norm");
        for (std::size_t i = 0; i < cold[l].at(k).state.size(); ++i)
          expect_same_bits(warm[l].at(k).state[i], cold[l].at(k).state[i], "warm state");
      }
    }
    for (auto& traj : warm) workspace.recycle(std::move(traj));
  }
}

TEST(BatchFrontEnds, DesignBatchMatchesScalarAcrossMixedShapes) {
  // Second-order plants mixed with a third-order companion plant so the
  // shape-grouping path runs; interleaved order proves results scatter
  // back by input index.
  std::vector<control::StateSpace> plants;
  std::vector<control::PolePlacementLoopSpec> specs;
  Matrix a3(3, 3);
  a3(0, 1) = 1.0;
  a3(1, 2) = 1.0;
  a3(2, 0) = -1.0;
  a3(2, 1) = -2.0;
  a3(2, 2) = -1.5;
  Matrix b3(3, 1);
  b3(2, 0) = 1.0;
  for (int i = 0; i < 2 * static_cast<int>(W) + 1; ++i) {
    control::PolePlacementLoopSpec spec;
    spec.sampling_period = 0.02;
    spec.delay_tt = 0.0;
    spec.delay_et = 0.02;
    const double rho = 0.35 + 0.04 * static_cast<double>(i % 5);
    if (i % 3 == 2) {
      plants.emplace_back(a3, b3);
      spec.poles_tt = control::oscillatory_pole_set(rho, 0.5, 4);
      spec.poles_et = control::oscillatory_pole_set(rho + 0.1, 0.7, 4);
    } else {
      plants.push_back(plants::make_oscillator(5.0 + i, 0.2, 1.0));
      spec.poles_tt = control::oscillatory_pole_set(rho, 0.5, 3);
      spec.poles_et = control::oscillatory_pole_set(rho + 0.1, 0.7, 3);
    }
    specs.push_back(std::move(spec));
  }
  std::vector<const control::StateSpace*> plant_ptrs;
  std::vector<const control::PolePlacementLoopSpec*> spec_ptrs;
  for (std::size_t i = 0; i < plants.size(); ++i) {
    plant_ptrs.push_back(&plants[i]);
    spec_ptrs.push_back(&specs[i]);
  }
  const auto batch = control::design_hybrid_loops_batch(plant_ptrs, spec_ptrs);
  ASSERT_EQ(batch.size(), plants.size());
  for (std::size_t i = 0; i < plants.size(); ++i) {
    const auto scalar = control::design_hybrid_loops(plants[i], specs[i]);
    expect_matrix_bits(batch[i].gain_tt, scalar.gain_tt, "gain_tt");
    expect_matrix_bits(batch[i].gain_et, scalar.gain_et, "gain_et");
    expect_matrix_bits(batch[i].a_tt, scalar.a_tt, "a_tt");
    expect_matrix_bits(batch[i].a_et, scalar.a_et, "a_et");
    expect_same_bits(batch[i].rho_tt, scalar.rho_tt, "rho_tt");
    expect_same_bits(batch[i].rho_et, scalar.rho_et, "rho_et");
    EXPECT_EQ(batch[i].state_dim, scalar.state_dim);
  }
}

}  // namespace
