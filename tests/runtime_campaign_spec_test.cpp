// Unit tests for the campaign-spec front end (runtime/campaign_spec.hpp):
// validation of the [campaign] section, digest stability across key
// order / comments / formatting, and the null-tolerant spec_* typed
// parameter helpers experiment bodies read their knobs through.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/campaign_spec.hpp"
#include "util/toml.hpp"

namespace {

using namespace cps;
using cps::runtime::CampaignSpec;
using cps::runtime::load_campaign_spec;
using cps::runtime::make_campaign_spec;
using cps::util::TomlError;
using cps::util::parse_toml;

CampaignSpec spec_from(const std::string& text, const std::string& source = "test.toml") {
  return make_campaign_spec(parse_toml(text, source), source);
}

const char* kValidSpec =
    "spec_version = 1\n"
    "[campaign]\n"
    "name = \"acceptance_small\"\n"
    "experiments = [\"sweep_acceptance_ratio\", \"fig4\"]\n"
    "seed = 71\n"
    "fixture_store = \"/tmp/store\"\n"
    "shards = 2\n"
    "[grid]\n"
    "utilization = [1.0, 2.5]\n"
    "trials = 10\n";

TEST(CampaignSpecTest, ValidSpecExtractsEveryField) {
  const auto spec = spec_from(kValidSpec);
  EXPECT_EQ(spec.name, "acceptance_small");
  EXPECT_EQ(spec.experiments,
            (std::vector<std::string>{"sweep_acceptance_ratio", "fig4"}));
  EXPECT_TRUE(spec.has_seed);
  EXPECT_EQ(spec.seed, 71u);
  EXPECT_EQ(spec.fixture_store, "/tmp/store");
  EXPECT_EQ(spec.shard_plan, 2u);
  EXPECT_EQ(spec.source, "test.toml");
  // Every key — including campaign.* — stays reachable as a parameter.
  EXPECT_EQ(spec.params.get_double_array("grid.utilization"),
            (std::vector<double>{1.0, 2.5}));
}

TEST(CampaignSpecTest, SingularExperimentKeyAndDefaults) {
  const auto spec = spec_from(
      "spec_version = 1\n"
      "[campaign]\n"
      "name = \"one\"\n"
      "experiment = \"fig4\"\n");
  EXPECT_EQ(spec.experiments, (std::vector<std::string>{"fig4"}));
  EXPECT_FALSE(spec.has_seed);
  EXPECT_TRUE(spec.fixture_store.empty());
  EXPECT_EQ(spec.shard_plan, 1u);
}

struct RejectCase {
  const char* text;
  const char* expected_substring;
};

TEST(CampaignSpecTest, MalformedSpecsFailLoudly) {
  const std::vector<RejectCase> cases = {
      {"[campaign]\nname = \"x\"\nexperiment = \"e\"\n",
       "missing required key 'spec_version'"},
      {"spec_version = 7\n[campaign]\nname = \"x\"\nexperiment = \"e\"\n",
       "unsupported spec_version 7"},
      {"spec_version = 1\n[campaign]\nexperiment = \"e\"\n",
       "missing required key 'campaign.name'"},
      {"spec_version = 1\n[campaign]\nname = \"\"\nexperiment = \"e\"\n",
       "campaign.name must be non-empty"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\n",
       "exactly one of campaign.experiment / campaign.experiments"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiment = \"e\"\n"
       "experiments = [\"e\"]\n",
       "exactly one of campaign.experiment / campaign.experiments"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiments = []\n",
       "at least one experiment"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiments = [\"\"]\n",
       "entries must be non-empty"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiment = \"e\"\nseed = -1\n",
       "campaign.seed must be >= 0"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiment = \"e\"\nshards = 0\n",
       "campaign.shards must be in [1, 4096]"},
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperiment = \"e\"\nshards = 9999\n",
       "campaign.shards must be in [1, 4096]"},
      // A typo'd [campaign] key must not be silently inert.
      {"spec_version = 1\n[campaign]\nname = \"x\"\nexperimnets = [\"e\"]\n",
       "unknown [campaign] key 'campaign.experimnets'"},
      // Wrong-kind values surface the typed-getter error.
      {"spec_version = 1\n[campaign]\nname = 3\nexperiment = \"e\"\n",
       "key 'campaign.name'"},
  };
  for (const auto& test_case : cases) {
    try {
      spec_from(test_case.text);
      FAIL() << "no error for:\n" << test_case.text;
    } catch (const TomlError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(test_case.expected_substring), std::string::npos)
          << "spec:\n" << test_case.text << "error: " << what;
      EXPECT_NE(what.find("test.toml"), std::string::npos)
          << "error must name the spec source: " << what;
    }
  }
}

TEST(CampaignSpecTest, DigestIgnoresKeyOrderCommentsAndFormatting) {
  const auto a = spec_from(kValidSpec);
  const auto b = spec_from(
      "# reordered, commented, reformatted — same VALUES\n"
      "spec_version = 1\n"
      "[grid]\n"
      "trials      = 10\n"
      "utilization = [ 1.0 , 2.5 ]\n"
      "[campaign]\n"
      "shards        = 2\n"
      "fixture_store = \"/tmp/store\"\n"
      "seed          = 71\n"
      "experiments   = [\"sweep_acceptance_ratio\", \"fig4\"]\n"
      "name          = \"acceptance_small\"\n",
      "other.toml");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest_hex(), b.digest_hex());
  EXPECT_EQ(a.digest_hex().size(), 16u);
}

TEST(CampaignSpecTest, DigestChangesWhenAnyValueChanges) {
  const auto base = spec_from(kValidSpec);
  std::string tweaked = kValidSpec;
  const auto pos = tweaked.find("trials = 10");
  ASSERT_NE(pos, std::string::npos);
  tweaked.replace(pos, 11, "trials = 11");
  EXPECT_NE(base.digest(), spec_from(tweaked).digest());
}

TEST(CampaignSpecTest, LoadsFromAFile) {
  const auto path = (std::filesystem::temp_directory_path() /
                     ("cps-spec-test-" + std::to_string(::getpid()) + ".toml"))
                        .string();
  {
    std::ofstream out(path);
    out << kValidSpec;
  }
  const auto spec = load_campaign_spec(path);
  EXPECT_EQ(spec.name, "acceptance_small");
  EXPECT_EQ(spec.source, path);
  std::filesystem::remove(path);
  EXPECT_THROW(load_campaign_spec(path), TomlError);
}

// ---------------------------------------------------------------------------
// spec_* typed helpers: the null-tolerant parameter surface experiments use.

TEST(SpecHelpersTest, NullSpecReturnsEveryFallback) {
  EXPECT_DOUBLE_EQ(cps::runtime::spec_double(nullptr, "k", 2.5), 2.5);
  EXPECT_EQ(cps::runtime::spec_int(nullptr, "k", 7), 7);
  EXPECT_EQ(cps::runtime::spec_string(nullptr, "k", "d"), "d");
  EXPECT_EQ(cps::runtime::spec_doubles(nullptr, "k", {1.0}), (std::vector<double>{1.0}));
  EXPECT_EQ(cps::runtime::spec_strings(nullptr, "k", {"x"}),
            (std::vector<std::string>{"x"}));
}

TEST(SpecHelpersTest, PresentKeysWinAbsentKeysFallBack) {
  const auto spec = spec_from(
      "spec_version = 1\n"
      "[campaign]\nname = \"x\"\nexperiment = \"e\"\n"
      "[grid]\ntrials = 30\nscale = 1.5\nlabel = \"fine\"\nutils = [0.5]\n"
      "names = [\"a\"]\n");
  EXPECT_EQ(cps::runtime::spec_int(&spec, "grid.trials", 7), 30);
  EXPECT_DOUBLE_EQ(cps::runtime::spec_double(&spec, "grid.scale", 9.0), 1.5);
  EXPECT_EQ(cps::runtime::spec_string(&spec, "grid.label", "d"), "fine");
  EXPECT_EQ(cps::runtime::spec_doubles(&spec, "grid.utils", {}),
            (std::vector<double>{0.5}));
  EXPECT_EQ(cps::runtime::spec_strings(&spec, "grid.names", {}),
            (std::vector<std::string>{"a"}));
  // Absent keys: the fallback, silently.
  EXPECT_EQ(cps::runtime::spec_int(&spec, "grid.absent", 7), 7);
  // grid.trials is an int: spec_double promotes it (1 and 1.0 equal).
  EXPECT_DOUBLE_EQ(cps::runtime::spec_double(&spec, "grid.trials", 0.0), 30.0);
}

TEST(SpecHelpersTest, PresentWrongTypeKeysThrowAndNameTheSource) {
  const auto spec = spec_from(
      "spec_version = 1\n"
      "[campaign]\nname = \"x\"\nexperiment = \"e\"\n"
      "[grid]\ntrials = \"30\"\n");
  try {
    cps::runtime::spec_int(&spec, "grid.trials", 7);
    FAIL() << "expected TomlError";
  } catch (const TomlError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("test.toml"), std::string::npos) << what;
    EXPECT_NE(what.find("grid.trials"), std::string::npos) << what;
  }
  EXPECT_THROW(cps::runtime::spec_doubles(&spec, "grid.trials", {}), TomlError);
}

}  // namespace
