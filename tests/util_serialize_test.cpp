// util/serialize round-trip guarantees: the persistent fixture store is
// only correct if decode(encode(x)) reproduces x BIT-FOR-BIT, including
// the IEEE-754 patterns text formatting would destroy (NaN payloads,
// signed zeros, infinities, denormals).  These tests compare raw bit
// patterns, never values, wherever floating point is involved.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/serialize.hpp"

namespace {

using cps::util::BinaryReader;
using cps::util::BinaryWriter;
using cps::util::SerializeError;

std::uint64_t bits_of(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double double_from_bits(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// The adversarial doubles: every class a text round-trip would mangle.
std::vector<double> hostile_doubles() {
  return {
      0.0,
      -0.0,  // signed zero: 0.0 == -0.0 but the bit patterns differ
      1.0,
      -1.0,
      0.1,  // not exactly representable
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      double_from_bits(0x7FF0000000000001ULL),  // signalling-NaN pattern
      double_from_bits(0x7FF8DEADBEEF1234ULL),  // NaN with payload
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      std::nextafter(1.0, 2.0),
  };
}

TEST(SerializeTest, U64RoundTripIncludingExtremes) {
  BinaryWriter writer;
  const std::vector<std::uint64_t> values = {0, 1, 0xFF, 0x123456789ABCDEF0ULL,
                                             std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) writer.write_u64(v);
  BinaryReader reader(writer.bytes());
  for (auto v : values) EXPECT_EQ(reader.read_u64(), v);
  reader.expect_end();
}

TEST(SerializeTest, DoubleRoundTripIsBitExact) {
  for (double value : hostile_doubles()) {
    BinaryWriter writer;
    writer.write_double(value);
    BinaryReader reader(writer.bytes());
    const double back = reader.read_double();
    EXPECT_EQ(bits_of(back), bits_of(value))
        << "bit pattern changed for " << std::hexfloat << value;
    reader.expect_end();
  }
}

TEST(SerializeTest, SignedZeroAndNanPayloadSurvive) {
  BinaryWriter writer;
  writer.write_double(-0.0);
  writer.write_double(double_from_bits(0x7FF8DEADBEEF1234ULL));
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(bits_of(reader.read_double()), bits_of(-0.0));          // not +0.0
  EXPECT_EQ(reader.read_u64() /* as raw bits */, 0x7FF8DEADBEEF1234ULL);
}

TEST(SerializeTest, StringRoundTripIncludingEmbeddedNulAndEmpty) {
  BinaryWriter writer;
  const std::string with_nul = std::string("ab\0cd", 5);
  writer.write_string("");
  writer.write_string(with_nul);
  writer.write_string("plain");
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_EQ(reader.read_string(), with_nul);
  EXPECT_EQ(reader.read_string(), "plain");
  reader.expect_end();
}

TEST(SerializeTest, VectorRoundTripIsBitExact) {
  cps::linalg::Vector v(hostile_doubles().size());
  {
    const auto values = hostile_doubles();
    for (std::size_t i = 0; i < values.size(); ++i) v[i] = values[i];
  }
  BinaryWriter writer;
  writer.write_vector(v);
  BinaryReader reader(writer.bytes());
  const auto back = reader.read_vector();
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(bits_of(back[i]), bits_of(v[i])) << "component " << i;
  reader.expect_end();
}

TEST(SerializeTest, MatrixRoundTripIsBitExactAndKeepsShape) {
  // 3x5 spans both inline storage and a non-square shape; fill with the
  // hostile doubles cyclically.
  cps::linalg::Matrix m(3, 5);
  const auto values = hostile_doubles();
  for (std::size_t i = 0; i < m.element_count(); ++i)
    m.data()[i] = values[i % values.size()];
  BinaryWriter writer;
  writer.write_matrix(m);
  BinaryReader reader(writer.bytes());
  const auto back = reader.read_matrix();
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::size_t i = 0; i < m.element_count(); ++i)
    EXPECT_EQ(bits_of(back.data()[i]), bits_of(m.data()[i])) << "element " << i;
  reader.expect_end();
}

TEST(SerializeTest, EmptyVectorAndMatrixRoundTrip) {
  BinaryWriter writer;
  writer.write_vector(cps::linalg::Vector());
  writer.write_matrix(cps::linalg::Matrix());
  BinaryReader reader(writer.bytes());
  EXPECT_TRUE(reader.read_vector().empty());
  EXPECT_TRUE(reader.read_matrix().empty());
  reader.expect_end();
}

TEST(SerializeTest, TruncatedInputThrows) {
  BinaryWriter writer;
  writer.write_double(3.14);
  writer.write_string("payload");
  const std::string& full = writer.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader reader(std::string_view(full.data(), cut));
    EXPECT_THROW(
        {
          reader.read_double();
          reader.read_string();
        },
        SerializeError)
        << "no throw at cut " << cut;
  }
}

TEST(SerializeTest, GarbageLengthPrefixThrowsInsteadOfAllocating) {
  // A corrupt length prefix must be caught by the remaining-bytes check,
  // not turned into a gigantic allocation.
  BinaryWriter writer;
  writer.write_u64(std::numeric_limits<std::uint64_t>::max());  // fake length
  writer.write_double(1.0);
  {
    BinaryReader reader(writer.bytes());
    EXPECT_THROW(reader.read_string(), SerializeError);
  }
  {
    BinaryReader reader(writer.bytes());
    EXPECT_THROW(reader.read_vector(), SerializeError);
  }
}

TEST(SerializeTest, OversizedMatrixShapeThrows) {
  BinaryWriter writer;
  writer.write_u64(1u << 20);  // rows
  writer.write_u64(1u << 20);  // cols: rows*cols overflows any sane payload
  BinaryReader reader(writer.bytes());
  EXPECT_THROW(reader.read_matrix(), SerializeError);
}

TEST(SerializeTest, ExpectEndCatchesTrailingBytes) {
  BinaryWriter writer;
  writer.write_u64(7);
  writer.write_u64(8);
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u64(), 7u);
  EXPECT_THROW(reader.expect_end(), SerializeError);  // 8 bytes unread
  EXPECT_EQ(reader.read_u64(), 8u);
  reader.expect_end();
}

TEST(SerializeTest, LayoutIsStableLittleEndian) {
  // The wire format is a contract with existing store files: pin the
  // exact bytes so an accidental layout change fails here instead of
  // silently invalidating every store in the field.
  BinaryWriter writer;
  writer.write_u64(0x0102030405060708ULL);
  const std::string& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 8u);
  const unsigned char expected[] = {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
}

}  // namespace
