// serve/protocol.hpp + serve/queries.hpp: frame encode/decode, the
// framing-error taxonomy, payload codec roundtrips, and the dispatcher's
// exception-to-status mapping — everything below the socket layer.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "serve/queries.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace {

using namespace cps::serve;

TEST(ServeProtocolTest, HeaderRoundTrips) {
  FrameHeader header;
  header.kind = static_cast<std::uint16_t>(Opcode::kAllocate);
  header.request_id = 0x0123456789abcdefULL;
  header.deadline_ms = 1500;
  header.payload_size = 42;
  std::string bytes;
  encode_header(header, bytes);
  ASSERT_EQ(bytes.size(), kHeaderSize);

  FrameHeader decoded;
  ASSERT_EQ(decode_header(bytes, kMaxPayloadBytes, decoded), HeaderError::kNone);
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.kind, header.kind);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.deadline_ms, header.deadline_ms);
  EXPECT_EQ(decoded.payload_size, header.payload_size);
}

TEST(ServeProtocolTest, EncodeFrameStampsPayloadSize) {
  FrameHeader header;
  header.payload_size = 9999;  // deliberately wrong; encode_frame restamps
  const std::string frame = encode_frame(header, "abcde");
  ASSERT_EQ(frame.size(), kHeaderSize + 5);
  FrameHeader decoded;
  ASSERT_EQ(decode_header(frame, kMaxPayloadBytes, decoded), HeaderError::kNone);
  EXPECT_EQ(decoded.payload_size, 5u);
}

TEST(ServeProtocolTest, BadMagicIsAFramingError) {
  std::string bytes(kHeaderSize, '\0');
  bytes[0] = 'X';
  FrameHeader header;
  EXPECT_EQ(decode_header(bytes, kMaxPayloadBytes, header), HeaderError::kBadMagic);
}

TEST(ServeProtocolTest, WrongVersionIsRecoverable) {
  FrameHeader header;
  header.version = kProtocolVersion + 7;
  std::string bytes;
  encode_header(header, bytes);
  FrameHeader decoded;
  EXPECT_EQ(decode_header(bytes, kMaxPayloadBytes, decoded), HeaderError::kBadVersion);
  EXPECT_EQ(decoded.version, kProtocolVersion + 7);  // reported for diagnostics
}

TEST(ServeProtocolTest, OversizedPayloadWinsOverBadVersion) {
  // Size is judged BEFORE version: an oversized frame must drop the
  // connection even when it also claims a wrong version — otherwise a
  // garbage client could force the server to buffer the payload just to
  // answer the version complaint.
  FrameHeader header;
  header.version = kProtocolVersion + 1;
  header.payload_size = kMaxPayloadBytes + 1;
  std::string bytes;
  encode_header(header, bytes);
  FrameHeader decoded;
  EXPECT_EQ(decode_header(bytes, kMaxPayloadBytes, decoded),
            HeaderError::kOversizedPayload);
}

TEST(ServeProtocolTest, StatusNamesAreStable) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(status_name(Status::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(status_name(Status::kShuttingDown), "shutting_down");
}

TEST(ServeProtocolTest, PayloadCodecsRoundTrip) {
  {
    PingRequest ping{"hello", 25};
    cps::util::BinaryWriter out;
    ping.encode(out);
    cps::util::BinaryReader in(out.bytes());
    const auto back = PingRequest::decode(in);
    EXPECT_EQ(back.echo, "hello");
    EXPECT_EQ(back.sleep_ms, 25u);
  }
  {
    AllocateRequest request;
    request.fleet.n_apps = 12;
    request.fleet.target_utilization = 0.625;
    request.fleet.seed = 99;
    request.allocator = 2;
    request.method = 1;
    request.max_slots = 4;
    cps::util::BinaryWriter out;
    request.encode(out);
    cps::util::BinaryReader in(out.bytes());
    const auto back = AllocateRequest::decode(in);
    EXPECT_EQ(back.fleet.n_apps, 12u);
    EXPECT_DOUBLE_EQ(back.fleet.target_utilization, 0.625);
    EXPECT_EQ(back.fleet.seed, 99u);
    EXPECT_EQ(back.allocator, 2u);
    EXPECT_EQ(back.method, 1u);
    EXPECT_EQ(back.max_slots, 4u);
  }
  {
    AllocateResponse response;
    response.feasible = 1;
    response.slot_count = 2;
    response.all_schedulable = 1;
    response.slots = {{"C1", "C2"}, {"C3"}};
    cps::util::BinaryWriter out;
    response.encode(out);
    cps::util::BinaryReader in(out.bytes());
    const auto back = AllocateResponse::decode(in);
    EXPECT_EQ(back.slot_count, 2u);
    ASSERT_EQ(back.slots.size(), 2u);
    EXPECT_EQ(back.slots[0], (std::vector<std::string>{"C1", "C2"}));
    EXPECT_EQ(back.slots[1], (std::vector<std::string>{"C3"}));
  }
  {
    StatsResponse stats;
    stats.counters = {{"requests_admitted", 7}, {"requests_shed", 2}};
    cps::util::BinaryWriter out;
    stats.encode(out);
    cps::util::BinaryReader in(out.bytes());
    const auto back = StatsResponse::decode(in);
    ASSERT_EQ(back.counters.size(), 2u);
    EXPECT_EQ(back.counters[1].first, "requests_shed");
    EXPECT_EQ(back.counters[1].second, 2u);
  }
}

TEST(ServeProtocolTest, DispatchEchoesPing) {
  PingRequest ping{"echo-me", 0};
  cps::util::BinaryWriter out;
  ping.encode(out);
  const auto result = dispatch(Opcode::kPing, out.bytes(), QueryContext{});
  ASSERT_EQ(result.status, Status::kOk);
  cps::util::BinaryReader in(result.payload);
  EXPECT_EQ(PingRequest::decode(in).echo, "echo-me");
}

TEST(ServeProtocolTest, DispatchMapsUndecodablePayloadToBadRequest) {
  const auto result = dispatch(Opcode::kAllocate, "garbage", QueryContext{});
  EXPECT_EQ(result.status, Status::kBadRequest);
  EXPECT_FALSE(decode_error_payload(result.payload).empty());
}

TEST(ServeProtocolTest, DispatchMapsTrailingBytesToBadRequest) {
  // A well-formed ping with junk appended: expect_end() must reject it
  // (codec/version skew would otherwise pass silently).
  PingRequest ping{"x", 0};
  cps::util::BinaryWriter out;
  ping.encode(out);
  std::string bytes = out.take() + "junk";
  EXPECT_EQ(dispatch(Opcode::kPing, bytes, QueryContext{}).status, Status::kBadRequest);
}

TEST(ServeProtocolTest, DispatchMapsUnknownOpcodeToBadRequest) {
  EXPECT_EQ(dispatch(static_cast<Opcode>(999), "", QueryContext{}).status,
            Status::kBadRequest);
}

TEST(ServeProtocolTest, DispatchMapsInvalidArgumentToBadRequest) {
  AllocateRequest request;
  request.allocator = 77;  // no such allocator
  cps::util::BinaryWriter out;
  request.encode(out);
  const auto result = dispatch(Opcode::kAllocate, out.bytes(), QueryContext{});
  EXPECT_EQ(result.status, Status::kBadRequest);
}

TEST(ServeProtocolTest, DispatchMapsCancelToDeadlineExceeded) {
  std::atomic<bool> cancel{true};  // already expired when the worker starts
  QueryContext context;
  context.cancel = &cancel;
  PingRequest ping{"late", 50};
  cps::util::BinaryWriter out;
  ping.encode(out);
  const auto result = dispatch(Opcode::kPing, out.bytes(), context);
  EXPECT_EQ(result.status, Status::kDeadlineExceeded);
}

TEST(ServeProtocolTest, DispatchServesStatsThroughTheContext) {
  QueryContext context;
  context.stats = [] {
    return std::vector<std::pair<std::string, std::uint64_t>>{{"x", 5}};
  };
  const auto result = dispatch(Opcode::kStats, "", context);
  ASSERT_EQ(result.status, Status::kOk);
  cps::util::BinaryReader in(result.payload);
  const auto stats = StatsResponse::decode(in);
  ASSERT_EQ(stats.counters.size(), 1u);
  EXPECT_EQ(stats.counters[0].first, "x");
  EXPECT_EQ(stats.counters[0].second, 5u);
}

// The exact allocator's cooperative cancellation hook, exercised
// directly: a pre-raised flag must abort the branch-and-bound within a
// few dozen expanded nodes via cps::CancelledError.  The proving
// instances are exactly the ones whose first-fit seed exceeds the root
// lower bound, so the search cannot shortcut past the poll.
TEST(ServeProtocolTest, ExactAllocatorHonorsTheCancelFlag) {
  const auto& instances = cps::experiments::alloc_proving_instances();
  ASSERT_FALSE(instances.empty());
  auto params = cps::experiments::alloc_proving_params(instances.front());

  std::atomic<bool> cancel{true};
  cps::analysis::AllocationOptions options;
  options.cancel = &cancel;
  EXPECT_THROW(cps::analysis::optimal_allocate(params, options), cps::CancelledError);

  // An un-raised flag must not change the answer (cancellation changes
  // time, never answers).
  std::atomic<bool> calm{false};
  cps::analysis::AllocationOptions calm_options;
  calm_options.cancel = &calm;
  const auto with_flag = cps::analysis::optimal_allocate(params, calm_options);
  const auto without = cps::analysis::optimal_allocate(params, {});
  EXPECT_EQ(with_flag.slots, without.slots);
}

// The dispatcher is what --local runs; byte-identity of repeated
// dispatches is the foundation of the daemon-vs-local CI check.
TEST(ServeProtocolTest, DispatchIsDeterministic) {
  SchedCheckRequest request;
  request.fleet.n_apps = 6;
  request.fleet.target_utilization = 0.5;
  request.fleet.seed = 7;
  cps::util::BinaryWriter out;
  request.encode(out);
  const auto first = dispatch(Opcode::kSchedCheck, out.bytes(), QueryContext{});
  const auto second = dispatch(Opcode::kSchedCheck, out.bytes(), QueryContext{});
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_EQ(first.payload, second.payload);  // byte-for-byte
}

}  // namespace
