// Unit tests for the table-driven CLI parser behind cps_run
// (runtime/cli.hpp): typed flag parsing against declared targets,
// positional collection, the built-in --help, generated help text, the
// flag-name inventory CI smoke-checks, and the strict unsigned-integer
// parse (including the documented hex seed form).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace cps;
using cps::runtime::CliError;
using cps::runtime::CliParser;
using cps::runtime::parse_cli_u64;

struct Flags {
  bool list = false;
  std::uint64_t jobs = 1;
  bool jobs_seen = false;
  std::string csv_dir;
  std::string shard;
};

CliParser make_parser(Flags& flags) {
  CliParser parser("tool", "[experiment ...|all]");
  parser.add_flag({"--list", "-l"}, &flags.list, "list experiments");
  parser.add_u64({"--jobs", "-j"}, &flags.jobs, "N", "worker threads", &flags.jobs_seen);
  parser.add_string({"--csv"}, &flags.csv_dir, "DIR", "artifact directory");
  parser.add_string({"--shard"}, &flags.shard, "i/N", "campaign shard");
  return parser;
}

TEST(CliParserTest, ParsesTypedFlagsAndAliases) {
  Flags flags;
  auto parser = make_parser(flags);
  const auto positionals =
      parser.parse({"-l", "--jobs", "8", "--csv", "out", "fig4", "table1"});
  EXPECT_TRUE(flags.list);
  EXPECT_EQ(flags.jobs, 8u);
  EXPECT_TRUE(flags.jobs_seen);
  EXPECT_EQ(flags.csv_dir, "out");
  EXPECT_EQ(positionals, (std::vector<std::string>{"fig4", "table1"}));
  EXPECT_FALSE(parser.help_requested());
}

TEST(CliParserTest, AbsentFlagsKeepTheirDefaults) {
  Flags flags;
  flags.csv_dir = "preset";
  auto parser = make_parser(flags);
  EXPECT_TRUE(parser.parse({}).empty());
  EXPECT_FALSE(flags.list);
  EXPECT_EQ(flags.jobs, 1u);
  EXPECT_FALSE(flags.jobs_seen);
  EXPECT_EQ(flags.csv_dir, "preset");
}

TEST(CliParserTest, LastValueWinsOnRepeatedFlags) {
  Flags flags;
  auto parser = make_parser(flags);
  parser.parse({"--jobs", "2", "--jobs", "5"});
  EXPECT_EQ(flags.jobs, 5u);
}

TEST(CliParserTest, DoubleDashEndsFlagParsing) {
  Flags flags;
  auto parser = make_parser(flags);
  const auto positionals = parser.parse({"--jobs", "3", "--", "--list", "-x"});
  EXPECT_EQ(flags.jobs, 3u);
  EXPECT_FALSE(flags.list);  // after --, "--list" is a positional
  EXPECT_EQ(positionals, (std::vector<std::string>{"--list", "-x"}));
}

TEST(CliParserTest, LoneDashIsAPositional) {
  Flags flags;
  auto parser = make_parser(flags);
  EXPECT_EQ(parser.parse({"-"}), (std::vector<std::string>{"-"}));
}

TEST(CliParserTest, UnknownFlagsAndMissingValuesThrow) {
  Flags flags;
  auto parser = make_parser(flags);
  try {
    parser.parse({"--bogus"});
    FAIL() << "expected CliError";
  } catch (const CliError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown flag '--bogus'"),
              std::string::npos);
  }
  try {
    parser.parse({"--jobs"});
    FAIL() << "expected CliError";
  } catch (const CliError& error) {
    EXPECT_NE(std::string(error.what()).find("'--jobs' requires a value N"),
              std::string::npos);
  }
  EXPECT_THROW(parser.parse({"--jobs", "abc"}), CliError);
}

TEST(CliParserTest, HelpIsBuiltInAndGeneratedFromTheTable) {
  Flags flags;
  auto parser = make_parser(flags);
  parser.parse({"--help"});
  EXPECT_TRUE(parser.help_requested());
  parser.parse({"-h"});
  EXPECT_TRUE(parser.help_requested());
  // help_requested resets per parse.
  parser.parse({});
  EXPECT_FALSE(parser.help_requested());

  const std::string help = parser.help();
  EXPECT_NE(help.find("usage: tool [options] [experiment ...|all]"), std::string::npos);
  EXPECT_NE(help.find("--jobs, -j N"), std::string::npos);
  EXPECT_NE(help.find("worker threads (default: 1)"), std::string::npos);
  EXPECT_NE(help.find("--csv DIR"), std::string::npos);
  EXPECT_NE(help.find("--help, -h"), std::string::npos);
}

TEST(CliParserTest, FlagNamesInventoryCoversEveryRegisteredSpelling) {
  Flags flags;
  auto parser = make_parser(flags);
  const auto names = parser.flag_names();
  for (const char* expected :
       {"--help", "-h", "--list", "-l", "--jobs", "-j", "--csv", "--shard"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing flag name: " << expected;
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(CliParserTest, DuplicateAndMalformedRegistrationsAreProgrammingErrors) {
  Flags flags;
  auto parser = make_parser(flags);
  bool extra = false;
  EXPECT_THROW(parser.add_flag({"--list"}, &extra, "dup"), cps::Error);
  EXPECT_THROW(parser.add_flag({"-h"}, &extra, "dup alias"), cps::Error);
  EXPECT_THROW(parser.add_flag({"nodash"}, &extra, "bad name"), cps::Error);
  EXPECT_THROW(parser.add_flag({}, &extra, "no names"), cps::Error);
}

TEST(ParseCliU64Test, AcceptsDecimalAndTheDocumentedHexForm) {
  EXPECT_EQ(parse_cli_u64("0", "x"), 0u);
  EXPECT_EQ(parse_cli_u64("42", "x"), 42u);
  EXPECT_EQ(parse_cli_u64("0x5EED5EED", "x"), 0x5EED5EEDu);  // docs/ARCHITECTURE.md form
  EXPECT_EQ(parse_cli_u64("18446744073709551615", "x"), UINT64_MAX);
}

TEST(ParseCliU64Test, RejectsSignsWhitespaceAndPartialParses) {
  for (const char* bad : {"", "-1", "+1", " 1", "1 ", "1x", "abc", "4.5",
                          "18446744073709551616" /* 2^64 */}) {
    EXPECT_THROW(parse_cli_u64(bad, "x"), CliError) << "input: '" << bad << "'";
  }
  try {
    parse_cli_u64("junk", "--jobs value");
    FAIL() << "expected CliError";
  } catch (const CliError& error) {
    EXPECT_EQ(std::string(error.what()),
              "--jobs value must be a non-negative integer, got 'junk'");
  }
}

}  // namespace
