// Online re-allocation property tests.
//
// The load-bearing guarantee: a warm start changes proof TIME, never
// ANSWERS.  (1) optimal_allocate with any achievable warm_incumbent
// returns the bit-identical Allocation of a cold run; (2) after every
// single-fault injection on randomized utilization-controlled fleets,
// the online repair + warm-start path lands on the same partition as
// the frozen exhaustive reference search; (3) the anytime incumbent is
// monotone — the proven count never exceeds the warm bound handed in.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "online/reallocation.hpp"
#include "online/scenario.hpp"
#include "plants/fleet_synthesis.hpp"

namespace {

using namespace cps;
using analysis::Allocation;
using analysis::AllocationOptions;
using analysis::AppSchedParams;

std::vector<plants::SynthesizedSchedApp> draw_fleet(std::size_t n, double utilization,
                                                    std::uint64_t seed) {
  plants::FleetSynthesisSpec spec;
  spec.n_apps = n;
  spec.target_utilization = utilization;
  return plants::synthesize_sched_fleet(spec, seed).apps;
}

/// The five injectable single faults, as mutations of a drawn fleet.
/// Returns the post-fault slot budget (0 = unlimited).
std::size_t inject(const std::string& fault, std::vector<plants::SynthesizedSchedApp>& fleet,
                   std::size_t target, std::size_t initial_slots) {
  if (fault == "drop_slot") return initial_slots - 1;
  if (fault == "drop_frames") {
    online::apply_drop_frames(fleet[target], 1.4);
  } else if (fault == "delay_frames") {
    online::apply_delay_frames(fleet[target], 0.15 * fleet[target].r);
  } else if (fault == "drift") {
    online::apply_drift(fleet[target], 1.3);
  } else {  // leave
    fleet.erase(fleet.begin() + static_cast<std::ptrdiff_t>(target));
  }
  return 0;
}

TEST(WarmIncumbentTest, AnyAchievableWarmStartReturnsTheColdAllocation) {
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    const auto fleet = draw_fleet(9, 2.0, seed);
    const auto apps = online::fleet_to_params(fleet);
    const Allocation cold = analysis::optimal_allocate(apps);
    const std::size_t first_fit = analysis::first_fit_allocate(apps).slot_count();
    // Both the optimum itself and the (looser) first-fit count are
    // achievable warm bounds; neither may change the result.
    for (const std::size_t warm : {cold.slot_count(), first_fit}) {
      AllocationOptions options;
      options.warm_incumbent = warm;
      const Allocation warmed = analysis::optimal_allocate(apps, options);
      EXPECT_EQ(warmed.slots, cold.slots) << "seed " << seed << " warm " << warm;
    }
  }
}

TEST(ReallocationTest, WarmRepairPathMatchesTheColdReferenceAfterEverySingleFault) {
  const std::vector<std::string> faults = {"drop_slot", "drop_frames", "delay_frames",
                                           "drift", "leave"};
  int checked = 0;
  for (const std::size_t n : {5u, 7u, 8u}) {
    for (const std::uint64_t seed : {3u, 17u}) {
      const auto baseline = draw_fleet(n, 0.22 * static_cast<double>(n), seed);
      const Allocation initial = analysis::optimal_allocate(online::fleet_to_params(baseline));
      for (const auto& fault : faults) {
        auto fleet = baseline;
        const std::size_t budget = inject(fault, fleet, seed % fleet.size(),
                                          initial.slot_count());
        if (fault == "drop_slot" && budget == 0) continue;  // outage, nothing to prove
        const auto apps = online::fleet_to_params(fleet);

        online::ReallocationPolicy policy;
        const auto result = online::reallocate(apps, initial.slots, budget, policy);

        AllocationOptions reference_options;
        reference_options.max_slots = budget;
        try {
          const Allocation reference =
              analysis::optimal_allocate_reference(apps, reference_options);
          ASSERT_TRUE(result.feasible) << fault << " n=" << n << " seed=" << seed;
          EXPECT_EQ(result.allocation.slots, reference.slots)
              << fault << " n=" << n << " seed=" << seed;
          EXPECT_EQ(result.report.slots_after, reference.slot_count());
        } catch (const InfeasibleError&) {
          // The reference can't fit the budget either: the online path
          // must agree, degrading instead of throwing.
          EXPECT_FALSE(result.feasible) << fault << " n=" << n << " seed=" << seed;
          EXPECT_LE(result.allocation.slot_count(), budget == 0 ? apps.size() : budget);
        }
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 25);  // the sweep above must actually run
}

TEST(ReallocationTest, AnytimeIncumbentIsMonotonicallyNonWorsening) {
  for (const std::size_t n : {6u, 9u, 12u}) {
    for (const std::uint64_t seed : {5u, 23u}) {
      auto fleet = draw_fleet(n, 0.2 * static_cast<double>(n), seed);
      const Allocation initial = analysis::optimal_allocate(online::fleet_to_params(fleet));
      online::apply_drift(fleet[seed % fleet.size()], 1.25);
      const auto result =
          online::reallocate(online::fleet_to_params(fleet), initial.slots, 0, {});
      ASSERT_TRUE(result.feasible);
      if (result.report.warm_incumbent != 0) {
        // The warm bound is achievable, so the proven optimum can only
        // meet or beat it — and the gap is exactly the improvement.
        EXPECT_LE(result.report.slots_after, result.report.warm_incumbent);
        EXPECT_EQ(result.report.anytime_gap,
                  result.report.warm_incumbent - result.report.slots_after);
      }
      if (result.report.repaired) {
        EXPECT_NE(result.report.warm_incumbent, 0u);
      }
    }
  }
}

TEST(ReallocationTest, EdgeCasesStayDeterministicAndNeverThrow) {
  // The whole fleet left: trivially feasible, zero slots.
  const auto empty = online::reallocate({}, {{"G0"}}, 0, {});
  EXPECT_TRUE(empty.feasible);
  EXPECT_EQ(empty.allocation.slot_count(), 0u);
  EXPECT_EQ(empty.report.slots_before, 1u);

  // A budget too tight for any schedulable allocation: feasible = false
  // with a deterministic degraded allocation inside the budget, so the
  // world can keep ticking and count the misses.
  const auto fleet = draw_fleet(8, 2.2, 41);
  const auto apps = online::fleet_to_params(fleet);
  const std::size_t need = analysis::optimal_allocate(apps).slot_count();
  ASSERT_GT(need, 1u) << "fixture fleet must need more than one slot";
  const auto squeezed = online::reallocate(apps, {}, 1, {});
  EXPECT_FALSE(squeezed.feasible);
  EXPECT_EQ(squeezed.allocation.slot_count(), 1u);
  EXPECT_EQ(squeezed.allocation.slots[0].size(), apps.size());
  const auto squeezed_again = online::reallocate(apps, {}, 1, {});
  EXPECT_EQ(squeezed.allocation.slots, squeezed_again.allocation.slots);
}

}  // namespace
