// Tests for the allocator variants: best-fit heuristic and the exact
// branch-and-bound optimum (the paper calls the problem NP-hard and uses
// first-fit; these quantify how close the heuristics get).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "plants/table1.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> paper_apps() {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    app.model = std::make_shared<NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

std::vector<AppSchedParams> random_apps(Rng& rng, int n) {
  std::vector<AppSchedParams> apps;
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(0.3, 1.5);
    const double xi_m = xi_tt * rng.uniform(1.0, 1.8);
    const double xi_et = xi_m + rng.uniform(2.0, 6.0);
    const double k_p = rng.uniform(0.05, 0.4) * xi_et;
    const double r = xi_m * rng.uniform(6.0, 30.0);
    const double deadline = std::min(r, rng.uniform(0.6, 1.0) * xi_et);
    AppSchedParams app;
    app.name = "A" + std::to_string(i);
    app.min_inter_arrival = r;
    app.deadline = deadline;
    app.model = std::make_shared<NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

bool allocation_valid(const Allocation& alloc, std::size_t n_apps) {
  std::size_t placed = 0;
  for (std::size_t s = 0; s < alloc.slots.size(); ++s) {
    placed += alloc.slots[s].size();
    if (!alloc.analyses[s].all_schedulable) return false;
  }
  return placed == n_apps;
}

TEST(BestFitTest, PaperCaseAlsoThreeSlots) {
  const Allocation alloc = best_fit_allocate(paper_apps());
  EXPECT_EQ(alloc.slot_count(), 3u);
  EXPECT_TRUE(allocation_valid(alloc, 6));
}

TEST(OptimalTest, PaperCaseOptimumIsThreeSlots) {
  // First-fit already achieves the optimum on the case study — the exact
  // search certifies the paper's 3 slots cannot be beaten.
  const Allocation alloc = optimal_allocate(paper_apps());
  EXPECT_EQ(alloc.slot_count(), 3u);
  EXPECT_TRUE(allocation_valid(alloc, 6));
}

TEST(OptimalTest, RejectsOversizedInstances) {
  auto apps = paper_apps();
  EXPECT_THROW(optimal_allocate(apps, {}, 3), InvalidArgument);
}

TEST(OptimalTest, SingleAppIsTrivial) {
  auto apps = paper_apps();
  const Allocation alloc = optimal_allocate({apps[0]});
  EXPECT_EQ(alloc.slot_count(), 1u);
}

class AllocatorComparison : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorComparison, OptimalNeverWorseThanHeuristics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537u + 19u);
  const int n = rng.uniform_int(3, 7);
  auto apps = random_apps(rng, n);
  // Skip sets where an app is infeasible even alone.
  try {
    const Allocation ff = first_fit_allocate(apps);
    const Allocation bf = best_fit_allocate(apps);
    const Allocation opt = optimal_allocate(apps);
    EXPECT_TRUE(allocation_valid(ff, static_cast<std::size_t>(n)));
    EXPECT_TRUE(allocation_valid(bf, static_cast<std::size_t>(n)));
    EXPECT_TRUE(allocation_valid(opt, static_cast<std::size_t>(n)));
    EXPECT_LE(opt.slot_count(), ff.slot_count());
    EXPECT_LE(opt.slot_count(), bf.slot_count());
    // First-fit is within the classical factor-2 style bound of optimal on
    // these instances (loose sanity check).
    EXPECT_LE(ff.slot_count(), 2 * opt.slot_count());
  } catch (const InfeasibleError&) {
    GTEST_SKIP() << "random instance infeasible on dedicated slots";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocatorComparison, ::testing::Range(0, 20));

TEST(AllocatorComparisonTest, MaxSlotCapAppliesToAllVariants) {
  auto apps = paper_apps();
  AllocationOptions options;
  options.max_slots = 2;
  EXPECT_THROW(first_fit_allocate(apps, options), InfeasibleError);
  EXPECT_THROW(best_fit_allocate(apps, options), InfeasibleError);
  EXPECT_THROW(optimal_allocate(apps, options), InfeasibleError);
}

}  // namespace
