// The paper's Section III experiment end to end (Fig. 2 + Fig. 3): the
// servo motor holding a weighted stick upright, disturbed by a 45 degree
// displacement, characterized over both communication modes.
//
// Prints the measured dwell/wait relation, the fitted envelope models and
// the switched trajectories for three representative wait times, and
// exports the curve for plotting.
//
//   ./servo_motor
#include <cstdio>

#include "analysis/dwell_wait_model.hpp"
#include "plants/servo_motor.hpp"
#include "sim/dwell_wait.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace cps;

int main() {
  // The rig (Fig. 2): Harmonic Drive servo + 300 g stick, linearized about
  // the upright equilibrium; paper timing h = 20 ms, d_TT = 0.7 ms,
  // d_ET = 20 ms, E_th = 0.1.
  const plants::ServoMotorParams params;
  const plants::ServoExperiment experiment;
  const auto plant = plants::make_servo_motor(params);
  std::printf("servo plant (linearized upright):\nA = %s\nB = %s\n\n",
              plant.a().to_string(3).c_str(), plant.b().to_string(3).c_str());

  const auto design = plants::design_servo_loops(params, experiment);
  std::printf("two-mode design: rho_TT = %.3f, rho_ET = %.3f\n\n", design.rho_tt,
              design.rho_et);

  // Dwell/wait characterization (Fig. 3).
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = experiment.threshold;
  const auto x0 = plants::servo_disturbed_state(experiment);
  const auto curve =
      sim::measure_dwell_wait_curve(sys, x0, experiment.sampling_period, opts);

  TextTable summary({"quantity", "paper", "this run"});
  summary.add_row({"xi_TT [s]", "0.68", format_fixed(curve.xi_tt(), 2)});
  summary.add_row({"xi_ET [s]", "2.16", format_fixed(curve.xi_et(), 2)});
  summary.add_row({"two-phase non-monotonic", "yes", curve.is_non_monotonic() ? "yes" : "no"});
  std::printf("%s\n", summary.render().c_str());

  // Envelope fits (Fig. 4).
  const auto tent = analysis::NonMonotonicModel::fit(curve);
  const auto mono = analysis::ConservativeMonotonicModel::fit(curve);
  std::printf("fitted envelopes: xi_M = %.2f s (tent), xi'_M = %.2f s (conservative); "
              "both sound: %s\n\n",
              tent.max_dwell(), mono.max_dwell(),
              tent.dominates(curve) && mono.dominates(curve) ? "yes" : "NO");

  // Switched trajectories for three wait times (Eq. 3-4).
  for (std::size_t wait_steps : {0u, 15u, 50u}) {
    const auto traj = sys.simulate(x0, wait_steps, 160, experiment.sampling_period);
    std::printf("switch after %zu steps (%.2f s): ||x|| =", wait_steps,
                static_cast<double>(wait_steps) * experiment.sampling_period);
    for (std::size_t k = 0; k < traj.length(); k += 20)
      std::printf(" %.3f", traj.at(k).norm);
    std::printf(" ...\n");
  }

  CsvWriter csv("servo_dwell_wait.csv", {"k_wait_s", "k_dw_s", "model_tent_s"});
  for (const auto& p : curve.points())
    csv.write_row(std::vector<double>{p.wait_s, p.dwell_s, tent.dwell(p.wait_s)}, 6);
  std::printf("\ncurve written to servo_dwell_wait.csv (%zu points)\n", curve.points().size());
  return 0;
}
