// Quickstart: the full co-design pipeline on one page.
//
// Builds a single control application (a lightly damped second-order
// plant), designs its TT-mode and ET-mode controllers, measures the
// dwell/wait relation, fits the paper's non-monotonic envelope, and checks
// schedulability when the application shares a TT slot with a second
// instance — then verifies the design by co-simulation over FlexRay.
//
//   ./quickstart
#include <cstdio>

#include "analysis/schedulability.hpp"
#include "core/application.hpp"
#include "core/co_simulation.hpp"
#include "core/report.hpp"
#include "plants/second_order.hpp"
#include "util/format.hpp"

using namespace cps;

int main() {
  // 1. A plant: oscillator with natural frequency 5 rad/s, 10 % damping.
  const control::StateSpace plant = plants::make_oscillator(5.0, 0.1, 25.0);

  // 2. Two mode controllers via pole placement on the delay-augmented
  //    realizations: a fast TT loop (the message rides a reserved static
  //    slot, delay ~ 0) and a slow oscillatory ET loop (worst-case delay =
  //    one sampling period through the dynamic segment).
  control::PolePlacementLoopSpec spec;
  spec.sampling_period = 0.02;  // h = 20 ms
  spec.delay_tt = 0.0;
  spec.delay_et = 0.02;
  spec.poles_tt = control::oscillatory_pole_set(0.88, 0.05, 3);
  spec.poles_et = control::oscillatory_pole_set(0.96, 0.30, 3);
  control::HybridLoopDesign design = control::design_hybrid_loops(plant, spec);
  std::printf("closed-loop spectral radii: TT %.3f, ET %.3f\n", design.rho_tt, design.rho_et);

  // 3. Wrap as an application: disturbances at least 10 s apart, response
  //    deadline 4 s, steady-state threshold E_th = 0.1.
  core::TimingRequirements timing{10.0, 4.0, 0.1};
  core::ControlApplication app("demo", std::move(design), timing, linalg::Vector{1.0, 0.0});

  // 4. Measure the dwell/wait relation and fit the paper's two-piece
  //    envelope.
  const auto model = app.fit_model(core::ControlApplication::ModelKind::kNonMonotonic);
  const auto& curve = *app.curve();
  std::printf("measured: xi_TT = %.2f s, xi_ET = %.2f s, xi_M = %.2f s at k_p = %.2f s "
              "(non-monotonic: %s)\n",
              curve.xi_tt(), curve.xi_et(), curve.xi_m(), curve.k_p(),
              curve.is_non_monotonic() ? "yes" : "no");
  std::printf("fitted %s model: interference xi_M = %.2f s\n", model->name().c_str(),
              model->max_dwell());

  // 5. Schedulability of two such applications sharing one TT slot: the
  //    peer uses the identical plant/design but a longer deadline (lower
  //    priority).
  auto peer_design = control::design_hybrid_loops(plants::make_oscillator(5.0, 0.1, 25.0), spec);
  core::TimingRequirements peer_timing{10.0, 6.0, 0.1};
  core::ControlApplication peer_app("peer", std::move(peer_design), peer_timing,
                                    linalg::Vector{1.0, 0.0});
  peer_app.fit_model(core::ControlApplication::ModelKind::kNonMonotonic);

  const analysis::SlotAnalysis slot =
      analysis::analyze_slot({app.sched_params(), peer_app.sched_params()});
  for (const auto& r : slot.results)
    std::printf("  %-5s k_hat = %.2f s -> xi_hat = %.2f s <= %.2f s ? %s\n", r.name.c_str(),
                r.max_wait, r.response, r.deadline, r.schedulable ? "yes" : "NO");

  // 6. Verify by co-simulation: both disturbed at t = 0, sharing slot 0.
  core::CoSimulationOptions options;
  options.horizon = 8.0;
  core::CoSimulator cosim(options);
  cosim.add_application(app, 0, {0.0});
  cosim.add_application(peer_app, 0, {0.0});
  const auto result = cosim.run();
  std::printf("\nco-simulation over FlexRay:\n%s", core::render_cosim(result).c_str());
  std::printf("\nall deadlines met: %s\n", result.all_deadlines_met ? "yes" : "NO");
  return result.all_deadlines_met ? 0 : 1;
}
