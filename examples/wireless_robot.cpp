// The concluding remark of the paper: "the method ... can be generally
// applied to other types of hybrid communication (such as wired and
// wireless communication), and other embedded control systems with limited
// resources, such as in the robotic domain."
//
// This example re-targets the pipeline at a mobile-robot scenario: two
// manipulator-joint loops and one balance loop share a hybrid link whose
// "TT" resource is a reserved wired/scheduled channel (a contention-free
// 10 ms superframe slot) and whose "ET" path is a contended wireless hop
// with a worst-case delay of a full 40 ms sampling period.  The identical
// machinery — dwell/wait characterization, envelope fit, fixed-point
// schedulability, first-fit slot minimization, co-simulated verification —
// runs unchanged; only the timing constants differ.
//
//   ./wireless_robot
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "plants/second_order.hpp"
#include "util/format.hpp"

using namespace cps;

namespace {

core::ControlApplication make_joint(const std::string& name, double omega_n, double deadline,
                                    double inter_arrival) {
  // Robot joints sample at 40 ms; the reserved channel delivers in ~1 ms,
  // the contended wireless hop in up to one period.
  control::PolePlacementLoopSpec spec;
  spec.sampling_period = 0.04;
  spec.delay_tt = 0.001;
  spec.delay_et = 0.04;
  spec.poles_tt = control::oscillatory_pole_set(0.85, 0.06, 3);
  spec.poles_et = control::oscillatory_pole_set(0.96, 0.35, 3);
  auto plant = plants::make_oscillator(omega_n, 0.12, omega_n * omega_n);
  auto design = control::design_hybrid_loops(plant, spec);
  core::TimingRequirements req{inter_arrival, deadline, 0.1};
  return core::ControlApplication(name, std::move(design), req, linalg::Vector{1.0, 0.0});
}

}  // namespace

int main() {
  core::HybridCommDesign design;
  design.add_application(make_joint("balance", 6.0, 3.0, 12.0));
  design.add_application(make_joint("shoulder", 4.0, 8.0, 20.0));
  design.add_application(make_joint("elbow", 5.0, 10.0, 20.0));

  // Wireless superframe: 10 ms cycle, 4 reserved slots of 1 ms, the rest
  // contended in 0.1 ms minislots.
  core::PipelineOptions options;
  options.cosim.horizon = 16.0;
  options.cosim.bus_config.cycle_length = 0.010;
  options.cosim.bus_config.static_slot_count = 4;
  options.cosim.bus_config.static_slot_length = 0.001;
  options.cosim.bus_config.minislot_length = 0.0001;

  const core::PipelineResult result = design.run(options);

  std::printf("== wireless robot: reserved vs contended hybrid link ==\n\n");
  std::printf("%s\n", core::render_summaries(result.summaries).c_str());
  std::printf("%s\n", core::render_allocation(result.allocation).c_str());
  if (result.verification) {
    std::printf("%s\n", core::render_cosim(*result.verification).c_str());
    std::printf("all deadlines met: %s\n",
                result.verification->all_deadlines_met ? "yes" : "NO");
  }
  std::printf("\nreserved slots needed: %zu of 4 available — the FlexRay-specific\n"
              "constants were the only thing that changed versus the automotive case.\n",
              result.slot_count());
  return result.verification && result.verification->all_deadlines_met ? 0 : 1;
}
