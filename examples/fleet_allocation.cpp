// The paper's Section V case study end to end: six control applications on
// one FlexRay bus (5 ms cycle, 2 ms static segment with 10 slots), TT-slot
// allocation under both dwell/wait models, and Fig. 5-style verification by
// co-simulation.
//
//   ./fleet_allocation            (synthesized plants, full pipeline)
//   ./fleet_allocation --paper    (published Table I values only)
#include <cstdio>
#include <cstring>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "plants/table1.hpp"

using namespace cps;

namespace {

void run_paper_values() {
  std::printf("== allocation from the published Table I values ==\n\n");
  for (const bool monotonic : {false, true}) {
    std::vector<analysis::AppSchedParams> apps;
    for (const auto& row : plants::paper_values()) {
      analysis::AppSchedParams app;
      app.name = row.name;
      app.min_inter_arrival = row.r;
      app.deadline = row.xi_d;
      if (monotonic)
        app.model =
            std::make_shared<analysis::ConservativeMonotonicModel>(row.xi_m_mono, row.xi_et);
      else
        app.model = std::make_shared<analysis::NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p,
                                                                  row.xi_et);
      apps.push_back(std::move(app));
    }
    std::printf("--- %s model ---\n", monotonic ? "conservative monotonic" : "non-monotonic");
    std::printf("%s\n", core::render_allocation(analysis::first_fit_allocate(apps)).c_str());
  }
}

void run_full_pipeline() {
  std::printf("== full pipeline on the synthesized fleet ==\n\n");
  core::HybridCommDesign design;
  for (const auto& item : plants::synthesize_fleet()) {
    auto loops = control::design_hybrid_loops(item.plant, item.spec);
    core::TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    design.add_application(
        core::ControlApplication(item.target.name, std::move(loops), req, item.x0));
  }

  core::PipelineOptions options;
  options.cosim.horizon = 14.0;
  const core::PipelineResult result = design.run(options);

  std::printf("%s\n", core::render_summaries(result.summaries).c_str());
  std::printf("%s\n", core::render_allocation(result.allocation).c_str());
  if (result.verification) {
    std::printf("%s\n", core::render_cosim(*result.verification).c_str());
    std::printf("verification: all deadlines met: %s\n\n",
                result.verification->all_deadlines_met ? "yes" : "NO");
  }

  core::PipelineOptions mono = options;
  mono.model_kind = core::ControlApplication::ModelKind::kConservativeMonotonic;
  mono.verify = false;
  const auto mono_slots = design.run(mono).slot_count();
  std::printf("slots: %zu (non-monotonic) vs %zu (conservative monotonic)\n",
              result.slot_count(), mono_slots);
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper_only = argc > 1 && std::strcmp(argv[1], "--paper") == 0;
  run_paper_values();
  if (!paper_only) run_full_pipeline();
  return 0;
}
