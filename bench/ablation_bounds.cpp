// Ablation: the closed-form maximum-wait bound (Eq. 20) versus the exact
// fixed point of the recurrence (Eq. 5).
//
// The paper argues for the closed form because, unlike the classical
// iterative CAN-style analysis [6], it proves existence and gives the
// bound directly.  This bench quantifies the price: on random application
// sets, how loose is a'/(1-m) relative to the exact fixed point, and how
// often does the looseness cost a TT slot?
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> random_app_set(Rng& rng, int n) {
  std::vector<AppSchedParams> apps;
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(0.3, 2.0);
    const double xi_m = xi_tt * rng.uniform(1.0, 2.0);
    const double xi_et = xi_m + rng.uniform(2.0, 8.0);
    const double k_p = rng.uniform(0.05, 0.5) * xi_et;
    const double r = xi_m * rng.uniform(5.0, 40.0);
    const double deadline = std::min(r, rng.uniform(0.8, 1.0) * xi_et);
    AppSchedParams app;
    app.name = "A" + std::to_string(i);
    app.min_inter_arrival = r;
    app.deadline = deadline;
    app.model = std::make_shared<NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
    apps.push_back(std::move(app));
  }
  sort_by_priority(apps);
  return apps;
}

void print_ablation() {
  std::printf("== Ablation: closed-form bound (Eq. 20) vs exact fixed point (Eq. 5) ==\n\n");

  Rng rng(20190325);  // DATE 2019 conference date
  const int trials = 200;
  double sum_ratio = 0.0, max_ratio = 1.0;
  int comparisons = 0, bracket_ok = 0, bracket_total = 0;
  int slots_bound_total = 0, slots_fp_total = 0, alloc_trials = 0;

  for (int t = 0; t < trials; ++t) {
    const int n = rng.uniform_int(2, 6);
    auto apps = random_app_set(rng, n);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const auto lower = max_wait_lower_bound(apps, i);
      const auto upper = max_wait_bound(apps, i);
      const auto fp = max_wait_fixed_point(apps, i);
      if (!upper || !fp) continue;
      ++bracket_total;
      if (*lower <= *fp + 1e-9 && *fp < *upper + 1e-9) ++bracket_ok;
      if (*fp > 1e-9) {
        const double ratio = *upper / *fp;
        sum_ratio += ratio;
        max_ratio = std::max(max_ratio, ratio);
        ++comparisons;
      }
    }
    try {
      AllocationOptions bound_opts;
      AllocationOptions fp_opts;
      fp_opts.method = MaxWaitMethod::kFixedPoint;
      slots_bound_total += static_cast<int>(first_fit_allocate(apps, bound_opts).slot_count());
      slots_fp_total += static_cast<int>(first_fit_allocate(apps, fp_opts).slot_count());
      ++alloc_trials;
    } catch (const InfeasibleError&) {
      // Random set infeasible even on dedicated slots; skip.
    }
  }

  TextTable table({"metric", "value"});
  table.add_row({"random sets", std::to_string(trials)});
  table.add_row({"bracket property a/(1-m) <= k* < a'/(1-m) held",
                 std::to_string(bracket_ok) + " / " + std::to_string(bracket_total)});
  table.add_row({"mean bound/fixed-point ratio",
                 format_fixed(comparisons ? sum_ratio / comparisons : 0.0, 3)});
  table.add_row({"max bound/fixed-point ratio", format_fixed(max_ratio, 3)});
  table.add_row({"avg slots (closed-form bound)",
                 format_fixed(alloc_trials ? static_cast<double>(slots_bound_total) / alloc_trials
                                           : 0.0, 3)});
  table.add_row({"avg slots (exact fixed point)",
                 format_fixed(alloc_trials ? static_cast<double>(slots_fp_total) / alloc_trials
                                           : 0.0, 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: the closed form is within a small factor of the exact fixed\n"
              "point and rarely costs a slot, while guaranteeing existence a priori\n"
              "(the paper's argument against the iterative CAN-style analysis).\n\n");
}

void bm_bound(benchmark::State& state) {
  Rng rng(7);
  auto apps = random_app_set(rng, 6);
  for (auto _ : state) {
    auto k = max_wait_bound(apps, 5);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_bound);

void bm_fixed_point(benchmark::State& state) {
  Rng rng(7);
  auto apps = random_app_set(rng, 6);
  for (auto _ : state) {
    auto k = max_wait_fixed_point(apps, 5);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_fixed_point);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
