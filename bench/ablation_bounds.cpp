// Microbenchmarks for the maximum-wait analyses: the closed-form bound
// (Eq. 20) and the exact fixed point (Eq. 5).  The tightness campaign
// itself is produced by `cps_run ablation_bounds`
// (src/experiments/ablation_bounds.cpp).
#include "bench_common.hpp"

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> bench_app_set() {
  Rng rng(7);
  auto apps =
      experiments::random_sched_params(rng, 6, experiments::bounds_ablation_ranges());
  sort_by_priority(apps);
  return apps;
}

void bm_bound(benchmark::State& state) {
  const auto apps = bench_app_set();
  for (auto _ : state) {
    auto k = max_wait_bound(apps, 5);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_bound);

void bm_fixed_point(benchmark::State& state) {
  const auto apps = bench_app_set();
  for (auto _ : state) {
    auto k = max_wait_fixed_point(apps, 5);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_fixed_point);

}  // namespace

CPS_BENCHMARK_MAIN();
