// Microbenchmarks for the runtime layer itself: ThreadPool submit/drain
// overhead, SweepRunner fan-out cost relative to an inline loop, and the
// FixtureCache hit path.  These bound the fixed cost every parallel
// experiment pays.
#include "bench_common.hpp"

#include <cstddef>
#include <future>
#include <string>
#include <vector>

#include "runtime/fixture_cache.hpp"
#include "runtime/sweep_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace cps::runtime;

void bm_pool_submit_drain(benchmark::State& state) {
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(2);  // outside the timed loop: measure queue ops, not thread spawn
  for (auto _ : state) {
    std::vector<std::future<std::size_t>> futures;
    futures.reserve(tasks);
    for (std::size_t i = 0; i < tasks; ++i)
      futures.push_back(pool.submit([i]() { return i; }));
    std::size_t sum = 0;
    for (auto& future : futures) sum += future.get();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(bm_pool_submit_drain)->Arg(64)->Arg(512);

void bm_pool_lifecycle(benchmark::State& state) {
  for (auto _ : state) {
    ThreadPool pool(2);
    benchmark::DoNotOptimize(pool.submit([]() { return 1; }).get());
  }
}
BENCHMARK(bm_pool_lifecycle);

void bm_sweep_serial(benchmark::State& state) {
  SweepRunner sweep({1, 42});
  for (auto _ : state) {
    auto out = sweep.run(256, [](std::size_t, cps::Rng& rng) { return rng.uniform(0.0, 1.0); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(bm_sweep_serial);

void bm_sweep_two_jobs(benchmark::State& state) {
  SweepRunner sweep({2, 42});
  for (auto _ : state) {
    auto out = sweep.run(256, [](std::size_t, cps::Rng& rng) { return rng.uniform(0.0, 1.0); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(bm_sweep_two_jobs);

void bm_fixture_cache_hit(benchmark::State& state) {
  FixtureCache& cache = FixtureCache::instance();
  const std::string key = "bench/fixture_cache_hit";
  benchmark::DoNotOptimize(
      cache.get_or_compute<int>(key, [] { return 42; }));  // populate once
  for (auto _ : state) {
    auto value = cache.get_or_compute<int>(key, [] { return 42; });
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(bm_fixture_cache_hit)->Unit(benchmark::kNanosecond);

void bm_fixture_key_build(benchmark::State& state) {
  for (auto _ : state) {
    FixtureKey key("bench");
    key.add(1.0).add(std::uint64_t{7}).add("payload");
    benchmark::DoNotOptimize(key.str());
  }
}
BENCHMARK(bm_fixture_key_build)->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
