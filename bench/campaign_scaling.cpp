// Campaign-scale throughput bench: persistent fixture store + process
// sharding, measured end to end through the real cps_run driver.
//
// Unlike the kernel benches (Google Benchmark over in-process functions),
// the quantities here are properties of whole PROCESSES — what the
// fixture store saves a cold process, and how a sweep campaign's
// wall-clock splits across `--shard i/N` workers.  This bench therefore
// forks the actual cps_run binary and times it, then emits
// Google-Benchmark-compatible JSON on stdout so bench_compare.py and the
// committed snapshots treat it like every other bench.
//
// Measurements:
//  * campaign_fixtures_{cold,warm}_store — a fixture-dominated campaign
//    (fig3 fig4 fig5 table1 ablation_envelope: fleet synthesis, loop
//    designs, seven dwell/wait curves) against a fresh vs a pre-warmed
//    --fixture-store.  The ratio is what every later process in a
//    sharded campaign saves.
//  * campaign_flexray_{cold,warm}_store — the sweep-dominated
//    sweep_flexray_params campaign, unsharded.
//  * campaign_flexray_shard{2,4}_critical_path — the same campaign split
//    into N shards (warm store).  Shards are fully independent
//    processes, so on dedicated cores the campaign wall-clock is the
//    SLOWEST shard plus the merge; this bench runs the shards
//    sequentially and reports exactly that critical path
//    (max_i shard_i + merge), which is core-count-independent and
//    reproducible on the single-core CI container.  The merged CSV is
//    byte-compared against the unsharded artifact on every iteration —
//    a mismatch aborts the bench.
//
// Each measurement repeats kIterations times and reports the minimum
// (process wall-clocks are one-sided noisy).
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/simd_batch.hpp"

namespace {

constexpr int kIterations = 3;

std::string g_cps_run;   // path to the driver binary
std::string g_work_dir;  // scratch root for stores and CSV dirs

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "campaign_scaling: %s\n", message.c_str());
  std::exit(1);
}

/// Fork + exec cps_run with `args`, stdout/stderr silenced; returns the
/// child's wall-clock seconds.  Dies on spawn failure or nonzero exit.
double timed_run(const std::vector<std::string>& args) {
  std::vector<std::string> argv_storage;
  argv_storage.push_back(g_cps_run);
  for (const auto& arg : args) argv_storage.push_back(arg);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (auto& arg : argv_storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
    }
    ::execv(argv[0], argv.data());
    _exit(127);  // execv only returns on failure
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) die("waitpid failed");
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::ostringstream cmd;
    for (const auto& arg : argv_storage) cmd << arg << ' ';
    die("child failed (" + std::to_string(WEXITSTATUS(status)) + "): " + cmd.str());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void reset_dir(const std::string& path) {
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
}

struct Result {
  std::string name;
  double seconds = 0.0;
};

std::vector<Result> g_results;

void record(const std::string& name, double seconds) {
  std::fprintf(stderr, "  %-44s %8.1f ms\n", name.c_str(), seconds * 1e3);
  g_results.push_back(Result{name, seconds});
}

/// The fixture-dominated campaign: everything it does flows through the
/// FixtureCache (fleet synthesis, hybrid designs, dwell/wait curves).
const std::vector<std::string> kFixtureCampaign = {"fig3", "fig4", "fig5", "table1",
                                                   "ablation_envelope"};

double run_fixture_campaign(const std::string& store, const std::string& csv) {
  std::vector<std::string> args = kFixtureCampaign;
  args.insert(args.end(), {"--csv", csv, "--fixture-store", store});
  return timed_run(args);
}

double run_flexray(const std::string& store, const std::string& csv,
                   const std::string& shard = {}) {
  std::vector<std::string> args = {"sweep_flexray_params", "--csv", csv, "--fixture-store",
                                   store};
  if (!shard.empty()) args.insert(args.end(), {"--shard", shard});
  return timed_run(args);
}

/// Critical path of an N-shard flexray campaign on a warm store: the
/// slowest shard plus the merge (shards are independent processes; on N
/// dedicated cores they overlap, so max + merge IS the campaign
/// wall-clock).  Byte-verifies the merged CSV against `reference_csv`.
double sharded_critical_path(std::size_t shards, const std::string& store,
                             const std::string& csv_dir, const std::string& reference_csv) {
  reset_dir(csv_dir);
  double slowest = 0.0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string spec = std::to_string(i) + "/" + std::to_string(shards);
    slowest = std::max(slowest, run_flexray(store, csv_dir, spec));
  }
  const double merge = timed_run({"sweep_flexray_params", "--merge", std::to_string(shards),
                                  "--csv", csv_dir});
  const std::string merged = csv_dir + "/sweep_flexray_params.csv";
  if (slurp(merged) != slurp(reference_csv))
    die("merged CSV differs from the unsharded artifact (" + merged + ")");
  return slowest + merge;
}

}  // namespace

int main(int argc, char** argv) {
  // Default the driver path to ../tools/cps_run next to this binary so
  // `./build/bench/campaign_scaling` just works; --cps-run overrides.
  std::filesystem::path self(argv[0]);
  g_cps_run = (self.parent_path() / "../tools/cps_run").lexically_normal().string();
  g_work_dir = "/tmp/cps-campaign-scaling";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) die(std::string(flag) + " requires an argument");
      return argv[++i];
    };
    if (arg == "--cps-run") {
      g_cps_run = value("--cps-run");
    } else if (arg == "--work-dir") {
      g_work_dir = value("--work-dir");
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Google-Benchmark-style flags accepted for CI-invocation symmetry;
      // this bench always writes its JSON to stdout.
    } else {
      die("unknown option " + arg);
    }
  }
  if (!std::filesystem::exists(g_cps_run)) die("cps_run not found at " + g_cps_run);

  const std::string store = g_work_dir + "/store";
  const std::string csv = g_work_dir + "/csv";
  const std::string csv_shards = g_work_dir + "/csv-shards";

  double fixtures_cold = 1e100, fixtures_warm = 1e100;
  double flexray_cold = 1e100, flexray_warm = 1e100;
  double shard2 = 1e100, shard4 = 1e100;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::fprintf(stderr, "iteration %d/%d\n", iteration + 1, kIterations);
    reset_dir(store);
    reset_dir(csv);
    fixtures_cold = std::min(fixtures_cold, run_fixture_campaign(store, csv));
    fixtures_warm = std::min(fixtures_warm, run_fixture_campaign(store, csv));

    reset_dir(store);
    flexray_cold = std::min(flexray_cold, run_flexray(store, csv));
    flexray_warm = std::min(flexray_warm, run_flexray(store, csv));

    const std::string reference = csv + "/sweep_flexray_params.csv";
    shard2 = std::min(shard2, sharded_critical_path(2, store, csv_shards, reference));
    shard4 = std::min(shard4, sharded_critical_path(4, store, csv_shards, reference));
  }

  std::fprintf(stderr, "\nbest of %d iterations:\n", kIterations);
  record("campaign_fixtures_cold_store", fixtures_cold);
  record("campaign_fixtures_warm_store", fixtures_warm);
  record("campaign_flexray_cold_store", flexray_cold);
  record("campaign_flexray_warm_store", flexray_warm);
  record("campaign_flexray_shard2_critical_path", shard2);
  record("campaign_flexray_shard4_critical_path", shard4);
  std::fprintf(stderr,
               "\nwarm-store speedup (fixture campaign): %.2fx\n"
               "2-shard campaign speedup (critical path): %.2fx\n"
               "4-shard campaign speedup (critical path): %.2fx\n",
               fixtures_cold / fixtures_warm, flexray_warm / shard2, flexray_warm / shard4);

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  // Google-Benchmark-compatible JSON (the fields bench_compare.py reads,
  // including the build-type fields the debug-snapshot gate checks; this
  // binary links no benchmark harness, so both fields mean the project).
  std::printf("{\n  \"context\": {\"executable\": \"campaign_scaling\", "
              "\"library_build_type\": \"%s\", \"cps_library_build_type\": \"%s\", "
              "\"cps_simd_width\": \"%zu\", \"cps_simd_isa\": \"%s\"},\n",
              build_type, build_type, cps::linalg::kSimdWidth,
              cps::linalg::simd_isa_name());
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    std::printf("    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                "\"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"ms\"}%s\n",
                g_results[i].name.c_str(), g_results[i].seconds * 1e3,
                g_results[i].seconds * 1e3, i + 1 < g_results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
