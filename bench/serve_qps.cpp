// Resident-daemon query bench: spins the real serve::Server in-process
// on a temp Unix socket and times warm-path queries end to end (client
// encode -> socket -> admission -> worker dispatch -> socket -> decode).
//
// Measurements:
//  * serve_qps_ping_rtt            — protocol + scheduling floor (no query)
//  * serve_qps_curve_warm          — resident dwell/wait curve lookup
//  * serve_qps_sched_check_warm    — cached fleet draw + one-slot analysis
//  * serve_qps_alloc_ff_warm       — cached fleet draw + first-fit packing
//  * serve_qps_ping_throughput_c4  — 4 concurrent clients, mean per-request
//
// The *_warm numbers deliberately exclude the first request (which pays
// the fixture compute): the bench reports what a RESIDENT server does,
// which is the daemon's reason to exist.  Emits the same Google-
// Benchmark-compatible self-JSON as campaign_scaling/alloc_parallel
// (context fields included), recorded by CI's warn-only campaign lane.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "linalg/simd_batch.hpp"
#include "serve/client.hpp"
#include "serve/queries.hpp"
#include "serve/server.hpp"
#include "util/serialize.hpp"

namespace {

using namespace cps::serve;

constexpr int kIterations = 200;        ///< per single-client measurement
constexpr int kThroughputPerClient = 100;
constexpr int kThroughputClients = 4;

struct Result {
  std::string name;
  double seconds = 0.0;
};

std::vector<Result> g_results;

void record(const std::string& name, double seconds) {
  std::fprintf(stderr, "  %-32s %10.3f us\n", name.c_str(), seconds * 1e6);
  g_results.push_back(Result{name, seconds});
}

std::string encode_ping_request() {
  PingRequest ping{"bench", 0};
  cps::util::BinaryWriter out;
  ping.encode(out);
  return out.take();
}

std::string encode_sched_request() {
  SchedCheckRequest request;
  request.fleet.n_apps = 10;
  request.fleet.target_utilization = 0.7;
  request.fleet.seed = 1;
  cps::util::BinaryWriter out;
  request.encode(out);
  return out.take();
}

std::string encode_alloc_request() {
  AllocateRequest request;
  request.fleet.n_apps = 10;
  request.fleet.target_utilization = 0.7;
  request.fleet.seed = 1;
  request.allocator = static_cast<std::uint64_t>(AllocatorKind::kFirstFit);
  cps::util::BinaryWriter out;
  request.encode(out);
  return out.take();
}

/// Median-of-iterations round-trip time of one (opcode, payload) query.
double time_query(QueryClient& client, Opcode opcode, const std::string& payload) {
  // One untimed warm-up so the fixture compute never lands in the timing.
  if (!client.call(opcode, payload).ok()) {
    std::fprintf(stderr, "serve_qps: warm-up query failed\n");
    std::exit(1);
  }
  std::vector<double> samples;
  samples.reserve(kIterations);
  for (int i = 0; i < kIterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    if (!client.call(opcode, payload).ok()) {
      std::fprintf(stderr, "serve_qps: timed query failed\n");
      std::exit(1);
    }
    samples.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;

  const std::string socket_path =
      "/tmp/cps_qps_" + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  options.socket_path = socket_path;
  options.workers = 4;
  options.max_queue = 256;
  Server server(std::move(options));
  std::thread server_thread([&] { server.run(); });
  for (int i = 0; i < 500 && !server.serving(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  if (!server.serving()) {
    std::fprintf(stderr, "serve_qps: server did not come up\n");
    return 1;
  }

  {
    ClientOptions client_options;
    client_options.socket_path = socket_path;
    QueryClient client(std::move(client_options));
    record("serve_qps_ping_rtt", time_query(client, Opcode::kPing, encode_ping_request()));
    record("serve_qps_curve_warm", time_query(client, Opcode::kCurve, ""));
    record("serve_qps_sched_check_warm",
           time_query(client, Opcode::kSchedCheck, encode_sched_request()));
    record("serve_qps_alloc_ff_warm",
           time_query(client, Opcode::kAllocate, encode_alloc_request()));
  }

  {
    // Concurrent throughput: mean per-request wall across 4 clients
    // hammering pings (queue deep enough that nothing is shed).
    const std::string payload = encode_ping_request();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kThroughputClients);
    for (int c = 0; c < kThroughputClients; ++c) {
      clients.emplace_back([&] {
        ClientOptions client_options;
        client_options.socket_path = socket_path;
        QueryClient client(std::move(client_options));
        for (int i = 0; i < kThroughputPerClient; ++i)
          if (!client.call(Opcode::kPing, payload).ok()) std::abort();
      });
    }
    for (auto& thread : clients) thread.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    record("serve_qps_ping_throughput_c4",
           wall / (kThroughputClients * kThroughputPerClient));
  }

  server.request_drain();
  server_thread.join();

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::printf("{\n  \"context\": {\"executable\": \"serve_qps\", "
              "\"library_build_type\": \"%s\", \"cps_library_build_type\": \"%s\", "
              "\"cps_simd_width\": \"%zu\", \"cps_simd_isa\": \"%s\"},\n",
              build_type, build_type, cps::linalg::kSimdWidth,
              cps::linalg::simd_isa_name());
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    std::printf("    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                "\"real_time\": %.6f, \"cpu_time\": %.6f, \"time_unit\": \"ms\"}%s\n",
                g_results[i].name.c_str(), g_results[i].seconds * 1e3,
                g_results[i].seconds * 1e3, i + 1 < g_results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
