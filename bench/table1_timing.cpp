// Reproduces paper Table I: the timing parameters of the six case-study
// control applications.  Two columsets are printed: the published values
// (used verbatim by the allocation benches) and the values measured from
// the synthesized stand-in plants (full pipeline path), so the deviation
// of the substitution is visible at a glance (see EXPERIMENTS.md).
//
// Times the fleet synthesis + characterization pipeline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "control/loop_design.hpp"
#include "plants/table1.hpp"
#include "sim/dwell_wait.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

sim::DwellWaitCurve measure(const plants::SynthesizedApp& app) {
  const auto design = control::design_hybrid_loops(app.plant, app.spec);
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = app.threshold;
  const auto x0 = linalg::Vector::concat(app.x0, linalg::Vector::zero(design.input_dim));
  return sim::measure_dwell_wait_curve(sys, x0, design.sys_tt.sampling_period(), opts);
}

void print_table1() {
  std::printf("== Table I: timing parameters for applications [s] ==\n\n");
  std::printf("published values (used by the allocation reproduction):\n");
  TextTable paper({"app", "r", "xi_d", "xi_TT", "xi_ET", "xi_M", "k_p", "xi'_M"});
  for (const auto& row : plants::paper_values()) {
    paper.add_row({row.name, format_fixed(row.r, 0), format_fixed(row.xi_d, 2),
                   format_fixed(row.xi_tt, 2), format_fixed(row.xi_et, 2),
                   format_fixed(row.xi_m, 2), format_fixed(row.k_p, 2),
                   format_fixed(row.xi_m_mono, 2)});
  }
  std::printf("%s\n", paper.render().c_str());

  std::printf("synthesized-plant measurements (paper value in parentheses):\n");
  TextTable synth({"app", "xi_TT", "xi_ET", "xi_M", "k_p", "non-monotonic"});
  for (const auto& app : plants::synthesize_fleet()) {
    const auto curve = measure(app);
    synth.add_row({app.target.name,
                   format_fixed(curve.xi_tt(), 2) + " (" + format_fixed(app.target.xi_tt, 2) + ")",
                   format_fixed(curve.xi_et(), 2) + " (" + format_fixed(app.target.xi_et, 2) + ")",
                   format_fixed(curve.xi_m(), 2) + " (" + format_fixed(app.target.xi_m, 2) + ")",
                   format_fixed(curve.k_p(), 2) + " (" + format_fixed(app.target.k_p, 2) + ")",
                   curve.is_non_monotonic() ? "yes" : "no"});
  }
  std::printf("%s\n", synth.render().c_str());
}

void bm_synthesize_fleet(benchmark::State& state) {
  for (auto _ : state) {
    auto fleet = plants::synthesize_fleet();
    benchmark::DoNotOptimize(fleet);
  }
}
BENCHMARK(bm_synthesize_fleet);

void bm_characterize_one_app(benchmark::State& state) {
  const auto fleet = plants::synthesize_fleet();
  for (auto _ : state) {
    auto curve = measure(fleet[2]);  // C3, the fastest sweep
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_characterize_one_app);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
