// Microbenchmarks for the Table I pipeline: fleet synthesis and single-app
// characterization.  The table itself is produced by `cps_run table1`
// (src/experiments/table1_timing.cpp).
#include "bench_common.hpp"

#include <algorithm>

#include "experiments/fixtures.hpp"
#include "plants/table1.hpp"

namespace {

using namespace cps;

void bm_synthesize_fleet(benchmark::State& state) {
  for (auto _ : state) {
    auto fleet = plants::synthesize_fleet();
    benchmark::DoNotOptimize(fleet);
  }
}
BENCHMARK(bm_synthesize_fleet);

void bm_characterize_one_app(benchmark::State& state) {
  const auto fleet = plants::synthesize_fleet();
  // C3 has the fastest sweep; look it up by name so fleet reordering
  // cannot silently change what this bench measures.
  const auto c3 = std::find_if(fleet.begin(), fleet.end(),
                               [](const plants::SynthesizedApp& app) {
                                 return app.target.name == "C3";
                               });
  if (c3 == fleet.end()) {
    state.SkipWithError("C3 not found in synthesized fleet");
    return;
  }
  for (auto _ : state) {
    // Cached entry point the experiments use: after the first iteration
    // this times a FixtureCache hit, which is exactly the cost table1 pays
    // per re-request within a campaign.
    auto curve = experiments::measure_synthesized_curve(*c3);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_characterize_one_app)->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
