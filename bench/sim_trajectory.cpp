// Microbenchmarks for the per-step simulation kernels reworked in the
// allocation-free linalg pass: switched-system trajectory recording
// (sim/switched_system.cpp), the random-delay jitter settle loop
// (sim/jitter.cpp), and the matrix-power transient envelope
// (analysis/transient.cpp).  Each optimized kernel is timed next to its
// frozen pre-optimization *_reference twin (same FP order, bit-identical
// outputs — tests/sim_golden_test.cpp), so the committed JSON snapshot
// records the in-place-kernel speedup on identical work.
#include "bench_common.hpp"

#include <chrono>
#include <vector>

#include "analysis/transient.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/switched_system.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;

/// Servo two-mode system of Fig. 3: the trajectory everyone simulates.
struct ServoSetup {
  ServoSetup()
      : design(plants::design_servo_loops()),
        sys(design.a_et, design.a_tt, design.state_dim),
        x0(plants::servo_disturbed_state()) {}
  control::HybridLoopDesign design;
  sim::SwitchedLinearSystem sys;
  linalg::Vector x0;
  static constexpr std::size_t kSwitchStep = 40;
  static constexpr std::size_t kTotalSteps = 2000;
};

void bm_trajectory_simulate(benchmark::State& state) {
  const ServoSetup setup;
  for (auto _ : state) {
    auto traj = setup.sys.simulate(setup.x0, ServoSetup::kSwitchStep, ServoSetup::kTotalSteps,
                                   0.02);
    benchmark::DoNotOptimize(traj);
  }
}
BENCHMARK(bm_trajectory_simulate)->Unit(benchmark::kNanosecond);

void bm_trajectory_simulate_reference(benchmark::State& state) {
  const ServoSetup setup;
  for (auto _ : state) {
    auto traj = setup.sys.simulate_reference(setup.x0, ServoSetup::kSwitchStep,
                                             ServoSetup::kTotalSteps, 0.02);
    benchmark::DoNotOptimize(traj);
  }
}
BENCHMARK(bm_trajectory_simulate_reference)->Unit(benchmark::kNanosecond);

void bm_trajectory_simulate_batch(benchmark::State& state) {
  // kSimdWidth lockstep trajectories per call on a recycled workspace
  // (what a sweep loop does: consumed trajectories give their sample
  // storage back); manual time divides the batch wall time by the lane
  // count so the reported ns is PER TRAJECTORY, directly comparable to
  // bm_trajectory_simulate (each lane performs that kernel's exact FP
  // work — bit-identical samples).
  const ServoSetup setup;
  constexpr std::size_t kLanes = linalg::kSimdWidth;
  const std::vector<linalg::Vector> x0s(kLanes, setup.x0);
  sim::TrajectoryBatchWorkspace workspace;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto trajs = setup.sys.simulate_batch(x0s.data(), kLanes, ServoSetup::kSwitchStep,
                                          ServoSetup::kTotalSteps, 0.02, workspace);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(trajs);
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count() /
                           static_cast<double>(kLanes));
    for (auto& traj : trajs) workspace.recycle(std::move(traj));
  }
}
BENCHMARK(bm_trajectory_simulate_batch)->Unit(benchmark::kNanosecond)->UseManualTime();

/// Jitter settle loop on the servo ET design (the kernel
/// run_jitter_campaign spins per run).
struct JitterSetup {
  JitterSetup()
      : design(plants::design_servo_loops()),
        loop(plants::make_servo_motor(), 0.02, {0.0, 0.005, 0.01, 0.015, 0.02},
             design.gain_et),
        z0(plants::servo_disturbed_state()) {}
  control::HybridLoopDesign design;
  sim::JitteryClosedLoop loop;
  linalg::Vector z0;
};

void bm_jitter_settle(benchmark::State& state) {
  const JitterSetup setup;
  Rng rng(0x5EED5EEDULL);
  for (auto _ : state) {
    auto settle = setup.loop.settle_under_random_delays(setup.z0, 0.1, rng);
    benchmark::DoNotOptimize(settle);
  }
}
BENCHMARK(bm_jitter_settle)->Unit(benchmark::kNanosecond);

void bm_jitter_settle_reference(benchmark::State& state) {
  const JitterSetup setup;
  Rng rng(0x5EED5EEDULL);
  for (auto _ : state) {
    auto settle = setup.loop.settle_under_random_delays_reference(setup.z0, 0.1, rng);
    benchmark::DoNotOptimize(settle);
  }
}
BENCHMARK(bm_jitter_settle_reference)->Unit(benchmark::kNanosecond);

void bm_transient_growth_kernel(benchmark::State& state) {
  const ServoSetup setup;
  for (auto _ : state) {
    auto growth = analysis::transient_growth(setup.design.a_et);
    benchmark::DoNotOptimize(growth);
  }
}
BENCHMARK(bm_transient_growth_kernel)->Unit(benchmark::kNanosecond);

void bm_transient_growth_kernel_reference(benchmark::State& state) {
  const ServoSetup setup;
  for (auto _ : state) {
    auto growth = analysis::transient_growth_reference(setup.design.a_et);
    benchmark::DoNotOptimize(growth);
  }
}
BENCHMARK(bm_transient_growth_kernel_reference)->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
