// Ablation: envelope granularity (DESIGN.md design-choice index).
//
// The paper notes the dwell/wait relation "may be modeled with three or
// more piecewise linear curves, to be closer to the actual behavior."
// This bench quantifies that remark on both application sets:
//   * Table I published values: the tent is exact there (the paper's own
//     model), so only non-monotonic vs conservative differ;
//   * the synthesized fleet: simple (unsafe) / two-piece tent / concave
//     hull / conservative monotonic, reporting slots needed, per-app
//     worst-case responses, and soundness.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "core/application.hpp"
#include "plants/table1.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;
using core::ControlApplication;

std::vector<ControlApplication> build_fleet() {
  std::vector<ControlApplication> apps;
  for (const auto& item : plants::synthesize_fleet()) {
    auto design = control::design_hybrid_loops(item.plant, item.spec);
    core::TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    apps.emplace_back(item.target.name, std::move(design), req, item.x0);
  }
  return apps;
}

void print_ablation() {
  std::printf("== Ablation: envelope granularity vs TT slots needed ==\n\n");

  auto fleet = build_fleet();
  using MK = ControlApplication::ModelKind;
  struct Row {
    const char* label;
    MK kind;
  };
  const Row rows[] = {
      {"simple monotonic (UNSAFE)", MK::kSimpleMonotonic},
      {"two-piece tent (paper)", MK::kNonMonotonic},
      {"concave hull (N-piece)", MK::kConcave},
      {"conservative monotonic", MK::kConservativeMonotonic},
  };

  TextTable table({"envelope", "sound", "slots", "sum xi_M [s]", "max violation [s]"});
  for (const auto& row : rows) {
    bool sound = true;
    double sum_max_dwell = 0.0;
    double worst_violation = 0.0;
    std::vector<AppSchedParams> sched;
    for (auto& app : fleet) {
      const auto model = app.fit_model(row.kind);
      sound = sound && model->dominates(*app.curve(), 1e-9);
      worst_violation = std::max(worst_violation, model->max_violation(*app.curve()));
      sum_max_dwell += model->max_dwell();
      sched.push_back(app.sched_params());
    }
    std::size_t slots = 0;
    try {
      slots = first_fit_allocate(sched).slot_count();
    } catch (const cps::Error&) {
      slots = 0;  // infeasible under this envelope
    }
    table.add_row({row.label, sound ? "yes" : "NO",
                   slots == 0 ? std::string("infeasible") : std::to_string(slots),
                   format_fixed(sum_max_dwell, 2), format_fixed(worst_violation, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: tighter (more pieces) => smaller interference terms and fewer\n"
              "or equal slots; the unsafe simple model may report few slots but its\n"
              "positive violation means deadlines can be missed at runtime.\n\n");
}

void bm_fit_all_models(benchmark::State& state) {
  auto fleet = build_fleet();
  for (auto& app : fleet) app.measure_curve();
  using MK = ControlApplication::ModelKind;
  for (auto _ : state) {
    for (auto& app : fleet) {
      benchmark::DoNotOptimize(app.fit_model(MK::kNonMonotonic));
      benchmark::DoNotOptimize(app.fit_model(MK::kConcave));
      benchmark::DoNotOptimize(app.fit_model(MK::kConservativeMonotonic));
    }
  }
}
BENCHMARK(bm_fit_all_models);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
