// Microbenchmark for fitting every envelope family to the synthesized
// fleet.  The granularity comparison itself is produced by
// `cps_run ablation_envelope` (src/experiments/ablation_envelope.cpp).
#include "bench_common.hpp"

#include "core/application.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using core::ControlApplication;

void bm_fit_all_models(benchmark::State& state) {
  auto fleet = experiments::build_paper_fleet();
  for (auto& app : fleet) app.measure_curve();
  using MK = ControlApplication::ModelKind;
  for (auto _ : state) {
    for (auto& app : fleet) {
      benchmark::DoNotOptimize(app.fit_model(MK::kNonMonotonic));
      benchmark::DoNotOptimize(app.fit_model(MK::kConcave));
      benchmark::DoNotOptimize(app.fit_model(MK::kConservativeMonotonic));
    }
  }
}
BENCHMARK(bm_fit_all_models);

}  // namespace

CPS_BENCHMARK_MAIN();
