// Microbenchmarks for the Figure 3 kernels: the dwell/wait sweep (the
// kernel every application characterization runs) and the servo two-mode
// loop design.  The figure itself is produced by `cps_run fig3`
// (src/experiments/fig3_dwell_wait.cpp).
#include <benchmark/benchmark.h>

#include "plants/servo_motor.hpp"
#include "sim/dwell_wait.hpp"
#include "sim/switched_system.hpp"

namespace {

using namespace cps;

void bm_servo_curve_sweep(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = exp.threshold;
  const auto x0 = plants::servo_disturbed_state(exp);
  for (auto _ : state) {
    auto curve = sim::measure_dwell_wait_curve(sys, x0, exp.sampling_period, opts);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_servo_curve_sweep);

void bm_servo_loop_design(benchmark::State& state) {
  for (auto _ : state) {
    auto design = plants::design_servo_loops();
    benchmark::DoNotOptimize(design);
  }
}
BENCHMARK(bm_servo_loop_design);

}  // namespace

BENCHMARK_MAIN();
