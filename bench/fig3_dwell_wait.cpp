// Microbenchmarks for the Figure 3 kernels: the dwell/wait sweep (the
// kernel every application characterization runs) and the servo two-mode
// loop design.  The figure itself is produced by `cps_run fig3`
// (src/experiments/fig3_dwell_wait.cpp).
//
// The sweep benches time the exact entry points the experiments use:
// sim::measure_dwell_wait_curve is the optimized incremental kernel the
// fixtures call into, measure_dwell_wait_curve_reference is the frozen
// pre-optimization kernel, and experiments::measure_servo_curve is the
// cached fixture path.  Kernel iterations are timed manually on
// std::chrono::steady_clock (monotonic) and reported as ns/op.
#include "bench_common.hpp"

#include <chrono>

#include "experiments/fixtures.hpp"
#include "plants/servo_motor.hpp"
#include "sim/dwell_wait.hpp"
#include "sim/switched_system.hpp"

namespace {

using namespace cps;

/// Shared setup: the servo switched system and sweep options of Fig. 3.
struct ServoSweepSetup {
  ServoSweepSetup()
      : design(plants::design_servo_loops()),
        sys(design.a_et, design.a_tt, design.state_dim),
        x0(plants::servo_disturbed_state()) {
    opts.settling.threshold = plants::ServoExperiment{}.threshold;
  }
  control::HybridLoopDesign design;
  sim::SwitchedLinearSystem sys;
  linalg::Vector x0;
  sim::DwellWaitSweepOptions opts;
  double h = plants::ServoExperiment{}.sampling_period;
};

template <typename Kernel>
void time_sweep(benchmark::State& state, Kernel kernel) {
  const ServoSweepSetup setup;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto curve = kernel(setup.sys, setup.x0, setup.h, setup.opts);
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    benchmark::DoNotOptimize(curve);
  }
}

void bm_servo_curve_sweep(benchmark::State& state) {
  // Disambiguate: measure_dwell_wait_curve gained a workspace overload.
  time_sweep(state, [](const sim::SwitchedLinearSystem& sys, const linalg::Vector& x0,
                       double h, const sim::DwellWaitSweepOptions& opts) {
    return sim::measure_dwell_wait_curve(sys, x0, h, opts);
  });
}
BENCHMARK(bm_servo_curve_sweep)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_servo_curve_sweep_workspace(benchmark::State& state) {
  // The batched-sweep path: one worker measuring curves back to back on
  // a reused DwellWaitWorkspace (what SweepRunner's per-worker workspace
  // threading does).  Bit-identical curve, no per-call scratch setup.
  const ServoSweepSetup setup;
  sim::DwellWaitWorkspace workspace;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto curve = sim::measure_dwell_wait_curve(setup.sys, setup.x0, setup.h, setup.opts,
                                               workspace);
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_servo_curve_sweep_workspace)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_servo_curve_sweep_reference(benchmark::State& state) {
  time_sweep(state, sim::measure_dwell_wait_curve_reference);
}
BENCHMARK(bm_servo_curve_sweep_reference)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_servo_curve_fixture_cached(benchmark::State& state) {
  // First call computes and populates the FixtureCache; the loop then
  // times the hit path every experiment after the first pays.
  benchmark::DoNotOptimize(experiments::measure_servo_curve());
  for (auto _ : state) {
    auto curve = experiments::measure_servo_curve();
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_servo_curve_fixture_cached)->Unit(benchmark::kNanosecond);

void bm_servo_loop_design(benchmark::State& state) {
  for (auto _ : state) {
    auto design = plants::design_servo_loops();
    benchmark::DoNotOptimize(design);
  }
}
BENCHMARK(bm_servo_loop_design)->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
