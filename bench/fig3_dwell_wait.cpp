// Reproduces paper Figure 3: the measured relation between the dwell time
// k_dw and the wait time k_wait for the servo-motor position control
// system (Section III), including the published characteristic values
// xi_TT = 0.68 s and xi_ET = 2.16 s and the two-phase (positive gradient,
// then negative gradient) shape.
//
// Also times the dwell/wait sweep itself (the kernel every application
// characterization runs).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "plants/servo_motor.hpp"
#include "sim/dwell_wait.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

sim::DwellWaitCurve measure_servo_curve() {
  const auto design = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = exp.threshold;
  return sim::measure_dwell_wait_curve(sys, plants::servo_disturbed_state(exp),
                                       exp.sampling_period, opts);
}

void print_figure3() {
  const auto curve = measure_servo_curve();

  std::printf("== Figure 3: dwell time vs wait time (servo motor, Section III) ==\n\n");
  TextTable characteristics({"quantity", "paper", "measured"});
  characteristics.add_row({"xi_TT [s]", "0.68", format_fixed(curve.xi_tt(), 2)});
  characteristics.add_row({"xi_ET [s]", "2.16", format_fixed(curve.xi_et(), 2)});
  characteristics.add_row({"xi_M  [s]", "~1.0", format_fixed(curve.xi_m(), 2)});
  characteristics.add_row({"k_p   [s]", "~0.3", format_fixed(curve.k_p(), 2)});
  characteristics.add_row(
      {"non-monotonic", "yes", curve.is_non_monotonic() ? "yes" : "no"});
  std::printf("%s\n", characteristics.render().c_str());

  // The measured series, decimated for the terminal (full data to CSV).
  std::printf("k_wait [s] -> k_dw [s]:\n");
  const auto& pts = curve.points();
  for (std::size_t i = 0; i < pts.size(); i += 5) {
    const int bar = static_cast<int>(pts[i].dwell_s * 40.0);
    std::printf("  %5.2f  %5.2f  |%s\n", pts[i].wait_s, pts[i].dwell_s,
                std::string(static_cast<std::size_t>(bar < 0 ? 0 : bar), '#').c_str());
  }

  CsvWriter csv("fig3_dwell_wait.csv", {"k_wait_s", "k_dw_s"});
  for (const auto& p : pts) csv.write_row(std::vector<double>{p.wait_s, p.dwell_s}, 6);
  std::printf("\nfull series written to fig3_dwell_wait.csv (%zu points)\n\n",
              pts.size());
}

void bm_servo_curve_sweep(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  const plants::ServoExperiment exp;
  sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
  sim::DwellWaitSweepOptions opts;
  opts.settling.threshold = exp.threshold;
  const auto x0 = plants::servo_disturbed_state(exp);
  for (auto _ : state) {
    auto curve = sim::measure_dwell_wait_curve(sys, x0, exp.sampling_period, opts);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(bm_servo_curve_sweep);

void bm_servo_loop_design(benchmark::State& state) {
  for (auto _ : state) {
    auto design = plants::design_servo_loops();
    benchmark::DoNotOptimize(design);
  }
}
BENCHMARK(bm_servo_loop_design);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
