// Microbenchmarks for the batched SIMD kernel layer
// (linalg/batch_kernels.hpp): each batched kernel next to the scalar
// kernel it replaces, on the servo fixtures every other bench uses.  The
// batched variants run kSimdWidth lanes per call and report MANUAL time
// divided by the lane count, so every number is ns PER PROBLEM INSTANCE
// and the scalar/batch pairs compare directly (bit-identical outputs per
// lane — tests/linalg_simd_batch_test.cpp).
#include "bench_common.hpp"

#include <chrono>
#include <optional>
#include <vector>

#include "control/discretize.hpp"
#include "linalg/batch_kernels.hpp"
#include "linalg/expm.hpp"
#include "plants/servo_motor.hpp"
#include "sim/settling.hpp"

namespace {

using namespace cps;

constexpr std::size_t kLanes = linalg::kSimdWidth;

/// One iteration's manual time, per lane.
template <typename F>
void time_per_lane(benchmark::State& state, F&& body) {
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count() /
                           static_cast<double>(kLanes));
  }
}

/// The servo plant's A scaled to one sampling period — the expm argument
/// of every c2d in the campaign.
linalg::Matrix servo_ah() {
  const auto plant = plants::make_servo_motor();
  return plant.a() * 0.02;
}

void bm_expm_scalar(benchmark::State& state) {
  const linalg::Matrix ah = servo_ah();
  for (auto _ : state) {
    auto phi = linalg::expm(ah);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(bm_expm_scalar)->Unit(benchmark::kNanosecond);

void bm_expm_batch(benchmark::State& state) {
  const linalg::Matrix ah = servo_ah();
  std::vector<const linalg::Matrix*> ptrs(kLanes, &ah);
  std::vector<linalg::Matrix> out(kLanes);
  time_per_lane(state, [&] {
    linalg::expm_batch(ptrs.data(), kLanes, out.data());
    benchmark::DoNotOptimize(out);
  });
}
BENCHMARK(bm_expm_batch)->Unit(benchmark::kNanosecond)->UseManualTime();

void bm_c2d_pair_scalar(benchmark::State& state) {
  const auto plant = plants::make_servo_motor();
  for (auto _ : state) {
    auto pair = control::c2d_pair(plant, 0.02, 0.0, 0.02);
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(bm_c2d_pair_scalar)->Unit(benchmark::kNanosecond);

void bm_c2d_pair_batch(benchmark::State& state) {
  const auto plant = plants::make_servo_motor();
  std::vector<const control::StateSpace*> plants_w(kLanes, &plant);
  std::vector<double> h(kLanes, 0.02), d_tt(kLanes, 0.0), d_et(kLanes, 0.02);
  time_per_lane(state, [&] {
    auto pairs =
        control::c2d_pair_batch(plants_w.data(), h.data(), d_tt.data(), d_et.data(), kLanes);
    benchmark::DoNotOptimize(pairs);
  });
}
BENCHMARK(bm_c2d_pair_batch)->Unit(benchmark::kNanosecond)->UseManualTime();

void bm_settle_scalar(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  sim::SettlingOptions opts;
  opts.threshold = 1e-12;  // unreachable: both variants run to the cap,
  opts.max_steps = 2000;   // timing equal per-lane step counts
  const std::size_t dim = design.a_tt.rows();
  std::vector<double> x0(dim, 1.0), s, sc;
  for (auto _ : state) {
    s = x0;
    auto settle = sim::detail::settle_in_place(design.a_tt, s, sc, design.state_dim, opts);
    benchmark::DoNotOptimize(settle);
  }
}
BENCHMARK(bm_settle_scalar)->Unit(benchmark::kNanosecond);

void bm_settle_batch(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  sim::SettlingOptions opts;
  opts.threshold = 1e-12;
  opts.max_steps = 2000;
  const std::size_t dim = design.a_tt.rows();
  std::vector<double> x0(dim, 1.0);
  linalg::BatchVec st(dim), scratch(dim);
  std::optional<std::size_t> results[kLanes];
  time_per_lane(state, [&] {
    for (std::size_t l = 0; l < kLanes; ++l) st.load_lane(l, x0.data());
    sim::detail::settle_batch(design.a_tt, st, scratch, design.state_dim, opts, kLanes,
                              results);
    benchmark::DoNotOptimize(results);
  });
}
BENCHMARK(bm_settle_batch)->Unit(benchmark::kNanosecond)->UseManualTime();

}  // namespace

CPS_BENCHMARK_MAIN();
