// Microbenchmarks for the Section V schedulability analysis and the
// first-fit allocator.  The allocation tables themselves are produced by
// `cps_run table_alloc` (src/experiments/table_allocation.cpp).
#include "bench_common.hpp"

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void bm_analyze_slot(benchmark::State& state) {
  auto apps = experiments::paper_sched_params(false);
  sort_by_priority(apps);
  for (auto _ : state) {
    auto analysis = analyze_slot(apps);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(bm_analyze_slot);

void bm_first_fit_allocate(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) {
    auto alloc = first_fit_allocate(apps);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(bm_first_fit_allocate);

void bm_max_wait_fixed_point(benchmark::State& state) {
  auto apps = experiments::paper_sched_params(false);
  sort_by_priority(apps);
  for (auto _ : state) {
    auto k = max_wait_fixed_point(apps, apps.size() - 1);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_max_wait_fixed_point);

}  // namespace

CPS_BENCHMARK_MAIN();
