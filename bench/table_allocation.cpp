// Reproduces the paper's Section V slot-allocation result from the
// published Table I values:
//   * non-monotonic model: 3 TT slots, S1 = {C3, C6}, S2 = {C2, C4},
//     S3 = {C5, C1}, with the published intermediate values
//     k_hat_wait,6 = 0.669, xi_hat_6 = 1.589, k_hat_wait,3 = 0.92,
//     xi_hat_3 = 1.515;
//   * conservative monotonic model: 5 TT slots (only C3 and C6 share),
//     including the published clash xi_hat'_2 = 6.426 > 6.25;
//   * headline: the monotonic assumption needs 67 % more TT slots.
//
// Times the schedulability analysis and the first-fit allocator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "core/report.hpp"
#include "plants/table1.hpp"
#include "util/format.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> paper_apps(bool monotonic) {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    if (monotonic)
      app.model = std::make_shared<ConservativeMonotonicModel>(row.xi_m_mono, row.xi_et);
    else
      app.model = std::make_shared<NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

void print_allocation() {
  std::printf("== Section V: TT slot allocation from Table I ==\n\n");

  std::printf("--- non-monotonic dwell/wait model (the paper's contribution) ---\n");
  const Allocation non_mono = first_fit_allocate(paper_apps(false));
  std::printf("%s\n", core::render_allocation(non_mono).c_str());
  std::printf("paper: 3 slots, S1={C3,C6} (k_hat_6=0.669, xi_hat_6=1.589; "
              "k_hat_3=0.92, xi_hat_3=1.515), S2={C2,C4}, S3={C5,C1}\n\n");

  std::printf("--- conservative monotonic model (prior-work baseline) ---\n");
  const Allocation mono = first_fit_allocate(paper_apps(true));
  std::printf("%s\n", core::render_allocation(mono).c_str());
  std::printf("paper: 5 slots; C2+C4 clash with xi_hat'_2 = 6.426 > 6.25\n\n");

  const double overhead = 100.0 *
      (static_cast<double>(mono.slot_count()) - static_cast<double>(non_mono.slot_count())) /
      static_cast<double>(non_mono.slot_count());
  std::printf(">>> monotonic requires %.0f%% more TT slots (paper: 67%%)\n\n", overhead);
}

void bm_analyze_slot(benchmark::State& state) {
  auto apps = paper_apps(false);
  sort_by_priority(apps);
  for (auto _ : state) {
    auto analysis = analyze_slot(apps);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(bm_analyze_slot);

void bm_first_fit_allocate(benchmark::State& state) {
  const auto apps = paper_apps(false);
  for (auto _ : state) {
    auto alloc = first_fit_allocate(apps);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(bm_first_fit_allocate);

void bm_max_wait_fixed_point(benchmark::State& state) {
  auto apps = paper_apps(false);
  sort_by_priority(apps);
  for (auto _ : state) {
    auto k = max_wait_fixed_point(apps, apps.size() - 1);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(bm_max_wait_fixed_point);

}  // namespace

int main(int argc, char** argv) {
  print_allocation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
