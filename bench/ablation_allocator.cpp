// Ablation: allocation heuristic quality (DESIGN.md design-choice index).
//
// The paper uses first-fit because finding the optimal TT-slot allocation
// is NP-hard.  This bench certifies that first-fit is OPTIMAL on the
// case study (the exact branch-and-bound search also returns 3 slots) and
// quantifies the heuristic gap on random instances: first-fit vs best-fit
// vs the exact optimum.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/slot_allocation.hpp"
#include "plants/table1.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

std::vector<AppSchedParams> paper_apps() {
  std::vector<AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    app.model = std::make_shared<NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p, row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

std::vector<AppSchedParams> random_apps(Rng& rng, int n) {
  std::vector<AppSchedParams> apps;
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(0.3, 1.5);
    const double xi_m = xi_tt * rng.uniform(1.0, 1.8);
    const double xi_et = xi_m + rng.uniform(2.0, 6.0);
    const double k_p = rng.uniform(0.05, 0.4) * xi_et;
    const double r = xi_m * rng.uniform(6.0, 30.0);
    const double deadline = std::min(r, rng.uniform(0.6, 1.0) * xi_et);
    AppSchedParams app;
    app.name = "A" + std::to_string(i);
    app.min_inter_arrival = r;
    app.deadline = deadline;
    app.model = std::make_shared<NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

void print_ablation() {
  std::printf("== Ablation: first-fit vs best-fit vs exact optimum ==\n\n");

  // Case study certification.
  const auto apps = paper_apps();
  const auto ff = first_fit_allocate(apps).slot_count();
  const auto bf = best_fit_allocate(apps).slot_count();
  const auto opt = optimal_allocate(apps).slot_count();
  std::printf("Table I case study: first-fit %zu, best-fit %zu, optimum %zu "
              "(the paper's heuristic is optimal here)\n\n",
              ff, bf, opt);

  // Random-instance campaign.
  Rng rng(424242);
  const int trials = 120;
  int ff_total = 0, bf_total = 0, opt_total = 0, usable = 0;
  int ff_optimal = 0, bf_optimal = 0;
  for (int t = 0; t < trials; ++t) {
    auto set = random_apps(rng, rng.uniform_int(3, 7));
    try {
      const auto a = first_fit_allocate(set).slot_count();
      const auto b = best_fit_allocate(set).slot_count();
      const auto c = optimal_allocate(set).slot_count();
      ff_total += static_cast<int>(a);
      bf_total += static_cast<int>(b);
      opt_total += static_cast<int>(c);
      if (a == c) ++ff_optimal;
      if (b == c) ++bf_optimal;
      ++usable;
    } catch (const InfeasibleError&) {
      // Instance infeasible on dedicated slots; not a heuristic question.
    }
  }

  TextTable table({"allocator", "avg slots", "optimal in"});
  table.add_row({"first-fit (paper)",
                 format_fixed(static_cast<double>(ff_total) / usable, 3),
                 format_fixed(100.0 * ff_optimal / usable, 1) + "%"});
  table.add_row({"best-fit", format_fixed(static_cast<double>(bf_total) / usable, 3),
                 format_fixed(100.0 * bf_optimal / usable, 1) + "%"});
  table.add_row({"exact optimum", format_fixed(static_cast<double>(opt_total) / usable, 3),
                 "100.0%"});
  std::printf("%d random instances (%d feasible):\n%s\n", trials, usable,
              table.render().c_str());
}

void bm_first_fit(benchmark::State& state) {
  const auto apps = paper_apps();
  for (auto _ : state) benchmark::DoNotOptimize(first_fit_allocate(apps));
}
BENCHMARK(bm_first_fit);

void bm_best_fit(benchmark::State& state) {
  const auto apps = paper_apps();
  for (auto _ : state) benchmark::DoNotOptimize(best_fit_allocate(apps));
}
BENCHMARK(bm_best_fit);

void bm_optimal(benchmark::State& state) {
  const auto apps = paper_apps();
  for (auto _ : state) benchmark::DoNotOptimize(optimal_allocate(apps));
}
BENCHMARK(bm_optimal);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
