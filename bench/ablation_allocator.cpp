// Microbenchmarks for the three allocators, through the same entry points
// the experiments use (first_fit_allocate / best_fit_allocate /
// optimal_allocate), plus the frozen pre-optimization branch-and-bound
// (optimal_allocate_reference) so the speedup of the pruned search stays
// measurable.  The heuristic-quality campaign itself is produced by
// `cps_run ablation_allocator` (src/experiments/ablation_allocator.cpp).
//
// Branch-and-bound iterations are timed manually on
// std::chrono::steady_clock (monotonic) and reported as ns/op.
#include "bench_common.hpp"

#include <chrono>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void bm_first_fit(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) benchmark::DoNotOptimize(first_fit_allocate(apps));
}
BENCHMARK(bm_first_fit)->Unit(benchmark::kNanosecond);

void bm_best_fit(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) benchmark::DoNotOptimize(best_fit_allocate(apps));
}
BENCHMARK(bm_best_fit)->Unit(benchmark::kNanosecond);

template <typename Alloc>
void time_exact(benchmark::State& state, Alloc alloc, int n_random) {
  // n_random == 0 benches the paper's six-app Table I case study;
  // otherwise a fixed random instance of that size (seeded, so both exact
  // searches solve the identical instance).
  std::vector<AppSchedParams> apps;
  if (n_random == 0) {
    apps = experiments::paper_sched_params(false);
  } else {
    Rng rng(0x5EED5EEDULL);
    apps = experiments::random_sched_params(rng, n_random,
                                            experiments::allocator_ablation_ranges());
  }
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto alloc_result = alloc(apps, AllocationOptions{}, 12);
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    benchmark::DoNotOptimize(alloc_result);
  }
}

void bm_optimal(benchmark::State& state) { time_exact(state, optimal_allocate, 0); }
BENCHMARK(bm_optimal)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_optimal_reference(benchmark::State& state) {
  time_exact(state, optimal_allocate_reference, 0);
}
BENCHMARK(bm_optimal_reference)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_optimal_n10(benchmark::State& state) { time_exact(state, optimal_allocate, 10); }
BENCHMARK(bm_optimal_n10)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_optimal_reference_n10(benchmark::State& state) {
  time_exact(state, optimal_allocate_reference, 10);
}
BENCHMARK(bm_optimal_reference_n10)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_optimal_n12(benchmark::State& state) { time_exact(state, optimal_allocate, 12); }
BENCHMARK(bm_optimal_n12)->UseManualTime()->Unit(benchmark::kNanosecond);

void bm_optimal_reference_n12(benchmark::State& state) {
  time_exact(state, optimal_allocate_reference, 12);
}
BENCHMARK(bm_optimal_reference_n12)->UseManualTime()->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
