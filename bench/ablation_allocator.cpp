// Microbenchmarks for the three allocators on the Table I case study.
// The heuristic-quality campaign itself is produced by
// `cps_run ablation_allocator` (src/experiments/ablation_allocator.cpp).
#include <benchmark/benchmark.h>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void bm_first_fit(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) benchmark::DoNotOptimize(first_fit_allocate(apps));
}
BENCHMARK(bm_first_fit);

void bm_best_fit(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) benchmark::DoNotOptimize(best_fit_allocate(apps));
}
BENCHMARK(bm_best_fit);

void bm_optimal(benchmark::State& state) {
  const auto apps = experiments::paper_sched_params(false);
  for (auto _ : state) benchmark::DoNotOptimize(optimal_allocate(apps));
}
BENCHMARK(bm_optimal);

}  // namespace

BENCHMARK_MAIN();
