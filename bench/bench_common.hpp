// Shared main() for the Google-Benchmark executables: BENCHMARK_MAIN()
// plus the project context every recorded JSON must carry —
// cps_simd_width / cps_simd_isa identify the batched-SIMD configuration
// the numbers were measured under, so tools/bench_compare.py can refuse
// to diff runs from different lane widths (mirroring the
// cps_library_build_type field CI injects via --benchmark_context).
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "linalg/simd_batch.hpp"

#define CPS_BENCHMARK_MAIN()                                                    \
  int main(int argc, char** argv) {                                             \
    benchmark::AddCustomContext("cps_simd_width",                               \
                                std::to_string(cps::linalg::kSimdWidth));       \
    benchmark::AddCustomContext("cps_simd_isa", cps::linalg::simd_isa_name());  \
    benchmark::Initialize(&argc, argv);                                         \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;           \
    benchmark::RunSpecifiedBenchmarks();                                        \
    benchmark::Shutdown();                                                      \
    return 0;                                                                   \
  }
