// Microbenchmarks for the Figure 4 fitting kernels.  The figure itself is
// produced by `cps_run fig4` (src/experiments/fig4_models.cpp).
#include "bench_common.hpp"

#include "analysis/dwell_wait_model.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

void bm_fit_non_monotonic(benchmark::State& state) {
  const auto curve = experiments::measure_servo_curve();
  for (auto _ : state) {
    auto model = NonMonotonicModel::fit(*curve);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(bm_fit_non_monotonic)->Unit(benchmark::kNanosecond);

void bm_fit_concave_hull(benchmark::State& state) {
  const auto curve = experiments::measure_servo_curve();
  for (auto _ : state) {
    ConcaveEnvelopeModel model(*curve);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(bm_fit_concave_hull)->Unit(benchmark::kNanosecond);

}  // namespace

CPS_BENCHMARK_MAIN();
