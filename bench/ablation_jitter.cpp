// Ablation: worst-case-delay controller design vs. actual bus jitter.
//
// The ET-mode controller is designed for the worst-case dynamic-segment
// delay (Section II-B).  On the bus the delay varies per sample.  This
// bench runs randomized jitter campaigns on the servo's ET loop and
// compares the settle-time distribution with the constant-worst-case
// design point, plus the transient-growth implications for slot-release
// chattering (analysis/transient.hpp).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/transient.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "sim/settling.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

void print_ablation() {
  std::printf("== Ablation: worst-case ET design vs actual delay jitter (servo) ==\n\n");

  const plants::ServoExperiment exp;
  const auto plant = plants::make_servo_motor();
  const auto design = plants::design_servo_loops();
  const auto z0 = plants::servo_disturbed_state(exp);

  // Constant worst-case reference (the design point).
  sim::SettlingOptions settle_opts;
  settle_opts.threshold = exp.threshold;
  const auto wc_settle = sim::settling_step(design.a_et, z0, 2, settle_opts);
  const double wc_seconds =
      wc_settle ? static_cast<double>(*wc_settle) * exp.sampling_period : -1.0;

  TextTable table({"delay scenario", "mean settle [s]", "worst [s]", "best [s]"});
  table.add_row({"constant worst case (design)", format_fixed(wc_seconds, 2),
                 format_fixed(wc_seconds, 2), format_fixed(wc_seconds, 2)});

  struct Scenario {
    const char* label;
    std::vector<double> delays;
  };
  const Scenario scenarios[] = {
      {"uniform jitter in {0 .. d_max}", {0.0, 0.005, 0.010, 0.015, exp.delay_et}},
      {"mild jitter in {d_max/2 .. d_max}", {0.010, 0.015, exp.delay_et}},
      {"mostly fresh (ideal bus)", {0.0, 0.001, 0.002}},
  };
  for (const auto& scenario : scenarios) {
    const sim::JitteryClosedLoop loop(plant, exp.sampling_period, scenario.delays,
                                      design.gain_et);
    Rng rng(987654321);
    const auto result =
        sim::run_jitter_campaign(loop, z0, exp.threshold, exp.sampling_period, 500, rng);
    table.add_row({scenario.label, format_fixed(result.mean_settle_s, 2),
                   format_fixed(result.worst_settle_s, 2),
                   format_fixed(result.best_settle_s, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto growth = analysis::transient_growth_restricted(design.a_et, design.state_dim);
  std::printf("ET-loop plant-state transient growth: gamma = %.2f at step %zu "
              "(= %.2f s; drives the Fig. 3 non-monotonicity)\n",
              growth.peak_gain, growth.peak_step,
              static_cast<double>(growth.peak_step) * exp.sampling_period);
  std::printf("steady-state excursion bound after slot release at E_th: %.3f "
              "(excursions possible iff > E_th = %.1f)\n\n",
              analysis::excursion_bound(growth, exp.threshold), exp.threshold);
  std::printf("reading: actual (jittery) delays settle at or faster than the constant\n"
              "worst case the controller was designed for — the design assumption is\n"
              "conservative on the real bus, as the paper requires.\n\n");
}

void bm_jitter_campaign(benchmark::State& state) {
  const plants::ServoExperiment exp;
  const auto plant = plants::make_servo_motor();
  const auto design = plants::design_servo_loops();
  const auto z0 = plants::servo_disturbed_state(exp);
  const sim::JitteryClosedLoop loop(plant, exp.sampling_period,
                                    {0.0, 0.005, 0.010, 0.015, exp.delay_et}, design.gain_et);
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(
        sim::run_jitter_campaign(loop, z0, exp.threshold, exp.sampling_period, 20, rng));
  }
}
BENCHMARK(bm_jitter_campaign);

void bm_transient_growth(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  for (auto _ : state) benchmark::DoNotOptimize(analysis::transient_growth(design.a_et));
}
BENCHMARK(bm_transient_growth);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
