// Microbenchmarks for the jitter-campaign and transient-growth kernels.
// The jitter robustness comparison itself is produced by
// `cps_run ablation_jitter` (src/experiments/ablation_jitter.cpp).
#include "bench_common.hpp"

#include "analysis/transient.hpp"
#include "plants/servo_motor.hpp"
#include "sim/jitter.hpp"
#include "util/rng.hpp"

namespace {

using namespace cps;

void bm_jitter_campaign(benchmark::State& state) {
  const plants::ServoExperiment exp;
  const auto plant = plants::make_servo_motor();
  const auto design = plants::design_servo_loops();
  const auto z0 = plants::servo_disturbed_state(exp);
  const sim::JitteryClosedLoop loop(plant, exp.sampling_period,
                                    {0.0, 0.005, 0.010, 0.015, exp.delay_et}, design.gain_et);
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(
        sim::run_jitter_campaign(loop, z0, exp.threshold, exp.sampling_period, 20, rng));
  }
}
BENCHMARK(bm_jitter_campaign);

void bm_transient_growth(benchmark::State& state) {
  const auto design = plants::design_servo_loops();
  for (auto _ : state) benchmark::DoNotOptimize(analysis::transient_growth(design.a_et));
}
BENCHMARK(bm_transient_growth);

}  // namespace

CPS_BENCHMARK_MAIN();
