// Strong-scaling bench of the parallel exact slot allocator.
//
// Times two things on the fixed proving instances also used by the
// sweep_alloc_parallel experiment (src/experiments/sweep_alloc_parallel.cpp):
//
//  * alloc_parallel_n{18,20}_optimal_j1 — the full sequential
//    optimal_allocate wall-clock (setup + bound proving + witness), the
//    honest single-core baseline;
//  * alloc_parallel_n{18,20}_j{1,2,4,8}_critical_path — the wall-clock
//    the parallel decomposition reaches on j dedicated cores:
//    profile_exact_search times every frontier subtree task sequentially
//    (shared-incumbent updates in canonical order) and greedy list
//    scheduling computes the j-core makespan.  Like
//    bench/campaign_scaling.cpp's sharded critical paths, this is
//    core-count-independent and reproducible on the single-core CI
//    container; on real j-core hardware the threaded search approaches
//    these numbers (the incumbent then propagates asynchronously, which
//    can only prune earlier).
//
// Emits Google-Benchmark-compatible JSON on stdout (the fields
// bench_compare.py reads, including the library_build_type the debug-
// snapshot gate checks).  Each measurement repeats kIterations times and
// reports the minimum.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "linalg/simd_batch.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

constexpr int kIterations = 3;

/// The bench times the two largest of the shared proving instances
/// (experiments::alloc_proving_instances — same table the
/// sweep_alloc_parallel experiment runs).
constexpr int kMinBenchedN = 18;

constexpr int kJobSweep[] = {1, 2, 4, 8};

struct Result {
  std::string name;
  double seconds = 0.0;
};

std::vector<Result> g_results;

void record(const std::string& name, double seconds) {
  std::fprintf(stderr, "  %-44s %10.2f ms\n", name.c_str(), seconds * 1e3);
  g_results.push_back(Result{name, seconds});
}

}  // namespace

int main(int argc, char** argv) {
  // Google-Benchmark-style flags accepted for CI-invocation symmetry;
  // this bench always writes its JSON to stdout.
  (void)argc;
  (void)argv;

  for (const auto& inst : experiments::alloc_proving_instances()) {
    if (inst.n < kMinBenchedN) continue;
    const auto set = experiments::alloc_proving_params(inst);

    double sequential = 1e100;
    std::vector<double> critical(std::size(kJobSweep), 1e100);
    std::size_t optimal = 0, seed_slots = 0, tasks = 0;
    for (int iteration = 0; iteration < kIterations; ++iteration) {
      const auto start = std::chrono::steady_clock::now();
      const Allocation alloc = optimal_allocate(set);
      sequential = std::min(
          sequential,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());

      const ExactSearchProfile profile = profile_exact_search(set);
      if (profile.optimal_slots != alloc.slot_count()) {
        std::fprintf(stderr, "alloc_parallel: profile disagrees with optimal_allocate\n");
        return 1;
      }
      optimal = profile.optimal_slots;
      seed_slots = profile.seed_slots;
      tasks = profile.task_seconds.size();
      for (std::size_t j = 0; j < std::size(kJobSweep); ++j)
        critical[j] = std::min(critical[j], profile.critical_path_seconds(kJobSweep[j]));
    }

    const std::string prefix = "alloc_parallel_n" + std::to_string(inst.n);
    std::fprintf(stderr, "n=%d: first-fit %zu -> optimum %zu, %zu subtree tasks\n", inst.n,
                 seed_slots, optimal, tasks);
    record(prefix + "_optimal_j1", sequential);
    for (std::size_t j = 0; j < std::size(kJobSweep); ++j)
      record(prefix + "_j" + std::to_string(kJobSweep[j]) + "_critical_path", critical[j]);
    std::fprintf(stderr, "  j8-vs-j1 critical-path speedup: %.2fx\n\n",
                 critical[0] / critical[std::size(kJobSweep) - 1]);
  }

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  // Google-Benchmark-compatible JSON (the fields bench_compare.py reads;
  // this binary links no benchmark harness, so both build-type fields
  // mean the project library).
  std::printf("{\n  \"context\": {\"executable\": \"alloc_parallel\", "
              "\"library_build_type\": \"%s\", \"cps_library_build_type\": \"%s\", "
              "\"cps_simd_width\": \"%zu\", \"cps_simd_isa\": \"%s\"},\n",
              build_type, build_type, cps::linalg::kSimdWidth,
              cps::linalg::simd_isa_name());
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    std::printf("    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                "\"real_time\": %.3f, \"cpu_time\": %.3f, \"time_unit\": \"ms\"}%s\n",
                g_results[i].name.c_str(), g_results[i].seconds * 1e3,
                g_results[i].seconds * 1e3, i + 1 < g_results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
