// Microbenchmarks for the Figure 5 multi-application co-simulation.  The
// figure itself is produced by `cps_run fig5`
// (src/experiments/fig5_responses.cpp).
#include "bench_common.hpp"

#include "core/co_simulation.hpp"
#include "experiments/fixtures.hpp"

namespace {

using namespace cps;
using namespace cps::core;

void bm_cosim_six_apps(benchmark::State& state) {
  auto apps = experiments::build_paper_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  CoSimulator cosim(options);
  for (auto& app : apps)
    cosim.add_application(app, experiments::paper_slot_of(app.name()), {0.0});
  for (auto _ : state) {
    auto result = cosim.run();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cosim_six_apps);

void bm_cosim_without_bus(benchmark::State& state) {
  auto apps = experiments::build_paper_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  options.simulate_bus = false;
  CoSimulator cosim(options);
  for (auto& app : apps)
    cosim.add_application(app, experiments::paper_slot_of(app.name()), {0.0});
  for (auto _ : state) {
    auto result = cosim.run();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cosim_without_bus);

}  // namespace

CPS_BENCHMARK_MAIN();
