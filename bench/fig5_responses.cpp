// Reproduces paper Figure 5: the responses of all six applications with
// disturbances at t = 0, co-simulated over the FlexRay model with the
// 3-slot allocation (S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1}).
// Each panel shows ||x_i|| over time with the active communication mode
// (T = TT slot, e = ET segment) and the E_th threshold line; the verdict
// table confirms every application meets its deadline.
//
// Times the multi-application co-simulation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/co_simulation.hpp"
#include "core/report.hpp"
#include "plants/table1.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"

namespace {

using namespace cps;
using namespace cps::core;

std::vector<ControlApplication> build_fleet() {
  std::vector<ControlApplication> apps;
  for (const auto& item : plants::synthesize_fleet()) {
    auto design = control::design_hybrid_loops(item.plant, item.spec);
    TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    apps.emplace_back(item.target.name, std::move(design), req, item.x0);
  }
  return apps;
}

/// The paper's 3-slot allocation, applied to the synthesized plants.
std::size_t slot_of(const std::string& name) {
  if (name == "C3" || name == "C6") return 0;
  if (name == "C2" || name == "C4") return 1;
  return 2;  // C5, C1
}

void print_figure5() {
  auto apps = build_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  CoSimulator cosim(options);
  for (auto& app : apps) cosim.add_application(app, slot_of(app.name()), {0.0});
  const CoSimulationResult result = cosim.run();

  std::printf("== Figure 5: responses of all six applications, disturbances at t = 0 ==\n");
  std::printf("(3-slot allocation S1={C3,C6} S2={C2,C4} S3={C5,C1}; "
              "T = TT slot, e = ET segment)\n\n");
  for (const auto& app : result.apps)
    std::printf("%s\n", render_response_ascii(app, 0.1).c_str());

  std::printf("%s\n", render_slot_gantt(result).c_str());
  std::printf("%s\n", render_cosim(result).c_str());
  std::printf(">>> all deadlines met: %s (paper: yes)\n\n",
              result.all_deadlines_met ? "yes" : "NO");

  CsvWriter csv("fig5_responses.csv", {"app", "t_s", "norm", "mode"});
  for (const auto& app : result.apps) {
    for (std::size_t k = 0; k < app.trajectory.length(); ++k) {
      const auto& s = app.trajectory.at(k);
      csv.write_row(std::vector<std::string>{
          app.name, format_fixed(app.trajectory.time_at(k), 3), format_fixed(s.norm, 6),
          s.mode == sim::Mode::kTimeTriggered ? "TT" : "ET"});
    }
  }
  std::printf("full trajectories written to fig5_responses.csv\n\n");
}

void bm_cosim_six_apps(benchmark::State& state) {
  auto apps = build_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  CoSimulator cosim(options);
  for (auto& app : apps) cosim.add_application(app, slot_of(app.name()), {0.0});
  for (auto _ : state) {
    auto result = cosim.run();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cosim_six_apps);

void bm_cosim_without_bus(benchmark::State& state) {
  auto apps = build_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  options.simulate_bus = false;
  CoSimulator cosim(options);
  for (auto& app : apps) cosim.add_application(app, slot_of(app.name()), {0.0});
  for (auto _ : state) {
    auto result = cosim.run();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_cosim_without_bus);

}  // namespace

int main(int argc, char** argv) {
  print_figure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
