#include "serve/queries.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "analysis/schedulability.hpp"
#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "plants/fleet_synthesis.hpp"
#include "util/error.hpp"

namespace cps::serve {

namespace {

void check_cancel(const QueryContext& context, const char* what) {
  if (context.cancel != nullptr && context.cancel->load(std::memory_order_relaxed))
    throw CancelledError(what);
}

analysis::MaxWaitMethod method_from(std::uint64_t method) {
  if (method == 0) return analysis::MaxWaitMethod::kClosedFormBound;
  if (method == 1) return analysis::MaxWaitMethod::kFixedPoint;
  throw InvalidArgument("method must be 0 (closed-form bound) or 1 (fixed point)");
}

plants::FleetSynthesisSpec to_spec(const FleetQuery& query) {
  plants::FleetSynthesisSpec spec;
  spec.n_apps = static_cast<std::size_t>(query.n_apps);
  spec.target_utilization = query.target_utilization;
  spec.max_app_utilization = query.max_app_utilization;
  spec.period_lo = query.period_lo;
  spec.period_hi = query.period_hi;
  spec.deadline_frac_lo = query.deadline_frac_lo;
  spec.deadline_frac_hi = query.deadline_frac_hi;
  return spec;  // families: generator default (all three, equal weight)
}

/// The warm fleet draw behind kAllocate / kSchedCheck: a one-trial batch
/// through the two-level FixtureCache, so repeated queries for the same
/// (spec, seed) hit memory and restarted daemons hit the store.
std::vector<analysis::AppSchedParams> fleet_params(const FleetQuery& query) {
  const auto batch = experiments::sched_fleet_batch(to_spec(query), 1, query.seed);
  return plants::to_sched_params(batch->front());
}

std::string handle_ping(util::BinaryReader& in, const QueryContext& context) {
  auto request = PingRequest::decode(in);
  // Sleep in small slices so a deadline can cut the wait short — this is
  // what makes the overload/deadline tests deterministic without leaning
  // on branch-and-bound runtimes.
  auto remaining = std::chrono::milliseconds(request.sleep_ms);
  while (remaining.count() > 0) {
    check_cancel(context, "ping: sleep cancelled");
    const auto slice = std::min(remaining, std::chrono::milliseconds(2));
    std::this_thread::sleep_for(slice);
    remaining -= slice;
  }
  check_cancel(context, "ping: sleep cancelled");
  util::BinaryWriter out;
  request.encode(out);
  return out.take();
}

std::string handle_curve(util::BinaryReader& in) {
  in.expect_end();  // kCurve takes no parameters
  const auto curve = experiments::measure_servo_curve();
  CurveResponse response;
  response.sampling_period = curve->sampling_period();
  response.xi_tt = curve->xi_tt();
  response.xi_et = curve->xi_et();
  response.xi_m = curve->xi_m();
  response.k_p = curve->k_p();
  response.n_points = curve->points().size();
  util::BinaryWriter out;
  response.encode(out);
  return out.take();
}

std::string handle_loop_design(util::BinaryReader& in) {
  const auto request = LoopDesignRequest::decode(in);
  const auto index = static_cast<std::size_t>(request.app_index);
  const auto fleet = experiments::paper_fleet();
  CPS_ENSURE(index < fleet->size(), "loop_design: app_index past the paper fleet");
  const auto design = experiments::paper_loop_design(index);
  LoopDesignResponse response;
  response.name = (*fleet)[index].target.name;
  response.rho_tt = design->rho_tt;
  response.rho_et = design->rho_et;
  response.state_dim = design->state_dim;
  response.input_dim = design->input_dim;
  util::BinaryWriter out;
  response.encode(out);
  return out.take();
}

std::string handle_allocate(util::BinaryReader& in, const QueryContext& context) {
  const auto request = AllocateRequest::decode(in);
  analysis::AllocationOptions options;
  options.method = method_from(request.method);
  options.max_slots = static_cast<std::size_t>(request.max_slots);
  options.cancel = context.cancel;
  auto params = fleet_params(request.fleet);
  check_cancel(context, "allocate: cancelled before the allocator ran");

  AllocateResponse response;
  try {
    analysis::Allocation allocation;
    switch (static_cast<AllocatorKind>(request.allocator)) {
      case AllocatorKind::kFirstFit:
        allocation = analysis::first_fit_allocate(std::move(params), options);
        break;
      case AllocatorKind::kBestFit:
        allocation = analysis::best_fit_allocate(std::move(params), options);
        break;
      case AllocatorKind::kExact:
        allocation = analysis::optimal_allocate(std::move(params), options);
        break;
      default:
        throw InvalidArgument("allocator must be 0 (ff), 1 (bf) or 2 (exact)");
    }
    response.slot_count = allocation.slot_count();
    response.slots = allocation.slots;
    response.all_schedulable = 1;
    for (const auto& slot_verdict : allocation.analyses)
      if (!slot_verdict.all_schedulable) response.all_schedulable = 0;
  } catch (const InfeasibleError&) {
    // A domain answer (the fleet cannot fit max_slots), not a failure.
    response.feasible = 0;
    response.slot_count = 0;
    response.all_schedulable = 0;
    response.slots.clear();
  }
  util::BinaryWriter out;
  response.encode(out);
  return out.take();
}

std::string handle_sched_check(util::BinaryReader& in, const QueryContext& context) {
  const auto request = SchedCheckRequest::decode(in);
  const auto method = method_from(request.method);
  auto params = fleet_params(request.fleet);
  check_cancel(context, "sched_check: cancelled before the analysis ran");
  const auto verdict = analysis::analyze_slot(std::move(params), method);
  SchedCheckResponse response;
  response.all_schedulable = verdict.all_schedulable ? 1 : 0;
  response.apps.reserve(verdict.results.size());
  for (const auto& result : verdict.results) {
    SchedCheckResponse::App app;
    app.name = result.name;
    app.response = result.response;
    app.deadline = result.deadline;
    app.schedulable = result.schedulable ? 1 : 0;
    response.apps.push_back(std::move(app));
  }
  util::BinaryWriter out;
  response.encode(out);
  return out.take();
}

std::string handle_stats(util::BinaryReader& in, const QueryContext& context) {
  in.expect_end();  // kStats takes no parameters
  StatsResponse response;
  if (context.stats) response.counters = context.stats();
  util::BinaryWriter out;
  response.encode(out);
  return out.take();
}

QueryResult error_result(Status status, const std::string& what) {
  util::BinaryWriter out;
  out.write_string(what);
  return QueryResult{status, out.take()};
}

}  // namespace

void PingRequest::encode(util::BinaryWriter& out) const {
  out.write_string(echo);
  out.write_u64(sleep_ms);
}

PingRequest PingRequest::decode(util::BinaryReader& in) {
  PingRequest request;
  request.echo = in.read_string();
  request.sleep_ms = in.read_u64();
  in.expect_end();
  return request;
}

void CurveResponse::encode(util::BinaryWriter& out) const {
  out.write_double(sampling_period);
  out.write_double(xi_tt);
  out.write_double(xi_et);
  out.write_double(xi_m);
  out.write_double(k_p);
  out.write_u64(n_points);
}

CurveResponse CurveResponse::decode(util::BinaryReader& in) {
  CurveResponse response;
  response.sampling_period = in.read_double();
  response.xi_tt = in.read_double();
  response.xi_et = in.read_double();
  response.xi_m = in.read_double();
  response.k_p = in.read_double();
  response.n_points = in.read_u64();
  in.expect_end();
  return response;
}

void LoopDesignRequest::encode(util::BinaryWriter& out) const {
  out.write_u64(app_index);
}

LoopDesignRequest LoopDesignRequest::decode(util::BinaryReader& in) {
  LoopDesignRequest request;
  request.app_index = in.read_u64();
  in.expect_end();
  return request;
}

void LoopDesignResponse::encode(util::BinaryWriter& out) const {
  out.write_string(name);
  out.write_double(rho_tt);
  out.write_double(rho_et);
  out.write_u64(state_dim);
  out.write_u64(input_dim);
}

LoopDesignResponse LoopDesignResponse::decode(util::BinaryReader& in) {
  LoopDesignResponse response;
  response.name = in.read_string();
  response.rho_tt = in.read_double();
  response.rho_et = in.read_double();
  response.state_dim = in.read_u64();
  response.input_dim = in.read_u64();
  in.expect_end();
  return response;
}

void FleetQuery::encode(util::BinaryWriter& out) const {
  out.write_u64(n_apps);
  out.write_double(target_utilization);
  out.write_double(max_app_utilization);
  out.write_double(period_lo);
  out.write_double(period_hi);
  out.write_double(deadline_frac_lo);
  out.write_double(deadline_frac_hi);
  out.write_u64(seed);
}

FleetQuery FleetQuery::decode(util::BinaryReader& in) {
  FleetQuery query;
  query.n_apps = in.read_u64();
  query.target_utilization = in.read_double();
  query.max_app_utilization = in.read_double();
  query.period_lo = in.read_double();
  query.period_hi = in.read_double();
  query.deadline_frac_lo = in.read_double();
  query.deadline_frac_hi = in.read_double();
  query.seed = in.read_u64();
  return query;
}

void AllocateRequest::encode(util::BinaryWriter& out) const {
  fleet.encode(out);
  out.write_u64(allocator);
  out.write_u64(method);
  out.write_u64(max_slots);
}

AllocateRequest AllocateRequest::decode(util::BinaryReader& in) {
  AllocateRequest request;
  request.fleet = FleetQuery::decode(in);
  request.allocator = in.read_u64();
  request.method = in.read_u64();
  request.max_slots = in.read_u64();
  in.expect_end();
  return request;
}

void AllocateResponse::encode(util::BinaryWriter& out) const {
  out.write_u64(feasible);
  out.write_u64(slot_count);
  out.write_u64(all_schedulable);
  out.write_u64(slots.size());
  for (const auto& slot : slots) {
    out.write_u64(slot.size());
    for (const auto& name : slot) out.write_string(name);
  }
}

AllocateResponse AllocateResponse::decode(util::BinaryReader& in) {
  AllocateResponse response;
  response.feasible = in.read_u64();
  response.slot_count = in.read_u64();
  response.all_schedulable = in.read_u64();
  const auto n_slots = in.read_u64();
  response.slots.resize(static_cast<std::size_t>(n_slots));
  for (auto& slot : response.slots) {
    const auto n_apps = in.read_u64();
    slot.reserve(static_cast<std::size_t>(n_apps));
    for (std::uint64_t i = 0; i < n_apps; ++i) slot.push_back(in.read_string());
  }
  in.expect_end();
  return response;
}

void SchedCheckRequest::encode(util::BinaryWriter& out) const {
  fleet.encode(out);
  out.write_u64(method);
}

SchedCheckRequest SchedCheckRequest::decode(util::BinaryReader& in) {
  SchedCheckRequest request;
  request.fleet = FleetQuery::decode(in);
  request.method = in.read_u64();
  in.expect_end();
  return request;
}

void SchedCheckResponse::encode(util::BinaryWriter& out) const {
  out.write_u64(all_schedulable);
  out.write_u64(apps.size());
  for (const auto& app : apps) {
    out.write_string(app.name);
    out.write_double(app.response);
    out.write_double(app.deadline);
    out.write_u64(app.schedulable);
  }
}

SchedCheckResponse SchedCheckResponse::decode(util::BinaryReader& in) {
  SchedCheckResponse response;
  response.all_schedulable = in.read_u64();
  const auto n_apps = in.read_u64();
  response.apps.reserve(static_cast<std::size_t>(n_apps));
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    SchedCheckResponse::App app;
    app.name = in.read_string();
    app.response = in.read_double();
    app.deadline = in.read_double();
    app.schedulable = in.read_u64();
    response.apps.push_back(std::move(app));
  }
  in.expect_end();
  return response;
}

void StatsResponse::encode(util::BinaryWriter& out) const {
  out.write_u64(counters.size());
  for (const auto& [name, value] : counters) {
    out.write_string(name);
    out.write_u64(value);
  }
}

StatsResponse StatsResponse::decode(util::BinaryReader& in) {
  StatsResponse response;
  const auto n = in.read_u64();
  response.counters.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto name = in.read_string();
    const auto value = in.read_u64();
    response.counters.emplace_back(std::move(name), value);
  }
  in.expect_end();
  return response;
}

QueryResult dispatch(Opcode opcode, std::string_view payload, const QueryContext& context) {
  try {
    util::BinaryReader in(payload);
    std::string response;
    switch (opcode) {
      case Opcode::kPing: response = handle_ping(in, context); break;
      case Opcode::kCurve: response = handle_curve(in); break;
      case Opcode::kLoopDesign: response = handle_loop_design(in); break;
      case Opcode::kAllocate: response = handle_allocate(in, context); break;
      case Opcode::kSchedCheck: response = handle_sched_check(in, context); break;
      case Opcode::kStats: response = handle_stats(in, context); break;
      default:
        return error_result(Status::kBadRequest,
                            "unknown opcode " +
                                std::to_string(static_cast<unsigned>(opcode)));
    }
    return QueryResult{Status::kOk, std::move(response)};
  } catch (const CancelledError& error) {
    return error_result(Status::kDeadlineExceeded, error.what());
  } catch (const util::SerializeError& error) {
    return error_result(Status::kBadRequest, std::string("undecodable payload: ") + error.what());
  } catch (const InvalidArgument& error) {
    return error_result(Status::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return error_result(Status::kInternalError, error.what());
  }
}

std::string decode_error_payload(std::string_view payload) {
  try {
    util::BinaryReader in(payload);
    auto text = in.read_string();
    in.expect_end();
    return text;
  } catch (const util::SerializeError&) {
    return std::string(payload);  // best effort for malformed error frames
  }
}

}  // namespace cps::serve
