#include "serve/client.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace cps::serve {

QueryClient::QueryClient(ClientOptions options) : timeout_ms_(options.timeout_ms) {
  if (options.tcp_port > 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CPS_ENSURE(fd_ >= 0, "cps_query: socket(AF_INET) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      throw Error("cps_query: cannot connect to 127.0.0.1:" +
                  std::to_string(options.tcp_port) + ": " + std::strerror(saved));
    }
  } else {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CPS_ENSURE(fd_ >= 0, "cps_query: socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CPS_ENSURE(options.socket_path.size() < sizeof(addr.sun_path),
               "cps_query: socket path too long for AF_UNIX");
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      throw Error("cps_query: cannot connect to " + options.socket_path + ": " +
                  std::strerror(saved));
    }
  }
}

QueryClient::~QueryClient() {
  if (fd_ >= 0) ::close(fd_);
}

void QueryClient::send_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms_);
    if (ready == 0) throw Error("cps_query: send timed out");
    if (ready < 0 && errno != EINTR)
      throw Error(std::string("cps_query: poll(send) failed: ") + std::strerror(errno));
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw Error(std::string("cps_query: send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void QueryClient::recv_all(char* data, std::size_t size) {
  std::size_t received = 0;
  while (received < size) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms_);
    if (ready == 0) throw Error("cps_query: receive timed out");
    if (ready < 0 && errno != EINTR)
      throw Error(std::string("cps_query: poll(recv) failed: ") + std::strerror(errno));
    const ssize_t n = ::read(fd_, data + received, size - received);
    if (n == 0) throw Error("cps_query: server closed the connection mid-frame");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw Error(std::string("cps_query: read failed: ") + std::strerror(errno));
    }
    received += static_cast<std::size_t>(n);
  }
}

Reply QueryClient::call(Opcode opcode, std::string_view payload,
                        std::uint32_t deadline_ms) {
  FrameHeader request;
  request.kind = static_cast<std::uint16_t>(opcode);
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  const std::string frame = encode_frame(request, payload);
  send_all(frame.data(), frame.size());

  char header_bytes[kHeaderSize];
  recv_all(header_bytes, kHeaderSize);
  Reply reply;
  const HeaderError framing = decode_header(
      std::string_view(header_bytes, kHeaderSize), kMaxPayloadBytes, reply.header);
  if (framing == HeaderError::kBadMagic)
    throw Error("cps_query: response is not a protocol frame");
  if (framing == HeaderError::kOversizedPayload)
    throw Error("cps_query: response payload exceeds the protocol cap");
  if (framing == HeaderError::kBadVersion)
    throw Error("cps_query: response speaks protocol version " +
                std::to_string(reply.header.version) + ", client speaks " +
                std::to_string(kProtocolVersion));
  if (reply.header.request_id != request.request_id)
    throw Error("cps_query: response request_id mismatch");
  reply.payload.resize(reply.header.payload_size);
  if (reply.header.payload_size > 0)
    recv_all(reply.payload.data(), reply.header.payload_size);
  return reply;
}

}  // namespace cps::serve
