#include "serve/protocol.hpp"

namespace cps::serve {

namespace {

void put_u16(std::uint16_t value, std::string& out) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void put_u32(std::uint32_t value, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void put_u64(std::uint64_t value, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

std::uint64_t get_le(const unsigned char* bytes, std::size_t count) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i)
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return value;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kInternalError: return "internal_error";
  }
  return "unknown";
}

void encode_header(const FrameHeader& header, std::string& out) {
  out.reserve(out.size() + kHeaderSize);
  put_u32(kMagic, out);
  put_u16(header.version, out);
  put_u16(header.kind, out);
  put_u64(header.request_id, out);
  put_u32(header.deadline_ms, out);
  put_u32(header.payload_size, out);
}

std::string encode_frame(const FrameHeader& header, std::string_view payload) {
  FrameHeader stamped = header;
  stamped.payload_size = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  encode_header(stamped, frame);
  frame.append(payload.data(), payload.size());
  return frame;
}

HeaderError decode_header(std::string_view bytes, std::uint32_t max_payload,
                          FrameHeader& header) {
  const auto* raw = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < kHeaderSize || get_le(raw, 4) != kMagic)
    return HeaderError::kBadMagic;
  header.version = static_cast<std::uint16_t>(get_le(raw + 4, 2));
  header.kind = static_cast<std::uint16_t>(get_le(raw + 6, 2));
  header.request_id = get_le(raw + 8, 8);
  header.deadline_ms = static_cast<std::uint32_t>(get_le(raw + 16, 4));
  header.payload_size = static_cast<std::uint32_t>(get_le(raw + 20, 4));
  // Size before version: an oversized frame must drop the connection
  // even when it also claims a wrong version, or a garbage client could
  // force the server to buffer max_payload bytes just to answer it.
  if (header.payload_size > max_payload) return HeaderError::kOversizedPayload;
  if (header.version != kProtocolVersion) return HeaderError::kBadVersion;
  return HeaderError::kNone;
}

}  // namespace cps::serve
