// The cps_serve wire protocol: small, length-prefixed, versioned binary
// frames on top of the util/serialize codecs.
//
// Every message — request or response — is one frame:
//
//   offset  size  field         notes
//   ------  ----  ------------  ------------------------------------------
//        0     4  magic         0x43505351 ("QSPC" on the wire, LE)
//        4     2  version       kProtocolVersion; mismatches are rejected
//                               with Status::kBadRequest before the
//                               payload is even read
//        6     2  kind          request: an Opcode; response: a Status
//        8     8  request_id    chosen by the client, echoed verbatim in
//                               the response (pipelining / load tools)
//       16     4  deadline_ms   request: per-request deadline budget in
//                               milliseconds, 0 = none; response: 0
//       20     4  payload_size  bytes following the header;
//                               > max_payload() is a framing error
//       24     -  payload       BinaryWriter-encoded, per-opcode layout
//                               (serve/queries.hpp)
//
// All integers little-endian regardless of host order (same convention
// as util/serialize.hpp).  The header is fixed-size so a reader can
// validate magic/version/size before committing any payload memory —
// that is what lets the server drop garbage and slow-loris clients
// cheaply: a bad magic or an oversized payload_size kills the
// connection without reading another byte.
//
// Error taxonomy on the response side (Status):
//   kOk                the payload is the query's answer
//   kBadRequest        undecodable payload, unknown opcode, or version
//                      skew; payload = one diagnostic string
//   kOverloaded        admission control shed the request (bounded queue
//                      full); payload = one diagnostic string.  The
//                      machine-readable retry signal — cps_query backs
//                      off (runtime/backoff.hpp) and retries on it
//   kDeadlineExceeded  the deadline_ms budget expired before (or while)
//                      the query ran; payload = one diagnostic string
//   kShuttingDown      the daemon is draining; payload = one string
//   kInternalError     the query threw; payload = one diagnostic string
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cps::serve {

/// First four bytes of every frame ("QSPC" on the wire).
inline constexpr std::uint32_t kMagic = 0x43505351u;

/// Bump on any header or payload layout change; the server answers a
/// mismatched frame with Status::kBadRequest naming both versions.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Fixed frame-header size in bytes.
inline constexpr std::size_t kHeaderSize = 24;

/// Hard cap on payload_size (requests and responses): frames beyond it
/// are a framing error and the connection is dropped.  Bounds per-
/// connection memory no matter what a client claims it will send.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// Request opcodes (header `kind` on the request side).
enum class Opcode : std::uint16_t {
  kPing = 1,        ///< liveness/latency probe; echoes its payload
  kCurve = 2,       ///< servo dwell/wait curve characteristics
  kLoopDesign = 3,  ///< hybrid loop design facts for one fleet app
  kAllocate = 4,    ///< ff/bf/exact slot allocation of a synthesized fleet
  kSchedCheck = 5,  ///< one-slot schedulability verdict of a fleet
  kStats = 6,       ///< server counters (admission, deadlines, cache)
};

/// Response statuses (header `kind` on the response side).
enum class Status : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kShuttingDown = 4,
  kInternalError = 5,
};

/// Stable lower-case name of a status ("ok", "overloaded", ...), for
/// logs and the cps_query output.
const char* status_name(Status status);

/// Decoded frame header (see the layout table above).
struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  std::uint16_t kind = 0;           ///< Opcode or Status
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t payload_size = 0;
};

/// Append the 24 header bytes for `header` to `out`.
void encode_header(const FrameHeader& header, std::string& out);

/// One whole frame: header bytes + payload.
std::string encode_frame(const FrameHeader& header, std::string_view payload);

/// Outcome of decode_header on exactly kHeaderSize bytes.
enum class HeaderError {
  kNone = 0,        ///< header decoded; version/size not yet judged
  kBadMagic,        ///< not a protocol frame: drop the connection
  kBadVersion,      ///< frame-shaped but wrong version: answer kBadRequest
  kOversizedPayload,  ///< payload_size > max payload: drop the connection
};

/// Decode `bytes` (which must hold >= kHeaderSize bytes) into `header`.
/// Never throws: framing errors are return values because they decide
/// connection fate, not exception flow.  `max_payload` caps
/// payload_size (pass kMaxPayloadBytes or a smaller server limit).
HeaderError decode_header(std::string_view bytes, std::uint32_t max_payload,
                          FrameHeader& header);

}  // namespace cps::serve
