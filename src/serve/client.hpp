// Blocking client for the cps_serve frame protocol: one connection, one
// outstanding request at a time (request_ids still increment, so a
// pipelining client could be built on the same frames).  Used by the
// cps_query CLI, the serve tests and bench/serve_qps.cpp.
//
// Transport errors (connect/read/write failures, timeouts, a server
// that closes mid-frame) throw cps::Error; protocol-level outcomes —
// kOverloaded sheds, kDeadlineExceeded, kBadRequest — are NOT errors
// here, they come back as the Reply status for the caller to act on
// (cps_query retries sheds with runtime/backoff.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace cps::serve {

/// Where and how to connect.
struct ClientOptions {
  /// Unix-domain socket path (used when tcp_port == 0).
  std::string socket_path;
  /// When > 0, connect to 127.0.0.1:tcp_port instead of the Unix socket.
  int tcp_port = 0;
  /// Transport timeout per send/receive (distinct from the per-request
  /// deadline_ms, which the SERVER enforces on the query itself).
  int timeout_ms = 10000;
};

/// One decoded response frame.
struct Reply {
  FrameHeader header;
  std::string payload;

  Status status() const { return static_cast<Status>(header.kind); }
  bool ok() const { return status() == Status::kOk; }
};

/// RAII connection to a cps_serve daemon.
class QueryClient {
 public:
  /// Connects immediately; throws cps::Error when the daemon is not
  /// reachable.
  explicit QueryClient(ClientOptions options);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Send one request and block for its response.  `deadline_ms` is the
  /// server-side budget stamped into the frame header (0 = none).
  Reply call(Opcode opcode, std::string_view payload, std::uint32_t deadline_ms = 0);

 private:
  void send_all(const char* data, std::size_t size);
  void recv_all(char* data, std::size_t size);

  int fd_ = -1;
  int timeout_ms_ = 10000;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace cps::serve
