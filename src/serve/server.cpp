#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "runtime/crash_point.hpp"
#include "runtime/fixture_cache.hpp"
#include "util/error.hpp"

namespace cps::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One admitted request travelling from the poll thread to a worker and
/// back.  The poll thread flips `cancel` when the deadline passes; the
/// handler observes it cooperatively.
struct Request {
  std::uint64_t conn_id = 0;
  FrameHeader header;  ///< request header; kind is the Opcode
  std::string payload;
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<bool> cancel{false};
};

/// One completed request on its way back to the poll thread.
struct Completion {
  std::uint64_t conn_id = 0;
  std::string frame;  ///< fully encoded response frame
};

/// Poll-thread-owned connection state.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string rbuf;           ///< bytes received, not yet parsed
  std::string wbuf;           ///< response bytes not yet written
  std::size_t woff = 0;       ///< wbuf bytes already written
  std::size_t inflight = 0;   ///< requests of this connection in the pool
  Clock::time_point last_activity;  ///< last successful read
  Clock::time_point write_since;    ///< wbuf has been non-empty since then
  bool dead = false;          ///< drop as soon as bookkeeping allows
};

std::string error_frame(const FrameHeader& request, Status status, const std::string& what) {
  util::BinaryWriter payload;
  payload.write_string(what);
  FrameHeader response;
  response.kind = static_cast<std::uint16_t>(status);
  response.request_id = request.request_id;
  return encode_frame(response, payload.bytes());
}

}  // namespace

std::vector<std::pair<std::string, std::uint64_t>> ServerStats::snapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> counters = {
      {"connections_accepted", connections_accepted.load()},
      {"connections_rejected", connections_rejected.load()},
      {"connections_dropped", connections_dropped.load()},
      {"requests_admitted", requests_admitted.load()},
      {"requests_shed", requests_shed.load()},
      {"requests_rejected_drain", requests_rejected_drain.load()},
      {"requests_completed", requests_completed.load()},
      {"deadline_expired", deadline_expired.load()},
      {"bad_frames", bad_frames.load()},
  };
  const auto cache = runtime::FixtureCache::instance().stats();
  counters.emplace_back("fixture_cache_hits", cache.hits);
  counters.emplace_back("fixture_cache_misses", cache.misses);
  counters.emplace_back("fixture_cache_entries", cache.entries);
  if (const auto store = runtime::FixtureCache::instance().store()) {
    const auto disk = store->stats();
    counters.emplace_back("fixture_store_disk_hits", disk.disk_hits);
    counters.emplace_back("fixture_store_disk_misses", disk.disk_misses);
    counters.emplace_back("fixture_store_writes", disk.writes);
    counters.emplace_back("fixture_store_invalid", disk.invalid);
  }
  return counters;
}

void Server::run() {
  CPS_ENSURE(!options_.socket_path.empty(), "cps_serve: a socket path is required");
  CPS_ENSURE(options_.workers >= 1, "cps_serve: workers must be >= 1");
  CPS_ENSURE(options_.max_queue >= 1, "cps_serve: max_queue must be >= 1");
  CPS_ENSURE(options_.max_payload <= kMaxPayloadBytes,
             "cps_serve: max_payload beyond the protocol cap");

  // --- listeners -------------------------------------------------------
  std::vector<int> listen_fds;
  const int unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CPS_ENSURE(unix_fd >= 0, "cps_serve: socket(AF_UNIX) failed");
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CPS_ENSURE(options_.socket_path.size() < sizeof(addr.sun_path),
               "cps_serve: socket path too long for AF_UNIX");
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    ::unlink(options_.socket_path.c_str());  // stale socket from a crash
    if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(unix_fd);
      throw Error("cps_serve: cannot bind " + options_.socket_path + ": " +
                  std::strerror(errno));
    }
    CPS_ENSURE(::listen(unix_fd, 64) == 0, "cps_serve: listen(unix) failed");
    set_nonblocking(unix_fd);
    listen_fds.push_back(unix_fd);
  }
  if (options_.tcp_port > 0) {
    const int tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    CPS_ENSURE(tcp_fd >= 0, "cps_serve: socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(tcp_fd);
      ::close(unix_fd);
      ::unlink(options_.socket_path.c_str());
      throw Error("cps_serve: cannot bind 127.0.0.1:" +
                  std::to_string(options_.tcp_port) + ": " + std::strerror(errno));
    }
    CPS_ENSURE(::listen(tcp_fd, 64) == 0, "cps_serve: listen(tcp) failed");
    set_nonblocking(tcp_fd);
    listen_fds.push_back(tcp_fd);
  }

  // --- self-pipe: workers wake the poll thread on completion ----------
  int wake_pipe[2] = {-1, -1};
  CPS_ENSURE(::pipe(wake_pipe) == 0, "cps_serve: pipe() failed");
  set_nonblocking(wake_pipe[0]);
  set_nonblocking(wake_pipe[1]);

  // --- shared worker state --------------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Request>> queue;
  std::vector<std::shared_ptr<Request>> inflight;  // queued or running
  std::vector<Completion> completions;
  bool stop_workers = false;

  const auto stats_fn = [this] { return stats_.snapshot(); };

  auto worker_main = [&] {
    for (;;) {
      std::shared_ptr<Request> request;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop_workers || !queue.empty(); });
        if (queue.empty()) return;  // stop requested and nothing left
        request = std::move(queue.front());
        queue.pop_front();
      }
      QueryResult result;
      if (request->cancel.load(std::memory_order_relaxed)) {
        // Deadline passed while queued: answer without running anything.
        util::BinaryWriter payload;
        payload.write_string("deadline expired before the query started");
        result = QueryResult{Status::kDeadlineExceeded, payload.take()};
      } else {
        QueryContext context;
        context.cancel = &request->cancel;
        context.stats = stats_fn;
        result = dispatch(static_cast<Opcode>(request->header.kind),
                          request->payload, context);
      }
      FrameHeader response;
      response.kind = static_cast<std::uint16_t>(result.status);
      response.request_id = request->header.request_id;
      Completion completion{request->conn_id, encode_frame(response, result.payload)};
      {
        std::lock_guard<std::mutex> lock(mu);
        completions.push_back(std::move(completion));
        inflight.erase(std::find(inflight.begin(), inflight.end(), request));
      }
      stats_.requests_completed.fetch_add(1, std::memory_order_relaxed);
      const char byte = 1;
      [[maybe_unused]] const auto n = ::write(wake_pipe[1], &byte, 1);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) workers.emplace_back(worker_main);

  // Sockets bound, workers running — the window a daemon can die in
  // before anyone could observe it (crash-restart tests kill here).
  runtime::crash_point("serve_ready");

  if (!options_.ready_file.empty()) {
    const std::string tmp = options_.ready_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fputs("ready\n", f);
      std::fclose(f);
      std::rename(tmp.c_str(), options_.ready_file.c_str());
    }
  }
  serving_.store(true, std::memory_order_release);

  // --- poll loop -------------------------------------------------------
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1;
  bool draining = false;

  const auto read_timeout = std::chrono::milliseconds(options_.read_timeout_ms);
  const auto write_timeout = std::chrono::milliseconds(options_.write_timeout_ms);
  const auto idle_timeout = std::chrono::milliseconds(options_.idle_timeout_ms);

  const auto drop_conn = [&](Conn& conn, bool count_drop) {
    if (conn.dead) return;
    conn.dead = true;
    ::close(conn.fd);
    conn.fd = -1;
    if (count_drop) stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
  };

  const auto enqueue_response = [](Conn& conn, std::string frame) {
    if (conn.wbuf.empty()) conn.write_since = Clock::now();
    conn.wbuf += frame;
  };

  // Parse every complete frame buffered on `conn`, admitting / shedding
  // each.  Returns false when the connection must be dropped (framing).
  const auto parse_frames = [&](Conn& conn) -> bool {
    for (;;) {
      if (conn.rbuf.size() < kHeaderSize) return true;
      FrameHeader header;
      const HeaderError framing = decode_header(conn.rbuf, options_.max_payload, header);
      if (framing == HeaderError::kBadMagic || framing == HeaderError::kOversizedPayload) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        return false;  // not (or no longer) speaking the protocol: drop
      }
      const std::size_t frame_size = kHeaderSize + header.payload_size;
      if (conn.rbuf.size() < frame_size) return true;  // wait for the rest
      std::string payload = conn.rbuf.substr(kHeaderSize, header.payload_size);
      conn.rbuf.erase(0, frame_size);

      if (framing == HeaderError::kBadVersion) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        enqueue_response(conn,
                         error_frame(header, Status::kBadRequest,
                                     "protocol version " + std::to_string(header.version) +
                                         ", server speaks " +
                                         std::to_string(kProtocolVersion)));
        continue;  // the frame was well-formed; the connection survives
      }
      if (draining) {
        stats_.requests_rejected_drain.fetch_add(1, std::memory_order_relaxed);
        enqueue_response(conn,
                         error_frame(header, Status::kShuttingDown, "server is draining"));
        continue;
      }
      std::unique_lock<std::mutex> lock(mu);
      if (queue.size() >= options_.max_queue) {
        lock.unlock();
        stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
        enqueue_response(conn,
                         error_frame(header, Status::kOverloaded,
                                     "admission queue full (" +
                                         std::to_string(options_.max_queue) +
                                         " pending); retry with backoff"));
        continue;
      }
      auto request = std::make_shared<Request>();
      request->conn_id = conn.id;
      request->header = header;
      request->payload = std::move(payload);
      if (header.deadline_ms > 0)
        request->deadline = Clock::now() + std::chrono::milliseconds(header.deadline_ms);
      // Count the admission BEFORE the worker can pop the request, so a
      // stats query never observes its own admission missing.
      stats_.requests_admitted.fetch_add(1, std::memory_order_relaxed);
      queue.push_back(request);
      inflight.push_back(std::move(request));
      lock.unlock();
      cv.notify_one();
      ++conn.inflight;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;  // parallel to pfds; null for non-conn fds

  for (;;) {
    // Drain trigger: external flag (signal handler) or request_drain().
    const bool want_drain =
        drain_requested_.load(std::memory_order_relaxed) ||
        (options_.drain_flag != nullptr && *options_.drain_flag != 0);
    if (want_drain && !draining) {
      draining = true;
      for (const int fd : listen_fds) ::close(fd);
      listen_fds.clear();
    }

    // Deliver completed responses into their connections' write buffers.
    {
      std::lock_guard<std::mutex> lock(mu);
      for (auto& completion : completions) {
        const auto it = conns.find(completion.conn_id);
        if (it == conns.end()) continue;
        Conn& conn = *it->second;
        --conn.inflight;
        if (conn.dead) continue;  // peer already gone: discard the frame
        if (conn.wbuf.empty()) conn.write_since = Clock::now();
        conn.wbuf += completion.frame;
      }
      completions.clear();
    }

    // Deadline scan: flip cancel flags; workers notice within a few
    // dozen search nodes (or at their next sleep slice).
    auto next_deadline = Clock::time_point::max();
    {
      const auto now = Clock::now();
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& request : inflight) {
        if (request->deadline == Clock::time_point::max()) continue;
        if (request->deadline <= now) {
          if (!request->cancel.exchange(true, std::memory_order_relaxed))
            stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          next_deadline = std::min(next_deadline, request->deadline);
        }
      }
    }

    // Connection timeouts.
    {
      const auto now = Clock::now();
      for (auto& [id, conn_ptr] : conns) {
        Conn& conn = *conn_ptr;
        if (conn.dead) continue;
        if (!conn.wbuf.empty() && now - conn.write_since > write_timeout) {
          drop_conn(conn, true);
        } else if (!conn.rbuf.empty() && now - conn.last_activity > read_timeout) {
          drop_conn(conn, true);  // slow-loris: frame started, never finished
        } else if (conn.rbuf.empty() && conn.wbuf.empty() && conn.inflight == 0 &&
                   now - conn.last_activity > idle_timeout) {
          drop_conn(conn, false);
        }
      }
    }
    for (auto it = conns.begin(); it != conns.end();) {
      // A dead connection lingers only until its in-pool requests drain
      // (their completions are discarded above via the dead check).
      if (it->second->dead && it->second->inflight == 0)
        it = conns.erase(it);
      else
        ++it;
    }

    // Drain completion: nothing queued, nothing running, all flushed.
    if (draining) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(mu);
        queue_empty = queue.empty() && inflight.empty();
      }
      bool flushed = true;
      for (const auto& [id, conn] : conns)
        if (!conn->dead && !conn->wbuf.empty()) flushed = false;
      if (queue_empty && flushed) break;
    }

    // Build the poll set.
    pfds.clear();
    pfd_conns.clear();
    for (const int fd : listen_fds) {
      pfds.push_back(pollfd{fd, POLLIN, 0});
      pfd_conns.push_back(nullptr);
    }
    pfds.push_back(pollfd{wake_pipe[0], POLLIN, 0});
    pfd_conns.push_back(nullptr);
    for (auto& [id, conn] : conns) {
      if (conn->dead) continue;
      short events = POLLIN;
      if (!conn->wbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
      pfd_conns.push_back(conn.get());
    }

    int timeout_ms = draining ? 20 : 100;
    if (next_deadline != Clock::time_point::max()) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             next_deadline - Clock::now())
                             .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(until, 1, timeout_ms));
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR)
      throw Error(std::string("cps_serve: poll() failed: ") + std::strerror(errno));
    if (ready <= 0) continue;

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& pfd = pfds[i];
      if (pfd.revents == 0) continue;

      if (pfd.fd == wake_pipe[0]) {
        char buf[256];
        while (::read(wake_pipe[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }

      if (pfd_conns[i] == nullptr) {  // a listener
        for (;;) {
          const int client = ::accept(pfd.fd, nullptr, nullptr);
          if (client < 0) break;
          if (conns.size() >= options_.max_connections) {
            stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
            ::close(client);
            continue;
          }
          set_nonblocking(client);
          auto conn = std::make_unique<Conn>();
          conn->fd = client;
          conn->id = next_conn_id++;
          conn->last_activity = Clock::now();
          stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
          conns.emplace(conn->id, std::move(conn));
        }
        continue;
      }

      Conn& conn = *pfd_conns[i];
      if (conn.dead) continue;

      if ((pfd.revents & (POLLERR | POLLNVAL)) ||
          ((pfd.revents & POLLHUP) && !(pfd.revents & POLLIN))) {
        // Peer vanished with nothing left to read.  A close right after
        // a write raises POLLIN|POLLHUP together — that case must go
        // through the read path below so the buffered bytes still get
        // their framing verdict.
        drop_conn(conn, false);
        continue;
      }
      if (pfd.revents & POLLIN) {
        char buf[kReadChunk];
        bool peer_gone = false;
        for (;;) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.rbuf.append(buf, static_cast<std::size_t>(n));
            conn.last_activity = Clock::now();
            if (conn.rbuf.size() > kReadChunk + options_.max_payload + kHeaderSize) break;
          } else if (n == 0) {
            peer_gone = true;  // orderly EOF
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
              peer_gone = true;
            break;
          }
        }
        // Parse BEFORE honoring an EOF: the peer may have written a
        // complete (or provably garbage) frame and closed in the same
        // instant, and framing verdicts must not depend on that timing.
        if (!parse_frames(conn))
          drop_conn(conn, true);
        else if (peer_gone)
          drop_conn(conn, false);
      }
      if (!conn.dead && (pfd.revents & POLLOUT) && !conn.wbuf.empty()) {
        const ssize_t n = ::write(conn.fd, conn.wbuf.data() + conn.woff,
                                  conn.wbuf.size() - conn.woff);
        if (n > 0) {
          conn.woff += static_cast<std::size_t>(n);
          if (conn.woff == conn.wbuf.size()) {
            conn.wbuf.clear();
            conn.woff = 0;
          } else {
            conn.write_since = Clock::now();
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          drop_conn(conn, false);
        }
      }
    }
  }

  // --- drain epilogue --------------------------------------------------
  // Accepting stopped, queue and in-flight empty, responses flushed; the
  // crash-restart tests SIGKILL inside this window.
  runtime::crash_point("serve_drain");

  {
    std::lock_guard<std::mutex> lock(mu);
    stop_workers = true;
  }
  cv.notify_all();
  for (auto& worker : workers) worker.join();

  for (auto& [id, conn] : conns)
    if (!conn->dead && conn->fd >= 0) ::close(conn->fd);
  conns.clear();
  for (const int fd : listen_fds) ::close(fd);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);
  ::unlink(options_.socket_path.c_str());
  if (!options_.ready_file.empty()) ::unlink(options_.ready_file.c_str());
  serving_.store(false, std::memory_order_release);
}

}  // namespace cps::serve
