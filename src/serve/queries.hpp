// The cps_serve query catalog: per-opcode payload layouts and the one
// dispatcher both the daemon and `cps_query --local` run.
//
// Every payload is encoded with util/serialize (exact IEEE-754 bit
// round-trips), and every handler is a pure function of its request
// payload plus the resident fixture state — so a response computed by
// the daemon is BYTE-IDENTICAL to one computed in-process by the same
// dispatcher (the CI lifecycle job `cmp`s exactly that).  The expensive
// inputs (servo curve, paper fleet, loop designs, synthesized fleets)
// come from the two-level runtime::FixtureCache, which is the point of
// a resident server: the first request pays the compute (or a store
// load), every later one is a memory lookup plus the query itself.
//
// Cancellation: handlers receive a cancel flag and poll it at their
// natural check points (the exact allocator's DFS via
// AllocationOptions::cancel, the ping sleep loop); observing it throws
// cps::CancelledError, which dispatch() maps to
// Status::kDeadlineExceeded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "util/serialize.hpp"

namespace cps::serve {

/// kPing request: echo plus an optional busy-wait, so load tests can
/// occupy a worker for a deterministic duration (the sleep polls the
/// cancel flag, so a deadline still cuts it short).
struct PingRequest {
  std::string echo;
  std::uint64_t sleep_ms = 0;

  void encode(util::BinaryWriter& out) const;
  static PingRequest decode(util::BinaryReader& in);
};

/// kCurve response: the characteristic values of the resident servo
/// dwell/wait curve (experiments::measure_servo_curve).
struct CurveResponse {
  double sampling_period = 0.0;
  double xi_tt = 0.0;
  double xi_et = 0.0;
  double xi_m = 0.0;
  double k_p = 0.0;
  std::uint64_t n_points = 0;

  void encode(util::BinaryWriter& out) const;
  static CurveResponse decode(util::BinaryReader& in);
};

/// kLoopDesign request: one paper-fleet application by synthesis index.
struct LoopDesignRequest {
  std::uint64_t app_index = 0;

  void encode(util::BinaryWriter& out) const;
  static LoopDesignRequest decode(util::BinaryReader& in);
};

/// kLoopDesign response: the design facts of the two-mode controller.
struct LoopDesignResponse {
  std::string name;
  double rho_tt = 0.0;  ///< TT closed-loop spectral radius
  double rho_et = 0.0;  ///< ET closed-loop spectral radius
  std::uint64_t state_dim = 0;
  std::uint64_t input_dim = 0;

  void encode(util::BinaryWriter& out) const;
  static LoopDesignResponse decode(util::BinaryReader& in);
};

/// The fleet a kAllocate / kSchedCheck query runs on: the PR-6
/// utilization-controlled generator's knobs plus a seed.  Drawn through
/// experiments::sched_fleet_batch (trials = 1), so the draw is cached in
/// memory AND in the persistent store — re-asking for the same fleet
/// never redraws it.
struct FleetQuery {
  std::uint64_t n_apps = 10;
  double target_utilization = 1.0;
  double max_app_utilization = 0.95;
  double period_lo = 3.0;
  double period_hi = 60.0;
  double deadline_frac_lo = 0.7;
  double deadline_frac_hi = 1.0;
  std::uint64_t seed = 1;

  void encode(util::BinaryWriter& out) const;
  static FleetQuery decode(util::BinaryReader& in);
};

/// Allocator selection for kAllocate.
enum class AllocatorKind : std::uint64_t {
  kFirstFit = 0,
  kBestFit = 1,
  kExact = 2,  ///< branch-and-bound; the deadline-cancellable path
};

/// kAllocate request.
struct AllocateRequest {
  FleetQuery fleet;
  std::uint64_t allocator = 0;  ///< AllocatorKind
  std::uint64_t method = 0;     ///< 0 closed-form bound, 1 exact fixed point
  std::uint64_t max_slots = 0;  ///< 0 = unlimited

  void encode(util::BinaryWriter& out) const;
  static AllocateRequest decode(util::BinaryReader& in);
};

/// kAllocate response.  `feasible` is 0 when the allocator proved the
/// fleet cannot fit max_slots (a domain answer, not an error).
struct AllocateResponse {
  std::uint64_t feasible = 1;
  std::uint64_t slot_count = 0;
  std::uint64_t all_schedulable = 0;
  std::vector<std::vector<std::string>> slots;  ///< app names per slot

  void encode(util::BinaryWriter& out) const;
  static AllocateResponse decode(util::BinaryReader& in);
};

/// kSchedCheck request: the schedulability verdict of the whole fleet
/// sharing ONE slot (the paper's analyze_slot on the full set).
struct SchedCheckRequest {
  FleetQuery fleet;
  std::uint64_t method = 0;  ///< 0 closed-form bound, 1 exact fixed point

  void encode(util::BinaryWriter& out) const;
  static SchedCheckRequest decode(util::BinaryReader& in);
};

/// kSchedCheck response: per-application outcomes in priority order.
struct SchedCheckResponse {
  struct App {
    std::string name;
    double response = 0.0;
    double deadline = 0.0;
    std::uint64_t schedulable = 0;
  };
  std::uint64_t all_schedulable = 0;
  std::vector<App> apps;

  void encode(util::BinaryWriter& out) const;
  static SchedCheckResponse decode(util::BinaryReader& in);
};

/// kStats response: named monotonic counters (the server's admission /
/// deadline / cache numbers).  A name list instead of a fixed struct so
/// the daemon can grow counters without a protocol bump.
struct StatsResponse {
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  void encode(util::BinaryWriter& out) const;
  static StatsResponse decode(util::BinaryReader& in);
};

/// What a handler needs beyond its payload.
struct QueryContext {
  /// Cooperative cancellation (deadline expiry / drain); may be null.
  const std::atomic<bool>* cancel = nullptr;
  /// Counter snapshot provider for kStats; empty = kStats answers with
  /// whatever the fixture cache alone can report.
  std::function<std::vector<std::pair<std::string, std::uint64_t>>()> stats;
};

/// Outcome of one dispatched request.
struct QueryResult {
  Status status = Status::kOk;
  std::string payload;  ///< per-opcode response on kOk, one string otherwise
};

/// Decode `payload`, run the opcode's handler, encode the response.
/// Never throws: decode failures and InvalidArgument map to kBadRequest,
/// CancelledError to kDeadlineExceeded, anything else to kInternalError
/// (each with a diagnostic-string payload).
QueryResult dispatch(Opcode opcode, std::string_view payload, const QueryContext& context);

/// The diagnostic string carried by every non-kOk payload.
std::string decode_error_payload(std::string_view payload);

}  // namespace cps::serve
