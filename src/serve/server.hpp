// The cps_serve daemon core: a resident query server over the frame
// protocol (serve/protocol.hpp) and query catalog (serve/queries.hpp).
//
// Architecture — one poll(2) thread owning every socket, plus a worker
// pool owning every query:
//
//   * the poll thread accepts connections (Unix-domain socket always,
//     loopback TCP optionally), parses frames, enforces per-connection
//     read/write/idle timeouts, runs admission control, stamps request
//     deadlines and flips their cancel flags when they expire, and
//     flushes response bytes;
//   * workers pop admitted requests off ONE bounded queue, run
//     serve::dispatch, and hand the encoded response frame back to the
//     poll thread through a completion list plus a self-pipe wakeup.
//
// Robustness contract (the reason this server exists):
//   * Admission control: the queue is bounded (`max_queue`); a request
//     arriving while it is full is answered immediately with
//     Status::kOverloaded — a machine-readable shed the client retries
//     on (runtime/backoff.hpp), never an unbounded latency cliff.
//   * Per-request deadlines: a request whose header carries deadline_ms
//     is cancelled cooperatively once the budget expires — the poll
//     thread flips its atomic flag, the handler (including the exact
//     allocator's branch-and-bound via AllocationOptions::cancel)
//     observes it within a few dozen search nodes and the client gets
//     Status::kDeadlineExceeded instead of starving a worker.
//   * Per-connection isolation: a slow-loris peer (header started, never
//     finished) trips the read timeout; a peer that stops draining its
//     responses trips the write timeout; a frame with a bad magic or an
//     oversized length drops THAT connection — other connections never
//     notice any of it.
//   * Graceful drain: when the drain flag rises (SIGTERM/SIGINT in the
//     daemon) the server stops accepting, answers new requests with
//     Status::kShuttingDown, lets in-flight ones finish or deadline out,
//     flushes every response, and returns from run() — exit 0, nothing
//     torn.  runtime::crash_point("serve_ready"/"serve_drain") instrument
//     the two windows the crash-restart tests kill.
#pragma once

#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/queries.hpp"

namespace cps::serve {

/// Server configuration (all knobs surfaced as cps_serve flags).
struct ServeOptions {
  /// Unix-domain socket path (required; ~100 char OS limit applies).
  std::string socket_path;
  /// Optional loopback TCP port; 0 = Unix socket only.
  int tcp_port = 0;
  /// Worker threads running queries.
  int workers = 2;
  /// Bounded request queue: admitted-but-not-started requests beyond
  /// this are shed with Status::kOverloaded.
  std::size_t max_queue = 64;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 64;
  /// Drop a connection whose started frame stays incomplete this long.
  int read_timeout_ms = 5000;
  /// Drop a connection that has not drained its responses for this long.
  int write_timeout_ms = 5000;
  /// Close a connection with no traffic and nothing pending after this.
  int idle_timeout_ms = 60000;
  /// Per-frame payload cap (<= kMaxPayloadBytes).
  std::uint32_t max_payload = kMaxPayloadBytes;
  /// Async-signal-safe drain trigger: the daemon's SIGTERM/SIGINT
  /// handler sets the pointee; the poll loop re-checks it at least every
  /// poll timeout.  May be null (then only request_drain() drains).
  const volatile std::sig_atomic_t* drain_flag = nullptr;
  /// When non-empty, this file is written (atomically) once the server
  /// is accepting — scripts poll for it instead of retrying connects.
  std::string ready_file;
};

/// Monotonic server counters, exported through Opcode::kStats and the
/// drain-time summary.  Plain atomics: single-writer poll thread for the
/// connection counters, any worker for the request ones.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};   ///< max_connections hit
  std::atomic<std::uint64_t> connections_dropped{0};    ///< framing/timeout kills
  std::atomic<std::uint64_t> requests_admitted{0};
  std::atomic<std::uint64_t> requests_shed{0};          ///< kOverloaded answers
  std::atomic<std::uint64_t> requests_rejected_drain{0};///< kShuttingDown answers
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> deadline_expired{0};       ///< cancel flags flipped
  std::atomic<std::uint64_t> bad_frames{0};             ///< version/decode rejects

  /// Snapshot as (name, value) pairs — the kStats payload — extended
  /// with the process fixture-cache and fixture-store counters so a
  /// client can watch the warm path getting warm.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
};

/// One server instance.  Construct, then run() on the serving thread;
/// run() blocks until a drain completes and is safe to call once.
class Server {
 public:
  explicit Server(ServeOptions options) : options_(std::move(options)) {}

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the sockets, spawn the workers, serve until drained.  Throws
  /// cps::Error when binding fails; after a successful bind it only
  /// returns through the drain path.
  void run();

  /// Programmatic drain trigger (tests, in-process benches): same
  /// semantics as the drain flag rising.
  void request_drain() { drain_requested_.store(true, std::memory_order_relaxed); }

  /// True from the moment the sockets are accepting (after the ready
  /// file, when one is configured) until run() returns.
  bool serving() const { return serving_.load(std::memory_order_acquire); }

  const ServerStats& stats() const { return stats_; }
  const ServeOptions& options() const { return options_; }

 private:
  ServeOptions options_;
  ServerStats stats_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> serving_{false};
};

}  // namespace cps::serve
