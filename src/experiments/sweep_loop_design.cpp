// Experiment "sweep_loop_design" — batch two-mode loop design across the
// synthesized Table I fleet (new workload, not a paper figure): every
// (application x repeat) grid cell runs the full design pipeline from
// scratch — c2d_pair discretization (shared e^{Ah} factorization, pushed
// through the SoA SIMD lanes of design_hybrid_loops_batch span by span),
// Ackermann pole placement on the augmented realizations, the
// spectral-radius stability audit, and the ET-loop transient-envelope
// audit (matrix powers on the worker's reusable TransientWorkspace) —
// exercising the allocation-free linalg path end-to-end under cps_run.
// A second phase fetches the same designs through the content-addressed
// FixtureCache (one miss per application, hits afterwards) and
// cross-checks the cached gains bit-for-bit against the freshly computed
// ones — a built-in differential test of the batched design path, since
// the cache holds scalar-designed gains.
//
// The CSV records only deterministic design facts (dimensions, spectral
// radii, gain norms), so the artifact is bit-identical at any --jobs; the
// measured design throughput goes to the narrative stream.
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/transient.hpp"
#include "control/loop_design.hpp"
#include "linalg/simd_batch.hpp"
#include "experiments/fixtures.hpp"
#include "plants/table1.hpp"
#include "runtime/experiment.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

constexpr std::size_t kRepeatsPerApp = 25;

struct DesignCell {
  std::size_t app_index = 0;
  double rho_tt = 0.0;
  double rho_et = 0.0;
  double gamma_et = 1.0;   // ET-loop transient envelope peak (plant states)
  linalg::Matrix gain_tt;  // kept whole so the cache cross-check is elementwise
  linalg::Matrix gain_et;
  double design_seconds = 0.0;  // narrative only — never written to the CSV
};

}  // namespace

CPS_EXPERIMENT(sweep_loop_design,
               "Sweep: batch two-mode loop design across the fleet (FixtureCache-backed)") {
  std::fprintf(ctx.out, "== Sweep: batch loop design across the synthesized fleet ==\n");
  const auto fleet = experiments::paper_fleet();
  const std::size_t apps = fleet->size();
  std::fprintf(ctx.out, "(%zu applications x %zu repeats, %d jobs)\n\n", apps,
               kRepeatsPerApp, ctx.jobs);

  // Phase 1: cold batch design — every span gathers its grid cells'
  // plants into one SoA batch (design_hybrid_loops_batch pushes the
  // c2d/expm stage through linalg::kSimdWidth SIMD lanes; every lane is
  // bit-identical to the scalar design, so span boundaries cannot leak
  // into the results), then audits each ET loop's transient envelope
  // (the growth that produces the Fig. 3 non-monotonicity) on the
  // worker's reusable matrix-power workspace.
  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto cells = sweep.run_span_with_workspace<analysis::TransientWorkspace>(
      apps * kRepeatsPerApp,
      [&](const runtime::IndexSpan& span, analysis::TransientWorkspace& workspace) {
        std::vector<const control::StateSpace*> plants;
        std::vector<const control::PolePlacementLoopSpec*> specs;
        plants.reserve(span.size());
        specs.reserve(span.size());
        for (std::size_t index = span.begin; index < span.end; ++index) {
          const auto& app = (*fleet)[index % apps];
          plants.push_back(&app.plant);
          specs.push_back(&app.spec);
        }
        const auto start = std::chrono::steady_clock::now();
        const auto designs = control::design_hybrid_loops_batch(plants, specs);
        const auto stop = std::chrono::steady_clock::now();
        // The batch designs as one instruction stream, so the per-cell
        // share of the wall time is the honest per-design figure.
        const double seconds_per_design =
            std::chrono::duration<double>(stop - start).count() /
            static_cast<double>(designs.size());
        std::vector<DesignCell> block;
        block.reserve(span.size());
        for (std::size_t j = 0; j < span.size(); ++j) {
          const auto& design = designs[j];
          const auto growth = analysis::transient_growth_restricted(
              design.a_et, design.state_dim, {}, workspace);
          DesignCell cell;
          cell.app_index = (span.begin + j) % apps;
          cell.design_seconds = seconds_per_design;
          cell.rho_tt = design.rho_tt;
          cell.rho_et = design.rho_et;
          cell.gamma_et = growth.peak_gain;
          cell.gain_tt = design.gain_tt;
          cell.gain_et = design.gain_et;
          block.push_back(std::move(cell));
        }
        return block;
      });

  double batch_seconds = 0.0;
  for (const auto& cell : cells) batch_seconds += cell.design_seconds;

  // Phase 2: the cached path every later experiment takes — one miss per
  // application, then hits that must return the identical design.
  const auto stats_before = runtime::FixtureCache::instance().stats();
  const auto cached_apps = experiments::build_paper_fleet();
  const auto stats_after = runtime::FixtureCache::instance().stats();

  bool cache_matches = true;
  for (std::size_t i = 0; i < apps; ++i) {
    const auto& fresh = cells[i];  // repeat 0 of application i
    const auto& cached = cached_apps[i];
    // Bit-exact, elementwise agreement between the batch-designed and
    // cached gain matrices (Matrix::operator== compares every entry).
    if (!(cached.design().gain_tt == fresh.gain_tt) ||
        !(cached.design().gain_et == fresh.gain_et)) {
      cache_matches = false;
    }
  }

  const std::string csv_path = ctx.csv_path("sweep_loop_design.csv");
  CsvWriter csv(csv_path,
                {"app", "state_dim", "input_dim", "rho_tt", "rho_et", "gamma_et",
                 "gain_tt_fro", "gain_et_fro"});
  TextTable table({"app", "n", "m", "rho_tt", "rho_et", "gamma_et", "|K_tt|", "|K_et|"});
  for (std::size_t i = 0; i < apps; ++i) {
    const auto& app = (*fleet)[i];
    const auto& cell = cells[i];
    const double gain_tt_norm = cell.gain_tt.norm_frobenius();
    const double gain_et_norm = cell.gain_et.norm_frobenius();
    csv.write_row(std::vector<std::string>{
        app.target.name, std::to_string(app.plant.state_dim()),
        std::to_string(app.plant.input_dim()), format_fixed(cell.rho_tt, 12),
        format_fixed(cell.rho_et, 12), format_fixed(cell.gamma_et, 12),
        format_fixed(gain_tt_norm, 12), format_fixed(gain_et_norm, 12)});
    table.add_row({app.target.name, std::to_string(app.plant.state_dim()),
                   std::to_string(app.plant.input_dim()), format_fixed(cell.rho_tt, 4),
                   format_fixed(cell.rho_et, 4), format_fixed(cell.gamma_et, 3),
                   format_fixed(gain_tt_norm, 3), format_fixed(gain_et_norm, 3)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());

  const double per_design_us = batch_seconds * 1e6 / static_cast<double>(cells.size());
  std::fprintf(ctx.out,
               "batch: %zu designs in %.1f ms (%.2f us/design through the "
               "%zu-lane %s batch path, includes the spectral-radius audit)\n",
               cells.size(), batch_seconds * 1e3, per_design_us, linalg::kSimdWidth,
               linalg::simd_isa_name());
  std::fprintf(ctx.out, "cache: +%zu misses, +%zu hits while building the fleet; gains %s\n",
               stats_after.misses - stats_before.misses, stats_after.hits - stats_before.hits,
               cache_matches ? "bit-identical to the batch designs" : "MISMATCH");
  std::fprintf(ctx.out, "per-application design facts written to %s\n\n", csv_path.c_str());
  if (!cache_matches) throw cps::Error("sweep_loop_design: cached designs diverged");
}
