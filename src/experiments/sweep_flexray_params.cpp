// Experiment "sweep_flexray_params" — FlexRay static-slot/cycle-length
// parameter sweep over the fleet (new workload, not a paper figure).
//
// The paper fixes the case study's FlexRay configuration (5 ms cycle,
// 10-slot / 2 ms static segment) and asks how many TT slots the fleet
// needs.  This sweep asks the surrounding design question: across a grid
// of communication-cycle lengths and static-segment sizes, how many
// slots do the first-fit / best-fit heuristics and the exact
// branch-and-bound optimum need, and does the fleet still fit the static
// segment?  Slot access is granted once per communication cycle, so
// every dwell/wait characteristic an application presents to the
// scheduler is quantized UP to whole cycles (ceil(x / cycle) * cycle) —
// longer cycles mean coarser (more conservative) envelopes, which is
// exactly the slot-count-vs-cycle-length trade the sweep maps out.
//
// Each grid point augments the six quantized paper applications with
// extra applications (10-12 apps total, the "larger random fleets"
// direction of the ROADMAP), so the exact optimum exercises the pruned
// B&B well past the paper's n = 6.  The extras are no longer bare random
// tents: they are drawn from a SYNTHESIZED pool of real plants spanning
// three second-order families (the calibrated scaled oscillator, the
// underdamped resonant stage, the unstable inverted pendulum —
// plants::synthesize_extra_fleet), each with a measured dwell/wait curve
// and a fitted tent model, so the campaign's fleet mix reflects
// qualitatively different dynamics.  Per trial, the pool pick and the
// scheduling pressure (r, deadline) are drawn from the grid point's own
// Rng.
//
// Campaign-scale mechanics (this is the repo's reference SHARDED sweep):
//  * the fleet synthesis and the six dwell/wait curves come through the
//    two-level FixtureCache — with `--fixture-store` a warm store turns
//    the whole fixture phase into bit-identical disk loads;
//  * the (cycle x slots x trial) grid fans out through the chunked
//    SweepRunner with a per-worker scratch workspace;
//  * under `cps_run --shard i/N` the process evaluates only its
//    contiguous block of the grid and writes
//    sweep_flexray_params.csv.shardIofN; `--merge N` concatenates the
//    blocks into the canonical CSV.  Every row depends only on its
//    global index, so the CSV is bit-identical for any --jobs, any
//    shard partition, and any fixture-store state.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dwell_wait_model.hpp"
#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "flexray/config.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

/// Cycle lengths swept, as multiples of the case study's 5 ms cycle.
constexpr double kCycleFactors[] = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
constexpr std::size_t kCycleCount = sizeof(kCycleFactors) / sizeof(kCycleFactors[0]);
/// Static-segment sizes swept (the paper's case study uses 10).
constexpr std::size_t kSlotCounts[] = {6, 8, 10, 12};
constexpr std::size_t kSlotConfigCount = sizeof(kSlotCounts) / sizeof(kSlotCounts[0]);
/// Random fleet augmentations per (cycle, slots) configuration.  Sized
/// so the sweep dominates the campaign (the point of sharding it): the
/// 24k-point grid runs a few seconds single-process in Release and
/// splits near-linearly across `--shard` processes.
constexpr std::size_t kTrials = 1000;
/// Extra applications per trial: 4, 5 or 6 on top of the paper's six, so
/// the exact optimum runs on 10-12 applications.
constexpr int kMinExtraApps = 4;
constexpr int kExtraAppSpread = 3;
/// Synthesized augmentation pool: three applications per plant family
/// (scaled oscillator / underdamped resonant / inverted pendulum), built
/// once through the FixtureCache and measured like the paper fleet.
constexpr std::size_t kExtraPoolSize = 9;
constexpr std::uint64_t kExtraPoolSeed = 0xF1EE7E27ULL;

/// The tent-model characteristics of one application, as fitted from its
/// measured dwell/wait curve (paper fleet) or drawn (random extras).
struct TentParams {
  std::string name;
  double xi_tt = 0.0;
  double xi_m = 0.0;
  double k_p = 0.0;
  double xi_et = 0.0;
  double r = 0.0;
  double deadline = 0.0;
};

/// Smallest whole-cycle multiple >= x: the dwell/wait granularity an
/// application experiences when its slot recurs once per cycle.
double quantize_up(double x, double cycle) { return std::ceil(x / cycle) * cycle; }

/// TentParams from a fitted tent model plus the scheduling fields — the
/// single mapping used for both the paper fleet and the random extras,
/// so the two can never diverge in how they are later quantized.
TentParams tent_from(const NonMonotonicModel& model, std::string name, double r,
                     double deadline) {
  TentParams tent;
  tent.name = std::move(name);
  tent.xi_tt = model.xi_tt();
  tent.xi_m = model.xi_m();
  tent.k_p = model.k_p();
  tent.xi_et = model.zero_wait();
  tent.r = r;
  tent.deadline = deadline;
  return tent;
}

/// Sched params of `tent` under cycle-quantized timing.  k_p (the peak
/// LOCATION) is a property of the plant's transient, not of the bus, so
/// it is not quantized — which also keeps xi_et_q >= xi_et > k_p, the
/// model's validity condition, for every cycle length.
AppSchedParams quantized_app(const TentParams& tent, double cycle) {
  AppSchedParams app;
  app.name = tent.name;
  app.min_inter_arrival = tent.r;
  app.deadline = tent.deadline;
  app.model = std::make_shared<NonMonotonicModel>(
      quantize_up(tent.xi_tt, cycle), quantize_up(tent.xi_m, cycle), tent.k_p,
      quantize_up(tent.xi_et, cycle));
  return app;
}

/// Per-point result (everything the CSV row needs).
struct Cell {
  int n_apps = 0;
  bool feasible = false;       ///< allocatable at all (even on dedicated slots)
  std::size_t first_fit = 0;
  std::size_t best_fit = 0;
  std::size_t optimal = 0;
  bool fits_static = false;    ///< optimal slot count fits the static segment
};

/// Per-worker scratch: the application set under allocation, reused
/// across every grid point of a chunk.
struct FlexRaySweepWorkspace {
  std::vector<AppSchedParams> apps;
};

}  // namespace

CPS_SWEEP_EXPERIMENT(sweep_flexray_params,
                     "Sweep: FlexRay cycle/static-slot grid vs slots needed (shardable)",
                     "sweep_flexray_params.csv") {
  std::fprintf(ctx.out, "== Sweep: FlexRay cycle length x static slots vs slots needed ==\n");

  // Fixture phase — everything here flows through the two-level
  // FixtureCache: fleet + extra-pool synthesis plus one measured
  // dwell/wait curve per application (the campaign-dominating computes a
  // warm --fixture-store replaces with disk loads).
  const auto fleet = experiments::paper_fleet();
  std::vector<TentParams> paper_tents;
  paper_tents.reserve(fleet->size());
  for (const auto& app : *fleet) {
    const auto curve = experiments::measure_synthesized_curve(app);
    const NonMonotonicModel model = NonMonotonicModel::fit(*curve);
    paper_tents.push_back(tent_from(model, app.target.name, app.target.r, app.target.xi_d));
  }
  const auto pool = experiments::extra_fleet(kExtraPoolSize, kExtraPoolSeed);
  std::vector<TentParams> pool_tents;
  pool_tents.reserve(pool->size());
  std::fprintf(ctx.out, "augmentation pool (%zu apps):", pool->size());
  for (const auto& app : *pool) {
    const auto curve = experiments::measure_synthesized_curve(app);
    const NonMonotonicModel model = NonMonotonicModel::fit(*curve);
    // r and deadline are drawn per trial; the pool carries the measured
    // tent shape of the plant family.
    pool_tents.push_back(tent_from(model, app.target.name, app.target.r, app.target.xi_d));
    std::fprintf(ctx.out, " %s[%s]", app.target.name.c_str(),
                 plants::family_name(app.family));
  }
  std::fprintf(ctx.out, "\n");

  // Pre-quantize the paper fleet once per cycle length; the sweep bodies
  // share these read-only sets (models are shared_ptr, copies are cheap).
  const flexray::FlexRayConfig base_config;
  std::vector<double> cycles(kCycleCount);
  std::vector<std::vector<AppSchedParams>> paper_sets(kCycleCount);
  for (std::size_t ci = 0; ci < kCycleCount; ++ci) {
    cycles[ci] = base_config.cycle_length * kCycleFactors[ci];
    flexray::FlexRayConfig config = base_config;
    config.cycle_length = cycles[ci];
    config.static_slot_count = *std::max_element(kSlotCounts, kSlotCounts + kSlotConfigCount);
    config.validate();  // every swept configuration must be a legal bus
    paper_sets[ci].reserve(paper_tents.size());
    for (const auto& tent : paper_tents)
      paper_sets[ci].push_back(quantized_app(tent, cycles[ci]));
  }

  const std::size_t total = kCycleCount * kSlotConfigCount * kTrials;
  std::fprintf(ctx.out,
               "(%zu cycle lengths x %zu static-segment sizes x %zu trials = %zu points, "
               "%d jobs%s)\n\n",
               kCycleCount, kSlotConfigCount, kTrials, total, ctx.jobs,
               ctx.sharded() ? (", shard " + std::to_string(ctx.shard_index) + "/" +
                                std::to_string(ctx.shard_count))
                                   .c_str()
                             : "");

  runtime::SweepRunner sweep({ctx.jobs, ctx.seed, ctx.shard_index, ctx.shard_count});
  const auto range = sweep.range(total);
  const auto cells = sweep.run_with_workspace<FlexRaySweepWorkspace>(
      total, [&](std::size_t index, Rng& rng, FlexRaySweepWorkspace& workspace) {
        const std::size_t ci = index / (kSlotConfigCount * kTrials);
        const std::size_t si = (index / kTrials) % kSlotConfigCount;
        const std::size_t trial = index % kTrials;
        const double cycle = cycles[ci];

        auto& apps = workspace.apps;
        apps.assign(paper_sets[ci].begin(), paper_sets[ci].end());

        // Augment from the synthesized three-family pool, then quantize
        // to the same cycle.  Each extra draws its pool pick and its
        // scheduling pressure (r, deadline) from the grid point's own
        // Rng; draw order is fixed per index, so every shard and job
        // count sees identical instances.
        const int extras = kMinExtraApps + static_cast<int>(trial % kExtraAppSpread);
        for (int e = 0; e < extras; ++e) {
          TentParams tent =
              pool_tents[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<int>(pool_tents.size()) - 1))];
          // The synthesized tents have modest peaks and long ET tails, so
          // the pressure that decides slot sharing is drawn here: bursty
          // re-arrivals (r a few peak-dwells) and deadlines well inside
          // the ET tail.
          tent.r = tent.xi_m * rng.uniform(2.0, 8.0);
          tent.deadline = std::min(tent.r, rng.uniform(0.15, 0.5) * tent.xi_et);
          apps.push_back(quantized_app(tent, cycle));
        }

        Cell cell;
        cell.n_apps = static_cast<int>(apps.size());
        try {
          cell.first_fit = first_fit_allocate(apps).slot_count();
          cell.best_fit = best_fit_allocate(apps).slot_count();
          cell.optimal = optimal_allocate(apps).slot_count();
          cell.feasible = true;
          cell.fits_static = cell.optimal <= kSlotCounts[si];
        } catch (const InfeasibleError&) {
          // Unallocatable even on dedicated slots (the quantized
          // envelopes can exceed a deadline outright); recorded as an
          // infeasible row, excluded from the aggregates.
        }
        return cell;
      });

  // Per-point artifact: leading global-index column (the merge
  // invariant), then the grid coordinates and the allocation verdicts.
  const std::string csv_path = ctx.artifact_path("sweep_flexray_params.csv");
  CsvWriter csv(csv_path, {"index", "cycle_ms", "static_slots", "n_apps", "feasible",
                           "first_fit", "best_fit", "optimal", "fits_static_segment"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t index = range.begin + i;
    const std::size_t ci = index / (kSlotConfigCount * kTrials);
    const std::size_t si = (index / kTrials) % kSlotConfigCount;
    const auto& cell = cells[i];
    csv.write_row(std::vector<std::string>{
        std::to_string(index), format_fixed(cycles[ci] * 1e3, 3),
        std::to_string(kSlotCounts[si]), std::to_string(cell.n_apps),
        cell.feasible ? "1" : "0", std::to_string(cell.first_fit),
        std::to_string(cell.best_fit), std::to_string(cell.optimal),
        cell.fits_static ? "1" : "0"});
  }

  // Narrative aggregates (this shard's rows only when sharded — the
  // canonical numbers live in the merged CSV).
  TextTable table({"cycle [ms]", "slots", "feasible", "avg opt", "avg ff", "fits static"});
  for (std::size_t ci = 0; ci < kCycleCount; ++ci) {
    for (std::size_t si = 0; si < kSlotConfigCount; ++si) {
      std::size_t feasible = 0, fits = 0, points = 0;
      double opt_sum = 0.0, ff_sum = 0.0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t index = range.begin + i;
        if (index / (kSlotConfigCount * kTrials) != ci ||
            (index / kTrials) % kSlotConfigCount != si)
          continue;
        ++points;
        if (!cells[i].feasible) continue;
        ++feasible;
        opt_sum += static_cast<double>(cells[i].optimal);
        ff_sum += static_cast<double>(cells[i].first_fit);
        if (cells[i].fits_static) ++fits;
      }
      if (points == 0) continue;  // entire configuration owned by other shards
      table.add_row({format_fixed(cycles[ci] * 1e3, 2), std::to_string(kSlotCounts[si]),
                     std::to_string(feasible) + "/" + std::to_string(points),
                     feasible ? format_fixed(opt_sum / static_cast<double>(feasible), 2)
                              : std::string("n/a"),
                     feasible ? format_fixed(ff_sum / static_cast<double>(feasible), 2)
                              : std::string("n/a"),
                     std::to_string(fits) + "/" + std::to_string(feasible)});
    }
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out, "%zu grid points written to %s\n\n", cells.size(), csv_path.c_str());
}
