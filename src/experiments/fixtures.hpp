// Shared fixtures for the registered experiments (src/experiments/) and
// the microbenchmarks (bench/): the servo dwell/wait measurement, the
// six-application case-study fleet, the published Table I scheduling
// parameters, and the random application-set generators used by the
// ablations.  Centralizing these removes the copy-pasted helpers the
// nine original bench mains carried around.
//
// The expensive fixtures (loop designs, fleet synthesis, dwell/wait
// sweeps) go through the content-addressed runtime::FixtureCache: within
// one cps_run campaign each is computed once — by whichever experiment or
// ThreadPool worker asks first — and shared immutably by every later
// requester.  A cache hit returns the identical object a miss would have
// computed, so experiment outputs are unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "core/application.hpp"
#include "plants/fleet_synthesis.hpp"
#include "plants/table1.hpp"
#include "sim/dwell_wait.hpp"
#include "util/rng.hpp"

namespace cps::experiments {

/// Measure the servo motor's dwell/wait curve (paper Fig. 3 setup),
/// computed once per process and shared via the FixtureCache.
std::shared_ptr<const sim::DwellWaitCurve> measure_servo_curve();

/// Measure the dwell/wait curve of one synthesized Table I stand-in
/// (full pipeline: design -> switched system -> sweep), content-addressed
/// by the plant, spec, disturbed state and threshold.
std::shared_ptr<const sim::DwellWaitCurve> measure_synthesized_curve(
    const plants::SynthesizedApp& app);

/// The calibrated six-plant fleet (plants::synthesize_fleet), synthesized
/// once per process and shared via the FixtureCache.
std::shared_ptr<const std::vector<plants::SynthesizedApp>> paper_fleet();

/// A pool of `count` extra applications spanning the three plant families
/// (plants::synthesize_extra_fleet), content-addressed by (count, seed)
/// and shared via the FixtureCache.  sweep_flexray_params draws its
/// random fleet augmentations from this pool.
std::shared_ptr<const std::vector<plants::SynthesizedApp>> extra_fleet(std::size_t count,
                                                                       std::uint64_t seed);

/// A batch of `trials` utilization-controlled fleets drawn from `spec`
/// (plants::synthesize_sched_fleet); fleet t is seeded with
/// runtime::task_seed(batch_seed, t).  Content-addressed by every spec
/// field plus (trials, batch_seed) and persisted via the
/// sched_fleet_batch/v1 codec, so every shard of an acceptance-ratio
/// campaign — and every later re-run against the same fixture store —
/// shares one draw instead of redrawing 10^4+ fleets per process.
std::shared_ptr<const std::vector<plants::SchedFleet>> sched_fleet_batch(
    const plants::FleetSynthesisSpec& spec, std::size_t trials, std::uint64_t batch_seed);

/// The cached two-mode loop design of paper-fleet application `index`
/// (0-based synthesis order; throws InvalidArgument past the fleet).
/// The warm path of cps_serve's loop-design query: fleet and design both
/// come from the two-level FixtureCache, so a resident server answers
/// from memory after the first request.
std::shared_ptr<const control::HybridLoopDesign> paper_loop_design(std::size_t index);

/// Build the six case-study ControlApplications from the synthesized
/// fleet (cached fleet + cached hybrid loop designs; the applications
/// themselves are fresh mutable copies).
std::vector<core::ControlApplication> build_paper_fleet();

/// build_paper_fleet() with every application's dwell/wait curve
/// pre-installed from the cache, so fit_model() fits without re-running
/// the sweep.  Use when the experiment needs envelopes (ablation_envelope);
/// fig5 only co-simulates and uses the plain builder.
std::vector<core::ControlApplication> build_paper_fleet_with_curves();

/// The paper's 3-slot allocation: S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1}.
std::size_t paper_slot_of(const std::string& name);

/// Scheduling parameters straight from the published Table I values,
/// under either the non-monotonic (paper) or conservative monotonic model.
std::vector<analysis::AppSchedParams> paper_sched_params(bool monotonic);

/// Parameter ranges for random application-set generation (all draws
/// uniform; see random_sched_params for how each field is used).
struct RandomAppRanges {
  double xi_tt_lo, xi_tt_hi;          ///< xi_TT [s]
  double xi_m_factor_lo, xi_m_factor_hi;    ///< xi_M = xi_TT * factor
  double xi_et_add_lo, xi_et_add_hi;  ///< xi_ET = xi_M + add [s]
  double k_p_frac_lo, k_p_frac_hi;    ///< k_p = frac * xi_ET
  double r_factor_lo, r_factor_hi;    ///< r = xi_M * factor
  double deadline_frac_lo, deadline_frac_hi;  ///< deadline = min(r, frac * xi_ET)
};

/// Ranges used by the allocator-quality ablation (moderate spread).
RandomAppRanges allocator_ablation_ranges();

/// Ranges used by the bound-tightness ablation (wider spread).
RandomAppRanges bounds_ablation_ranges();

/// Draw `n` random applications under the non-monotonic model.  Order of
/// draws is fixed, so a given (rng state, n, ranges) reproduces exactly.
std::vector<analysis::AppSchedParams> random_sched_params(Rng& rng, int n,
                                                          const RandomAppRanges& ranges);

/// One fixed proving instance of the parallel exact allocator: seeds
/// chosen so the drawn instance is feasible and its first-fit seed
/// exceeds the root lower bound (the search must actually prove).
/// Shared by the sweep_alloc_parallel experiment and
/// bench/alloc_parallel.cpp so the committed strong-scaling snapshot
/// always measures the experiment's instances.
struct AllocProvingInstance {
  int n;               ///< application count
  std::uint64_t seed;  ///< Rng seed the instance is drawn from
};

/// The proving instances, ascending in n (currently 14, 16, 18, 20).
const std::vector<AllocProvingInstance>& alloc_proving_instances();

/// Materialize one proving instance (allocator_ablation_ranges draws).
std::vector<analysis::AppSchedParams> alloc_proving_params(const AllocProvingInstance& inst);

}  // namespace cps::experiments
