// Experiment "ablation_envelope" — envelope granularity.
//
// The paper notes the dwell/wait relation "may be modeled with three or
// more piecewise linear curves, to be closer to the actual behavior."
// This experiment quantifies that remark on the synthesized fleet:
// simple (unsafe) / two-piece tent / concave hull / conservative
// monotonic, reporting slots needed, soundness, and worst-case
// under-approximation.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "core/application.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;
using core::ControlApplication;

}  // namespace

CPS_EXPERIMENT(ablation_envelope, "Ablation: envelope granularity vs TT slots needed") {
  std::fprintf(ctx.out, "== Ablation: envelope granularity vs TT slots needed ==\n\n");

  // Curves come pre-installed from the FixtureCache: the six sweeps run
  // once per campaign no matter how many envelope families are fitted.
  auto fleet = experiments::build_paper_fleet_with_curves();
  using MK = ControlApplication::ModelKind;
  struct Row {
    const char* label;
    MK kind;
  };
  const Row rows[] = {
      {"simple monotonic (UNSAFE)", MK::kSimpleMonotonic},
      {"two-piece tent (paper)", MK::kNonMonotonic},
      {"concave hull (N-piece)", MK::kConcave},
      {"conservative monotonic", MK::kConservativeMonotonic},
  };

  TextTable table({"envelope", "sound", "slots", "sum xi_M [s]", "max violation [s]"});
  for (const auto& row : rows) {
    bool sound = true;
    double sum_max_dwell = 0.0;
    double worst_violation = 0.0;
    std::vector<AppSchedParams> sched;
    for (auto& app : fleet) {
      const auto model = app.fit_model(row.kind);
      sound = sound && model->dominates(*app.curve(), 1e-9);
      worst_violation = std::max(worst_violation, model->max_violation(*app.curve()));
      sum_max_dwell += model->max_dwell();
      sched.push_back(app.sched_params());
    }
    std::size_t slots = 0;
    try {
      slots = first_fit_allocate(sched).slot_count();
    } catch (const cps::Error&) {
      slots = 0;  // infeasible under this envelope
    }
    table.add_row({row.label, sound ? "yes" : "NO",
                   slots == 0 ? std::string("infeasible") : std::to_string(slots),
                   format_fixed(sum_max_dwell, 2), format_fixed(worst_violation, 3)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out,
               "reading: tighter (more pieces) => smaller interference terms and fewer\n"
               "or equal slots; the unsafe simple model may report few slots but its\n"
               "positive violation means deadlines can be missed at runtime.\n\n");
}
