// Experiment "table1" — paper Table I: the timing parameters of the six
// case-study control applications.  Two column sets are printed: the
// published values (used verbatim by the allocation experiments) and the
// values measured from the synthesized stand-in plants (full pipeline
// path), so the deviation of the substitution is visible at a glance.
//
// The six per-application characterizations are independent, so they fan
// out across ctx.jobs cores via SweepRunner (the sweep draws no
// randomness: results are identical for any job count).
#include <cstddef>
#include <vector>

#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "sim/dwell_wait.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

}  // namespace

CPS_EXPERIMENT(table1, "Table I: timing parameters of the six applications") {
  std::fprintf(ctx.out, "== Table I: timing parameters for applications [s] ==\n\n");
  std::fprintf(ctx.out, "published values (used by the allocation reproduction):\n");
  TextTable paper({"app", "r", "xi_d", "xi_TT", "xi_ET", "xi_M", "k_p", "xi'_M"});
  for (const auto& row : plants::paper_values()) {
    paper.add_row({row.name, format_fixed(row.r, 0), format_fixed(row.xi_d, 2),
                   format_fixed(row.xi_tt, 2), format_fixed(row.xi_et, 2),
                   format_fixed(row.xi_m, 2), format_fixed(row.k_p, 2),
                   format_fixed(row.xi_m_mono, 2)});
  }
  std::fprintf(ctx.out, "%s\n", paper.render().c_str());

  const auto fleet = experiments::paper_fleet();
  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto curves = sweep.run(fleet->size(), [&fleet](std::size_t i, Rng&) {
    return experiments::measure_synthesized_curve((*fleet)[i]);
  });

  std::fprintf(ctx.out, "synthesized-plant measurements (paper value in parentheses):\n");
  TextTable synth({"app", "xi_TT", "xi_ET", "xi_M", "k_p", "non-monotonic"});
  for (std::size_t i = 0; i < fleet->size(); ++i) {
    const auto& app = (*fleet)[i];
    const auto& curve = *curves[i];
    synth.add_row(
        {app.target.name,
         format_fixed(curve.xi_tt(), 2) + " (" + format_fixed(app.target.xi_tt, 2) + ")",
         format_fixed(curve.xi_et(), 2) + " (" + format_fixed(app.target.xi_et, 2) + ")",
         format_fixed(curve.xi_m(), 2) + " (" + format_fixed(app.target.xi_m, 2) + ")",
         format_fixed(curve.k_p(), 2) + " (" + format_fixed(app.target.k_p, 2) + ")",
         curve.is_non_monotonic() ? "yes" : "no"});
  }
  std::fprintf(ctx.out, "%s\n", synth.render().c_str());
}
