// Experiment "sweep_alloc_parallel" — strong scaling of the parallel
// exact slot allocator (new workload, not a paper figure).
//
// The paper's NP-hard minimum-slot problem is the kernel every campaign
// leans on; this experiment pins down two properties of its parallel
// branch-and-bound (analysis/slot_allocation.cpp + runtime/
// parallel_search.hpp) on fixed proving instances of n = 14..20
// applications:
//
//  1. DETERMINISM — optimal_allocate with exact_jobs in {1, 2, 4, 8}
//     must return the IDENTICAL Allocation (same slots, same order).
//     The experiment enforces this at runtime (CPS_ENSURE) and the
//     deterministic CSV records the per-instance facts, so any
//     schedule-dependence fails the run loudly at any job count.
//  2. STRONG SCALING — profile_exact_search decomposes the bound-proving
//     pass into its frontier subtree tasks, times them sequentially, and
//     emulates the wall-clock on j dedicated cores by greedy list
//     scheduling (the same critical-path emulation
//     bench/campaign_scaling.cpp uses for process shards, reproducible
//     on a single-core container).  Real threaded wall times are also
//     recorded for comparison on multi-core hosts.
//
// sweep_alloc_parallel.csv (instance facts, proven optima, task counts)
// is bit-identical for any --jobs.  The *_times.csv sidecar holds
// measured wall-clocks and is explicitly exempt from the bit-identity
// contract; the committed strong-scaling snapshot lives in
// bench/results/BENCH_alloc_parallel.json (bench/alloc_parallel.cpp).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

constexpr int kJobSweep[] = {1, 2, 4, 8};

}  // namespace

CPS_EXPERIMENT(sweep_alloc_parallel,
               "Sweep: parallel exact-allocator strong scaling, jobs in {1,2,4,8}") {
  std::fprintf(ctx.out, "== Sweep: parallel exact slot allocation, strong scaling ==\n");
  std::fprintf(ctx.out, "(fixed proving instances, exact_jobs in {1, 2, 4, 8})\n\n");

  const std::string csv_path = ctx.csv_path("sweep_alloc_parallel.csv");
  const std::string times_path = ctx.csv_path("sweep_alloc_parallel_times.csv");
  CsvWriter csv(csv_path, {"n_apps", "seed", "first_fit", "optimal", "root_lower_bound",
                           "subtree_tasks", "jobs_identical"});
  CsvWriter times_csv(times_path, {"n_apps", "jobs", "threaded_ms", "critical_path_ms"});
  TextTable table({"n apps", "ff", "opt", "lb", "tasks", "seq [ms]", "cp j2", "cp j4",
                   "cp j8", "j8 speedup"});

  // The fixed proving instances shared with bench/alloc_parallel.cpp
  // (experiments::alloc_proving_instances): feasible, first-fit seed
  // above the root lower bound, so the search must actually prove.
  for (const auto& inst : experiments::alloc_proving_instances()) {
    const auto set = experiments::alloc_proving_params(inst);

    // Determinism: the Allocation must be identical at every job count.
    // The j=1 leg IS the sequential search, so it doubles as the
    // reference the parallel legs are checked against.
    AllocationOptions options;
    Allocation reference;
    std::vector<double> threaded_ms;
    threaded_ms.reserve(std::size(kJobSweep));
    for (const int jobs : kJobSweep) {
      options.exact_jobs = jobs;
      const auto start = std::chrono::steady_clock::now();
      Allocation parallel = optimal_allocate(set, options);
      threaded_ms.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() *
          1e3);
      if (jobs == 1)
        reference = std::move(parallel);
      else
        CPS_ENSURE(parallel.slots == reference.slots,
                   "sweep_alloc_parallel: Allocation depends on exact_jobs");
    }

    // Strong scaling via the sequential critical-path decomposition.
    const ExactSearchProfile profile = profile_exact_search(set);
    CPS_ENSURE(profile.optimal_slots == reference.slot_count(),
               "sweep_alloc_parallel: profile disagrees with optimal_allocate");

    csv.write_row(std::vector<std::string>{
        std::to_string(inst.n), std::to_string(inst.seed),
        std::to_string(profile.seed_slots), std::to_string(profile.optimal_slots),
        std::to_string(profile.root_lower_bound), std::to_string(profile.task_seconds.size()),
        "1"});
    for (std::size_t j = 0; j < std::size(kJobSweep); ++j) {
      times_csv.write_row(std::vector<std::string>{
          std::to_string(inst.n), std::to_string(kJobSweep[j]),
          format_fixed(threaded_ms[j], 3),
          format_fixed(profile.critical_path_seconds(kJobSweep[j]) * 1e3, 3)});
    }

    const double cp1 = profile.critical_path_seconds(1);
    const double cp8 = profile.critical_path_seconds(8);
    table.add_row({std::to_string(inst.n), std::to_string(profile.seed_slots),
                   std::to_string(profile.optimal_slots),
                   std::to_string(profile.root_lower_bound),
                   std::to_string(profile.task_seconds.size()),
                   format_fixed(profile.sequential_seconds * 1e3, 2),
                   format_fixed(profile.critical_path_seconds(2) * 1e3, 2),
                   format_fixed(profile.critical_path_seconds(4) * 1e3, 2),
                   format_fixed(cp8 * 1e3, 2),
                   cp8 > 0.0 ? format_fixed(cp1 / cp8, 2) + "x" : "n/a"});
  }

  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out, "instance facts written to %s\n", csv_path.c_str());
  std::fprintf(ctx.out, "wall-clock curves (non-deterministic) written to %s\n\n",
               times_path.c_str());
}
