// Experiment "run_scenario" — one online fault-injection run, scripted.
//
// Runs the online world (online/world.hpp) over one scenario script and
// writes the replayable event-log CSV plus a per-event re-allocation
// report table.  The scenario comes from, in order of preference:
//
//   1. `cps_run --scenario FILE`          (ctx.scenario_path)
//   2. a campaign spec's `[scenario] file = "..."` key
//   3. the built-in demo script below     (so `cps_run all` always runs)
//
// Seed resolution is "explicit flags win" (online/scenario.hpp):
// --seed > the scenario's seed > the spec's seed > the default.
//
// Determinism: the event-log CSV is byte-identical for a given
// (scenario, resolved seed) at any --jobs — the allocator's result is
// jobs-independent and wall-clock times stay in the stdout table
// (CI runs the j1-vs-j4 and repeat-run cmp).
#include <cstdio>
#include <string>
#include <vector>

#include "online/scenario.hpp"
#include "online/world.hpp"
#include "runtime/campaign_spec.hpp"
#include "runtime/experiment.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/toml.hpp"

namespace {

using namespace cps;

/// The built-in demo: a mid-size fleet surviving slot loss, drift and
/// churn.  Kept small enough to run in well under a second.
constexpr const char* kBuiltinScenario = R"(
scenario_version = 1

[scenario]
name         = "builtin_demo"
ticks        = 30
tick_seconds = 0.5

[fleet]
n_apps      = 8
utilization = 1.8

[[event]]
at_tick = 6
kind    = "drop_slot"

[[event]]
at_tick = 12
kind    = "drift"
app     = "G2"
factor  = 1.3

[[event]]
at_tick = 18
kind    = "drop_frames"
app     = "G5"
factor  = 1.4

[[event]]
at_tick = 24
kind    = "leave"
app     = "G1"
)";

online::ScenarioSpec resolve_scenario(const cps::runtime::ExperimentContext& ctx) {
  if (!ctx.scenario_path.empty()) return online::load_scenario(ctx.scenario_path);
  const std::string spec_file = runtime::spec_string(ctx.spec, "scenario.file", "");
  if (!spec_file.empty()) return online::load_scenario(spec_file);
  return online::make_scenario(util::parse_toml(kBuiltinScenario, "<builtin>"), "<builtin>");
}

}  // namespace

CPS_EXPERIMENT(run_scenario,
               "Online mode: tick one fault-injection scenario script to its end "
               "(--scenario FILE; deterministic event-log CSV)") {
  const online::ScenarioSpec scenario = resolve_scenario(ctx);
  const std::uint64_t seed = online::effective_scenario_seed(ctx, scenario);

  online::ReallocationPolicy policy;
  policy.exact_jobs = ctx.jobs;

  std::fprintf(ctx.out, "== Online scenario: %s (%s) ==\n", scenario.name.c_str(),
               scenario.source.c_str());
  std::fprintf(ctx.out,
               "(%llu ticks x %s s, %zu apps at utilization %s, seed %llu, %d jobs)\n\n",
               static_cast<unsigned long long>(scenario.ticks),
               format_general(scenario.tick_seconds).c_str(), scenario.n_apps,
               format_general(scenario.utilization).c_str(),
               static_cast<unsigned long long>(seed), ctx.jobs);

  online::World world(scenario, seed, policy);
  world.run();

  // Per-event re-allocation reports.  Proof wall time lives HERE, never
  // in the event log (the CSV is byte-compared across runs and jobs).
  TextTable table({"tick", "trigger", "slots", "warm", "gap", "feasible", "proof ms"});
  for (const auto& report : world.reports()) {
    table.add_row({std::to_string(report.tick), report.trigger,
                   std::to_string(report.slots_before) + "->" +
                       std::to_string(report.slots_after),
                   report.warm_incumbent == 0 ? "cold" : std::to_string(report.warm_incumbent),
                   std::to_string(report.anytime_gap), report.feasible ? "yes" : "NO",
                   format_fixed(report.proof_seconds * 1e3, 2)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());

  std::fprintf(ctx.out,
               "%llu arrivals, %llu deadline misses, %zu apps resident, %zu slots, %s\n",
               static_cast<unsigned long long>(world.total_arrivals()),
               static_cast<unsigned long long>(world.total_misses()),
               world.app_names().size(), world.allocation().slot_count(),
               world.feasible() ? "feasible" : (world.outage() ? "OUTAGE" : "INFEASIBLE"));

  const std::string csv_path = ctx.csv_path("scenario_" + scenario.name + "_events.csv");
  online::write_event_log_csv(csv_path, world);
  std::fprintf(ctx.out, "event log (%zu rows) written to %s\n\n", world.event_log().size(),
               csv_path.c_str());
}
