// Experiment "ablation_jitter" — worst-case-delay controller design vs.
// actual bus jitter.
//
// The ET-mode controller is designed for the worst-case dynamic-segment
// delay (Section II-B).  On the bus the delay varies per sample.  This
// experiment runs randomized jitter campaigns on the servo's ET loop and
// compares the settle-time distribution with the constant-worst-case
// design point, plus the transient-growth implications for slot-release
// chattering.  The per-scenario campaigns fan across ctx.jobs cores with
// independent task-seeded Rngs.
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/transient.hpp"
#include "plants/servo_motor.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "sim/jitter.hpp"
#include "sim/settling.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

struct Scenario {
  const char* label;
  std::vector<double> delays;
};

}  // namespace

CPS_EXPERIMENT(ablation_jitter, "Ablation: worst-case ET design vs actual delay jitter") {
  std::fprintf(ctx.out,
               "== Ablation: worst-case ET design vs actual delay jitter (servo) ==\n\n");

  const plants::ServoExperiment exp;
  const auto plant = plants::make_servo_motor();
  const auto design = plants::design_servo_loops();
  const auto z0 = plants::servo_disturbed_state(exp);

  // Constant worst-case reference (the design point).
  sim::SettlingOptions settle_opts;
  settle_opts.threshold = exp.threshold;
  const auto wc_settle = sim::settling_step(design.a_et, z0, 2, settle_opts);
  const double wc_seconds =
      wc_settle ? static_cast<double>(*wc_settle) * exp.sampling_period : -1.0;

  TextTable table({"delay scenario", "mean settle [s]", "worst [s]", "best [s]"});
  table.add_row({"constant worst case (design)", format_fixed(wc_seconds, 2),
                 format_fixed(wc_seconds, 2), format_fixed(wc_seconds, 2)});

  const std::vector<Scenario> scenarios = {
      {"uniform jitter in {0 .. d_max}", {0.0, 0.005, 0.010, 0.015, exp.delay_et}},
      {"mild jitter in {d_max/2 .. d_max}", {0.010, 0.015, exp.delay_et}},
      {"mostly fresh (ideal bus)", {0.0, 0.001, 0.002}},
  };

  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  // One JitterWorkspace per worker: all 500 settle runs of a scenario
  // (and every scenario a worker picks up) share the same state-buffer
  // pair instead of reconstructing it per run.
  const auto results = sweep.run_with_workspace<sim::JitterWorkspace>(
      scenarios.size(), [&](std::size_t i, Rng& rng, sim::JitterWorkspace& workspace) {
        const sim::JitteryClosedLoop loop(plant, exp.sampling_period, scenarios[i].delays,
                                          design.gain_et);
        return sim::run_jitter_campaign(loop, z0, exp.threshold, exp.sampling_period, 500, rng,
                                        workspace);
      });
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    table.add_row({scenarios[i].label, format_fixed(results[i].mean_settle_s, 2),
                   format_fixed(results[i].worst_settle_s, 2),
                   format_fixed(results[i].best_settle_s, 2)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());

  const auto growth = analysis::transient_growth_restricted(design.a_et, design.state_dim);
  std::fprintf(ctx.out,
               "ET-loop plant-state transient growth: gamma = %.2f at step %zu "
               "(= %.2f s; drives the Fig. 3 non-monotonicity)\n",
               growth.peak_gain, growth.peak_step,
               static_cast<double>(growth.peak_step) * exp.sampling_period);
  std::fprintf(ctx.out,
               "steady-state excursion bound after slot release at E_th: %.3f "
               "(excursions possible iff > E_th = %.1f)\n\n",
               analysis::excursion_bound(growth, exp.threshold), exp.threshold);
  std::fprintf(ctx.out,
               "reading: actual (jittery) delays settle at or faster than the constant\n"
               "worst case the controller was designed for — the design assumption is\n"
               "conservative on the real bus, as the paper requires.\n\n");
}
