// Experiment "table_alloc" — the paper's Section V slot-allocation result
// from the published Table I values:
//   * non-monotonic model: 3 TT slots, S1 = {C3, C6}, S2 = {C2, C4},
//     S3 = {C5, C1}, with the published intermediate values
//     k_hat_wait,6 = 0.669, xi_hat_6 = 1.589, k_hat_wait,3 = 0.92,
//     xi_hat_3 = 1.515;
//   * conservative monotonic model: 5 TT slots (only C3 and C6 share),
//     including the published clash xi_hat'_2 = 6.426 > 6.25;
//   * headline: the monotonic assumption needs 67 % more TT slots.
#include "analysis/slot_allocation.hpp"
#include "core/report.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

}  // namespace

CPS_EXPERIMENT(table_alloc, "Section V: TT slot allocation from published Table I") {
  std::fprintf(ctx.out, "== Section V: TT slot allocation from Table I ==\n\n");

  std::fprintf(ctx.out, "--- non-monotonic dwell/wait model (the paper's contribution) ---\n");
  const Allocation non_mono = first_fit_allocate(experiments::paper_sched_params(false));
  std::fprintf(ctx.out, "%s\n", core::render_allocation(non_mono).c_str());
  std::fprintf(ctx.out,
               "paper: 3 slots, S1={C3,C6} (k_hat_6=0.669, xi_hat_6=1.589; "
               "k_hat_3=0.92, xi_hat_3=1.515), S2={C2,C4}, S3={C5,C1}\n\n");

  std::fprintf(ctx.out, "--- conservative monotonic model (prior-work baseline) ---\n");
  const Allocation mono = first_fit_allocate(experiments::paper_sched_params(true));
  std::fprintf(ctx.out, "%s\n", core::render_allocation(mono).c_str());
  std::fprintf(ctx.out, "paper: 5 slots; C2+C4 clash with xi_hat'_2 = 6.426 > 6.25\n\n");

  const double overhead =
      100.0 *
      (static_cast<double>(mono.slot_count()) - static_cast<double>(non_mono.slot_count())) /
      static_cast<double>(non_mono.slot_count());
  std::fprintf(ctx.out, ">>> monotonic requires %.0f%% more TT slots (paper: 67%%)\n\n",
               overhead);
}
