// Experiments "sweep_alloc" and "sweep_alloc_scaling" — allocator scaling
// sweeps (new workloads, not paper figures): how the first-fit and
// best-fit heuristics and the exact optimum behave as the application
// count grows beyond the paper's six-app case study.  "sweep_alloc" keeps
// the original small grid (optimum only up to kMaxExactSize = 6, the
// limit of the pre-optimization search); "sweep_alloc_scaling" runs the
// exact optimum on every instance up to 20 applications, which the
// pruned, conflict-screened branch-and-bound
// (analysis/slot_allocation.cpp) made practical.
//
// Both (size x trial) grids fan across ctx.jobs cores via SweepRunner;
// every grid point draws only from its own task-seeded Rng, so the CSVs
// are bit-identical for any job count (except the explicitly exempt
// *_times.csv wall-clock sidecar).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

constexpr int kMinSize = 3;
constexpr int kMaxSize = 8;
constexpr int kMaxExactSize = 6;
constexpr std::size_t kTrialsPerSize = 30;

struct Cell {
  int size = 0;
  bool feasible = false;
  std::size_t first_fit = 0;
  std::size_t best_fit = 0;
  std::size_t optimal = 0;  // 0 when not computed (size > kMaxExactSize)
};

Cell run_cell(std::size_t index, Rng& rng) {
  Cell cell;
  cell.size = kMinSize + static_cast<int>(index / kTrialsPerSize);
  const auto set = experiments::random_sched_params(rng, cell.size,
                                                    experiments::allocator_ablation_ranges());
  try {
    cell.first_fit = first_fit_allocate(set).slot_count();
    cell.best_fit = best_fit_allocate(set).slot_count();
    if (cell.size <= kMaxExactSize) cell.optimal = optimal_allocate(set).slot_count();
    cell.feasible = true;
  } catch (const InfeasibleError&) {
    // Infeasible even on dedicated slots; excluded from the averages.
  }
  return cell;
}

}  // namespace

CPS_EXPERIMENT(sweep_alloc, "Sweep: allocator quality vs application-set size (parallel)") {
  std::fprintf(ctx.out, "== Sweep: allocator quality vs application-set size ==\n");
  std::fprintf(ctx.out, "(%zu random instances per size, %d jobs)\n\n", kTrialsPerSize,
               ctx.jobs);

  const std::size_t sizes = static_cast<std::size_t>(kMaxSize - kMinSize + 1);
  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto cells = sweep.run(sizes * kTrialsPerSize, run_cell);

  const std::string csv_path = ctx.csv_path("sweep_alloc.csv");
  CsvWriter csv(csv_path, {"n_apps", "feasible", "avg_first_fit", "avg_best_fit",
                           "avg_optimal", "first_fit_vs_best_fit_gap"});
  TextTable table({"n apps", "feasible", "avg first-fit", "avg best-fit", "avg optimum"});
  for (int size = kMinSize; size <= kMaxSize; ++size) {
    int feasible = 0;
    double ff_sum = 0.0, bf_sum = 0.0, opt_sum = 0.0;
    for (const auto& cell : cells) {
      if (cell.size != size || !cell.feasible) continue;
      ++feasible;
      ff_sum += static_cast<double>(cell.first_fit);
      bf_sum += static_cast<double>(cell.best_fit);
      opt_sum += static_cast<double>(cell.optimal);
    }
    const double ff_avg = feasible ? ff_sum / feasible : 0.0;
    const double bf_avg = feasible ? bf_sum / feasible : 0.0;
    const double opt_avg = feasible ? opt_sum / feasible : 0.0;
    const bool exact = size <= kMaxExactSize;
    // Empty field (not "n/a") when the optimum was not computed, so the
    // column stays numerically parseable downstream.
    csv.write_row(std::vector<std::string>{
        std::to_string(size), std::to_string(feasible), format_fixed(ff_avg, 4),
        format_fixed(bf_avg, 4), exact ? format_fixed(opt_avg, 4) : std::string(),
        format_fixed(ff_avg - bf_avg, 4)});
    table.add_row({std::to_string(size),
                   std::to_string(feasible) + "/" + std::to_string(kTrialsPerSize),
                   format_fixed(ff_avg, 3), format_fixed(bf_avg, 3),
                   exact ? format_fixed(opt_avg, 3) : std::string("n/a")});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out, "per-size averages written to %s\n\n", csv_path.c_str());
}

// ---------------------------------------------------------------------------
// Experiment "sweep_alloc_scaling" — the same question at a scale the
// pre-optimization branch-and-bound could not touch: the exact optimum on
// every instance up to 20 applications.  The PR-2 pruned/memoized search
// made n = 12 practical; the conflict-pair, symmetry-breaking and
// packing/clique lower-bound layers (analysis/slot_allocation.cpp) push
// the proven optimum to n = 20 in milliseconds per typical instance.
// Reports the first-fit optimality gap that the small grid above cannot
// see, plus a wall-time sidecar CSV.
//
// Determinism note: sweep_alloc_scaling.csv (the allocation results) is
// bit-identical for any --jobs and is what CI cmp's; the *_times.csv
// sidecar records measured wall-clocks and is explicitly exempt from the
// bit-identity contract (timings are not results).

namespace {

constexpr int kScalingMinSize = 6;
constexpr int kScalingMaxSize = 20;

/// Trials shrink as the exact search grows: enough samples for stable
/// averages at campaign-relevant sizes while the whole sweep stays in
/// CI-smoke territory (the rare hard n ~ 20 instance proves in a few
/// hundred milliseconds).
constexpr std::size_t scaling_trials(int size) {
  return size <= 12 ? 20 : size <= 16 ? 12 : 8;
}

std::size_t scaling_total_points() {
  std::size_t total = 0;
  for (int size = kScalingMinSize; size <= kScalingMaxSize; ++size)
    total += scaling_trials(size);
  return total;
}

/// Size of the instance at a global sweep index (sizes are laid out
/// contiguously, each with its own trial count).
int scaling_size_of(std::size_t index) {
  std::size_t offset = 0;
  for (int size = kScalingMinSize; size <= kScalingMaxSize; ++size) {
    offset += scaling_trials(size);
    if (index < offset) return size;
  }
  return kScalingMaxSize;  // unreachable for in-range indices
}

struct ScalingCell {
  int size = 0;
  bool feasible = false;
  std::size_t first_fit = 0;
  std::size_t best_fit = 0;
  std::size_t optimal = 0;
  double exact_seconds = 0.0;  ///< wall time of the exact search alone
};

ScalingCell run_scaling_cell(std::size_t index, Rng& rng) {
  ScalingCell cell;
  cell.size = scaling_size_of(index);
  const auto set = experiments::random_sched_params(rng, cell.size,
                                                    experiments::allocator_ablation_ranges());
  try {
    cell.first_fit = first_fit_allocate(set).slot_count();
    cell.best_fit = best_fit_allocate(set).slot_count();
    const auto start = std::chrono::steady_clock::now();
    cell.optimal = optimal_allocate(set).slot_count();
    cell.exact_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    cell.feasible = true;
  } catch (const InfeasibleError&) {
    // Infeasible even on dedicated slots; excluded from the averages.
  }
  return cell;
}

}  // namespace

CPS_EXPERIMENT(sweep_alloc_scaling,
               "Sweep: exact optimum vs heuristics up to 20 apps (parallel-ready B&B)") {
  std::fprintf(ctx.out, "== Sweep: allocator scaling with the exact optimum to n = 20 ==\n");
  std::fprintf(ctx.out, "(%zu..%zu random instances per size, %d jobs)\n\n",
               scaling_trials(kScalingMaxSize), scaling_trials(kScalingMinSize), ctx.jobs);

  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto cells = sweep.run(scaling_total_points(), run_scaling_cell);

  const std::string csv_path = ctx.csv_path("sweep_alloc_scaling.csv");
  const std::string times_path = ctx.csv_path("sweep_alloc_scaling_times.csv");
  CsvWriter csv(csv_path, {"n_apps", "feasible", "avg_first_fit", "avg_best_fit",
                           "avg_optimal", "avg_ff_excess", "ff_optimal_pct"});
  CsvWriter times_csv(times_path,
                      {"n_apps", "trials", "feasible", "avg_exact_ms", "max_exact_ms"});
  TextTable table({"n apps", "feasible", "avg first-fit", "avg best-fit", "avg optimum",
                   "ff optimal", "avg exact [ms]"});
  for (int size = kScalingMinSize; size <= kScalingMaxSize; ++size) {
    int feasible = 0, ff_hits = 0;
    double ff_sum = 0.0, bf_sum = 0.0, opt_sum = 0.0;
    double exact_sum = 0.0, exact_max = 0.0;
    for (const auto& cell : cells) {
      if (cell.size != size || !cell.feasible) continue;
      ++feasible;
      ff_sum += static_cast<double>(cell.first_fit);
      bf_sum += static_cast<double>(cell.best_fit);
      opt_sum += static_cast<double>(cell.optimal);
      exact_sum += cell.exact_seconds;
      exact_max = std::max(exact_max, cell.exact_seconds);
      if (cell.first_fit == cell.optimal) ++ff_hits;
    }
    const double ff_avg = feasible ? ff_sum / feasible : 0.0;
    const double bf_avg = feasible ? bf_sum / feasible : 0.0;
    const double opt_avg = feasible ? opt_sum / feasible : 0.0;
    const double ff_pct = feasible ? 100.0 * ff_hits / feasible : 0.0;
    const double exact_avg_ms = feasible ? exact_sum / feasible * 1e3 : 0.0;
    csv.write_row(std::vector<std::string>{
        std::to_string(size), std::to_string(feasible), format_fixed(ff_avg, 4),
        format_fixed(bf_avg, 4), format_fixed(opt_avg, 4),
        format_fixed(ff_avg - opt_avg, 4), format_fixed(ff_pct, 1)});
    times_csv.write_row(std::vector<std::string>{
        std::to_string(size), std::to_string(scaling_trials(size)),
        std::to_string(feasible), format_fixed(exact_avg_ms, 3),
        format_fixed(exact_max * 1e3, 3)});
    table.add_row({std::to_string(size),
                   std::to_string(feasible) + "/" + std::to_string(scaling_trials(size)),
                   format_fixed(ff_avg, 3), format_fixed(bf_avg, 3),
                   format_fixed(opt_avg, 3), format_fixed(ff_pct, 1) + "%",
                   format_fixed(exact_avg_ms, 2)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out, "per-size averages written to %s\n", csv_path.c_str());
  std::fprintf(ctx.out, "exact-search wall times (non-deterministic) written to %s\n\n",
               times_path.c_str());
}
