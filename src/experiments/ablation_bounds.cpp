// Experiment "ablation_bounds" — the closed-form maximum-wait bound
// (Eq. 20) versus the exact fixed point of the recurrence (Eq. 5).
//
// The paper argues for the closed form because, unlike the classical
// iterative CAN-style analysis, it proves existence and gives the bound
// directly.  This experiment quantifies the price on random application
// sets: how loose is a'/(1-m) relative to the exact fixed point, and how
// often does the looseness cost a TT slot?  Trials fan across ctx.jobs
// cores with per-task Rngs, so results are job-count independent.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

struct Trial {
  int bracket_ok = 0;
  int bracket_total = 0;
  double sum_ratio = 0.0;
  double max_ratio = 1.0;
  int comparisons = 0;
  int slots_bound = 0;
  int slots_fixed_point = 0;
  bool alloc_feasible = false;
};

Trial run_trial(Rng& rng) {
  const int n = rng.uniform_int(2, 6);
  auto apps = experiments::random_sched_params(rng, n, experiments::bounds_ablation_ranges());
  sort_by_priority(apps);

  Trial trial;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto lower = max_wait_lower_bound(apps, i);
    const auto upper = max_wait_bound(apps, i);
    const auto fp = max_wait_fixed_point(apps, i);
    if (!upper || !fp) continue;
    ++trial.bracket_total;
    if (*lower <= *fp + 1e-9 && *fp < *upper + 1e-9) ++trial.bracket_ok;
    if (*fp > 1e-9) {
      const double ratio = *upper / *fp;
      trial.sum_ratio += ratio;
      trial.max_ratio = std::max(trial.max_ratio, ratio);
      ++trial.comparisons;
    }
  }
  try {
    AllocationOptions bound_opts;
    AllocationOptions fp_opts;
    fp_opts.method = MaxWaitMethod::kFixedPoint;
    trial.slots_bound = static_cast<int>(first_fit_allocate(apps, bound_opts).slot_count());
    trial.slots_fixed_point =
        static_cast<int>(first_fit_allocate(apps, fp_opts).slot_count());
    trial.alloc_feasible = true;
  } catch (const InfeasibleError&) {
    // Random set infeasible even on dedicated slots; skip.
  }
  return trial;
}

}  // namespace

CPS_EXPERIMENT(ablation_bounds,
               "Ablation: closed-form wait bound (Eq. 20) vs exact fixed point (Eq. 5)") {
  std::fprintf(ctx.out,
               "== Ablation: closed-form bound (Eq. 20) vs exact fixed point (Eq. 5) ==\n\n");

  const std::size_t trials = 200;
  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto results =
      sweep.run(trials, [](std::size_t, Rng& rng) { return run_trial(rng); });

  double sum_ratio = 0.0, max_ratio = 1.0;
  int comparisons = 0, bracket_ok = 0, bracket_total = 0;
  int slots_bound_total = 0, slots_fp_total = 0, alloc_trials = 0;
  for (const auto& trial : results) {
    bracket_ok += trial.bracket_ok;
    bracket_total += trial.bracket_total;
    sum_ratio += trial.sum_ratio;
    max_ratio = std::max(max_ratio, trial.max_ratio);
    comparisons += trial.comparisons;
    if (trial.alloc_feasible) {
      slots_bound_total += trial.slots_bound;
      slots_fp_total += trial.slots_fixed_point;
      ++alloc_trials;
    }
  }

  TextTable table({"metric", "value"});
  table.add_row({"random sets", std::to_string(trials)});
  table.add_row({"bracket property a/(1-m) <= k* < a'/(1-m) held",
                 std::to_string(bracket_ok) + " / " + std::to_string(bracket_total)});
  table.add_row({"mean bound/fixed-point ratio",
                 format_fixed(comparisons ? sum_ratio / comparisons : 0.0, 3)});
  table.add_row({"max bound/fixed-point ratio", format_fixed(max_ratio, 3)});
  table.add_row(
      {"avg slots (closed-form bound)",
       format_fixed(
           alloc_trials ? static_cast<double>(slots_bound_total) / alloc_trials : 0.0, 3)});
  table.add_row(
      {"avg slots (exact fixed point)",
       format_fixed(alloc_trials ? static_cast<double>(slots_fp_total) / alloc_trials : 0.0,
                    3)});
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out,
               "reading: the closed form is within a small factor of the exact fixed\n"
               "point and rarely costs a slot, while guaranteeing existence a priori\n"
               "(the paper's argument against the iterative CAN-style analysis).\n\n");
}
