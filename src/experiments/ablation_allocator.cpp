// Experiment "ablation_allocator" — allocation heuristic quality.
//
// The paper uses first-fit because finding the optimal TT-slot allocation
// is NP-hard.  This experiment certifies that first-fit is OPTIMAL on the
// case study (the exact branch-and-bound search also returns 3 slots) and
// quantifies the heuristic gap on random instances: first-fit vs best-fit
// vs the exact optimum.  The random campaign fans across ctx.jobs cores;
// each trial draws only from its own task-seeded Rng, so results are
// bit-identical for any job count.
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

struct Trial {
  bool feasible = false;
  std::size_t first_fit = 0;
  std::size_t best_fit = 0;
  std::size_t optimal = 0;
};

Trial run_trial(Rng& rng) {
  const int n = rng.uniform_int(3, 7);
  const auto set =
      experiments::random_sched_params(rng, n, experiments::allocator_ablation_ranges());
  Trial trial;
  try {
    trial.first_fit = first_fit_allocate(set).slot_count();
    trial.best_fit = best_fit_allocate(set).slot_count();
    trial.optimal = optimal_allocate(set).slot_count();
    trial.feasible = true;
  } catch (const InfeasibleError&) {
    // Instance infeasible on dedicated slots; not a heuristic question.
  }
  return trial;
}

}  // namespace

CPS_EXPERIMENT(ablation_allocator, "Ablation: first-fit vs best-fit vs exact optimum") {
  std::fprintf(ctx.out, "== Ablation: first-fit vs best-fit vs exact optimum ==\n\n");

  // Case study certification.
  const auto apps = experiments::paper_sched_params(false);
  const auto ff = first_fit_allocate(apps).slot_count();
  const auto bf = best_fit_allocate(apps).slot_count();
  const auto opt = optimal_allocate(apps).slot_count();
  std::fprintf(ctx.out,
               "Table I case study: first-fit %zu, best-fit %zu, optimum %zu "
               "(the paper's heuristic is optimal here)\n\n",
               ff, bf, opt);

  // Random-instance campaign, fanned across cores.
  const std::size_t trials = 120;
  runtime::SweepRunner sweep({ctx.jobs, ctx.seed});
  const auto results =
      sweep.run(trials, [](std::size_t, Rng& rng) { return run_trial(rng); });

  int ff_total = 0, bf_total = 0, opt_total = 0, usable = 0;
  int ff_optimal = 0, bf_optimal = 0;
  for (const auto& trial : results) {
    if (!trial.feasible) continue;
    ff_total += static_cast<int>(trial.first_fit);
    bf_total += static_cast<int>(trial.best_fit);
    opt_total += static_cast<int>(trial.optimal);
    if (trial.first_fit == trial.optimal) ++ff_optimal;
    if (trial.best_fit == trial.optimal) ++bf_optimal;
    ++usable;
  }

  if (usable == 0) {
    std::fprintf(ctx.out, "%zu random instances, none feasible under seed %llu\n\n", trials,
                 static_cast<unsigned long long>(ctx.seed));
    return;
  }
  TextTable table({"allocator", "avg slots", "optimal in"});
  table.add_row({"first-fit (paper)",
                 format_fixed(static_cast<double>(ff_total) / usable, 3),
                 format_fixed(100.0 * ff_optimal / usable, 1) + "%"});
  table.add_row({"best-fit", format_fixed(static_cast<double>(bf_total) / usable, 3),
                 format_fixed(100.0 * bf_optimal / usable, 1) + "%"});
  table.add_row({"exact optimum", format_fixed(static_cast<double>(opt_total) / usable, 3),
                 "100.0%"});
  std::fprintf(ctx.out, "%zu random instances (%d feasible):\n%s\n", trials, usable,
               table.render().c_str());
}
