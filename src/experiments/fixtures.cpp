#include "experiments/fixtures.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "analysis/dwell_wait_model.hpp"
#include "control/loop_design.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "runtime/fixture_cache.hpp"
#include "runtime/sweep_runner.hpp"
#include "sim/switched_system.hpp"

namespace cps::experiments {

namespace {

using runtime::FixtureCodec;
using runtime::FixtureHandle;
using runtime::FixtureKey;
using util::BinaryReader;
using util::BinaryWriter;

// ---------------------------------------------------------------------------
// Fixture codecs: how each cached fixture type persists to the on-disk
// store (`cps_run --fixture-store DIR`).  Every double goes through its
// IEEE-754 bit pattern, so a disk hit is bit-identical to a fresh
// compute and experiment CSVs cannot depend on the store's state.  Bump
// a codec's /vN tag whenever its layout changes — stale files are then
// recomputed instead of misread.

void encode_discrete_system(const control::DiscreteSystem& sys, BinaryWriter& out) {
  out.write_matrix(sys.phi());
  out.write_matrix(sys.gamma0());
  out.write_matrix(sys.gamma1());
  out.write_matrix(sys.c());
  out.write_double(sys.sampling_period());
  out.write_double(sys.delay());
}

control::DiscreteSystem decode_discrete_system(BinaryReader& in) {
  auto phi = in.read_matrix();
  auto gamma0 = in.read_matrix();
  auto gamma1 = in.read_matrix();
  auto c = in.read_matrix();
  const double h = in.read_double();
  const double d = in.read_double();
  return control::DiscreteSystem(std::move(phi), std::move(gamma0), std::move(gamma1),
                                 std::move(c), h, d);
}

const FixtureCodec<control::HybridLoopDesign>& design_codec() {
  static const FixtureCodec<control::HybridLoopDesign> codec{
      "hybrid_design/v1",
      [](const control::HybridLoopDesign& design, BinaryWriter& out) {
        encode_discrete_system(design.sys_tt, out);
        encode_discrete_system(design.sys_et, out);
        out.write_matrix(design.gain_tt);
        out.write_matrix(design.gain_et);
        out.write_matrix(design.a_tt);
        out.write_matrix(design.a_et);
        out.write_u64(design.state_dim);
        out.write_u64(design.input_dim);
        out.write_double(design.rho_tt);
        out.write_double(design.rho_et);
      },
      [](BinaryReader& in) {
        control::HybridLoopDesign design{decode_discrete_system(in),
                                         decode_discrete_system(in),
                                         {}, {}, {}, {}, 0, 0, 0.0, 0.0};
        design.gain_tt = in.read_matrix();
        design.gain_et = in.read_matrix();
        design.a_tt = in.read_matrix();
        design.a_et = in.read_matrix();
        design.state_dim = static_cast<std::size_t>(in.read_u64());
        design.input_dim = static_cast<std::size_t>(in.read_u64());
        design.rho_tt = in.read_double();
        design.rho_et = in.read_double();
        return design;
      }};
  return codec;
}

const FixtureCodec<sim::DwellWaitCurve>& curve_codec() {
  static const FixtureCodec<sim::DwellWaitCurve> codec{
      "dwell_wait_curve/v1",
      [](const sim::DwellWaitCurve& curve, BinaryWriter& out) {
        out.write_double(curve.sampling_period());
        out.write_u64(curve.points().size());
        for (const auto& p : curve.points()) {
          out.write_u64(p.wait_steps);
          out.write_u64(p.dwell_steps);
          out.write_double(p.wait_s);
          out.write_double(p.dwell_s);
        }
      },
      [](BinaryReader& in) {
        const double h = in.read_double();
        const std::size_t count = static_cast<std::size_t>(in.read_u64());
        std::vector<sim::DwellWaitPoint> points(count);
        for (auto& p : points) {
          p.wait_steps = static_cast<std::size_t>(in.read_u64());
          p.dwell_steps = static_cast<std::size_t>(in.read_u64());
          p.wait_s = in.read_double();
          p.dwell_s = in.read_double();
        }
        return sim::DwellWaitCurve(h, std::move(points));
      }};
  return codec;
}

const FixtureCodec<std::vector<plants::SynthesizedApp>>& fleet_codec() {
  // /v2: every application carries its PlantFamily (the extra-fleet pool
  // spans three families); stale /v1 files recompute instead of misread.
  static const FixtureCodec<std::vector<plants::SynthesizedApp>> codec{
      "fleet_synthesis/v2",
      [](const std::vector<plants::SynthesizedApp>& fleet, BinaryWriter& out) {
        out.write_u64(fleet.size());
        for (const auto& app : fleet) {
          out.write_u64(static_cast<std::uint64_t>(app.family));
          out.write_string(app.target.name);
          out.write_double(app.target.r);
          out.write_double(app.target.xi_d);
          out.write_double(app.target.xi_tt);
          out.write_double(app.target.xi_et);
          out.write_double(app.target.xi_m);
          out.write_double(app.target.k_p);
          out.write_double(app.target.xi_m_mono);
          out.write_matrix(app.plant.a());
          out.write_matrix(app.plant.b());
          out.write_matrix(app.plant.c());
          out.write_matrix(app.plant.d());
          out.write_double(app.spec.sampling_period);
          out.write_double(app.spec.delay_tt);
          out.write_double(app.spec.delay_et);
          out.write_u64(app.spec.poles_tt.size());
          for (const auto& p : app.spec.poles_tt) {
            out.write_double(p.real());
            out.write_double(p.imag());
          }
          out.write_u64(app.spec.poles_et.size());
          for (const auto& p : app.spec.poles_et) {
            out.write_double(p.real());
            out.write_double(p.imag());
          }
          out.write_vector(app.x0);
          out.write_double(app.threshold);
        }
      },
      [](BinaryReader& in) {
        const std::size_t count = static_cast<std::size_t>(in.read_u64());
        std::vector<plants::SynthesizedApp> fleet;
        fleet.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          const auto family = static_cast<plants::PlantFamily>(in.read_u64());
          plants::AppTimingParams target;
          target.name = in.read_string();
          target.r = in.read_double();
          target.xi_d = in.read_double();
          target.xi_tt = in.read_double();
          target.xi_et = in.read_double();
          target.xi_m = in.read_double();
          target.k_p = in.read_double();
          target.xi_m_mono = in.read_double();
          auto a = in.read_matrix();
          auto b = in.read_matrix();
          auto c = in.read_matrix();
          auto d = in.read_matrix();
          control::PolePlacementLoopSpec spec;
          spec.sampling_period = in.read_double();
          spec.delay_tt = in.read_double();
          spec.delay_et = in.read_double();
          const std::size_t tt = static_cast<std::size_t>(in.read_u64());
          spec.poles_tt.reserve(tt);
          for (std::size_t k = 0; k < tt; ++k) {
            const double re = in.read_double();
            const double im = in.read_double();
            spec.poles_tt.emplace_back(re, im);
          }
          const std::size_t et = static_cast<std::size_t>(in.read_u64());
          spec.poles_et.reserve(et);
          for (std::size_t k = 0; k < et; ++k) {
            const double re = in.read_double();
            const double im = in.read_double();
            spec.poles_et.emplace_back(re, im);
          }
          auto x0 = in.read_vector();
          const double threshold = in.read_double();
          fleet.push_back(plants::SynthesizedApp{
              std::move(target),
              control::StateSpace(std::move(a), std::move(b), std::move(c), std::move(d)),
              std::move(spec), std::move(x0), threshold, family});
        }
        return fleet;
      }};
  return codec;
}

const FixtureCodec<std::vector<plants::SchedFleet>>& sched_fleet_batch_codec() {
  static const FixtureCodec<std::vector<plants::SchedFleet>> codec{
      "sched_fleet_batch/v1",
      [](const std::vector<plants::SchedFleet>& batch, BinaryWriter& out) {
        out.write_u64(batch.size());
        for (const auto& fleet : batch) {
          out.write_double(fleet.target_utilization);
          out.write_double(fleet.achieved_utilization);
          out.write_u64(fleet.apps.size());
          for (const auto& app : fleet.apps) {
            out.write_string(app.name);
            out.write_u64(static_cast<std::uint64_t>(app.family));
            out.write_double(app.r);
            out.write_double(app.deadline);
            out.write_double(app.xi_tt);
            out.write_double(app.xi_m);
            out.write_double(app.k_p);
            out.write_double(app.xi_et);
          }
        }
      },
      [](BinaryReader& in) {
        const std::size_t count = static_cast<std::size_t>(in.read_u64());
        std::vector<plants::SchedFleet> batch;
        batch.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          plants::SchedFleet fleet;
          fleet.target_utilization = in.read_double();
          fleet.achieved_utilization = in.read_double();
          const std::size_t napps = static_cast<std::size_t>(in.read_u64());
          fleet.apps.reserve(napps);
          for (std::size_t j = 0; j < napps; ++j) {
            plants::SynthesizedSchedApp app;
            app.name = in.read_string();
            app.family = static_cast<plants::PlantFamily>(in.read_u64());
            app.r = in.read_double();
            app.deadline = in.read_double();
            app.xi_tt = in.read_double();
            app.xi_m = in.read_double();
            app.k_p = in.read_double();
            app.xi_et = in.read_double();
            fleet.apps.push_back(std::move(app));
          }
          batch.push_back(std::move(fleet));
        }
        return batch;
      }};
  return codec;
}

/// Content key of a pole-placement design problem: the continuous plant
/// plus every spec field that shapes the two closed loops.
FixtureKey design_key(const control::StateSpace& plant,
                      const control::PolePlacementLoopSpec& spec) {
  FixtureKey key("hybrid_design");
  key.add(plant.a()).add(plant.b()).add(plant.c()).add(plant.d());
  key.add(spec.sampling_period).add(spec.delay_tt).add(spec.delay_et);
  for (const auto& p : spec.poles_tt) key.add(p.real()).add(p.imag());
  for (const auto& p : spec.poles_et) key.add(p.real()).add(p.imag());
  key.add(std::uint64_t{spec.poles_tt.size()}).add(std::uint64_t{spec.poles_et.size()});
  return key;
}

/// Design the two-mode loops for (plant, spec) once and share the result.
std::shared_ptr<const control::HybridLoopDesign> cached_design(
    const control::StateSpace& plant, const control::PolePlacementLoopSpec& spec) {
  return FixtureHandle<control::HybridLoopDesign>(design_key(plant, spec))
      .with_codec(design_codec())
      .get([&] { return control::design_hybrid_loops(plant, spec); });
}

/// Measure the dwell/wait curve of a designed application once and share
/// it.  The key is the exact sweep input: both closed loops, the norm
/// dimension, the disturbed (augmented) state, the sampling period and
/// the settling threshold.
std::shared_ptr<const sim::DwellWaitCurve> cached_curve(const control::HybridLoopDesign& design,
                                                        const linalg::Vector& x0_aug,
                                                        double threshold) {
  FixtureKey key("dwell_wait_curve");
  key.add(design.a_et).add(design.a_tt).add(std::uint64_t{design.state_dim});
  key.add(x0_aug).add(design.sys_tt.sampling_period()).add(threshold);
  return FixtureHandle<sim::DwellWaitCurve>(key).with_codec(curve_codec()).get([&] {
    sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
    sim::DwellWaitSweepOptions opts;
    opts.settling.threshold = threshold;
    return sim::measure_dwell_wait_curve(sys, x0_aug, design.sys_tt.sampling_period(), opts);
  });
}

}  // namespace

std::shared_ptr<const sim::DwellWaitCurve> measure_servo_curve() {
  const plants::ServoExperiment exp;
  const auto design = cached_design(plants::make_servo_motor(), plants::servo_pole_spec(exp));
  return cached_curve(*design, plants::servo_disturbed_state(exp), exp.threshold);
}

std::shared_ptr<const sim::DwellWaitCurve> measure_synthesized_curve(
    const plants::SynthesizedApp& app) {
  const auto design = cached_design(app.plant, app.spec);
  const auto x0 = linalg::Vector::concat(app.x0, linalg::Vector::zero(design->input_dim));
  return cached_curve(*design, x0, app.threshold);
}

std::shared_ptr<const std::vector<plants::SynthesizedApp>> paper_fleet() {
  // Nullary synthesis: the content is the (versioned) recipe itself.
  return FixtureHandle<std::vector<plants::SynthesizedApp>>("fleet_synthesis/table1-v1")
      .with_codec(fleet_codec())
      .get([] { return plants::synthesize_fleet(); });
}

std::shared_ptr<const std::vector<plants::SynthesizedApp>> extra_fleet(std::size_t count,
                                                                       std::uint64_t seed) {
  FixtureKey key("fleet_synthesis");
  key.add("extras-v1").add(std::uint64_t{count}).add(seed);
  return FixtureHandle<std::vector<plants::SynthesizedApp>>(key)
      .with_codec(fleet_codec())
      .get([&] { return plants::synthesize_extra_fleet(count, seed); });
}

std::shared_ptr<const std::vector<plants::SchedFleet>> sched_fleet_batch(
    const plants::FleetSynthesisSpec& spec, std::size_t trials, std::uint64_t batch_seed) {
  // Content key: every generator knob plus the batch shape.  Values come
  // from the (typed) campaign spec, so TOML key order, comments and
  // formatting never reach the key — only VALUES do.
  FixtureKey key("sched_fleet_batch");
  key.add(std::uint64_t{spec.n_apps})
      .add(spec.target_utilization)
      .add(spec.max_app_utilization)
      .add(spec.period_lo)
      .add(spec.period_hi)
      .add(spec.deadline_frac_lo)
      .add(spec.deadline_frac_hi);
  key.add(std::uint64_t{spec.families.size()});
  for (const auto family : spec.families) key.add(std::string_view(plants::family_name(family)));
  key.add(std::uint64_t{trials}).add(batch_seed);
  return FixtureHandle<std::vector<plants::SchedFleet>>(key)
      .with_codec(sched_fleet_batch_codec())
      .get([&] {
        std::vector<plants::SchedFleet> batch;
        batch.reserve(trials);
        for (std::size_t t = 0; t < trials; ++t)
          batch.push_back(
              plants::synthesize_sched_fleet(spec, runtime::task_seed(batch_seed, t)));
        return batch;
      });
}

std::shared_ptr<const control::HybridLoopDesign> paper_loop_design(std::size_t index) {
  const auto fleet = paper_fleet();
  CPS_ENSURE(index < fleet->size(),
             "paper_loop_design: index past the synthesized fleet");
  const auto& item = (*fleet)[index];
  return cached_design(item.plant, item.spec);
}

std::vector<core::ControlApplication> build_paper_fleet() {
  std::vector<core::ControlApplication> apps;
  const auto fleet = paper_fleet();
  apps.reserve(fleet->size());
  for (const auto& item : *fleet) {
    const auto design = cached_design(item.plant, item.spec);
    core::TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    apps.emplace_back(item.target.name, *design, req, item.x0);
  }
  return apps;
}

std::vector<core::ControlApplication> build_paper_fleet_with_curves() {
  auto apps = build_paper_fleet();
  const auto fleet = paper_fleet();
  for (std::size_t i = 0; i < apps.size(); ++i)
    apps[i].set_curve(*measure_synthesized_curve((*fleet)[i]));
  return apps;
}

std::size_t paper_slot_of(const std::string& name) {
  if (name == "C3" || name == "C6") return 0;
  if (name == "C2" || name == "C4") return 1;
  return 2;  // C5, C1
}

std::vector<analysis::AppSchedParams> paper_sched_params(bool monotonic) {
  std::vector<analysis::AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    analysis::AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    if (monotonic)
      app.model =
          std::make_shared<analysis::ConservativeMonotonicModel>(row.xi_m_mono, row.xi_et);
    else
      app.model = std::make_shared<analysis::NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p,
                                                                row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

RandomAppRanges allocator_ablation_ranges() {
  RandomAppRanges r;
  r.xi_tt_lo = 0.3, r.xi_tt_hi = 1.5;
  r.xi_m_factor_lo = 1.0, r.xi_m_factor_hi = 1.8;
  r.xi_et_add_lo = 2.0, r.xi_et_add_hi = 6.0;
  r.k_p_frac_lo = 0.05, r.k_p_frac_hi = 0.4;
  r.r_factor_lo = 6.0, r.r_factor_hi = 30.0;
  r.deadline_frac_lo = 0.6, r.deadline_frac_hi = 1.0;
  return r;
}

RandomAppRanges bounds_ablation_ranges() {
  RandomAppRanges r;
  r.xi_tt_lo = 0.3, r.xi_tt_hi = 2.0;
  r.xi_m_factor_lo = 1.0, r.xi_m_factor_hi = 2.0;
  r.xi_et_add_lo = 2.0, r.xi_et_add_hi = 8.0;
  r.k_p_frac_lo = 0.05, r.k_p_frac_hi = 0.5;
  r.r_factor_lo = 5.0, r.r_factor_hi = 40.0;
  r.deadline_frac_lo = 0.8, r.deadline_frac_hi = 1.0;
  return r;
}

const std::vector<AllocProvingInstance>& alloc_proving_instances() {
  static const std::vector<AllocProvingInstance> instances = {
      {14, 0x5EED3606ULL},
      {16, 0x5EED4604ULL},
      {18, 0x5EED6619ULL},
      {20, 0x5EED860DULL},
  };
  return instances;
}

std::vector<analysis::AppSchedParams> alloc_proving_params(const AllocProvingInstance& inst) {
  Rng rng(inst.seed);
  return random_sched_params(rng, inst.n, allocator_ablation_ranges());
}

std::vector<analysis::AppSchedParams> random_sched_params(Rng& rng, int n,
                                                          const RandomAppRanges& ranges) {
  std::vector<analysis::AppSchedParams> apps;
  apps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(ranges.xi_tt_lo, ranges.xi_tt_hi);
    const double xi_m = xi_tt * rng.uniform(ranges.xi_m_factor_lo, ranges.xi_m_factor_hi);
    const double xi_et = xi_m + rng.uniform(ranges.xi_et_add_lo, ranges.xi_et_add_hi);
    const double k_p = rng.uniform(ranges.k_p_frac_lo, ranges.k_p_frac_hi) * xi_et;
    const double r = xi_m * rng.uniform(ranges.r_factor_lo, ranges.r_factor_hi);
    const double deadline =
        std::min(r, rng.uniform(ranges.deadline_frac_lo, ranges.deadline_frac_hi) * xi_et);
    analysis::AppSchedParams app;
    app.name = "A" + std::to_string(i);
    app.min_inter_arrival = r;
    app.deadline = deadline;
    app.model = std::make_shared<analysis::NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace cps::experiments
