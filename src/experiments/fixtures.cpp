#include "experiments/fixtures.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "analysis/dwell_wait_model.hpp"
#include "control/loop_design.hpp"
#include "linalg/vector.hpp"
#include "plants/servo_motor.hpp"
#include "runtime/fixture_cache.hpp"
#include "sim/switched_system.hpp"

namespace cps::experiments {

namespace {

using runtime::FixtureCache;
using runtime::FixtureKey;

/// Content key of a pole-placement design problem: the continuous plant
/// plus every spec field that shapes the two closed loops.
FixtureKey design_key(const control::StateSpace& plant,
                      const control::PolePlacementLoopSpec& spec) {
  FixtureKey key("hybrid_design");
  key.add(plant.a()).add(plant.b()).add(plant.c()).add(plant.d());
  key.add(spec.sampling_period).add(spec.delay_tt).add(spec.delay_et);
  for (const auto& p : spec.poles_tt) key.add(p.real()).add(p.imag());
  for (const auto& p : spec.poles_et) key.add(p.real()).add(p.imag());
  key.add(std::uint64_t{spec.poles_tt.size()}).add(std::uint64_t{spec.poles_et.size()});
  return key;
}

/// Design the two-mode loops for (plant, spec) once and share the result.
std::shared_ptr<const control::HybridLoopDesign> cached_design(
    const control::StateSpace& plant, const control::PolePlacementLoopSpec& spec) {
  return FixtureCache::instance().get_or_compute<control::HybridLoopDesign>(
      design_key(plant, spec), [&] { return control::design_hybrid_loops(plant, spec); });
}

/// Measure the dwell/wait curve of a designed application once and share
/// it.  The key is the exact sweep input: both closed loops, the norm
/// dimension, the disturbed (augmented) state, the sampling period and
/// the settling threshold.
std::shared_ptr<const sim::DwellWaitCurve> cached_curve(const control::HybridLoopDesign& design,
                                                        const linalg::Vector& x0_aug,
                                                        double threshold) {
  FixtureKey key("dwell_wait_curve");
  key.add(design.a_et).add(design.a_tt).add(std::uint64_t{design.state_dim});
  key.add(x0_aug).add(design.sys_tt.sampling_period()).add(threshold);
  return FixtureCache::instance().get_or_compute<sim::DwellWaitCurve>(key, [&] {
    sim::SwitchedLinearSystem sys(design.a_et, design.a_tt, design.state_dim);
    sim::DwellWaitSweepOptions opts;
    opts.settling.threshold = threshold;
    return sim::measure_dwell_wait_curve(sys, x0_aug, design.sys_tt.sampling_period(), opts);
  });
}

}  // namespace

std::shared_ptr<const sim::DwellWaitCurve> measure_servo_curve() {
  const plants::ServoExperiment exp;
  const auto design = cached_design(plants::make_servo_motor(), plants::servo_pole_spec(exp));
  return cached_curve(*design, plants::servo_disturbed_state(exp), exp.threshold);
}

std::shared_ptr<const sim::DwellWaitCurve> measure_synthesized_curve(
    const plants::SynthesizedApp& app) {
  const auto design = cached_design(app.plant, app.spec);
  const auto x0 = linalg::Vector::concat(app.x0, linalg::Vector::zero(design->input_dim));
  return cached_curve(*design, x0, app.threshold);
}

std::shared_ptr<const std::vector<plants::SynthesizedApp>> paper_fleet() {
  // Nullary synthesis: the content is the (versioned) recipe itself.
  return FixtureCache::instance().get_or_compute<std::vector<plants::SynthesizedApp>>(
      "fleet_synthesis/table1-v1", [] { return plants::synthesize_fleet(); });
}

std::vector<core::ControlApplication> build_paper_fleet() {
  std::vector<core::ControlApplication> apps;
  const auto fleet = paper_fleet();
  apps.reserve(fleet->size());
  for (const auto& item : *fleet) {
    const auto design = cached_design(item.plant, item.spec);
    core::TimingRequirements req{item.target.r, item.target.xi_d, item.threshold};
    apps.emplace_back(item.target.name, *design, req, item.x0);
  }
  return apps;
}

std::vector<core::ControlApplication> build_paper_fleet_with_curves() {
  auto apps = build_paper_fleet();
  const auto fleet = paper_fleet();
  for (std::size_t i = 0; i < apps.size(); ++i)
    apps[i].set_curve(*measure_synthesized_curve((*fleet)[i]));
  return apps;
}

std::size_t paper_slot_of(const std::string& name) {
  if (name == "C3" || name == "C6") return 0;
  if (name == "C2" || name == "C4") return 1;
  return 2;  // C5, C1
}

std::vector<analysis::AppSchedParams> paper_sched_params(bool monotonic) {
  std::vector<analysis::AppSchedParams> apps;
  for (const auto& row : plants::paper_values()) {
    analysis::AppSchedParams app;
    app.name = row.name;
    app.min_inter_arrival = row.r;
    app.deadline = row.xi_d;
    if (monotonic)
      app.model =
          std::make_shared<analysis::ConservativeMonotonicModel>(row.xi_m_mono, row.xi_et);
    else
      app.model = std::make_shared<analysis::NonMonotonicModel>(row.xi_tt, row.xi_m, row.k_p,
                                                                row.xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

RandomAppRanges allocator_ablation_ranges() {
  RandomAppRanges r;
  r.xi_tt_lo = 0.3, r.xi_tt_hi = 1.5;
  r.xi_m_factor_lo = 1.0, r.xi_m_factor_hi = 1.8;
  r.xi_et_add_lo = 2.0, r.xi_et_add_hi = 6.0;
  r.k_p_frac_lo = 0.05, r.k_p_frac_hi = 0.4;
  r.r_factor_lo = 6.0, r.r_factor_hi = 30.0;
  r.deadline_frac_lo = 0.6, r.deadline_frac_hi = 1.0;
  return r;
}

RandomAppRanges bounds_ablation_ranges() {
  RandomAppRanges r;
  r.xi_tt_lo = 0.3, r.xi_tt_hi = 2.0;
  r.xi_m_factor_lo = 1.0, r.xi_m_factor_hi = 2.0;
  r.xi_et_add_lo = 2.0, r.xi_et_add_hi = 8.0;
  r.k_p_frac_lo = 0.05, r.k_p_frac_hi = 0.5;
  r.r_factor_lo = 5.0, r.r_factor_hi = 40.0;
  r.deadline_frac_lo = 0.8, r.deadline_frac_hi = 1.0;
  return r;
}

std::vector<analysis::AppSchedParams> random_sched_params(Rng& rng, int n,
                                                          const RandomAppRanges& ranges) {
  std::vector<analysis::AppSchedParams> apps;
  apps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double xi_tt = rng.uniform(ranges.xi_tt_lo, ranges.xi_tt_hi);
    const double xi_m = xi_tt * rng.uniform(ranges.xi_m_factor_lo, ranges.xi_m_factor_hi);
    const double xi_et = xi_m + rng.uniform(ranges.xi_et_add_lo, ranges.xi_et_add_hi);
    const double k_p = rng.uniform(ranges.k_p_frac_lo, ranges.k_p_frac_hi) * xi_et;
    const double r = xi_m * rng.uniform(ranges.r_factor_lo, ranges.r_factor_hi);
    const double deadline =
        std::min(r, rng.uniform(ranges.deadline_frac_lo, ranges.deadline_frac_hi) * xi_et);
    analysis::AppSchedParams app;
    app.name = "A" + std::to_string(i);
    app.min_inter_arrival = r;
    app.deadline = deadline;
    app.model = std::make_shared<analysis::NonMonotonicModel>(xi_tt, xi_m, k_p, xi_et);
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace cps::experiments
