// Experiment "fig5" — paper Figure 5: the responses of all six
// applications with disturbances at t = 0, co-simulated over the FlexRay
// model with the 3-slot allocation (S1 = {C3, C6}, S2 = {C2, C4},
// S3 = {C5, C1}).  Each panel shows ||x_i|| over time with the active
// communication mode (T = TT slot, e = ET segment) and the E_th
// threshold line; the verdict table confirms every application meets its
// deadline.
#include <cstddef>
#include <string>
#include <vector>

#include "core/co_simulation.hpp"
#include "core/report.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"

namespace {

using namespace cps;
using namespace cps::core;

}  // namespace

CPS_EXPERIMENT(fig5, "Figure 5: six-application co-simulation over FlexRay") {
  auto apps = experiments::build_paper_fleet();
  CoSimulationOptions options;
  options.horizon = 12.0;
  CoSimulator cosim(options);
  for (auto& app : apps)
    cosim.add_application(app, experiments::paper_slot_of(app.name()), {0.0});
  const CoSimulationResult result = cosim.run();

  std::fprintf(ctx.out,
               "== Figure 5: responses of all six applications, disturbances at t = 0 ==\n");
  std::fprintf(ctx.out,
               "(3-slot allocation S1={C3,C6} S2={C2,C4} S3={C5,C1}; "
               "T = TT slot, e = ET segment)\n\n");
  for (const auto& app : result.apps)
    std::fprintf(ctx.out, "%s\n", render_response_ascii(app, 0.1).c_str());

  std::fprintf(ctx.out, "%s\n", render_slot_gantt(result).c_str());
  std::fprintf(ctx.out, "%s\n", render_cosim(result).c_str());
  std::fprintf(ctx.out, ">>> all deadlines met: %s (paper: yes)\n\n",
               result.all_deadlines_met ? "yes" : "NO");

  const std::string csv_path = ctx.csv_path("fig5_responses.csv");
  CsvWriter csv(csv_path, {"app", "t_s", "norm", "mode"});
  for (const auto& app : result.apps) {
    for (std::size_t k = 0; k < app.trajectory.length(); ++k) {
      const auto& s = app.trajectory.at(k);
      csv.write_row(std::vector<std::string>{
          app.name, format_fixed(app.trajectory.time_at(k), 3), format_fixed(s.norm, 6),
          s.mode == sim::Mode::kTimeTriggered ? "TT" : "ET"});
    }
  }
  std::fprintf(ctx.out, "full trajectories written to %s\n\n", csv_path.c_str());
}
