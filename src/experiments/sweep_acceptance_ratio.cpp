// Experiment "sweep_acceptance_ratio" — the schedulability literature's
// standard acceptance-ratio campaign, run on the paper's slot model.
//
// For each grid point (target utilization U, fleet size n) the sweep
// draws `trials` synthetic fleets at EXACTLY utilization U
// (plants::synthesize_sched_fleet — UUniFast shares, per-family tent
// shapes, deadlines inside the ET tail) and asks each allocator —
// first-fit, best-fit, and the exact branch-and-bound optimum — whether
// the fleet fits `max_slots` TT slots.  The acceptance ratio, the
// fraction of fleets each allocator schedules, maps where the
// heuristics detach from the optimum as utilization squeezes the static
// segment: every drawn application fits a DEDICATED slot by
// construction, so the curve isolates packing quality.
//
// This is the first SPEC-DRIVEN experiment (runtime/campaign_spec.hpp):
// under `cps_run --spec FILE` the grid (utilization points, fleet
// sizes, trials, max_slots) and the generator distributions come from
// the spec's typed parameters; run bare, the built-in defaults below
// apply.  Everything else follows the repo's sharded-sweep contract
// (sweep_flexray_params.cpp is the reference):
//  * fleets are drawn once per grid point as a cached BATCH
//    (experiments::sched_fleet_batch, sched_fleet_batch/v1 store
//    codec), keyed by the generator values + batch seed — shards and
//    warm-store re-runs share one draw;
//  * the (U x n x trial) grid fans out through the chunked SweepRunner;
//  * the per-point CSV (leading global-index column) is bit-identical
//    for any --jobs, any --shard partition, any fixture-store state;
//    the aggregated per-curve CSV is written only when unsharded (the
//    canonical aggregate of a sharded campaign is computed from the
//    merged per-point file).
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "plants/fleet_synthesis.hpp"
#include "runtime/campaign_spec.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

/// Built-in grid (used when no spec overrides it): utilizations spanning
/// the fall of the acceptance curve for 4 slots, two fleet sizes
/// straddling the exact search's comfortable range.
const std::vector<double> kDefaultUtilizations = {1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
const std::vector<double> kDefaultFleetSizes = {8, 12};
constexpr std::int64_t kDefaultTrials = 200;
constexpr std::int64_t kDefaultMaxSlots = 4;
/// Largest fleet the exact allocator is asked to prove (its documented
/// max_apps_for_exact); larger fleets record exact as "not run" (-1).
constexpr std::size_t kExactAppCap = 20;
/// Decouples batch-draw seeds from SweepRunner per-task seeds.
constexpr std::uint64_t kBatchSeedSalt = 0xACCE97A7C3B10C45ULL;

/// Verdicts of the three allocators on one fleet.
struct Cell {
  double achieved_util = 0.0;
  int ff = 0;     ///< 1 = fits max_slots, 0 = not
  int bf = 0;
  int exact = 0;  ///< additionally -1 = fleet too large for the exact search
  std::size_t ff_slots = 0, bf_slots = 0, exact_slots = 0;  ///< 0 when unschedulable
};

struct AcceptanceWorkspace {
  std::vector<AppSchedParams> apps;
};

/// Slot count if the allocator fits `max_slots`, 0 otherwise.
template <typename AllocFn>
std::size_t try_allocate(AllocFn&& allocate) {
  try {
    return allocate().slot_count();
  } catch (const InfeasibleError&) {
    return 0;
  }
}

}  // namespace

CPS_SWEEP_EXPERIMENT(sweep_acceptance_ratio,
                     "Sweep: acceptance ratio of utilization-controlled fleets per "
                     "allocator (shardable, spec-driven)",
                     "sweep_acceptance_ratio.csv") {
  std::fprintf(ctx.out, "== Sweep: acceptance ratio vs target utilization ==\n");

  // Grid + generator knobs: spec-driven with built-in defaults.  A
  // PRESENT key of the wrong type throws (campaign_spec contract).
  const auto utilizations =
      runtime::spec_doubles(ctx.spec, "grid.utilization", kDefaultUtilizations);
  const auto fleet_sizes_raw =
      runtime::spec_doubles(ctx.spec, "grid.fleet_size", kDefaultFleetSizes);
  const auto trials =
      static_cast<std::size_t>(runtime::spec_int(ctx.spec, "grid.trials", kDefaultTrials));
  const auto max_slots = static_cast<std::size_t>(
      runtime::spec_int(ctx.spec, "grid.max_slots", kDefaultMaxSlots));
  CPS_ENSURE(!utilizations.empty() && !fleet_sizes_raw.empty() && trials >= 1,
             "sweep_acceptance_ratio: grid must be non-empty");
  CPS_ENSURE(max_slots >= 1, "sweep_acceptance_ratio: grid.max_slots must be >= 1");

  std::vector<std::size_t> fleet_sizes;
  fleet_sizes.reserve(fleet_sizes_raw.size());
  for (const double n : fleet_sizes_raw) {
    CPS_ENSURE(n >= 1.0 && n == static_cast<double>(static_cast<std::size_t>(n)),
               "sweep_acceptance_ratio: grid.fleet_size entries must be positive integers");
    fleet_sizes.push_back(static_cast<std::size_t>(n));
  }

  plants::FleetSynthesisSpec generator;  // per-point n/U filled in below
  generator.max_app_utilization =
      runtime::spec_double(ctx.spec, "generator.max_app_utilization", 0.95);
  generator.period_lo = runtime::spec_double(ctx.spec, "generator.period_lo", 3.0);
  generator.period_hi = runtime::spec_double(ctx.spec, "generator.period_hi", 60.0);
  generator.deadline_frac_lo =
      runtime::spec_double(ctx.spec, "generator.deadline_frac_lo", 0.7);
  generator.deadline_frac_hi =
      runtime::spec_double(ctx.spec, "generator.deadline_frac_hi", 1.0);
  if (ctx.spec != nullptr && ctx.spec->params.has("generator.families")) {
    generator.families.clear();
    for (const auto& name :
         runtime::spec_strings(ctx.spec, "generator.families", {}))
      generator.families.push_back(plants::family_from_name(name));
  }

  const std::size_t points = utilizations.size() * fleet_sizes.size();
  const std::size_t total = points * trials;
  std::fprintf(ctx.out,
               "(%zu utilizations x %zu fleet sizes x %zu trials = %zu fleets, "
               "max %zu slots, %d jobs%s)\n\n",
               utilizations.size(), fleet_sizes.size(), trials, total, max_slots, ctx.jobs,
               ctx.sharded() ? (", shard " + std::to_string(ctx.shard_index) + "/" +
                                std::to_string(ctx.shard_count))
                                   .c_str()
                             : "");

  // One cached fleet batch per grid point, seeded independently of the
  // SweepRunner's per-task seed stream.  The sweep bodies pull batches
  // through the FixtureCache, so the first worker to touch a grid point
  // draws (or disk-loads) it and every other worker shares the result.
  const auto batch_for = [&](std::size_t ui, std::size_t ni) {
    plants::FleetSynthesisSpec spec = generator;
    spec.target_utilization = utilizations[ui];
    spec.n_apps = fleet_sizes[ni];
    const std::size_t point = ui * fleet_sizes.size() + ni;
    return experiments::sched_fleet_batch(spec, trials,
                                          runtime::task_seed(ctx.seed ^ kBatchSeedSalt, point));
  };

  AllocationOptions options;
  options.max_slots = max_slots;

  runtime::SweepRunner sweep({ctx.jobs, ctx.seed, ctx.shard_index, ctx.shard_count});
  const auto range = sweep.range(total);
  const auto cells = sweep.run_with_workspace<AcceptanceWorkspace>(
      total, [&](std::size_t index, Rng&, AcceptanceWorkspace& workspace) {
        const std::size_t ui = index / (fleet_sizes.size() * trials);
        const std::size_t ni = (index / trials) % fleet_sizes.size();
        const std::size_t trial = index % trials;

        const auto batch = batch_for(ui, ni);
        const plants::SchedFleet& fleet = (*batch)[trial];
        workspace.apps = plants::to_sched_params(fleet);

        Cell cell;
        cell.achieved_util = fleet.achieved_utilization;
        cell.ff_slots = try_allocate([&] { return first_fit_allocate(workspace.apps, options); });
        cell.bf_slots = try_allocate([&] { return best_fit_allocate(workspace.apps, options); });
        cell.ff = cell.ff_slots > 0 ? 1 : 0;
        cell.bf = cell.bf_slots > 0 ? 1 : 0;
        if (fleet.apps.size() <= kExactAppCap) {
          cell.exact_slots =
              try_allocate([&] { return optimal_allocate(workspace.apps, options); });
          cell.exact = cell.exact_slots > 0 ? 1 : 0;
        } else {
          cell.exact = -1;  // out of the exact search's documented range
        }
        return cell;
      });

  // Per-point artifact: leading global-index column (the merge
  // invariant), grid coordinates, then the three verdicts.
  const std::string csv_path = ctx.artifact_path("sweep_acceptance_ratio.csv");
  CsvWriter csv(csv_path,
                {"index", "target_util", "fleet_size", "trial", "achieved_util",
                 "ff_sched", "bf_sched", "exact_sched", "ff_slots", "bf_slots",
                 "exact_slots"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t index = range.begin + i;
    const std::size_t ui = index / (fleet_sizes.size() * trials);
    const std::size_t ni = (index / trials) % fleet_sizes.size();
    const std::size_t trial = index % trials;
    const auto& cell = cells[i];
    csv.write_row(std::vector<std::string>{
        std::to_string(index), format_general(utilizations[ui]),
        std::to_string(fleet_sizes[ni]), std::to_string(trial),
        format_general(cell.achieved_util), std::to_string(cell.ff),
        std::to_string(cell.bf), std::to_string(cell.exact),
        std::to_string(cell.ff_slots), std::to_string(cell.bf_slots),
        std::to_string(cell.exact_slots)});
  }

  // Narrative acceptance table (this shard's fleets only when sharded).
  TextTable table({"util", "n", "fleets", "ff", "bf", "exact"});
  std::vector<std::vector<std::string>> curve_rows;
  for (std::size_t ui = 0; ui < utilizations.size(); ++ui) {
    for (std::size_t ni = 0; ni < fleet_sizes.size(); ++ni) {
      std::size_t fleets = 0, ff = 0, bf = 0, exact = 0, exact_run = 0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t index = range.begin + i;
        if (index / (fleet_sizes.size() * trials) != ui ||
            (index / trials) % fleet_sizes.size() != ni)
          continue;
        ++fleets;
        ff += static_cast<std::size_t>(cells[i].ff == 1);
        bf += static_cast<std::size_t>(cells[i].bf == 1);
        if (cells[i].exact >= 0) {
          ++exact_run;
          exact += static_cast<std::size_t>(cells[i].exact == 1);
        }
      }
      if (fleets == 0) continue;  // grid point owned entirely by other shards
      const auto ratio = [](std::size_t hits, std::size_t n) {
        return n == 0 ? std::string("n/a")
                      : format_fixed(static_cast<double>(hits) / static_cast<double>(n), 3);
      };
      table.add_row({format_general(utilizations[ui]), std::to_string(fleet_sizes[ni]),
                     std::to_string(fleets), ratio(ff, fleets), ratio(bf, fleets),
                     ratio(exact, exact_run)});
      curve_rows.push_back({format_general(utilizations[ui]), std::to_string(fleet_sizes[ni]),
                            std::to_string(fleets), ratio(ff, fleets), ratio(bf, fleets),
                            ratio(exact, exact_run)});
    }
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());

  // Aggregated curve: canonical only when this process saw every trial.
  if (!ctx.sharded()) {
    const std::string curve_path = ctx.csv_path("sweep_acceptance_ratio_curve.csv");
    CsvWriter curve(curve_path, {"target_util", "fleet_size", "fleets", "ff_ratio",
                                 "bf_ratio", "exact_ratio"});
    for (const auto& row : curve_rows) curve.write_row(row);
    std::fprintf(ctx.out, "acceptance curve written to %s\n", curve_path.c_str());
  }
  std::fprintf(ctx.out, "%zu fleets written to %s\n\n", cells.size(), csv_path.c_str());
}
