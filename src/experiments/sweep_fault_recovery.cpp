// Experiment "sweep_fault_recovery" — warm-started re-allocation across
// a fault grid (shardable, spec-driven).
//
// For each grid point (target utilization U, fleet size n, fault kind,
// trial) the sweep synthesizes a fleet at exactly U, allocates it
// optimally, freezes the slot budget at that optimum (the tightest
// resident configuration), injects ONE fault, and re-allocates through
// the online repair + warm-start path (online/reallocation.hpp).  Each
// point also re-proves the faulted instance COLD, so the CSV carries a
// per-instance differential verdict: warm_matches_cold must be 1
// everywhere (the warm start changes proof time, never answers) — the
// online property suite asserts the same against the frozen reference
// search, and CI byte-compares this CSV across --jobs 1 and 4.
//
// Faults, one app per trial round-robin where targeted: drop_slot (the
// resident system ran with one spare slot of headroom; the spare is
// lost, so the budget falls back to the bare optimum and the previous
// partition must be repaired into it), drop_frames (xi_m/k_p/xi_et
// x1.4), delay_frames (15% of the target's inter-arrival time off its
// deadline), drift (whole tent x1.3), leave (the target retires).
//
// Sharded-sweep contract (sweep_acceptance_ratio.cpp is the reference):
// cached fleet batches keyed off the generator values + salted seed,
// chunked SweepRunner fan-out, per-point CSV with a leading global
// index column, aggregate table only when unsharded.
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/slot_allocation.hpp"
#include "experiments/fixtures.hpp"
#include "online/reallocation.hpp"
#include "online/scenario.hpp"
#include "plants/fleet_synthesis.hpp"
#include "runtime/campaign_spec.hpp"
#include "runtime/experiment.hpp"
#include "runtime/sweep_runner.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

const std::vector<double> kDefaultUtilizations = {1.5, 2.2};
const std::vector<double> kDefaultFleetSizes = {8, 10};
constexpr std::int64_t kDefaultTrials = 20;
const std::vector<std::string> kDefaultFaults = {"drop_slot", "drop_frames", "delay_frames",
                                                 "drift", "leave"};
/// Every fleet must fit the frozen reference search's range, because the
/// property suite differential-checks against it.
constexpr std::size_t kMaxFleetForExact = 12;
/// Decouples batch-draw seeds from SweepRunner per-task seeds.
constexpr std::uint64_t kBatchSeedSalt = 0xFA017EC04E11D00DULL;

struct FaultCell {
  std::size_t initial_slots = 0;
  std::size_t budget = 0;       ///< slot budget after the fault (0 = outage)
  int repaired = 0;             ///< previous partition repaired to feasibility
  std::size_t warm = 0;         ///< warm incumbent handed to the search
  int feasible = 0;
  std::size_t warm_slots = 0;   ///< warm-started result (0 when infeasible)
  std::size_t cold_slots = 0;   ///< cold re-prove on the same instance
  int matches = 0;              ///< warm_slots == cold_slots
  std::size_t gap = 0;          ///< warm - proven optimum
};

std::size_t cold_optimum(const std::vector<AppSchedParams>& apps, std::size_t budget) {
  AllocationOptions options;
  options.max_slots = budget;
  try {
    return optimal_allocate(apps, options).slot_count();
  } catch (const InfeasibleError&) {
    return 0;
  }
}

}  // namespace

CPS_SWEEP_EXPERIMENT(sweep_fault_recovery,
                     "Sweep: warm-started re-allocation vs cold optimum across a "
                     "fault-injection grid (shardable, spec-driven)",
                     "sweep_fault_recovery.csv") {
  std::fprintf(ctx.out, "== Sweep: fault recovery, warm-started vs cold exact ==\n");

  const auto utilizations =
      runtime::spec_doubles(ctx.spec, "grid.utilization", kDefaultUtilizations);
  const auto fleet_sizes_raw =
      runtime::spec_doubles(ctx.spec, "grid.fleet_size", kDefaultFleetSizes);
  const auto trials =
      static_cast<std::size_t>(runtime::spec_int(ctx.spec, "grid.trials", kDefaultTrials));
  const auto faults = runtime::spec_strings(ctx.spec, "grid.faults", kDefaultFaults);
  CPS_ENSURE(!utilizations.empty() && !fleet_sizes_raw.empty() && trials >= 1 &&
                 !faults.empty(),
             "sweep_fault_recovery: grid must be non-empty");
  for (const auto& fault : faults)
    CPS_ENSURE(fault == "drop_slot" || fault == "drop_frames" || fault == "delay_frames" ||
                   fault == "drift" || fault == "leave",
               "sweep_fault_recovery: unknown fault kind '" + fault + "'");

  std::vector<std::size_t> fleet_sizes;
  for (const double n : fleet_sizes_raw) {
    CPS_ENSURE(n >= 2.0 && n <= static_cast<double>(kMaxFleetForExact) &&
                   n == static_cast<double>(static_cast<std::size_t>(n)),
               "sweep_fault_recovery: grid.fleet_size entries must be integers in [2, 12] "
               "(the reference exact search's range)");
    fleet_sizes.push_back(static_cast<std::size_t>(n));
  }

  const std::size_t total =
      utilizations.size() * fleet_sizes.size() * faults.size() * trials;
  std::fprintf(ctx.out,
               "(%zu utilizations x %zu fleet sizes x %zu faults x %zu trials = %zu "
               "instances, %d jobs%s)\n\n",
               utilizations.size(), fleet_sizes.size(), faults.size(), trials, total,
               ctx.jobs,
               ctx.sharded() ? (", shard " + std::to_string(ctx.shard_index) + "/" +
                                std::to_string(ctx.shard_count))
                                   .c_str()
                             : "");

  const auto batch_for = [&](std::size_t ui, std::size_t ni) {
    plants::FleetSynthesisSpec spec;
    spec.target_utilization = utilizations[ui];
    spec.n_apps = fleet_sizes[ni];
    const std::size_t point = ui * fleet_sizes.size() + ni;
    return experiments::sched_fleet_batch(spec, trials,
                                          runtime::task_seed(ctx.seed ^ kBatchSeedSalt, point));
  };

  // Grid decode: index -> (ui, ni, fi, trial), trial fastest.
  const std::size_t per_ni = faults.size() * trials;
  const std::size_t per_ui = fleet_sizes.size() * per_ni;

  runtime::SweepRunner sweep({ctx.jobs, ctx.seed, ctx.shard_index, ctx.shard_count});
  const auto range = sweep.range(total);
  const auto cells = sweep.run(total, [&](std::size_t index, Rng&) {
    const std::size_t ui = index / per_ui;
    const std::size_t ni = (index / per_ni) % fleet_sizes.size();
    const std::size_t fi = (index / trials) % faults.size();
    const std::size_t trial = index % trials;
    const std::string& fault = faults[fi];

    const auto batch = batch_for(ui, ni);
    std::vector<plants::SynthesizedSchedApp> fleet = (*batch)[trial].apps;

    FaultCell cell;
    // Resident baseline: the exact optimum, with the budget frozen AT it
    // (the tightest configuration a resident system would run).
    const Allocation initial = optimal_allocate(online::fleet_to_params(fleet), {});
    cell.initial_slots = initial.slot_count();
    cell.budget = cell.initial_slots;

    // Inject exactly one fault.
    const std::size_t target = trial % fleet.size();
    if (fault == "drop_slot") {
      // The resident system had one spare slot; losing it lands the
      // budget back exactly on the optimum, so the repaired previous
      // partition is precisely the warm incumbent the search needs.
      cell.budget = cell.initial_slots;
    } else if (fault == "drop_frames") {
      online::apply_drop_frames(fleet[target], 1.4);
    } else if (fault == "delay_frames") {
      online::apply_delay_frames(fleet[target], 0.15 * fleet[target].r);
    } else if (fault == "drift") {
      online::apply_drift(fleet[target], 1.3);
    } else {  // leave
      fleet.erase(fleet.begin() + static_cast<std::ptrdiff_t>(target));
    }

    const auto apps = online::fleet_to_params(fleet);
    online::ReallocationPolicy policy;  // exact_jobs 1: the sweep itself fans out
    policy.exact_max_apps = kMaxFleetForExact;
    const auto result = online::reallocate(apps, initial.slots, cell.budget, policy);
    cell.repaired = result.report.repaired ? 1 : 0;
    cell.warm = result.report.warm_incumbent;
    cell.feasible = result.feasible ? 1 : 0;
    cell.warm_slots = result.feasible ? result.allocation.slot_count() : 0;
    cell.gap = result.report.anytime_gap;

    cell.cold_slots = cold_optimum(apps, cell.budget);
    cell.matches = cell.warm_slots == cell.cold_slots ? 1 : 0;
    return cell;
  });

  const std::string csv_path = ctx.artifact_path("sweep_fault_recovery.csv");
  CsvWriter csv(csv_path, {"index", "target_util", "fleet_size", "fault", "trial",
                           "initial_slots", "budget", "repaired", "warm", "feasible",
                           "warm_slots", "cold_slots", "warm_matches_cold", "gap"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t index = range.begin + i;
    const std::size_t ui = index / per_ui;
    const std::size_t ni = (index / per_ni) % fleet_sizes.size();
    const std::size_t fi = (index / trials) % faults.size();
    const std::size_t trial = index % trials;
    const auto& cell = cells[i];
    csv.write_row(std::vector<std::string>{
        std::to_string(index), format_general(utilizations[ui]),
        std::to_string(fleet_sizes[ni]), faults[fi], std::to_string(trial),
        std::to_string(cell.initial_slots), std::to_string(cell.budget),
        std::to_string(cell.repaired), std::to_string(cell.warm),
        std::to_string(cell.feasible), std::to_string(cell.warm_slots),
        std::to_string(cell.cold_slots), std::to_string(cell.matches),
        std::to_string(cell.gap)});
  }

  // Narrative per-fault aggregate (this shard's instances only).
  TextTable table({"fault", "instances", "repaired", "feasible", "warm==cold"});
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    std::size_t instances = 0, repaired = 0, feasible = 0, matches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t index = range.begin + i;
      if ((index / trials) % faults.size() != fi) continue;
      ++instances;
      repaired += static_cast<std::size_t>(cells[i].repaired == 1);
      feasible += static_cast<std::size_t>(cells[i].feasible == 1);
      matches += static_cast<std::size_t>(cells[i].matches == 1);
    }
    if (instances == 0) continue;  // fault owned entirely by other shards
    const auto ratio = [&](std::size_t hits) {
      return format_fixed(static_cast<double>(hits) / static_cast<double>(instances), 3);
    };
    table.add_row({faults[fi], std::to_string(instances), ratio(repaired), ratio(feasible),
                   ratio(matches)});
  }
  std::fprintf(ctx.out, "%s\n", table.render().c_str());
  std::fprintf(ctx.out, "%zu instances written to %s\n\n", cells.size(), csv_path.c_str());
}
