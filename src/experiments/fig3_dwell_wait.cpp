// Experiment "fig3" — paper Figure 3: the measured relation between the
// dwell time k_dw and the wait time k_wait for the servo-motor position
// control system (Section III), including the published characteristic
// values xi_TT = 0.68 s and xi_ET = 2.16 s and the two-phase (positive
// gradient, then negative gradient) shape.
#include <cstddef>
#include <string>
#include <vector>

#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;

}  // namespace

CPS_EXPERIMENT(fig3, "Figure 3: measured dwell vs wait curve (servo motor)") {
  const auto curve = *experiments::measure_servo_curve();

  std::fprintf(ctx.out,
               "== Figure 3: dwell time vs wait time (servo motor, Section III) ==\n\n");
  TextTable characteristics({"quantity", "paper", "measured"});
  characteristics.add_row({"xi_TT [s]", "0.68", format_fixed(curve.xi_tt(), 2)});
  characteristics.add_row({"xi_ET [s]", "2.16", format_fixed(curve.xi_et(), 2)});
  characteristics.add_row({"xi_M  [s]", "~1.0", format_fixed(curve.xi_m(), 2)});
  characteristics.add_row({"k_p   [s]", "~0.3", format_fixed(curve.k_p(), 2)});
  characteristics.add_row(
      {"non-monotonic", "yes", curve.is_non_monotonic() ? "yes" : "no"});
  std::fprintf(ctx.out, "%s\n", characteristics.render().c_str());

  // The measured series, decimated for the terminal (full data to CSV).
  std::fprintf(ctx.out, "k_wait [s] -> k_dw [s]:\n");
  const auto& pts = curve.points();
  for (std::size_t i = 0; i < pts.size(); i += 5) {
    const int bar = static_cast<int>(pts[i].dwell_s * 40.0);
    std::fprintf(ctx.out, "  %5.2f  %5.2f  |%s\n", pts[i].wait_s, pts[i].dwell_s,
                 std::string(static_cast<std::size_t>(bar < 0 ? 0 : bar), '#').c_str());
  }

  const std::string csv_path = ctx.csv_path("fig3_dwell_wait.csv");
  CsvWriter csv(csv_path, {"k_wait_s", "k_dw_s"});
  for (const auto& p : pts) csv.write_row(std::vector<double>{p.wait_s, p.dwell_s}, 6);
  std::fprintf(ctx.out, "\nfull series written to %s (%zu points)\n\n", csv_path.c_str(),
               pts.size());
}
