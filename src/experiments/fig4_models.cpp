// Experiment "fig4" — paper Figure 4: the approximated relation between
// the dwell time and the wait time — the two-piece non-monotonic
// envelope, the conservative monotonic line and the (unsafe) simple
// monotonic line — fitted to the servo motor's measured curve of
// Figure 3, plus a soundness check (the measured curve must lie entirely
// below the sound models).
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dwell_wait_model.hpp"
#include "experiments/fixtures.hpp"
#include "runtime/experiment.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace cps;
using namespace cps::analysis;

}  // namespace

CPS_EXPERIMENT(fig4, "Figure 4: dwell/wait envelope models (servo motor)") {
  const auto curve = *experiments::measure_servo_curve();
  const NonMonotonicModel tent = NonMonotonicModel::fit(curve);
  const ConservativeMonotonicModel mono = ConservativeMonotonicModel::fit(curve);
  const SimpleMonotonicModel simple = SimpleMonotonicModel::fit(curve);
  const ConcaveEnvelopeModel hull(curve);

  std::fprintf(ctx.out, "== Figure 4: dwell/wait envelope models (servo motor) ==\n\n");
  TextTable params({"model", "max dwell (xi_M / xi'_M) [s]", "zero wait [s]", "sound"});
  params.add_row({"non-monotonic (2-piece)", format_fixed(tent.max_dwell(), 3),
                  format_fixed(tent.zero_wait(), 3), tent.dominates(curve) ? "yes" : "NO"});
  params.add_row({"conservative monotonic", format_fixed(mono.max_dwell(), 3),
                  format_fixed(mono.zero_wait(), 3), mono.dominates(curve) ? "yes" : "NO"});
  params.add_row({"simple monotonic (unsafe)", format_fixed(simple.max_dwell(), 3),
                  format_fixed(simple.zero_wait(), 3),
                  simple.dominates(curve) ? "yes" : "NO (by design)"});
  params.add_row({"concave envelope (" + std::to_string(hull.piece_count()) + " pieces)",
                  format_fixed(hull.max_dwell(), 3), format_fixed(hull.zero_wait(), 3),
                  hull.dominates(curve) ? "yes" : "NO"});
  std::fprintf(ctx.out, "%s\n", params.render().c_str());

  std::fprintf(ctx.out, "model dwell at selected wait times [s]:\n");
  TextTable series({"k_wait", "measured", "non-mono", "conservative", "simple", "hull"});
  for (std::size_t i = 0; i < curve.points().size(); i += 10) {
    const double w = curve.points()[i].wait_s;
    series.add_row({format_fixed(w, 2), format_fixed(curve.points()[i].dwell_s, 3),
                    format_fixed(tent.dwell(w), 3), format_fixed(mono.dwell(w), 3),
                    format_fixed(simple.dwell(w), 3), format_fixed(hull.dwell(w), 3)});
  }
  std::fprintf(ctx.out, "%s\n", series.render().c_str());

  std::fprintf(ctx.out,
               "simple monotonic max under-approximation: %.3f s "
               "(the paper's Section III argument: using it may violate deadlines)\n\n",
               simple.max_violation(curve));

  const std::string csv_path = ctx.csv_path("fig4_models.csv");
  CsvWriter csv(csv_path,
                {"k_wait_s", "measured", "non_monotonic", "conservative", "simple", "hull"});
  for (const auto& p : curve.points()) {
    csv.write_row(std::vector<double>{p.wait_s, p.dwell_s, tent.dwell(p.wait_s),
                                      mono.dwell(p.wait_s), simple.dwell(p.wait_s),
                                      hull.dwell(p.wait_s)},
                  6);
  }
  std::fprintf(ctx.out, "full series written to %s\n\n", csv_path.c_str());
}
