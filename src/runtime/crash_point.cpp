#include "runtime/crash_point.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

#include "util/signal_safe.hpp"

namespace cps::runtime {

void crash_point(const char* site) {
  const char* spec = std::getenv("CPS_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return;

  // "<site>[:<count>]"; a malformed count falls back to 1 rather than
  // throwing — crash injection must never alter a run it does not kill.
  const std::string text(spec);
  const std::size_t colon = text.rfind(':');
  const std::string wanted = colon == std::string::npos ? text : text.substr(0, colon);
  if (wanted != site) return;
  long count = 1;
  if (colon != std::string::npos) {
    count = std::strtol(text.c_str() + colon + 1, nullptr, 10);
    if (count < 1) count = 1;
  }

  static std::mutex mutex;
  static std::map<std::string, long> hits;
  long hit = 0;
  {
    std::lock_guard<std::mutex> lock(mutex);
    hit = ++hits[wanted];
  }
  if (hit != count) return;

  // Raw writes only: a crash point may sit in a forked child of a
  // multithreaded process (the supervisor's shards), where stdio locks
  // can be held by threads that do not exist — fprintf could deadlock
  // the very process the test is about to kill.
  util::safe_write_str(STDERR_FILENO, "[crash-injection] CPS_CRASH_AT=");
  util::safe_write_str(STDERR_FILENO, spec);
  util::safe_write_str(STDERR_FILENO, ": killing pid ");
  util::safe_write_dec(STDERR_FILENO, static_cast<long long>(::getpid()));
  util::safe_write_str(STDERR_FILENO, " at site '");
  util::safe_write_str(STDERR_FILENO, site);
  util::safe_write_str(STDERR_FILENO, "' (hit ");
  util::safe_write_dec(STDERR_FILENO, hit);
  util::safe_write_str(STDERR_FILENO, ")\n");
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be caught; pause until it lands so no code below a
  // crash point ever executes.
  for (;;) ::pause();
}

}  // namespace cps::runtime
