#include "runtime/crash_point.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace cps::runtime {

void crash_point(const char* site) {
  const char* spec = std::getenv("CPS_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return;

  // "<site>[:<count>]"; a malformed count falls back to 1 rather than
  // throwing — crash injection must never alter a run it does not kill.
  const std::string text(spec);
  const std::size_t colon = text.rfind(':');
  const std::string wanted = colon == std::string::npos ? text : text.substr(0, colon);
  if (wanted != site) return;
  long count = 1;
  if (colon != std::string::npos) {
    count = std::strtol(text.c_str() + colon + 1, nullptr, 10);
    if (count < 1) count = 1;
  }

  static std::mutex mutex;
  static std::map<std::string, long> hits;
  long hit = 0;
  {
    std::lock_guard<std::mutex> lock(mutex);
    hit = ++hits[wanted];
  }
  if (hit != count) return;

  std::fprintf(stderr, "[crash-injection] CPS_CRASH_AT=%s: killing pid %d at site '%s' (hit %ld)\n",
               spec, static_cast<int>(::getpid()), site, hit);
  std::fflush(stderr);
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be caught; pause until it lands so no code below a
  // crash point ever executes.
  for (;;) ::pause();
}

}  // namespace cps::runtime
