// Declarative campaign specs: the generative scenario engine's front end.
//
// A campaign spec is a small TOML-subset file (util/toml.hpp) that
// declares WHAT to run — experiment names, parameter grids, trial
// counts, seeds, the fixture-store path and a suggested shard plan —
// so the standard campaigns of the schedulability literature
// (acceptance-ratio curves over 100k+ synthetic fleets) are a config
// file instead of a recompile:
//
//   spec_version = 1
//   [campaign]
//   name        = "acceptance_ratio_small"
//   experiments = ["sweep_acceptance_ratio"]
//   seed        = 71
//   shards      = 2            # suggested plan (advisory; --shard decides)
//   [grid]
//   utilization = [0.5, 1.0, 1.5]
//   fleet_size  = [8, 12]
//   trials      = 30
//
// `cps_run --spec FILE` expands the spec deterministically: the named
// experiments run in spec order with the spec's seed and fixture store
// (explicit CLI flags win), and every non-[campaign] key is handed to
// the experiments through ExperimentContext::spec as typed parameters.
// `--spec FILE --shard i/N` and `--spec FILE --merge N` compose with
// the PR-4 shard/merge contract unchanged — the spec only picks the
// workload, never the partition.
//
// Determinism: CampaignSpec::digest() hashes the spec's canonical
// key=value rendering (sorted keys, exact float bits), so two files
// with the same VALUES — regardless of key order, comments, formatting
// — digest identically.  Fixture keys derived from spec parameters
// (e.g. the synthesized fleet batches of sweep_acceptance_ratio) mix
// those parameter values directly, which makes every spec-driven
// fixture deterministic per (spec values, seed) and shareable through
// the content-addressed store across shards and machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/toml.hpp"

namespace cps::runtime {

/// The spec-file format version this build understands.
inline constexpr std::int64_t kCampaignSpecVersion = 1;

/// One parsed, validated campaign spec.
struct CampaignSpec {
  std::string name;                      ///< campaign.name (required, non-empty)
  std::vector<std::string> experiments;  ///< campaign.experiments, in run order
  std::uint64_t seed = 0;                ///< campaign.seed (default 0x5EED5EED)
  bool has_seed = false;                 ///< campaign.seed was present
  std::string fixture_store;             ///< campaign.fixture_store ("" = none)
  std::size_t shard_plan = 1;            ///< campaign.shards (advisory, >= 1)
  std::string source;                    ///< file/label the spec was parsed from
  util::TomlTable params;                ///< every key, incl. campaign.*

  /// FNV-1a over params.canonical(): stable across key order, comments
  /// and whitespace; changes when any VALUE changes.
  std::uint64_t digest() const;
  /// digest() as 16 hex digits (tables, provenance lines).
  std::string digest_hex() const;
};

/// Validate and extract a parsed table into a CampaignSpec.  Throws
/// util::TomlError on: missing/wrong-type required keys, an unsupported
/// spec_version, an empty experiment list, unknown [campaign] keys
/// (typos must not be silently inert), or an out-of-range shard plan.
CampaignSpec make_campaign_spec(util::TomlTable table, std::string source);

/// parse + validate a spec file (util::parse_toml_file + make_campaign_spec).
CampaignSpec load_campaign_spec(const std::string& path);

// ---------------------------------------------------------------------------
// Typed parameter lookups for experiment bodies.  All of them return the
// fallback when `spec` is null (the experiment runs with its built-in
// defaults outside any campaign) or when the key is absent; a PRESENT
// key of the wrong type still throws — a spec that says trials = "30"
// must fail, not silently run the default.

double spec_double(const CampaignSpec* spec, const std::string& key, double fallback);
std::int64_t spec_int(const CampaignSpec* spec, const std::string& key,
                      std::int64_t fallback);
std::string spec_string(const CampaignSpec* spec, const std::string& key,
                        const std::string& fallback);
std::vector<double> spec_doubles(const CampaignSpec* spec, const std::string& key,
                                 std::vector<double> fallback);
std::vector<std::string> spec_strings(const CampaignSpec* spec, const std::string& key,
                                      std::vector<std::string> fallback);

}  // namespace cps::runtime
