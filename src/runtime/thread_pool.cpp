#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace cps::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  queues_.resize(threads);
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this, i]() { worker_loop(i); });
  } catch (...) {
    // Thread spawn failed partway (e.g. thread-limited container): join
    // the workers already running, then surface the error as a catchable
    // exception instead of terminating on a joinable std::thread.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::cancel_pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& queue : queues_) queue.clear();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  wake_.notify_one();
}

bool ThreadPool::take_task(std::size_t self, std::function<void()>& task) {
  if (!queues_[self].empty()) {
    task = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    auto& victim = queues_[(self + offset) % queues_.size()];
    if (!victim.empty()) {
      task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() {
        if (stopping_) return true;
        for (const auto& queue : queues_)
          if (!queue.empty()) return true;
        return false;
      });
      if (!take_task(self, task)) {
        if (stopping_) return;  // stopping and every deque drained
        continue;
      }
    }
    task();
  }
}

}  // namespace cps::runtime
