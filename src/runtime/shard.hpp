// Deterministic campaign sharding: index-range partitioning and the
// shard-CSV merge.
//
// A sweep experiment maps a global index range [0, count) through
// task_seed(seed, index); because every per-point result depends ONLY on
// its global index, any partition of the range reproduces the unsharded
// results bit-for-bit.  `cps_run --shard i/N` assigns each shard the
// CONTIGUOUS block shard_range(count, i, N) so that concatenating the
// shards' per-point CSV rows in shard order *is* the canonical
// (unsharded) artifact — that is the whole merge invariant.
//
// Shard artifacts carry a leading `index` column with the global sweep
// index; merge_sweep_csv re-verifies that the concatenation covers
// exactly 0..total-1 with no gaps or overlaps and fails loudly
// otherwise (a missing shard, a shard run with the wrong N, or a
// truncated file must never produce a silently short canonical CSV).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cps::runtime {

/// Half-open global index range of one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Contiguous block partition of [0, count) into `shard_count` ranges;
/// block sizes differ by at most one.  shard_range(c, i, N).end ==
/// shard_range(c, i+1, N).begin, so the blocks tile the range exactly.
ShardRange shard_range(std::size_t count, std::size_t shard_index, std::size_t shard_count);

/// Filename suffix of one shard's partial artifact: ".shard0of2" etc.;
/// empty for the unsharded (canonical) run.
std::string shard_suffix(std::size_t shard_index, std::size_t shard_count);

/// Write the provenance sidecar of one shard artifact
/// (`csv_path + ".meta"`): the campaign seed and the shard spec.  The
/// driver writes it after a sharded experiment succeeds; merge_sweep_csv
/// requires it and refuses to concatenate shards whose seeds differ —
/// structural index checks alone cannot tell a stale partial from a
/// re-run campaign, the sidecar can.  Kept OUTSIDE the CSV so the
/// merged bytes stay identical to the unsharded artifact.  Published
/// atomically (temp + rename) and strictly AFTER the CSV: a crash at
/// any instant leaves either no sidecar (shard treated as not landed)
/// or a whole one — never a torn file that could pass a weaker check.
void write_shard_meta(const std::string& csv_path, std::uint64_t seed,
                      std::size_t shard_index, std::size_t shard_count);

/// Merge the `shard_count` partial CSVs of `canonical_path` (the files
/// at canonical_path + shard_suffix(i, N)) into the canonical file.
/// Verifies every shard file and its .meta sidecar exist, all sidecars
/// carry the SAME campaign seed and the expected shard spec (stale or
/// mixed-campaign partials fail here), all headers are identical, and
/// the concatenated `index` column is exactly 0, 1, ..., total-1.
/// EVERY shard is validated before anything is reported: on failure the
/// single cps::Error lists every missing, stale, truncated or corrupt
/// shard (one line each), so one merge attempt diagnoses the whole
/// campaign instead of forcing serial rediscovery.  Returns the number
/// of data rows merged; the canonical file is published atomically
/// (temp + rename) and its bytes equal what an unsharded run writes
/// (same header, same rows, same order), so `cmp` against a
/// single-process artifact must pass.
std::size_t merge_sweep_csv(const std::string& canonical_path, std::size_t shard_count);

/// A half-open global-index range; `open_ended` marks a trailing range
/// whose end is unknown (the final shard never landed, so the sweep's
/// total row count cannot be derived from the partials).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool open_ended = false;
};

/// Outcome of a DEGRADED merge (merge_sweep_csv_partial): which shards
/// merged, which failed and why, and exactly which global-index ranges
/// the published partial artifact covers.
struct PartialMergeReport {
  std::size_t shard_count = 0;
  std::size_t rows_merged = 0;
  /// Shards whose rows made it into the partial canonical file.
  std::vector<std::size_t> merged_shards;
  struct ShardFailure {
    std::size_t shard = 0;
    std::string error;
  };
  /// Shards refused (missing, corrupt, stale seed, overlapping), with
  /// the full validation message each.
  std::vector<ShardFailure> failures;
  /// Covered [begin, end) index intervals, ascending, adjacent blocks
  /// coalesced.  Equal to [0, total) iff failures is empty.
  std::vector<IndexRange> covered_ranges;
  /// Complement of covered_ranges: the index ranges the partial artifact
  /// is missing.  Interior gaps are exact (both neighbors landed); a
  /// missing FINAL shard yields a trailing open_ended range.
  std::vector<IndexRange> missing_ranges() const;
  bool complete() const { return failures.empty(); }
};

/// Graceful-degradation flavour of the merge: concatenate every shard
/// that validates (same checks as merge_sweep_csv, applied per shard),
/// skip — and report — the ones that do not, and publish the partial
/// canonical file atomically with the valid rows in global-index order.
/// Gaps BETWEEN valid shards are permitted (that is the point); rows
/// within a shard must still be contiguous, and a shard overlapping an
/// earlier accepted one is refused as stale.  When no shard validates,
/// nothing is published and rows_merged is 0.  Used by
/// `cps_run --launch N --allow-partial` after a shard exhausts its
/// retries; the caller records missing_ranges() in the campaign
/// manifest.
PartialMergeReport merge_sweep_csv_partial(const std::string& canonical_path,
                                           std::size_t shard_count);

/// True iff shard `shard_index`'s partial CSV and sidecar for
/// `canonical_path` are on disk, internally consistent (slot claim, row
/// count, contiguous indices) and stamped with `expected_seed` — the
/// resume check of the ShardSupervisor: a landed shard is skipped on
/// restart, anything less is re-run.
bool shard_artifact_landed(const std::string& canonical_path, std::size_t shard_index,
                           std::size_t shard_count, std::uint64_t expected_seed);

}  // namespace cps::runtime
