// Deterministic campaign sharding: index-range partitioning and the
// shard-CSV merge.
//
// A sweep experiment maps a global index range [0, count) through
// task_seed(seed, index); because every per-point result depends ONLY on
// its global index, any partition of the range reproduces the unsharded
// results bit-for-bit.  `cps_run --shard i/N` assigns each shard the
// CONTIGUOUS block shard_range(count, i, N) so that concatenating the
// shards' per-point CSV rows in shard order *is* the canonical
// (unsharded) artifact — that is the whole merge invariant.
//
// Shard artifacts carry a leading `index` column with the global sweep
// index; merge_sweep_csv re-verifies that the concatenation covers
// exactly 0..total-1 with no gaps or overlaps and fails loudly
// otherwise (a missing shard, a shard run with the wrong N, or a
// truncated file must never produce a silently short canonical CSV).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cps::runtime {

/// Half-open global index range of one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Contiguous block partition of [0, count) into `shard_count` ranges;
/// block sizes differ by at most one.  shard_range(c, i, N).end ==
/// shard_range(c, i+1, N).begin, so the blocks tile the range exactly.
ShardRange shard_range(std::size_t count, std::size_t shard_index, std::size_t shard_count);

/// Filename suffix of one shard's partial artifact: ".shard0of2" etc.;
/// empty for the unsharded (canonical) run.
std::string shard_suffix(std::size_t shard_index, std::size_t shard_count);

/// Write the provenance sidecar of one shard artifact
/// (`csv_path + ".meta"`): the campaign seed and the shard spec.  The
/// driver writes it after a sharded experiment succeeds; merge_sweep_csv
/// requires it and refuses to concatenate shards whose seeds differ —
/// structural index checks alone cannot tell a stale partial from a
/// re-run campaign, the sidecar can.  Kept OUTSIDE the CSV so the
/// merged bytes stay identical to the unsharded artifact.
void write_shard_meta(const std::string& csv_path, std::uint64_t seed,
                      std::size_t shard_index, std::size_t shard_count);

/// Merge the `shard_count` partial CSVs of `canonical_path` (the files
/// at canonical_path + shard_suffix(i, N)) into the canonical file.
/// Verifies every shard file and its .meta sidecar exist, all sidecars
/// carry the SAME campaign seed and the expected shard spec (stale or
/// mixed-campaign partials fail here), all headers are identical, and
/// the concatenated `index` column is exactly 0, 1, ..., total-1;
/// throws cps::Error naming the offending file on any gap, overlap, or
/// mismatch.  Returns the number of data rows merged.  The merged bytes
/// equal what an unsharded run writes (same header, same rows, same
/// order), so `cmp` against a single-process artifact must pass.
std::size_t merge_sweep_csv(const std::string& canonical_path, std::size_t shard_count);

}  // namespace cps::runtime
