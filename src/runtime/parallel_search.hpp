// Deterministic parallel fan-out for branch-and-bound style searches.
//
// SweepRunner handles embarrassingly parallel grids whose tasks must not
// share state.  Exact searches are different: subtree tasks WANT to share
// one monotone incumbent (the best solution found so far) so that a bound
// proven by one worker prunes every other worker's subtree.  ParallelSearch
// is the primitive for that shape, built on the same work-stealing
// ThreadPool:
//
//  * the caller decomposes the search into subtree tasks (canonical
//    order), each a closure over shared read-only problem facts plus a
//    SharedIncumbent;
//  * map() runs the tasks across the pool and returns their values in
//    task-index order, so any reduction the caller performs is
//    deterministic;
//  * the incumbent is an atomic monotone minimum — racing improvements
//    only ever tighten the bound, so the final minimum (and therefore the
//    proven optimum of a sound branch-and-bound) is independent of the
//    worker count and of scheduling order.  Only integers cross threads;
//    no floating-point accumulation depends on the schedule.
//
// Determinism contract of a search built on this primitive: the proven
// optimum is schedule-independent; anything beyond the optimum (e.g. the
// witness partition an allocator returns) must be reconstructed by a
// canonical sequential pass seeded with that optimum, never taken from
// whichever worker happened to finish first.  analysis/slot_allocation.cpp
// is the reference user (see docs/ARCHITECTURE.md, "parallel exact
// search").
//
// map_timed() + list_schedule_makespan() support the strong-scaling
// critical-path emulation used by bench/alloc_parallel.cpp: run the task
// list sequentially, record per-task wall times, then compute the
// makespan a greedy work-stealing schedule would reach on N dedicated
// cores — reproducible on the single-core CI container, same idea as
// bench/campaign_scaling.cpp's sharded critical paths.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/error.hpp"

namespace cps::runtime {

/// Monotone shared bound of a minimizing branch-and-bound: workers read it
/// to prune and CAS it down when they find a better complete solution.
/// All operations are relaxed — the incumbent is a bound, not a
/// synchronization point, and a stale read only delays (never breaks)
/// pruning.
class SharedIncumbent {
 public:
  /// Start at `initial` (typically a heuristic upper bound).
  explicit SharedIncumbent(std::uint64_t initial) : value_(initial) {}

  /// Current bound (may be stale under concurrency; always an upper bound
  /// on the final value).
  std::uint64_t load() const { return value_.load(std::memory_order_relaxed); }

  /// Lower the incumbent to `candidate` if it improves it.  Returns true
  /// when this call performed the improvement.
  bool improve(std::uint64_t candidate) {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed))
        return true;
    }
    return false;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

/// Fan-out knobs of one search.
struct ParallelSearchOptions {
  /// Worker threads; <= 1 runs every task inline on the calling thread in
  /// task-index order.
  int jobs = 1;
};

/// Deterministic parallel map over a task index range (see the file
/// comment for the sharing and determinism contract).
class ParallelSearch {
 public:
  /// Capture the fan-out options; no threads spawn until map().
  explicit ParallelSearch(ParallelSearchOptions options = {}) : options_(options) {}

  /// Worker-thread count the next map() will use.
  int jobs() const { return options_.jobs; }

  /// Evaluate fn(index) for every index in [0, count) and return the
  /// results in index order.  fn may share monotone state (a
  /// SharedIncumbent, relaxed atomics) across tasks; any other shared
  /// state must be read-only.  An exception thrown by a task propagates
  /// after the pending tasks are cancelled.
  template <typename Fn>
  auto map(std::size_t count, Fn fn) -> std::vector<decltype(fn(std::size_t{}))> {
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results;
    results.reserve(count);
    if (count == 0) return results;

    if (options_.jobs <= 1) {
      for (std::size_t i = 0; i < count; ++i) results.push_back(fn(i));
      return results;
    }

    const std::size_t workers =
        std::min(static_cast<std::size_t>(options_.jobs), count);
    ThreadPool pool(workers);
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
    try {
      for (auto& future : futures) results.push_back(future.get());
    } catch (...) {
      pool.cancel_pending();
      throw;
    }
    return results;
  }

  /// map() forced inline (one task at a time, index order), recording each
  /// task's wall-clock seconds into `seconds`.  This is the measurement
  /// half of the critical-path emulation: shared-incumbent updates are
  /// applied in canonical completion order, so the recorded durations are
  /// reproducible.
  template <typename Fn>
  auto map_timed(std::size_t count, Fn fn, std::vector<double>& seconds)
      -> std::vector<decltype(fn(std::size_t{}))> {
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results;
    results.reserve(count);
    seconds.clear();
    seconds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto start = std::chrono::steady_clock::now();
      results.push_back(fn(i));
      seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
    }
    return results;
  }

  /// Makespan of greedily list-scheduling `task_seconds` (in order) onto
  /// `workers` cores, each task to the earliest-free worker — the
  /// schedule a work-stealing pool approximates on dedicated cores.
  static double list_schedule_makespan(const std::vector<double>& task_seconds, int workers) {
    CPS_ENSURE(workers >= 1, "list_schedule_makespan: need at least one worker");
    std::vector<double> free_at(static_cast<std::size_t>(workers), 0.0);
    for (const double task : task_seconds) {
      auto slot = std::min_element(free_at.begin(), free_at.end());
      *slot += std::max(0.0, task);
    }
    return *std::max_element(free_at.begin(), free_at.end());
  }

 private:
  ParallelSearchOptions options_;
};

}  // namespace cps::runtime
