// Persistent, content-addressed on-disk layer of the fixture cache.
//
// One cps_run process computes a fixture once and shares it in memory
// (runtime/fixture_cache.hpp); a CAMPAIGN — many cps_run processes, e.g.
// the shards of `--shard i/N` or successive invocations reproducing
// different figures — previously recomputed every fixture per process.
// FixtureStore makes the cache two-level: fixtures whose codec is
// registered are persisted under `--fixture-store DIR`, so the first
// process in a campaign pays the compute and every later process (on
// this or any other machine sharing the directory) loads bytes instead.
//
// Contracts, mirroring the in-memory layer:
//  * Content addressing: the file name is the FixtureKey digest, and the
//    FULL key material is stored in the file and re-verified on every
//    load — a 64-bit digest collision throws loudly instead of silently
//    aliasing a different fixture (same contract as a memory hit).
//  * Bit identity: codecs round-trip IEEE-754 bit patterns exactly
//    (util/serialize.hpp), so a disk hit returns a value bit-identical
//    to what a miss would compute and experiment CSVs do not depend on
//    the store being cold, warm, or absent.
//  * Corruption is loud but survivable: a truncated, checksummed-wrong,
//    or version-skewed file warns on stderr, counts in stats().invalid,
//    and falls back to recompute (which then overwrites the bad file).
//  * Concurrent writers are safe: files are published with a
//    write-to-temp + atomic-rename, so a reader never observes a torn
//    file even while the shards of a campaign warm the store in parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace cps::runtime {

class FixtureStore {
 public:
  /// Open (creating if needed) the store rooted at `directory`.  Throws
  /// cps::Error when the directory cannot be created.
  explicit FixtureStore(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Look up `key` ("<domain>/<digest>") on disk.  Returns the payload
  /// bytes when a valid file with matching `format` and `material` is
  /// present; std::nullopt when the file is absent, format-skewed, or
  /// corrupt (the latter two warn and count as invalid).  Throws
  /// cps::Error when the stored key material differs from `material` —
  /// a digest collision must never silently alias a fixture.
  std::optional<std::string> load(const std::string& key, std::string_view format,
                                  std::string_view material) const;

  /// Persist `payload` for `key` atomically (unique-per-process O_EXCL
  /// temp file, fsync, then rename).  Two processes racing the same
  /// digest each write their own temp and the second rename wins with a
  /// whole file — a reader can never observe a torn one.  A failure to
  /// write warns and is otherwise ignored: the store is an accelerator,
  /// never a correctness dependency.
  void save(const std::string& key, std::string_view format, std::string_view material,
            std::string_view payload) const;

  /// Monotonic per-process counters.
  struct Stats {
    std::size_t disk_hits = 0;    ///< loads served from a valid file
    std::size_t disk_misses = 0;  ///< loads that found no usable file
    std::size_t writes = 0;       ///< files published by save()
    std::size_t invalid = 0;      ///< corrupt/skewed files encountered
  };
  Stats stats() const;

  /// Reclassify the most recent load() hit whose payload then failed to
  /// decode at the cache layer (hit -> miss + invalid).  The store
  /// verifies the container; only the codec can judge the payload — this
  /// keeps the counters cps_run prints honest for that split.
  void record_undecodable() const;

  /// Filesystem path a key maps to (exposed for tests and diagnostics).
  std::string path_of(const std::string& key) const;

  /// Per-domain on-disk usage of one fixture family (one `DIR/<domain>/`
  /// subdirectory), as reported by `cps_run --store-stats`.
  struct DomainUsage {
    std::string domain;            ///< fixture family (subdirectory name)
    std::size_t files = 0;         ///< number of .fix files
    std::uintmax_t bytes = 0;      ///< total payload bytes on disk
    double oldest_age_seconds = 0.0;  ///< age of the least recently used file
    double newest_age_seconds = 0.0;  ///< age of the most recently used file
  };

  /// Scan the store and report usage per domain, sorted by domain name.
  /// Ages are relative to now; load() hits bump a file's mtime, so mtimes
  /// double as recency stamps for the LRU eviction below.
  std::vector<DomainUsage> usage() const;

  /// Outcome of one gc_to_max_bytes() pass.
  struct GcResult {
    std::size_t scanned = 0;       ///< .fix files found
    std::size_t evicted = 0;       ///< files unlinked
    std::size_t kept_in_use = 0;   ///< eviction candidates spared (touched)
    std::uintmax_t bytes_before = 0;  ///< store size entering the pass
    std::uintmax_t bytes_after = 0;   ///< store size leaving the pass
  };

  /// LRU eviction: unlink least-recently-used .fix files (oldest mtime
  /// first, ties by path) until the store holds at most `max_bytes` —
  /// except files this process touched (loaded or wrote), which are NEVER
  /// evicted; unlinks are atomic, so a concurrent reader either sees the
  /// whole file or recomputes (the store is an accelerator, never a
  /// correctness dependency).  Whole passes are serialized across
  /// processes by an advisory flock on `DIR/.gc.lock`, and each victim is
  /// re-stat'ed immediately before its unlink — a file another process
  /// loaded or republished since the scan counts as in-use and is spared,
  /// so two simultaneous GCs can neither double-unlink nor evict a file
  /// the other process just published.  The pass also reclaims temp files
  /// (".tmp.") older than an hour, the debris of crashed writers.
  /// Invoked by `cps_run --store-gc-max-bytes`.
  GcResult gc_to_max_bytes(std::uintmax_t max_bytes) const;

 private:
  std::string directory_;
  mutable std::mutex mutex_;
  mutable Stats stats_;
  /// Files this process loaded or published — gc_to_max_bytes() never
  /// evicts them (they belong to the current run).
  mutable std::unordered_set<std::string> touched_;
};

}  // namespace cps::runtime
