#include "runtime/fixture_cache.hpp"

#include <cstring>

namespace cps::runtime {

FixtureKey::FixtureKey(std::string domain) : domain_(std::move(domain)) {}

void FixtureKey::mix_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 0x100000001b3ULL;  // FNV-1a prime
  }
  material_.append(reinterpret_cast<const char*>(bytes), size);
}

FixtureKey& FixtureKey::add(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof(bits));
  mix_bytes(&bits, sizeof(bits));
  return *this;
}

FixtureKey& FixtureKey::add(std::uint64_t value) {
  mix_bytes(&value, sizeof(value));
  return *this;
}

FixtureKey& FixtureKey::add(std::string_view text) {
  const std::uint64_t size = text.size();  // length prefix: "ab"+"c" != "a"+"bc"
  mix_bytes(&size, sizeof(size));
  mix_bytes(text.data(), text.size());
  return *this;
}

FixtureKey& FixtureKey::add(const linalg::Matrix& m) {
  add(static_cast<std::uint64_t>(m.rows()));
  add(static_cast<std::uint64_t>(m.cols()));
  const double* data = m.data();
  for (std::size_t i = 0; i < m.element_count(); ++i) add(data[i]);
  return *this;
}

FixtureKey& FixtureKey::add(const linalg::Vector& v) {
  add(static_cast<std::uint64_t>(v.size()));
  const double* data = v.data();
  for (std::size_t i = 0; i < v.size(); ++i) add(data[i]);
  return *this;
}

std::string FixtureKey::str() const {
  static const char* hex = "0123456789abcdef";
  std::string out = domain_;
  out.push_back('/');
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(hex[(hash_ >> shift) & 0xF]);
  return out;
}

FixtureCache& FixtureCache::instance() {
  static FixtureCache cache;
  return cache;
}

FixtureCache::Stats FixtureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

void FixtureCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

void FixtureCache::set_store(std::shared_ptr<FixtureStore> store) {
  std::lock_guard<std::mutex> lock(mutex_);
  store_ = std::move(store);
}

std::shared_ptr<FixtureStore> FixtureCache::store() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

}  // namespace cps::runtime
