#include "runtime/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "runtime/crash_point.hpp"
#include "util/error.hpp"

namespace cps::runtime {

ShardRange shard_range(std::size_t count, std::size_t shard_index, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1, "shard_range: shard count must be >= 1");
  CPS_ENSURE(shard_index < shard_count, "shard_range: shard index out of range");
  // count * i stays well inside 64 bits for any realistic grid (the
  // driver caps shard counts; grids are << 2^32 points).
  return ShardRange{count * shard_index / shard_count,
                    count * (shard_index + 1) / shard_count};
}

std::string shard_suffix(std::size_t shard_index, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1 && shard_index < shard_count,
             "shard_suffix: invalid shard spec");
  if (shard_count == 1) return std::string();
  return ".shard" + std::to_string(shard_index) + "of" + std::to_string(shard_count);
}

namespace {

/// Canonical spelling of the sidecar's seed line.
std::string seed_line_for(std::uint64_t seed) {
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "%016llx",
                static_cast<unsigned long long>(seed));
  return "seed=0x" + std::string(seed_hex);
}

/// Atomic text-file publication: unique temp in the same directory, then
/// rename.  A crash (or kill-signal) at any instant leaves either the
/// old file or the new one — never a torn in-between — which is what
/// lets the supervisor treat "file present" as "file whole".
void write_text_atomic(const std::string& path, const std::string& contents,
                       const char* what) {
  const std::string temp_path = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp_path, std::ios::trunc | std::ios::binary);
    if (!out)
      throw Error(std::string(what) + ": cannot open '" + temp_path + "' for writing");
    out << contents;
    out.flush();
    if (!out) {
      std::error_code error;
      std::filesystem::remove(temp_path, error);
      throw Error(std::string(what) + ": short write to '" + temp_path + "'");
    }
  }
  std::error_code error;
  std::filesystem::rename(temp_path, path, error);
  if (error) {
    std::filesystem::remove(temp_path, error);
    throw Error(std::string(what) + ": cannot publish '" + path + "': " + error.message());
  }
}

/// Parse the leading `index` field of a data row; npos on failure.
std::size_t leading_index(const std::string& row) {
  const std::size_t comma = row.find(',');
  const std::string field = comma == std::string::npos ? row : row.substr(0, comma);
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(field, &consumed);
    if (consumed != field.size()) return std::string::npos;
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    return std::string::npos;
  }
}

/// Everything the merge needs to know about ONE shard's partial artifact,
/// with every defect recorded instead of thrown: the strict merge reports
/// them all at once, the partial merge skips the shard, and the resume
/// check treats any defect as "not landed".
struct ShardScan {
  std::size_t shard = 0;
  std::vector<std::string> errors;  ///< empty == the shard validates
  std::string seed_line;            ///< sidecar campaign seed ("seed=0x...")
  std::string header;
  std::vector<std::string> rows;            ///< data rows, verbatim
  std::size_t first_index = 0, last_index = 0;  ///< valid iff ok() && !rows.empty()
  bool ok() const { return errors.empty(); }
  std::string joined_errors() const {
    std::string joined;
    for (const auto& error : errors) {
      if (!joined.empty()) joined += "; ";
      joined += error;
    }
    return joined;
  }
};

ShardScan scan_shard(const std::string& canonical_path, std::size_t shard,
                     std::size_t shard_count) {
  ShardScan scan;
  scan.shard = shard;
  const std::string csv_path = canonical_path + shard_suffix(shard, shard_count);
  const std::string meta_path = csv_path + ".meta";

  // Provenance sidecar first: it is written LAST on the shard machine,
  // so its absence or truncation means the shard never completed (or its
  // publication crashed mid-way) regardless of how plausible the CSV
  // looks.
  std::size_t meta_rows = 0;
  bool meta_rows_known = false;
  {
    std::ifstream in(meta_path);
    if (!in) {
      scan.errors.push_back("missing sidecar '" + meta_path +
                            "' (shard not run, not finished, or produced with a "
                            "different --shard N)");
    } else {
      std::string seed_line, shard_line, rows_line;
      std::getline(in, seed_line);
      std::getline(in, shard_line);
      const bool has_rows_line = static_cast<bool>(std::getline(in, rows_line));
      if (!has_rows_line) {
        scan.errors.push_back("truncated sidecar '" + meta_path +
                              "' (interrupted publication; re-run this shard)");
      } else {
        if (seed_line.rfind("seed=0x", 0) != 0 || seed_line.size() != 7 + 16) {
          scan.errors.push_back("sidecar '" + meta_path + "' has a malformed seed line '" +
                                seed_line + "'");
        } else {
          scan.seed_line = seed_line;
        }
        const std::string expected_shard =
            "shard=" + std::to_string(shard) + "/" + std::to_string(shard_count);
        if (shard_line != expected_shard)
          scan.errors.push_back("sidecar '" + meta_path + "' claims '" + shard_line +
                                "', expected '" + expected_shard +
                                "' (renamed or wrong-N shard file?)");
        if (rows_line.rfind("rows=", 0) != 0) {
          scan.errors.push_back("sidecar '" + meta_path + "' has a malformed rows line '" +
                                rows_line + "'");
        } else {
          try {
            meta_rows = static_cast<std::size_t>(std::stoull(rows_line.substr(5)));
            meta_rows_known = true;
          } catch (const std::exception&) {
            scan.errors.push_back("sidecar '" + meta_path + "' has a malformed rows line '" +
                                  rows_line + "'");
          }
        }
      }
    }
  }

  std::ifstream in(csv_path);
  if (!in) {
    scan.errors.push_back("missing shard file '" + csv_path +
                          "' (was this shard run, and with the same --shard N?)");
    return scan;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) {
    scan.errors.push_back("shard file '" + csv_path + "' is empty");
    return scan;
  }
  scan.header = lines.front();

  // Row-count-vs-sidecar check: a partial truncated AFTER its sidecar was
  // stamped (interrupted copy from a shard machine) can keep a contiguous
  // index column; only the recorded count catches it.
  if (meta_rows_known && lines.size() - 1 != meta_rows) {
    scan.errors.push_back("'" + csv_path + "' has " + std::to_string(lines.size() - 1) +
                          " data rows but its sidecar recorded " + std::to_string(meta_rows) +
                          " (truncated or modified partial)");
    return scan;
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t index = leading_index(lines[i]);
    if (index == std::string::npos) {
      scan.errors.push_back("row " + std::to_string(i) + " of '" + csv_path +
                            "' has a non-numeric index field (sweep artifacts must lead "
                            "with the global sweep index)");
      return scan;
    }
    if (scan.rows.empty()) {
      scan.first_index = index;
    } else if (index != scan.last_index + 1) {
      scan.errors.push_back("'" + csv_path + "' jumps from index " +
                            std::to_string(scan.last_index) + " to " + std::to_string(index) +
                            " (rows within a shard must be contiguous)");
      return scan;
    }
    scan.last_index = index;
    scan.rows.push_back(std::move(lines[i]));
  }
  return scan;
}

/// Render the sidecar contents for (seed, i/N, row count) — also the
/// comparison form merge uses.
std::string meta_contents(std::uint64_t seed, std::size_t shard_index,
                          std::size_t shard_count, std::size_t rows) {
  return seed_line_for(seed) + "\nshard=" + std::to_string(shard_index) + "/" +
         std::to_string(shard_count) + "\nrows=" + std::to_string(rows) + "\n";
}

}  // namespace

void write_shard_meta(const std::string& csv_path, std::uint64_t seed,
                      std::size_t shard_index, std::size_t shard_count) {
  // Count the partial's data rows NOW, while the file is known-complete:
  // the sidecar then lets merge detect a partial truncated in transit —
  // a lost tail of the FINAL shard is invisible to the index-contiguity
  // check alone.
  std::ifstream in(csv_path);
  if (!in)
    throw Error("shard meta: missing shard file '" + csv_path +
                "' (the sidecar is stamped only after the CSV is published)");
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  if (lines == 0) throw Error("shard meta: shard file '" + csv_path + "' is empty");
  // Crash window: the CSV is published but its provenance is not; merge
  // and resume both treat the shard as NOT landed until the sidecar's
  // rename below completes.
  crash_point("meta_publish");
  write_text_atomic(csv_path + ".meta",
                    meta_contents(seed, shard_index, shard_count, lines - 1), "shard meta");
}

std::size_t merge_sweep_csv(const std::string& canonical_path, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1, "merge: shard count must be >= 1");

  std::vector<ShardScan> scans;
  scans.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard)
    scans.push_back(scan_shard(canonical_path, shard, shard_count));

  // Collect EVERY problem before reporting: a campaign with three dead
  // shards must name all three in one message, not force three
  // merge-fail-fix cycles.
  std::vector<std::string> problems;
  for (const auto& scan : scans)
    for (const auto& error : scan.errors)
      problems.push_back("shard " + std::to_string(scan.shard) + "/" +
                         std::to_string(shard_count) + ": " + error);

  // Cross-shard checks only relate shards that validated on their own;
  // their own defects are already listed above.
  const ShardScan* reference = nullptr;
  for (const auto& scan : scans)
    if (scan.ok()) {
      reference = &scan;
      break;
    }
  if (reference != nullptr) {
    for (const auto& scan : scans) {
      if (!scan.ok() || &scan == reference) continue;
      if (scan.seed_line != reference->seed_line)
        problems.push_back("shard " + std::to_string(scan.shard) + "/" +
                           std::to_string(shard_count) + ": campaign seed '" +
                           scan.seed_line + "' differs from shard " +
                           std::to_string(reference->shard) + "'s '" + reference->seed_line +
                           "' — partials from different campaigns; re-run every shard "
                           "with one --seed");
      if (scan.header != reference->header)
        problems.push_back("shard " + std::to_string(scan.shard) + "/" +
                           std::to_string(shard_count) + ": header '" + scan.header +
                           "' differs from shard " + std::to_string(reference->shard) +
                           "'s '" + reference->header + "'");
    }
    // Index continuity across consecutive VALID shards (an invalid shard
    // already reported; continuity across it is unverifiable).
    std::size_t expected = 0;
    bool position_known = true;  // false after skipping an invalid shard
    for (const auto& scan : scans) {
      if (!scan.ok()) {
        position_known = false;
        continue;
      }
      if (scan.rows.empty()) continue;
      if (position_known && scan.first_index != expected) {
        const char* kind = scan.first_index < expected ? "overlap" : "gap";
        problems.push_back("shard " + std::to_string(scan.shard) + "/" +
                           std::to_string(shard_count) + ": " + kind + " at index " +
                           std::to_string(scan.first_index) + " (expected index " +
                           std::to_string(expected) + " next)");
      }
      expected = scan.last_index + 1;
      position_known = true;
    }
  }

  if (!problems.empty()) {
    std::string what = "merge: cannot merge '" + canonical_path + "': " +
                       std::to_string(problems.size()) + " problem(s) across " +
                       std::to_string(shard_count) + " shards:";
    for (const auto& problem : problems) what += "\n  - " + problem;
    throw Error(what);
  }

  std::string merged = scans.front().header + "\n";
  std::size_t rows = 0;
  for (const auto& scan : scans)
    for (const auto& row : scan.rows) {
      merged += row;
      merged += '\n';
      ++rows;
    }
  write_text_atomic(canonical_path, merged, "merge");
  return rows;
}

PartialMergeReport merge_sweep_csv_partial(const std::string& canonical_path,
                                           std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1, "merge: shard count must be >= 1");
  PartialMergeReport report;
  report.shard_count = shard_count;

  std::vector<ShardScan> scans;
  scans.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard)
    scans.push_back(scan_shard(canonical_path, shard, shard_count));

  const ShardScan* reference = nullptr;
  for (const auto& scan : scans)
    if (scan.ok()) {
      reference = &scan;
      break;
    }

  std::string merged;
  std::size_t next_free = 0;  // one past the last accepted index
  bool any_accepted_rows = false;
  for (const auto& scan : scans) {
    if (!scan.ok()) {
      report.failures.push_back({scan.shard, scan.joined_errors()});
      continue;
    }
    if (scan.seed_line != reference->seed_line) {
      report.failures.push_back(
          {scan.shard, "campaign seed '" + scan.seed_line + "' differs from shard " +
                           std::to_string(reference->shard) + "'s '" + reference->seed_line +
                           "' (stale partial from another campaign)"});
      continue;
    }
    if (scan.header != reference->header) {
      report.failures.push_back({scan.shard, "header '" + scan.header +
                                                 "' differs from shard " +
                                                 std::to_string(reference->shard) + "'s '" +
                                                 reference->header + "'"});
      continue;
    }
    if (!scan.rows.empty() && any_accepted_rows && scan.first_index < next_free) {
      report.failures.push_back(
          {scan.shard, "rows overlap an earlier shard (starts at index " +
                           std::to_string(scan.first_index) + ", index " +
                           std::to_string(next_free) + " already covered)"});
      continue;
    }
    report.merged_shards.push_back(scan.shard);
    if (scan.rows.empty()) continue;
    for (const auto& row : scan.rows) {
      merged += row;
      merged += '\n';
    }
    report.rows_merged += scan.rows.size();
    // Coalesce adjacent blocks so covered_ranges names maximal intervals.
    if (!report.covered_ranges.empty() && report.covered_ranges.back().end == scan.first_index)
      report.covered_ranges.back().end = scan.last_index + 1;
    else
      report.covered_ranges.push_back({scan.first_index, scan.last_index + 1, false});
    next_free = scan.last_index + 1;
    any_accepted_rows = true;
  }

  if (reference != nullptr)
    write_text_atomic(canonical_path, reference->header + "\n" + merged, "partial merge");
  return report;
}

std::vector<IndexRange> PartialMergeReport::missing_ranges() const {
  std::vector<IndexRange> missing;
  if (complete()) return missing;
  std::size_t cursor = 0;
  for (const auto& range : covered_ranges) {
    if (range.begin > cursor) missing.push_back({cursor, range.begin, false});
    cursor = range.end;
  }
  // The total row count of the sweep is only derivable from the FINAL
  // shard's partial; when that shard is among the failures the trailing
  // missing range has no known end.
  const bool final_shard_merged =
      std::find(merged_shards.begin(), merged_shards.end(), shard_count - 1) !=
      merged_shards.end();
  if (!final_shard_merged) missing.push_back({cursor, 0, true});
  return missing;
}

bool shard_artifact_landed(const std::string& canonical_path, std::size_t shard_index,
                           std::size_t shard_count, std::uint64_t expected_seed) {
  const ShardScan scan = scan_shard(canonical_path, shard_index, shard_count);
  return scan.ok() && scan.seed_line == seed_line_for(expected_seed);
}

}  // namespace cps::runtime
