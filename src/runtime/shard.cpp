#include "runtime/shard.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace cps::runtime {

ShardRange shard_range(std::size_t count, std::size_t shard_index, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1, "shard_range: shard count must be >= 1");
  CPS_ENSURE(shard_index < shard_count, "shard_range: shard index out of range");
  // count * i stays well inside 64 bits for any realistic grid (the
  // driver caps shard counts; grids are << 2^32 points).
  return ShardRange{count * shard_index / shard_count,
                    count * (shard_index + 1) / shard_count};
}

std::string shard_suffix(std::size_t shard_index, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1 && shard_index < shard_count,
             "shard_suffix: invalid shard spec");
  if (shard_count == 1) return std::string();
  return ".shard" + std::to_string(shard_index) + "of" + std::to_string(shard_count);
}

namespace {

/// Read every line of a shard file verbatim (newline stripped);
/// throws cps::Error when the file is absent or empty.
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw Error("merge: missing shard file '" + path +
                "' (was this shard run, and with the same --shard N?)");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.empty()) throw Error("merge: shard file '" + path + "' is empty");
  return lines;
}

/// Render the sidecar contents for (seed, i/N, row count) — also the
/// comparison form merge uses.
std::string meta_contents(std::uint64_t seed, std::size_t shard_index,
                          std::size_t shard_count, std::size_t rows) {
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "%016llx",
                static_cast<unsigned long long>(seed));
  return "seed=0x" + std::string(seed_hex) + "\nshard=" + std::to_string(shard_index) + "/" +
         std::to_string(shard_count) + "\nrows=" + std::to_string(rows) + "\n";
}

/// Parse the leading `index` field of a data row.
std::size_t leading_index(const std::string& row, const std::string& path) {
  const std::size_t comma = row.find(',');
  const std::string field = comma == std::string::npos ? row : row.substr(0, comma);
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument(field);
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    throw Error("merge: row in '" + path + "' has a non-numeric index field '" + field +
                "' (sweep artifacts must lead with the global sweep index)");
  }
}

}  // namespace

void write_shard_meta(const std::string& csv_path, std::uint64_t seed,
                      std::size_t shard_index, std::size_t shard_count) {
  // Count the partial's data rows NOW, while the file is known-complete:
  // the sidecar then lets merge detect a partial truncated in transit —
  // a lost tail of the FINAL shard is invisible to the index-contiguity
  // check alone.
  const std::size_t rows = read_lines(csv_path).size() - 1;  // minus header
  const std::string path = csv_path + ".meta";
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("shard meta: cannot open '" + path + "' for writing");
  out << meta_contents(seed, shard_index, shard_count, rows);
  if (!out) throw Error("shard meta: short write to '" + path + "'");
}

std::size_t merge_sweep_csv(const std::string& canonical_path, std::size_t shard_count) {
  CPS_ENSURE(shard_count >= 1, "merge: shard count must be >= 1");

  // Provenance first: every shard's sidecar must exist, claim the slot
  // its filename claims, and carry the SAME campaign seed.  The index
  // checks below verify structure; only the sidecar catches a stale
  // partial left behind by an earlier campaign (re-run with a different
  // --seed, or only some shards re-run).
  std::string seed_line;
  std::vector<std::size_t> expected_rows(shard_count, 0);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::string path =
        canonical_path + shard_suffix(shard, shard_count) + ".meta";
    std::ifstream in(path);
    if (!in)
      throw Error("merge: missing shard sidecar '" + path +
                  "' (shards must be produced by `cps_run --shard " +
                  std::to_string(shard) + "/" + std::to_string(shard_count) + "`)");
    std::string this_seed, this_shard, this_rows;
    std::getline(in, this_seed);
    std::getline(in, this_shard);
    std::getline(in, this_rows);
    const std::string expected_shard =
        "shard=" + std::to_string(shard) + "/" + std::to_string(shard_count);
    if (this_shard != expected_shard)
      throw Error("merge: sidecar '" + path + "' claims '" + this_shard + "', expected '" +
                  expected_shard + "' (renamed or wrong-N shard file?)");
    if (shard == 0) {
      seed_line = this_seed;
    } else if (this_seed != seed_line) {
      throw Error("merge: shard seeds differ ('" + this_seed + "' in '" + path + "' vs '" +
                  seed_line + "' in shard 0) — partials from different campaigns; re-run "
                  "every shard with one --seed");
    }
    if (this_rows.rfind("rows=", 0) != 0)
      throw Error("merge: sidecar '" + path + "' has no rows line (old or corrupt sidecar)");
    try {
      expected_rows[shard] = static_cast<std::size_t>(std::stoull(this_rows.substr(5)));
    } catch (const std::exception&) {
      throw Error("merge: sidecar '" + path + "' has a malformed rows line '" + this_rows +
                  "'");
    }
  }

  std::string header;
  std::vector<std::string> merged_rows;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    const std::string path = canonical_path + shard_suffix(shard, shard_count);
    const auto lines = read_lines(path);
    // Row-count-vs-sidecar check: a partial truncated AFTER its sidecar
    // was stamped (interrupted copy from a shard machine) would pass the
    // index-contiguity check below when it is the last shard; the
    // recorded count catches it regardless of position.
    if (lines.size() - 1 != expected_rows[shard])
      throw Error("merge: '" + path + "' has " + std::to_string(lines.size() - 1) +
                  " data rows but its sidecar recorded " +
                  std::to_string(expected_rows[shard]) + " (truncated or modified partial)");
    if (shard == 0) {
      header = lines.front();
    } else if (lines.front() != header) {
      throw Error("merge: header of '" + path + "' differs from shard 0 ('" + lines.front() +
                  "' vs '" + header + "')");
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::size_t index = leading_index(lines[i], path);
      const std::size_t expected = merged_rows.size();
      if (index < expected)
        throw Error("merge: overlap at index " + std::to_string(index) + " in '" + path +
                    "' (already covered by an earlier shard)");
      if (index > expected)
        throw Error("merge: gap before index " + std::to_string(index) + " in '" + path +
                    "' (expected index " + std::to_string(expected) +
                    " next; a shard is missing rows)");
      merged_rows.push_back(lines[i]);
    }
  }

  std::ofstream out(canonical_path, std::ios::trunc);
  if (!out) throw Error("merge: cannot open '" + canonical_path + "' for writing");
  out << header << '\n';
  for (const auto& row : merged_rows) out << row << '\n';
  if (!out) throw Error("merge: short write to '" + canonical_path + "'");
  return merged_rows.size();
}

}  // namespace cps::runtime
