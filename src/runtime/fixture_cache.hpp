// Content-addressed fixture cache for the experiment-runner subsystem.
//
// A cps_run campaign executes many experiments that share expensive
// deterministic inputs — the servo dwell/wait curve (fig3, fig4, benches),
// the synthesized six-plant fleet and its hybrid loop designs (table1,
// fig5, ablation_envelope), the per-application envelope curves.  Before
// this cache each experiment re-derived them from scratch; now the first
// requester computes a fixture once and every later requester (on any
// ThreadPool worker) shares the immutable result.
//
// Keys are content-addressed: FixtureKey hashes every input that
// determines the fixture (matrices entry by entry, scalars bit by bit),
// so two requests share a slot exactly when their inputs are identical.
// The full key material is stored alongside the digest and re-verified on
// every hit, so a 64-bit hash collision surfaces as a loud error instead
// of silently aliasing a stale fixture.  Values are
// immutable (shared_ptr<const T>), which is what makes sharing across
// SweepRunner tasks safe and keeps the determinism contract intact: a
// cache hit returns the very object a miss would have computed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <typeindex>
#include <unordered_map>
#include <utility>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "runtime/fixture_store.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace cps::runtime {

/// Builder of content-addressed cache keys: FNV-1a over the bit patterns
/// of every field added.  The rendered key is "<domain>/<16-hex-digits>",
/// so the domain keeps keys debuggable while the hash carries the content.
class FixtureKey {
 public:
  /// Start a key in `domain` (a short fixture-family name, e.g.
  /// "dwell_wait_curve").
  explicit FixtureKey(std::string domain);

  FixtureKey& add(double value);             ///< mix the IEEE-754 bit pattern
  FixtureKey& add(std::uint64_t value);      ///< mix an integer field
  FixtureKey& add(std::string_view text);    ///< mix length-prefixed bytes
  FixtureKey& add(const linalg::Matrix& m);  ///< dimensions + every entry
  FixtureKey& add(const linalg::Vector& v);  ///< size + every entry

  /// The rendered key; stable across processes and platforms with IEEE-754
  /// doubles.
  std::string str() const;

  /// Every byte mixed into the hash, in order — stored by the cache and
  /// compared on hits so a digest collision cannot alias fixtures.
  const std::string& material() const { return material_; }

 private:
  void mix_bytes(const void* data, std::size_t size);

  std::string domain_;
  std::string material_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

/// Binary codec for one fixture type: how the two-level cache persists a
/// T to the on-disk store and restores it bit-identically.
///
/// `format` is the versioned layout tag (e.g. "dwell_wait_curve/v1");
/// bump the version whenever encode/decode change, so stale files are
/// recomputed instead of misread.  decode(encode(x)) must reproduce x
/// EXACTLY — every double via its IEEE-754 bit pattern
/// (util/serialize.hpp) — because experiment outputs must not depend on
/// whether a fixture came from compute or from disk.
template <typename T>
struct FixtureCodec {
  std::string format;
  std::function<void(const T&, util::BinaryWriter&)> encode;
  std::function<T(util::BinaryReader&)> decode;
};

template <typename T>
class FixtureHandle;

/// Process-wide, thread-safe store of computed fixtures.
///
/// Concurrency contract: the first thread to request a key computes the
/// fixture *outside* the cache lock; every concurrent requester of the
/// same key blocks on a shared future and receives the same shared_ptr
/// (compute-once, share-everywhere).  A compute that throws propagates
/// the exception to every waiter and releases the key so a later request
/// can retry.
///
/// Two-level operation: attach a FixtureStore (set_store) and
/// codec-carrying requests consult the disk layer on a memory miss — a
/// valid store file is decoded instead of computed, and a fresh compute
/// is persisted for the next process.  Without a store (or for
/// codec-less requests) behaviour is exactly the PR-2 single-level
/// cache.
///
/// API: FixtureHandle<T> (below) is the single entry point — it binds
/// the key (content-addressed FixtureKey or recipe-name string) and the
/// optional codec once, and get() runs the lookup.  The get_or_compute
/// overloads are retained as thin shims over FixtureHandle for existing
/// call sites; both spellings hit the same implementation path, same
/// wire formats, same digests.
class FixtureCache {
 public:
  /// The singleton shared by every experiment in the process.
  static FixtureCache& instance();

  /// Hit/miss/entry counters (monotonic within a process, except entries
  /// which clear() resets).  A "miss" counts the requester that computes.
  struct Stats {
    std::size_t hits = 0;     ///< requests served from the cache
    std::size_t misses = 0;   ///< requests that computed the fixture
    std::size_t entries = 0;  ///< fixtures currently stored
  };

  // get_or_compute shims (defined after FixtureHandle below): each one
  // forwards to FixtureHandle<T>{key[, codec]}.get(compute, *this).

  /// Look up `key`; on a miss invoke `compute` (a callable returning T by
  /// value) and store the result.  Throws cps::Error when the same key was
  /// populated with a different type, or when a digest collision is
  /// detected (stored key material differs).
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const FixtureKey& key, Fn&& compute);

  /// String-keyed shim for nullary fixtures whose content is the
  /// (versioned) recipe name itself.
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const std::string& key, Fn&& compute);

  /// Codec-carrying shims: same compute-once semantics, plus the
  /// on-disk layer when a store is attached (disk hit -> decode; miss ->
  /// compute + persist).  Bit-identical results either way.
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const FixtureKey& key, const FixtureCodec<T>& codec,
                                          Fn&& compute);
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const std::string& key, const FixtureCodec<T>& codec,
                                          Fn&& compute);

  /// Attach (or detach, with nullptr) the persistent second level.  Set
  /// once at process start — cps_run wires --fixture-store here before
  /// any experiment runs.
  void set_store(std::shared_ptr<FixtureStore> store);

  /// The attached store, or nullptr.
  std::shared_ptr<FixtureStore> store() const;

 private:
  /// Wrap `compute` with the disk layer: on a memory miss the owner
  /// thread first tries the store, and persists what it computes.
  template <typename T, typename Fn>
  auto stored_compute(const std::string& key, const std::string& material,
                      const FixtureCodec<T>& codec, Fn&& compute) {
    return [this, key, material, codec, compute = std::forward<Fn>(compute)]() -> T {
      const auto store = this->store();
      if (store) {
        if (auto payload = store->load(key, codec.format, material)) {
          try {
            util::BinaryReader reader(*payload);
            T value = codec.decode(reader);
            reader.expect_end();
            return value;
          } catch (const std::exception& error) {
            // Truncation (SerializeError) or a value-invariant violation
            // thrown by a constructor inside decode: either way the file
            // is unusable — same warn-and-recompute contract as a failed
            // checksum, never a failed campaign.
            store->record_undecodable();
            std::fprintf(stderr,
                         "[fixture-store] WARNING: %s: payload undecodable (%s) — "
                         "recomputing\n",
                         key.c_str(), error.what());
          }
        }
      }
      T value = compute();
      if (store) {
        util::BinaryWriter writer;
        codec.encode(value, writer);
        store->save(key, codec.format, material, writer.bytes());
      }
      return value;
    };
  }

  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute_impl(const std::string& key,
                                               const std::string& material, Fn&& compute) {
    std::promise<std::shared_ptr<const void>> promise;
    std::shared_future<std::shared_ptr<const void>> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        CPS_ENSURE(it->second.type == std::type_index(typeid(T)),
                   "FixtureCache: type mismatch for key '" + key + "'");
        CPS_ENSURE(it->second.material == material,
                   "FixtureCache: digest collision for key '" + key + "'");
        ++hits_;
        future = it->second.future;
      } else {
        ++misses_;
        future = promise.get_future().share();
        entries_.emplace(key, Entry{future, std::type_index(typeid(T)), material});
        owner = true;
      }
    }
    if (!owner)  // the future resolves outside the lock: waiting cannot deadlock
      return std::static_pointer_cast<const T>(future.get());
    try {
      auto value = std::shared_ptr<const T>(std::make_shared<T>(compute()));
      promise.set_value(std::static_pointer_cast<const void>(value));
      return value;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);  // release the key so a later request retries
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }

 public:
  /// Snapshot of the hit/miss/entry counters.
  Stats stats() const;

  /// Drop every entry (tests and long-lived embedders; experiments never
  /// need this — fixtures are immutable).
  void clear();

 private:
  template <typename T>
  friend class FixtureHandle;

  struct Entry {
    std::shared_future<std::shared_ptr<const void>> future;
    std::type_index type;
    std::string material;  ///< full key bytes, re-checked on every hit
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::shared_ptr<FixtureStore> store_;  ///< optional persistent level
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// The single fixture entry point: one handle binds WHAT identifies a
/// fixture (key + material) and HOW it persists (optional codec); get()
/// runs the two-level lookup.  Replaces the former 2x2 overload grid of
/// FixtureCache::get_or_compute — every combination is now one
/// constructor choice plus an optional with_codec(), and every lookup
/// funnels through the same implementation:
///
///   auto fleet = FixtureHandle<Fleet>(key)         // content-addressed
///                    .with_codec(fleet_codec())    // optional disk layer
///                    .get([] { return make(); });  // compute on miss
///
/// Handles are cheap value types (a string, a hash, an optional codec);
/// build them ad hoc at the call site.  get() defaults to the process
/// singleton cache; tests pass their own FixtureCache.
template <typename T>
class FixtureHandle {
 public:
  /// Content-addressed handle: identity is the key's mixed-in content.
  explicit FixtureHandle(const FixtureKey& key)
      : key_(key.str()), material_(key.material()) {}

  /// Recipe-named handle for nullary fixtures: identity is the
  /// (versioned) name itself.
  explicit FixtureHandle(std::string key) : key_(std::move(key)), material_(key_) {}

  /// Attach the persistence codec; without one the handle is memory-only
  /// even when the cache has a store attached.
  FixtureHandle& with_codec(FixtureCodec<T> codec) {
    codec_ = std::move(codec);
    has_codec_ = true;
    return *this;
  }

  /// Look up; on a miss invoke `compute` (callable returning T by value)
  /// — via the disk layer when a codec is attached and `cache` has a
  /// store.  Same sharing, collision and error contracts as always
  /// (documented on FixtureCache).
  template <typename Fn>
  std::shared_ptr<const T> get(Fn&& compute,
                               FixtureCache& cache = FixtureCache::instance()) const {
    if (has_codec_)
      return cache.get_or_compute_impl<T>(
          key_, material_,
          cache.stored_compute<T>(key_, material_, codec_, std::forward<Fn>(compute)));
    return cache.get_or_compute_impl<T>(key_, material_, std::forward<Fn>(compute));
  }

  /// The rendered cache key ("<domain>/<16-hex>" or the recipe name).
  const std::string& key() const { return key_; }

 private:
  std::string key_;
  std::string material_;
  FixtureCodec<T> codec_;
  bool has_codec_ = false;
};

// --- get_or_compute shims -------------------------------------------------
// Kept for existing call sites; byte-identical behaviour to the handle.

template <typename T, typename Fn>
std::shared_ptr<const T> FixtureCache::get_or_compute(const FixtureKey& key, Fn&& compute) {
  return FixtureHandle<T>(key).get(std::forward<Fn>(compute), *this);
}

template <typename T, typename Fn>
std::shared_ptr<const T> FixtureCache::get_or_compute(const std::string& key, Fn&& compute) {
  return FixtureHandle<T>(key).get(std::forward<Fn>(compute), *this);
}

template <typename T, typename Fn>
std::shared_ptr<const T> FixtureCache::get_or_compute(const FixtureKey& key,
                                                      const FixtureCodec<T>& codec,
                                                      Fn&& compute) {
  return FixtureHandle<T>(key).with_codec(codec).get(std::forward<Fn>(compute), *this);
}

template <typename T, typename Fn>
std::shared_ptr<const T> FixtureCache::get_or_compute(const std::string& key,
                                                      const FixtureCodec<T>& codec,
                                                      Fn&& compute) {
  return FixtureHandle<T>(key).with_codec(codec).get(std::forward<Fn>(compute), *this);
}

}  // namespace cps::runtime
