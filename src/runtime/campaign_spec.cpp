#include "runtime/campaign_spec.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

namespace cps::runtime {

namespace {

using util::TomlError;
using util::TomlTable;

/// Campaign-section keys this version understands.  Anything else under
/// [campaign] is a loud error: a typo'd "experimnets" that silently
/// falls back to defaults would run the wrong campaign.
const std::set<std::string>& known_campaign_keys() {
  static const std::set<std::string> keys = {
      "campaign.name",   "campaign.experiment", "campaign.experiments",
      "campaign.seed",   "campaign.fixture_store",
      "campaign.shards",
  };
  return keys;
}

constexpr std::size_t kMaxShardPlan = 4096;  // same cap as cps_run --shard

}  // namespace

std::uint64_t CampaignSpec::digest() const {
  // FNV-1a 64 over the canonical rendering — the same hash family
  // FixtureKey uses, applied to the whole parameter set.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : params.canonical()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string CampaignSpec::digest_hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, digest());
  return buffer;
}

CampaignSpec make_campaign_spec(TomlTable table, std::string source) {
  CampaignSpec spec;
  spec.source = std::move(source);

  // Typed-getter failures (missing/wrong-kind required keys) must name
  // the spec file like every hand-written validation error below does.
  const auto located = [&spec](auto&& lookup) -> decltype(lookup()) {
    try {
      return lookup();
    } catch (const TomlError& error) {
      throw TomlError(spec.source + ": " + error.what());
    }
  };

  const std::int64_t version = located([&] { return table.get_int_or("spec_version", -1); });
  if (!table.has("spec_version"))
    throw TomlError(spec.source + ": missing required key 'spec_version'");
  if (version != kCampaignSpecVersion)
    throw TomlError(spec.source + ": unsupported spec_version " + std::to_string(version) +
                    " (this build understands version " +
                    std::to_string(kCampaignSpecVersion) + ")");

  for (const auto& key : table.keys_with_prefix("campaign.")) {
    if (known_campaign_keys().count(key) == 0)
      throw TomlError(spec.source + ": unknown [campaign] key '" + key + "'");
  }

  spec.name = located([&] { return table.get_string("campaign.name"); });
  if (spec.name.empty()) throw TomlError(spec.source + ": campaign.name must be non-empty");

  // `experiment = "x"` and `experiments = ["x", "y"]` are both accepted
  // (exactly one of them).
  const bool single = table.has("campaign.experiment");
  const bool plural = table.has("campaign.experiments");
  if (single == plural)
    throw TomlError(spec.source +
                    ": declare exactly one of campaign.experiment / campaign.experiments");
  if (single)
    spec.experiments.push_back(located([&] { return table.get_string("campaign.experiment"); }));
  else
    spec.experiments = located([&] { return table.get_string_array("campaign.experiments"); });
  if (spec.experiments.empty())
    throw TomlError(spec.source + ": campaign.experiments must name at least one experiment");
  for (const auto& name : spec.experiments)
    if (name.empty())
      throw TomlError(spec.source + ": campaign.experiments entries must be non-empty");

  if (table.has("campaign.seed")) {
    const std::int64_t seed = located([&] { return table.get_int("campaign.seed"); });
    if (seed < 0) throw TomlError(spec.source + ": campaign.seed must be >= 0");
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.has_seed = true;
  }

  spec.fixture_store = located([&] { return table.get_string_or("campaign.fixture_store", ""); });

  const std::int64_t shards = located([&] { return table.get_int_or("campaign.shards", 1); });
  if (shards < 1 || shards > static_cast<std::int64_t>(kMaxShardPlan))
    throw TomlError(spec.source + ": campaign.shards must be in [1, " +
                    std::to_string(kMaxShardPlan) + "]");
  spec.shard_plan = static_cast<std::size_t>(shards);

  spec.params = std::move(table);
  return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
  return make_campaign_spec(util::parse_toml_file(path), path);
}

namespace {
/// Attach the spec source to lookup errors so a bad value names its file.
template <typename Fn>
auto in_spec(const CampaignSpec* spec, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const TomlError& error) {
    throw TomlError(spec->source + ": " + error.what());
  }
}
}  // namespace

double spec_double(const CampaignSpec* spec, const std::string& key, double fallback) {
  if (spec == nullptr) return fallback;
  return in_spec(spec, [&] { return spec->params.get_double_or(key, fallback); });
}

std::int64_t spec_int(const CampaignSpec* spec, const std::string& key,
                      std::int64_t fallback) {
  if (spec == nullptr) return fallback;
  return in_spec(spec, [&] { return spec->params.get_int_or(key, fallback); });
}

std::string spec_string(const CampaignSpec* spec, const std::string& key,
                        const std::string& fallback) {
  if (spec == nullptr) return fallback;
  return in_spec(spec, [&] { return spec->params.get_string_or(key, fallback); });
}

std::vector<double> spec_doubles(const CampaignSpec* spec, const std::string& key,
                                 std::vector<double> fallback) {
  if (spec == nullptr) return fallback;
  return in_spec(spec,
                 [&] { return spec->params.get_double_array_or(key, std::move(fallback)); });
}

std::vector<std::string> spec_strings(const CampaignSpec* spec, const std::string& key,
                                      std::vector<std::string> fallback) {
  if (spec == nullptr) return fallback;
  return in_spec(spec,
                 [&] { return spec->params.get_string_array_or(key, std::move(fallback)); });
}

}  // namespace cps::runtime
