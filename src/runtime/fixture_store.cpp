#include "runtime/fixture_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "runtime/crash_point.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace cps::runtime {

namespace {

// File layout (everything after the magic is BinaryWriter-encoded):
//   magic            "CPSFIXS\n" (8 bytes)
//   u64              container version (util::kSerializeFormatVersion)
//   string           codec format tag, e.g. "dwell_wait_curve/v1"
//   string           full FixtureKey material (re-verified on load)
//   string           codec payload
//   u64              FNV-1a 64 over every byte between magic and here
constexpr char kMagic[8] = {'C', 'P', 'S', 'F', 'I', 'X', 'S', '\n'};

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Canonical spelling of a store file path.  path_of() concatenates with
/// '/' while the gc scan walks a directory iterator; a store directory
/// given with a trailing slash would otherwise make the same file spell
/// two ways ("store//x.fix" vs "store/x.fix") and break the touched-file
/// (working-set) protection of gc_to_max_bytes.
std::string normalized_path(const std::string& path) {
  return std::filesystem::path(path).lexically_normal().string();
}

}  // namespace

FixtureStore::FixtureStore(std::string directory) : directory_(std::move(directory)) {
  CPS_ENSURE(!directory_.empty(), "FixtureStore: directory must be non-empty");
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error)
    throw Error("FixtureStore: cannot create '" + directory_ + "': " + error.message());
}

std::string FixtureStore::path_of(const std::string& key) const {
  // Keys are "<domain>/<16 hex digits>"; the domain becomes a
  // subdirectory so stores stay browsable per fixture family.
  return directory_ + "/" + key + ".fix";
}

std::optional<std::string> FixtureStore::load(const std::string& key, std::string_view format,
                                              std::string_view material) const {
  const std::string path = path_of(key);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_misses;
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    blob = std::move(buffer).str();
  }

  auto invalid = [&](const std::string& why) -> std::optional<std::string> {
    std::fprintf(stderr,
                 "[fixture-store] WARNING: %s: %s — recomputing this fixture "
                 "(the file will be overwritten)\n",
                 path.c_str(), why.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.invalid;
    ++stats_.disk_misses;
    return std::nullopt;
  };

  if (blob.size() < sizeof(kMagic) + 8 ||
      blob.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    return invalid("not a fixture-store file (bad magic or truncated)");

  const std::string_view body(blob.data() + sizeof(kMagic),
                              blob.size() - sizeof(kMagic) - 8);
  {
    util::BinaryReader trailer(
        std::string_view(blob.data() + blob.size() - 8, 8));
    if (trailer.read_u64() != fnv1a(body)) return invalid("checksum mismatch (corrupt file)");
  }

  try {
    util::BinaryReader reader(body);
    if (reader.read_u64() != util::kSerializeFormatVersion)
      return invalid("container version skew");
    const std::string stored_format = reader.read_string();
    if (stored_format != format)
      return invalid("codec format skew (stored '" + stored_format + "', expected '" +
                     std::string(format) + "')");
    const std::string stored_material = reader.read_string();
    // The loud-collision contract of the in-memory layer: a matching
    // digest with different key material is a real 64-bit collision and
    // must never alias — fail the run instead of returning a wrong value.
    if (stored_material != material)
      throw Error("FixtureStore: digest collision for key '" + key +
                  "' (stored key material differs); use a different fixture domain");
    std::string payload = reader.read_string();
    reader.expect_end();
    // Bump the mtime so it doubles as a recency stamp for the LRU
    // eviction (gc_to_max_bytes); best effort, failures are harmless.
    std::error_code touch_error;
    std::filesystem::last_write_time(path, std::filesystem::file_time_type::clock::now(),
                                     touch_error);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
    touched_.insert(normalized_path(path));
    return payload;
  } catch (const util::SerializeError& error) {
    return invalid(std::string("undecodable (") + error.what() + ")");
  }
}

void FixtureStore::save(const std::string& key, std::string_view format,
                        std::string_view material, std::string_view payload) const {
  const std::string path = path_of(key);

  util::BinaryWriter writer;
  writer.write_u64(util::kSerializeFormatVersion);
  writer.write_string(format);
  writer.write_string(material);
  writer.write_string(payload);
  const std::uint64_t checksum = fnv1a(writer.bytes());

  auto warn = [&](const std::string& why) {
    std::fprintf(stderr, "[fixture-store] WARNING: cannot persist %s: %s\n", path.c_str(),
                 why.c_str());
  };

  std::error_code error;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), error);
  if (error) return warn(error.message());

  // Unique temp name per process + per-process sequence number, claimed
  // with O_EXCL, so two shards publishing the same digest can never open
  // the SAME temp file and interleave writes (pid disambiguates across
  // processes, the counter within one, O_EXCL catches pid reuse after a
  // crash); rename() then publishes the file atomically (POSIX), so
  // readers see either nothing or a whole file — never a torn one.
  static std::atomic<std::uint64_t> sequence{0};
  std::ostringstream temp_name;
  temp_name << path << ".tmp." << ::getpid() << "." << sequence.fetch_add(1);
  const std::string temp_path = temp_name.str();
  int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0 && errno == EEXIST) {
    // Only a crashed earlier process with a recycled pid can have left
    // this exact name behind; its payload is dead, reclaim the name.
    ::unlink(temp_path.c_str());
    fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  }
  if (fd < 0) return warn(std::string("cannot open temp file: ") + std::strerror(errno));
  const auto write_all = [fd](const char* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
      const ::ssize_t n = ::write(fd, data + done, size - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  };
  util::BinaryWriter trailer;
  trailer.write_u64(checksum);
  bool wrote = write_all(kMagic, sizeof(kMagic));
  // Crash window: magic on disk, payload missing — a torn temp that must
  // never become visible under the final name.
  if (wrote) crash_point("store_save_mid");
  wrote = wrote && write_all(writer.bytes().data(), writer.bytes().size()) &&
          write_all(trailer.bytes().data(), trailer.bytes().size());
  // fsync before rename: a machine crash right after the rename must not
  // leave a published name pointing at unwritten blocks.
  wrote = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote) {
    warn("short write");
    std::filesystem::remove(temp_path, error);
    return;
  }
  // Crash window: temp complete but unpublished — invisible to readers.
  crash_point("store_save_rename");
  std::filesystem::rename(temp_path, path, error);
  if (error) {
    warn("rename failed: " + error.message());
    std::filesystem::remove(temp_path, error);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  touched_.insert(normalized_path(path));
}

FixtureStore::Stats FixtureStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

/// Every .fix file under `directory`, as (path, bytes, mtime) records.
struct StoredFile {
  std::string path;
  std::uintmax_t bytes = 0;
  std::filesystem::file_time_type mtime;
};

std::vector<StoredFile> scan_store(const std::string& directory) {
  std::vector<StoredFile> files;
  std::error_code error;
  std::filesystem::recursive_directory_iterator it(directory, error), end;
  if (error) return files;
  for (; it != end; it.increment(error)) {
    if (error) break;
    if (!it->is_regular_file(error) || it->path().extension() != ".fix") continue;
    StoredFile file;
    file.path = it->path().string();
    file.bytes = it->file_size(error);
    if (error) continue;
    file.mtime = std::filesystem::last_write_time(it->path(), error);
    if (error) continue;
    files.push_back(std::move(file));
  }
  return files;
}

double age_seconds(std::filesystem::file_time_type mtime) {
  return std::chrono::duration<double>(std::filesystem::file_time_type::clock::now() - mtime)
      .count();
}

/// Scoped advisory lock on `DIR/.gc.lock`.  Two processes running
/// `--store-gc-max-bytes` against the same store would otherwise race
/// the scan-then-unlink window: both could pick the same eviction
/// victims, and one could evict a file the other just published and
/// touched.  flock serializes whole GC passes; everything else (load,
/// save) stays lock-free — publication is already atomic.  Best effort:
/// when the lock file cannot be created the pass proceeds unlocked, as
/// the store is an accelerator and GC correctness degrades to the old
/// (pre-lock) behavior rather than failing the run.
class GcLock {
 public:
  explicit GcLock(const std::string& directory) {
    fd_ = ::open((directory + "/.gc.lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ >= 0) {
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
    }
  }
  ~GcLock() {
    if (fd_ >= 0) ::close(fd_);  // releases the flock
  }
  GcLock(const GcLock&) = delete;
  GcLock& operator=(const GcLock&) = delete;

 private:
  int fd_ = -1;
};

/// Unpublished temp files (".tmp." in the name) left behind by crashed
/// writers.  Fresh temps may belong to a LIVE writer that has not
/// renamed yet, so only temps older than this are reclaimed.
constexpr double kStaleTempSeconds = 3600.0;

void remove_stale_temps(const std::string& directory) {
  std::error_code error;
  std::filesystem::recursive_directory_iterator it(directory, error), end;
  if (error) return;
  for (; it != end; it.increment(error)) {
    if (error) break;
    if (!it->is_regular_file(error)) continue;
    if (it->path().filename().string().find(".tmp.") == std::string::npos) continue;
    const auto mtime = std::filesystem::last_write_time(it->path(), error);
    if (error || age_seconds(mtime) < kStaleTempSeconds) continue;
    std::filesystem::remove(it->path(), error);
  }
}

}  // namespace

std::vector<FixtureStore::DomainUsage> FixtureStore::usage() const {
  // Domain = first path component under the store root (see path_of()).
  // Pure string arithmetic: scan paths were built under directory_, so
  // lexically_relative needs no filesystem round-trips.
  std::map<std::string, DomainUsage> domains;
  const auto root = std::filesystem::path(directory_).lexically_normal();
  for (const auto& file : scan_store(directory_)) {
    const auto relative =
        std::filesystem::path(file.path).lexically_normal().lexically_relative(root);
    const std::string domain =
        relative.empty() ? std::string("<root>") : relative.begin()->string();
    auto& entry = domains[domain];
    const double age = age_seconds(file.mtime);
    if (entry.files == 0) {
      entry.domain = domain;
      entry.oldest_age_seconds = entry.newest_age_seconds = age;
    } else {
      entry.oldest_age_seconds = std::max(entry.oldest_age_seconds, age);
      entry.newest_age_seconds = std::min(entry.newest_age_seconds, age);
    }
    ++entry.files;
    entry.bytes += file.bytes;
  }
  std::vector<DomainUsage> result;
  result.reserve(domains.size());
  for (auto& [name, entry] : domains) result.push_back(std::move(entry));
  return result;
}

FixtureStore::GcResult FixtureStore::gc_to_max_bytes(std::uintmax_t max_bytes) const {
  // One GC pass at a time per store (across processes): without the
  // lock, two concurrent passes could each evict a file the other's
  // campaign just published between its scan and its unlink.
  GcLock lock(directory_);
  remove_stale_temps(directory_);
  auto files = scan_store(directory_);
  GcResult result;
  result.scanned = files.size();
  for (const auto& file : files) result.bytes_before += file.bytes;
  result.bytes_after = result.bytes_before;
  if (result.bytes_before <= max_bytes) return result;

  // Least recently used first (load() bumps mtimes), ties by path so the
  // eviction order is deterministic for identical timestamps.
  std::sort(files.begin(), files.end(), [](const StoredFile& a, const StoredFile& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });

  std::unordered_set<std::string> touched;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    touched = touched_;
  }
  for (const auto& file : files) {
    if (result.bytes_after <= max_bytes) break;
    if (touched.count(normalized_path(file.path)) != 0) {
      ++result.kept_in_use;  // current run's working set is never evicted
      continue;
    }
    std::error_code error;
    // Re-stat before the unlink: a file ANOTHER process loaded or
    // republished since our scan has a newer mtime and is part of a live
    // working set — spare it, like this process's own touched files.
    const auto mtime_now = std::filesystem::last_write_time(file.path, error);
    if (error) continue;  // already gone (nothing to evict)
    if (mtime_now != file.mtime) {
      ++result.kept_in_use;
      continue;
    }
    // unlink(2) is atomic: a concurrent reader either opened the file
    // before (and keeps a valid handle) or misses and recomputes.
    if (!std::filesystem::remove(file.path, error) || error) continue;
    ++result.evicted;
    result.bytes_after -= file.bytes;
  }
  return result;
}

void FixtureStore::record_undecodable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.disk_hits > 0) --stats_.disk_hits;
  ++stats_.disk_misses;
  ++stats_.invalid;
}

}  // namespace cps::runtime
