#include "runtime/fixture_store.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace cps::runtime {

namespace {

// File layout (everything after the magic is BinaryWriter-encoded):
//   magic            "CPSFIXS\n" (8 bytes)
//   u64              container version (util::kSerializeFormatVersion)
//   string           codec format tag, e.g. "dwell_wait_curve/v1"
//   string           full FixtureKey material (re-verified on load)
//   string           codec payload
//   u64              FNV-1a 64 over every byte between magic and here
constexpr char kMagic[8] = {'C', 'P', 'S', 'F', 'I', 'X', 'S', '\n'};

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

FixtureStore::FixtureStore(std::string directory) : directory_(std::move(directory)) {
  CPS_ENSURE(!directory_.empty(), "FixtureStore: directory must be non-empty");
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error)
    throw Error("FixtureStore: cannot create '" + directory_ + "': " + error.message());
}

std::string FixtureStore::path_of(const std::string& key) const {
  // Keys are "<domain>/<16 hex digits>"; the domain becomes a
  // subdirectory so stores stay browsable per fixture family.
  return directory_ + "/" + key + ".fix";
}

std::optional<std::string> FixtureStore::load(const std::string& key, std::string_view format,
                                              std::string_view material) const {
  const std::string path = path_of(key);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_misses;
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    blob = std::move(buffer).str();
  }

  auto invalid = [&](const std::string& why) -> std::optional<std::string> {
    std::fprintf(stderr,
                 "[fixture-store] WARNING: %s: %s — recomputing this fixture "
                 "(the file will be overwritten)\n",
                 path.c_str(), why.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.invalid;
    ++stats_.disk_misses;
    return std::nullopt;
  };

  if (blob.size() < sizeof(kMagic) + 8 ||
      blob.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    return invalid("not a fixture-store file (bad magic or truncated)");

  const std::string_view body(blob.data() + sizeof(kMagic),
                              blob.size() - sizeof(kMagic) - 8);
  {
    util::BinaryReader trailer(
        std::string_view(blob.data() + blob.size() - 8, 8));
    if (trailer.read_u64() != fnv1a(body)) return invalid("checksum mismatch (corrupt file)");
  }

  try {
    util::BinaryReader reader(body);
    if (reader.read_u64() != util::kSerializeFormatVersion)
      return invalid("container version skew");
    const std::string stored_format = reader.read_string();
    if (stored_format != format)
      return invalid("codec format skew (stored '" + stored_format + "', expected '" +
                     std::string(format) + "')");
    const std::string stored_material = reader.read_string();
    // The loud-collision contract of the in-memory layer: a matching
    // digest with different key material is a real 64-bit collision and
    // must never alias — fail the run instead of returning a wrong value.
    if (stored_material != material)
      throw Error("FixtureStore: digest collision for key '" + key +
                  "' (stored key material differs); use a different fixture domain");
    std::string payload = reader.read_string();
    reader.expect_end();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
    return payload;
  } catch (const util::SerializeError& error) {
    return invalid(std::string("undecodable (") + error.what() + ")");
  }
}

void FixtureStore::save(const std::string& key, std::string_view format,
                        std::string_view material, std::string_view payload) const {
  const std::string path = path_of(key);

  util::BinaryWriter writer;
  writer.write_u64(util::kSerializeFormatVersion);
  writer.write_string(format);
  writer.write_string(material);
  writer.write_string(payload);
  const std::uint64_t checksum = fnv1a(writer.bytes());

  auto warn = [&](const std::string& why) {
    std::fprintf(stderr, "[fixture-store] WARNING: cannot persist %s: %s\n", path.c_str(),
                 why.c_str());
  };

  std::error_code error;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), error);
  if (error) return warn(error.message());

  // Unique temp name per process+object so concurrent shards warming the
  // same store never interleave writes; rename() then publishes the file
  // atomically (POSIX), so readers see either nothing or a whole file.
  std::ostringstream temp_name;
  temp_name << path << ".tmp." << ::getpid() << "." << this;
  const std::string temp_path = temp_name.str();
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return warn("cannot open temp file");
    out.write(kMagic, sizeof(kMagic));
    out.write(writer.bytes().data(), static_cast<std::streamsize>(writer.bytes().size()));
    util::BinaryWriter trailer;
    trailer.write_u64(checksum);
    out.write(trailer.bytes().data(), static_cast<std::streamsize>(trailer.bytes().size()));
    if (!out) {
      warn("short write");
      std::filesystem::remove(temp_path, error);
      return;
    }
  }
  std::filesystem::rename(temp_path, path, error);
  if (error) {
    warn("rename failed: " + error.message());
    std::filesystem::remove(temp_path, error);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
}

FixtureStore::Stats FixtureStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FixtureStore::record_undecodable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.disk_hits > 0) --stats_.disk_hits;
  ++stats_.disk_misses;
  ++stats_.invalid;
}

}  // namespace cps::runtime
