#include "runtime/cli.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace cps::runtime {

CliParser::CliParser(std::string program, std::string usage_suffix)
    : program_(std::move(program)), usage_suffix_(std::move(usage_suffix)) {
  // --help is table-driven like everything else so it shows up in
  // help() and flag_names() without special cases.
  Flag help_flag;
  help_flag.names = {"--help", "-h"};
  help_flag.kind = Kind::kBool;
  help_flag.bool_target = &help_requested_;
  help_flag.help = "print this help and exit";
  register_flag(std::move(help_flag));
}

void CliParser::register_flag(Flag flag) {
  CPS_ENSURE(!flag.names.empty(), "CliParser: a flag needs at least one name");
  for (const auto& name : flag.names) {
    CPS_ENSURE(!name.empty() && name[0] == '-',
               "CliParser: flag names must start with '-'");
    CPS_ENSURE(find(name) == nullptr, "CliParser: duplicate flag name registered");
  }
  flags_.push_back(std::move(flag));
}

void CliParser::add_flag(std::vector<std::string> names, bool* target, std::string help) {
  CPS_ENSURE(target != nullptr, "CliParser::add_flag: null target");
  Flag flag;
  flag.names = std::move(names);
  flag.kind = Kind::kBool;
  flag.bool_target = target;
  flag.help = std::move(help);
  register_flag(std::move(flag));
}

void CliParser::add_u64(std::vector<std::string> names, std::uint64_t* target,
                        std::string value_name, std::string help, bool* seen) {
  CPS_ENSURE(target != nullptr, "CliParser::add_u64: null target");
  Flag flag;
  flag.names = std::move(names);
  flag.kind = Kind::kU64;
  flag.u64_target = target;
  flag.seen = seen;
  flag.value_name = std::move(value_name);
  flag.help = std::move(help);
  flag.default_text = std::to_string(*target);
  register_flag(std::move(flag));
}

void CliParser::add_string(std::vector<std::string> names, std::string* target,
                           std::string value_name, std::string help, bool* seen) {
  CPS_ENSURE(target != nullptr, "CliParser::add_string: null target");
  Flag flag;
  flag.names = std::move(names);
  flag.kind = Kind::kString;
  flag.string_target = target;
  flag.seen = seen;
  flag.value_name = std::move(value_name);
  flag.help = std::move(help);
  if (!target->empty()) flag.default_text = *target;
  register_flag(std::move(flag));
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (std::find(flag.names.begin(), flag.names.end(), name) != flag.names.end())
      return &flag;
  }
  return nullptr;
}

std::vector<std::string> CliParser::parse(const std::vector<std::string>& args) {
  help_requested_ = false;
  std::vector<std::string> positionals;
  bool flags_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.empty() || arg[0] != '-' || arg == "-") {
      positionals.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const Flag* flag = find(arg);
    if (flag == nullptr) throw CliError("unknown flag '" + arg + "' (see --help)");
    if (flag->kind == Kind::kBool) {
      *flag->bool_target = true;
      if (flag->seen != nullptr) *flag->seen = true;
      continue;
    }
    if (i + 1 >= args.size())
      throw CliError("flag '" + arg + "' requires a value " + flag->value_name);
    const std::string& value = args[++i];
    if (flag->kind == Kind::kU64)
      *flag->u64_target = parse_cli_u64(value, "value of '" + arg + "'");
    else
      *flag->string_target = value;
    if (flag->seen != nullptr) *flag->seen = true;
  }
  return positionals;
}

std::string CliParser::help() const {
  std::string text = "usage: " + program_ + " [options]";
  if (!usage_suffix_.empty()) text += " " + usage_suffix_;
  text += "\n\noptions:\n";

  // First pass: render "name, name VALUE" stems and find the alignment
  // column; second pass: emit aligned rows.
  std::vector<std::string> stems;
  std::size_t width = 0;
  for (const auto& flag : flags_) {
    std::string stem;
    for (const auto& name : flag.names) {
      if (!stem.empty()) stem += ", ";
      stem += name;
    }
    if (!flag.value_name.empty()) stem += " " + flag.value_name;
    width = std::max(width, stem.size());
    stems.push_back(std::move(stem));
  }
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    text += "  " + stems[i] + std::string(width - stems[i].size() + 2, ' ') +
            flags_[i].help;
    if (!flags_[i].default_text.empty())
      text += " (default: " + flags_[i].default_text + ")";
    text += "\n";
  }
  return text;
}

std::vector<std::string> CliParser::flag_names() const {
  std::vector<std::string> names;
  for (const auto& flag : flags_)
    names.insert(names.end(), flag.names.begin(), flag.names.end());
  return names;
}

std::uint64_t parse_cli_u64(const std::string& text, const std::string& what) {
  // Strict: no signs (stoull would wrap "-1" modulo 2^64), no leading
  // whitespace, full consumption.  Base 0 keeps the documented hex form
  // (--seed 0x5EED5EED) working.
  try {
    if (text.empty() || text[0] == '-' || text[0] == '+' ||
        std::isspace(static_cast<unsigned char>(text[0])) != 0)
      throw std::invalid_argument(text);
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed, 0);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw CliError(what + " must be a non-negative integer, got '" + text + "'");
  }
}

}  // namespace cps::runtime
