// Deterministic crash injection for multi-process robustness tests.
//
// A supervised campaign must survive children dying at ARBITRARY points:
// mid-write into a shared store file, between publishing a shard CSV and
// stamping its sidecar, and so on.  Reproducing those windows with real
// kill-signals is racy; this hook makes them exact.  Publication paths
// call crash_point("<site>") at each interesting instant, and setting
//
//   CPS_CRASH_AT=<site>[:<count>]
//
// in the environment kills the process with SIGKILL (no unwinding, no
// destructors — a genuine crash) the <count>-th time that site is hit
// (default: the first).  Unset, the hook is a getenv + early return, so
// it costs nothing on hot paths (and it is only placed on file-IO paths
// anyway).
//
// The environment is re-read on every call, so a test can fork, setenv
// in the child, and trigger a crash there without the parent's earlier
// calls having latched a stale spec.  Hit counts are per process.
//
// Instrumented sites (grep for crash_point to verify):
//   store_save_mid      FixtureStore::save, after the magic bytes of the
//                       temp file are on disk (a torn, unpublished temp)
//   store_save_rename   FixtureStore::save, temp complete but not yet
//                       renamed into place (file still unpublished)
//   artifact_publish    cps_run, staged sweep CSV complete but not yet
//                       renamed to its final shard path
//   meta_publish        write_shard_meta, sidecar temp complete but not
//                       yet renamed (CSV published, provenance missing)
//   serve_ready         cps_serve, sockets bound and workers running but
//                       the --ready-file not yet published (a daemon that
//                       dies before anyone could have connected)
//   serve_drain         cps_serve, drain begun (accepting stopped) but
//                       in-flight requests and the stats flush still
//                       pending (a daemon that dies mid-shutdown)
#pragma once

namespace cps::runtime {

/// Die (SIGKILL) here when CPS_CRASH_AT selects this site and the
/// per-process hit count matches; otherwise return immediately.
void crash_point(const char* site);

}  // namespace cps::runtime
