// Work-stealing thread pool for the experiment-runner subsystem.
//
// Each worker owns a deque of pending tasks.  Submissions are distributed
// round-robin across the worker deques; a worker pops its own deque from
// the back (LIFO, cache-warm) and, when empty, steals from the front of a
// peer's deque (FIFO, oldest first), so uneven parameter grids keep every
// core busy.  Results and exceptions propagate through std::future, which
// is what SweepRunner relies on for exception-safe fan-out.
//
// The deques share one mutex: experiment tasks are coarse (milliseconds to
// seconds each), so queue contention is negligible and a single lock keeps
// the sleep/wake protocol trivially correct.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cps::runtime {

/// Work-stealing thread pool: per-worker deques, LIFO own-pop,
/// FIFO steal-from-peer (see the file comment for the full protocol).
class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least one).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every task already submitted, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads actually spawned.
  std::size_t thread_count() const { return workers_.size(); }

  /// Discard every not-yet-started task.  Their futures report
  /// std::future_error (broken promise).  In-flight tasks finish normally.
  void cancel_pending();

  /// Schedule `fn` and return a future for its result.  An exception
  /// thrown by `fn` is captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t self);
  /// Pop from own deque (back) or steal from a peer (front).  Must be
  /// called with `mutex_` held.  Returns false when no task is available.
  bool take_task(std::size_t self, std::function<void()>& task);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  bool stopping_ = false;
};

}  // namespace cps::runtime
