#include "runtime/experiment.hpp"

#include <cstdlib>
#include <exception>
#include <utility>

#include "runtime/shard.hpp"
#include "util/error.hpp"

namespace cps::runtime {

std::string ExperimentContext::csv_path(const std::string& filename) const {
  if (csv_dir.empty()) return filename;
  if (csv_dir.back() == '/') return csv_dir + filename;
  return csv_dir + "/" + filename;
}

std::string ExperimentContext::artifact_path(const std::string& filename) const {
  std::string path = csv_path(filename) + shard_suffix(shard_index, shard_count);
  if (stage_artifacts) path += ".inprogress";
  return path;
}

Experiment::Experiment(std::string name, std::string description, RunFn run)
    : Experiment(std::move(name), std::move(description), std::move(run), {}) {}

Experiment::Experiment(std::string name, std::string description, RunFn run,
                       std::vector<std::string> sweep_artifacts)
    : name_(std::move(name)),
      description_(std::move(description)),
      sweep_artifacts_(std::move(sweep_artifacts)),
      run_(std::move(run)) {
  CPS_ENSURE(!name_.empty(), "Experiment: name must be non-empty");
  CPS_ENSURE(static_cast<bool>(run_), "Experiment: run function must be callable");
  for (const auto& artifact : sweep_artifacts_)
    CPS_ENSURE(!artifact.empty(), "Experiment: sweep artifact names must be non-empty");
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
  const std::string name = experiment.name();
  const bool inserted = experiments_.emplace(name, std::move(experiment)).second;
  if (!inserted) throw Error("ExperimentRegistry: duplicate experiment name '" + name + "'");
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  const auto it = experiments_.find(name);
  return it == experiments_.end() ? nullptr : &it->second;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& [name, experiment] : experiments_) out.push_back(&experiment);
  return out;  // std::map iteration order is already sorted by name
}

ExperimentRegistrar::ExperimentRegistrar(std::string name, std::string description,
                                         Experiment::RunFn run)
    : ExperimentRegistrar(std::move(name), std::move(description), std::move(run), {}) {}

ExperimentRegistrar::ExperimentRegistrar(std::string name, std::string description,
                                         Experiment::RunFn run,
                                         std::vector<std::string> sweep_artifacts) {
  try {
    ExperimentRegistry::instance().add(Experiment(std::move(name), std::move(description),
                                                  std::move(run), std::move(sweep_artifacts)));
  } catch (const std::exception& error) {
    // Registrars run during static initialization, where an escaping
    // exception terminates with no diagnostic; name the clash first.
    std::fprintf(stderr, "CPS_EXPERIMENT registration failed: %s\n", error.what());
    std::abort();
  }
}

}  // namespace cps::runtime
