// Declarative command-line parsing for the runtime tools.
//
// cps_run's flag handling used to be a hand-rolled argv loop: every new
// flag meant another if/else arm, another place to forget the
// missing-value check, and help text that drifted from the code.  This
// parser replaces that with a FLAG TABLE — each flag declares its
// names, typed target, value placeholder and help line once — and
// derives everything else from it:
//
//   * parsing (bool presence, strict unsigned integers, strings),
//   * `--help` text (generated from the table, so it cannot drift),
//   * loud errors for unknown flags and missing values (CliError; the
//     tools map it to the documented usage exit code 2),
//   * the flag inventory (flag_names()) that CI smoke-checks against
//     the documented interface.
//
// Deliberately small: space-separated values only (`--jobs 4`), exact
// name matching, `--` ends flag parsing.  Anything fancier (subcommands,
// abbreviation, =value) is out of scope until a tool needs it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace cps::runtime {

/// A command-line usage error (unknown flag, missing/malformed value).
/// Tools catch it, print usage, and exit with the documented code 2.
class CliError : public Error {
 public:
  explicit CliError(const std::string& what) : Error(what) {}
};

/// Table-driven argv parser.  Register flags against typed targets,
/// then parse(); targets keep their initial values when the flag is
/// absent (defaults live at the declaration site, visible in help).
class CliParser {
 public:
  /// `program` names the tool in usage/help; `usage_suffix` renders
  /// after "[options]" (e.g. "[experiment ...|all]").
  CliParser(std::string program, std::string usage_suffix);

  // Registration.  `names` are the literal spellings ("--jobs", "-j");
  // `seen`, when non-null, is set true iff the flag appeared.  All
  // registered names must be unique (programming error otherwise).
  void add_flag(std::vector<std::string> names, bool* target, std::string help);
  void add_u64(std::vector<std::string> names, std::uint64_t* target,
               std::string value_name, std::string help, bool* seen = nullptr);
  void add_string(std::vector<std::string> names, std::string* target,
                  std::string value_name, std::string help, bool* seen = nullptr);

  /// Parse argv (excluding argv[0] — pass {argv + 1, argv + argc}).
  /// Returns positional arguments in order.  Throws CliError on any
  /// unknown `-`-prefixed argument, a value flag without a value, or a
  /// malformed unsigned integer.  `--help`/`-h` are built in: they set
  /// help_requested() and parsing continues (the caller prints help()
  /// and exits 0).  A literal `--` ends flag parsing.
  std::vector<std::string> parse(const std::vector<std::string>& args);

  /// True when --help/-h appeared in the last parse().
  bool help_requested() const { return help_requested_; }

  /// Generated help text: usage line plus one aligned row per flag.
  std::string help() const;

  /// Every registered flag spelling (including --help/-h), in
  /// registration order.  CI smoke-checks this inventory against the
  /// documented interface.
  std::vector<std::string> flag_names() const;

 private:
  enum class Kind { kBool, kU64, kString };

  struct Flag {
    std::vector<std::string> names;
    Kind kind = Kind::kBool;
    bool* bool_target = nullptr;
    std::uint64_t* u64_target = nullptr;
    std::string* string_target = nullptr;
    bool* seen = nullptr;
    std::string value_name;  ///< placeholder in help ("N", "FILE"); empty for kBool
    std::string help;
    std::string default_text;  ///< rendered at registration time
  };

  void register_flag(Flag flag);
  const Flag* find(const std::string& name) const;

  std::string program_;
  std::string usage_suffix_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

/// Strict unsigned-integer parse shared by the parser and tools that
/// post-process string flag values (e.g. "--shard i/N"): full
/// consumption, no signs, no leading whitespace.  Throws CliError with
/// `what` naming the offending input.
std::uint64_t parse_cli_u64(const std::string& text, const std::string& what);

}  // namespace cps::runtime
