#include "runtime/sweep_runner.hpp"

namespace cps::runtime {

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace cps::runtime
