// Deterministic jittered exponential backoff, shared by every retry loop
// in the runtime (the PR-8 campaign supervisor, the cps_query client's
// overloaded-retry loop).
//
// The schedule is a PURE FUNCTION of (policy, stream, failed_attempts):
//
//   delay  = min(base * factor^(attempts-1), max) * jitter
//   jitter = uniform in [0.5, 1.5), derived from splitmix64 over
//            (seed, stream, attempts)
//
// so the same inputs give the same delays on every platform — which is
// what makes supervisor behavior reproducible under test, and what keeps
// a fleet of retrying clients decorrelated (each stream gets its own
// jitter sequence) without any shared randomness.  This header is the
// single home of that math; runtime/supervisor.hpp's
// backoff_delay_seconds() is a thin wrapper over it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/error.hpp"

namespace cps::runtime {

/// Knobs of one backoff schedule.  Defaults match the supervisor's.
struct BackoffPolicy {
  double base_seconds = 0.5;   ///< first-retry delay before jitter
  double factor = 2.0;         ///< per-failure multiplier
  double max_seconds = 30.0;   ///< cap applied before jitter
  std::uint64_t seed = 0x5EED5EEDULL;  ///< decorrelation seed
};

/// The splitmix64 mixer (Steele et al.) the jitter derives from; exposed
/// because tests pin the schedule bit-for-bit.
inline std::uint64_t backoff_splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The deterministic retry delay after `failed_attempts` (>= 1) failures
/// on `stream` (a shard index, a client request slot — anything that
/// should retry on its own decorrelated schedule): capped exponential
/// backoff times a [0.5, 1.5) jitter that depends only on
/// (policy.seed, stream, failed_attempts).
inline double backoff_delay(const BackoffPolicy& policy, std::size_t stream,
                            int failed_attempts) {
  CPS_ENSURE(failed_attempts >= 1, "backoff_delay: needs >= 1 failed attempt");
  double delay = policy.base_seconds;
  for (int i = 1; i < failed_attempts; ++i) delay *= policy.factor;
  delay = std::min(delay, policy.max_seconds);
  // Jitter decorrelates retry storms across streams without breaking
  // reproducibility: the factor is a pure function of (seed, stream,
  // attempt), uniform in [0.5, 1.5).
  const std::uint64_t h =
      backoff_splitmix64(policy.seed ^ (0x9E37u + stream) ^
                         (static_cast<std::uint64_t>(failed_attempts) << 32));
  const double jitter = 0.5 + static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return delay * jitter;
}

}  // namespace cps::runtime
