#include "runtime/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/backoff.hpp"
#include "util/error.hpp"
#include "util/signal_safe.hpp"

namespace cps::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Replace every occurrence of `token` in `text`.
std::string substitute(std::string text, const std::string& token,
                       const std::string& value) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    text.replace(pos, token.size(), value);
    pos += value.size();
  }
  return text;
}

/// POSIX-shell single-quote: safe under `sh -c` for any byte but NUL.
std::string shell_quote(const std::string& word) {
  std::string quoted = "'";
  for (const char c : word)
    if (c == '\'')
      quoted += "'\\''";
    else
      quoted += c;
  quoted += "'";
  return quoted;
}

/// Last up-to-three non-empty lines of a child log, for failure reports.
std::string log_tail(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::string();
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) {
      lines.push_back(line);
      if (lines.size() > 3) lines.erase(lines.begin());
    }
  std::string tail;
  for (const auto& kept : lines) tail += "\n      | " + kept;
  return tail;
}

/// Atomic small-file publication (same contract as the shard layer's).
void publish_text(const std::string& path, const std::string& contents) {
  const std::string temp_path = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp_path, std::ios::trunc | std::ios::binary);
    if (!out) throw Error("manifest: cannot open '" + temp_path + "' for writing");
    out << contents;
    out.flush();
    if (!out) throw Error("manifest: short write to '" + temp_path + "'");
  }
  std::error_code error;
  std::filesystem::rename(temp_path, path, error);
  if (error) throw Error("manifest: cannot publish '" + path + "': " + error.message());
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

const char* status_name(ShardOutcome::Status status) {
  switch (status) {
    case ShardOutcome::Status::kSucceeded: return "succeeded";
    case ShardOutcome::Status::kSkipped: return "skipped";
    case ShardOutcome::Status::kFailed: return "failed";
    case ShardOutcome::Status::kInterrupted: return "interrupted";
  }
  return "unknown";
}

/// Supervision state of one shard.
struct ShardState {
  enum class Phase { kPending, kBackoff, kRunning, kDone };
  Phase phase = Phase::kPending;
  int attempts = 0;          ///< attempts launched so far
  ::pid_t pid = -1;
  Clock::time_point launched;
  Clock::time_point eligible;  ///< backoff: earliest next launch
  bool term_sent = false;
  Clock::time_point term_time;
  bool attempt_timed_out = false;
  std::string timeout_reason;
  std::string log_path;
  std::string heartbeat_path;
  ShardOutcome outcome;
};

}  // namespace

double backoff_delay_seconds(const SupervisorOptions& options, std::size_t shard,
                             int failed_attempts) {
  // The math lives in runtime/backoff.hpp (shared with the cps_query
  // retry loop); this wrapper only maps the option fields, so the
  // supervisor's schedule is bit-identical to what it always was.
  BackoffPolicy policy;
  policy.base_seconds = options.backoff_base_seconds;
  policy.factor = options.backoff_factor;
  policy.max_seconds = options.backoff_max_seconds;
  policy.seed = options.backoff_seed;
  return backoff_delay(policy, shard, failed_attempts);
}

ShardSupervisor::ShardSupervisor(std::vector<std::string> shard_command,
                                 SupervisorOptions options)
    : shard_command_(std::move(shard_command)), options_(std::move(options)) {
  CPS_ENSURE(!shard_command_.empty(), "ShardSupervisor: shard command must be non-empty");
  CPS_ENSURE(options_.shard_count >= 1, "ShardSupervisor: shard count must be >= 1");
  CPS_ENSURE(options_.max_attempts >= 1, "ShardSupervisor: max attempts must be >= 1");
}

SupervisorReport ShardSupervisor::run() {
  const std::size_t n = options_.shard_count;
  std::size_t max_parallel = options_.max_parallel;
  if (max_parallel == 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    max_parallel = std::min<std::size_t>(n, cores == 0 ? 1 : cores);
  }
  if (!options_.work_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(options_.work_dir, error);
    if (error)
      throw Error("ShardSupervisor: cannot create work dir '" + options_.work_dir +
                  "': " + error.message());
  }

  std::vector<ShardState> states(n);
  for (std::size_t i = 0; i < n; ++i) states[i].outcome.shard = i;

  // Resume: a shard whose every expected partial already landed (whole
  // CSV + consistent sidecar + this campaign's seed) is work already
  // paid for — skip it, that is what makes a restarted launch cheap.
  const auto landed = [&](std::size_t shard) {
    if (options_.expected_artifacts.empty()) return false;
    for (const auto& artifact : options_.expected_artifacts)
      if (!shard_artifact_landed(artifact, shard, n, options_.expected_seed)) return false;
    return true;
  };
  if (options_.resume) {
    for (auto& state : states)
      if (landed(state.outcome.shard)) {
        state.phase = ShardState::Phase::kDone;
        state.outcome.status = ShardOutcome::Status::kSkipped;
      }
  }

  const auto spawn = [&](ShardState& state) {
    const std::size_t shard = state.outcome.shard;
    ++state.attempts;
    state.attempt_timed_out = false;
    state.term_sent = false;

    const std::string shard_text = std::to_string(shard);
    const std::string count_text = std::to_string(n);
    std::vector<std::string> argv_strings;
    if (options_.exec_template.empty()) {
      for (const auto& word : shard_command_)
        argv_strings.push_back(
            substitute(substitute(word, "{i}", shard_text), "{n}", count_text));
    } else {
      std::string quoted_command;
      for (const auto& word : shard_command_) {
        if (!quoted_command.empty()) quoted_command += ' ';
        quoted_command +=
            shell_quote(substitute(substitute(word, "{i}", shard_text), "{n}", count_text));
      }
      std::string rendered = substitute(options_.exec_template, "{cmd}", quoted_command);
      rendered = substitute(substitute(rendered, "{i}", shard_text), "{n}", count_text);
      argv_strings = {"/bin/sh", "-c", rendered};
    }

    int log_fd = -1;
    if (!options_.work_dir.empty()) {
      state.log_path = options_.work_dir + "/shard" + shard_text + "of" + count_text +
                       ".attempt" + std::to_string(state.attempts) + ".log";
      state.heartbeat_path =
          options_.work_dir + "/shard" + shard_text + "of" + count_text + ".hb";
      std::error_code error;
      std::filesystem::remove(state.heartbeat_path, error);  // stale beat from a prior attempt
      log_fd = ::open(state.log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    }
    state.outcome.log_path = state.log_path;

    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (auto& word : argv_strings) argv.push_back(word.data());
    argv.push_back(nullptr);

    const ::pid_t pid = ::fork();
    if (pid < 0) {
      if (log_fd >= 0) ::close(log_fd);
      throw Error(std::string("ShardSupervisor: fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child.  Own process group, so timeout escalation can signal the
      // whole tree (an exec-template shell plus whatever it spawned).
      ::setpgid(0, 0);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDOUT_FILENO);
        ::dup2(log_fd, STDERR_FILENO);
      }
      if (!state.heartbeat_path.empty())
        ::setenv("CPS_SHARD_HEARTBEAT", state.heartbeat_path.c_str(), 1);
      // Crash injection models "crashed once, healed on retry": only the
      // first attempt inherits the spec; retries must run clean or an
      // injected crash would be a guaranteed permanent failure.
      if (!options_.crash_inject.empty() && state.attempts == 1)
        ::setenv("CPS_CRASH_AT", options_.crash_inject.c_str(), 1);
      else
        ::unsetenv("CPS_CRASH_AT");
      ::execvp(argv[0], argv.data());
      // Forked child of a multithreaded parent: stdio locks may be held
      // by threads that do not exist here, so report with raw writes
      // only (util/signal_safe.hpp), never fprintf.
      util::safe_write_str(STDERR_FILENO, "ShardSupervisor: exec '");
      util::safe_write_str(STDERR_FILENO, argv[0]);
      util::safe_write_str(STDERR_FILENO, "' failed: errno ");
      util::safe_write_dec(STDERR_FILENO, errno);
      util::safe_write_str(STDERR_FILENO, "\n");
      ::_exit(127);
    }
    if (log_fd >= 0) ::close(log_fd);
    state.pid = pid;
    state.launched = Clock::now();
    state.phase = ShardState::Phase::kRunning;
  };

  const auto signal_group = [](ShardState& state, int sig) {
    // The child put itself in its own group; signal the whole group so
    // exec-template wrappers cannot shelter grandchildren.  Racy window
    // before the child's setpgid is covered by signaling the pid too.
    ::kill(-state.pid, sig);
    ::kill(state.pid, sig);
  };

  // One attempt finished (reaped): classify it and either finish the
  // shard, schedule a retry, or declare permanent failure.
  const auto settle_attempt = [&](ShardState& state, int wait_status) {
    state.phase = ShardState::Phase::kPending;
    state.pid = -1;
    state.outcome.attempts = state.attempts;
    std::string failure;
    if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
      // Exit 0 alone is not success: the artifacts must have LANDED
      // (whole file + sidecar + right seed), or a child that died to a
      // buffered-write tear while exiting cleanly would poison the merge.
      bool verified = true;
      if (!options_.expected_artifacts.empty())
        for (const auto& artifact : options_.expected_artifacts)
          if (!shard_artifact_landed(artifact, state.outcome.shard, n,
                                     options_.expected_seed)) {
            verified = false;
            failure = "exited 0 but partial artifact '" + artifact +
                      "' did not land (torn or unpublished)";
            break;
          }
      if (verified) {
        state.phase = ShardState::Phase::kDone;
        state.outcome.status = ShardOutcome::Status::kSucceeded;
        state.outcome.detail.clear();
        return;
      }
    } else if (WIFEXITED(wait_status)) {
      failure = "exit status " + std::to_string(WEXITSTATUS(wait_status));
    } else if (WIFSIGNALED(wait_status)) {
      failure = std::string("killed by signal ") + std::to_string(WTERMSIG(wait_status));
      if (state.attempt_timed_out) {
        failure += " (supervisor: " + state.timeout_reason + ")";
        state.outcome.timed_out = true;
      }
    } else {
      failure = "unrecognized wait status " + std::to_string(wait_status);
    }
    if (!state.log_path.empty()) failure += log_tail(state.log_path);
    state.outcome.detail =
        "attempt " + std::to_string(state.attempts) + "/" +
        std::to_string(options_.max_attempts) + ": " + failure;
    if (state.attempts >= options_.max_attempts) {
      state.phase = ShardState::Phase::kDone;
      state.outcome.status = ShardOutcome::Status::kFailed;
      return;
    }
    const double delay = backoff_delay_seconds(options_, state.outcome.shard, state.attempts);
    state.eligible = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(delay));
    state.phase = ShardState::Phase::kBackoff;
  };

  SupervisorReport report;
  bool interrupted = false;
  for (;;) {
    // Interrupt (SIGINT/SIGTERM in the driver): stop launching, tear
    // down every running child, report what resolved so far.
    if (options_.interrupt_flag != nullptr && *options_.interrupt_flag != 0 &&
        !interrupted) {
      interrupted = true;
      for (auto& state : states)
        if (state.phase == ShardState::Phase::kRunning) signal_group(state, SIGTERM);
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(options_.term_grace_seconds));
      for (auto& state : states) {
        if (state.phase != ShardState::Phase::kRunning) continue;
        int wait_status = 0;
        for (;;) {
          const ::pid_t reaped = ::waitpid(state.pid, &wait_status, WNOHANG);
          if (reaped == state.pid || reaped < 0) break;
          if (Clock::now() >= deadline) {
            signal_group(state, SIGKILL);
            ::waitpid(state.pid, &wait_status, 0);
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        state.pid = -1;
      }
      for (auto& state : states)
        if (state.phase != ShardState::Phase::kDone) {
          state.outcome.status = ShardOutcome::Status::kInterrupted;
          state.outcome.attempts = state.attempts;
          state.outcome.detail = "interrupted by signal before the shard resolved";
        }
      break;
    }

    std::size_t running = 0, done = 0;
    for (const auto& state : states) {
      running += state.phase == ShardState::Phase::kRunning ? 1 : 0;
      done += state.phase == ShardState::Phase::kDone ? 1 : 0;
    }
    if (done == n) break;

    // Launch eligible shards, lowest index first, up to the cap.
    for (auto& state : states) {
      if (running >= max_parallel) break;
      const bool ready =
          state.phase == ShardState::Phase::kPending ||
          (state.phase == ShardState::Phase::kBackoff && Clock::now() >= state.eligible);
      if (!ready) continue;
      spawn(state);
      ++running;
    }

    // Reap and police deadlines.
    for (auto& state : states) {
      if (state.phase != ShardState::Phase::kRunning) continue;
      int wait_status = 0;
      const ::pid_t reaped = ::waitpid(state.pid, &wait_status, WNOHANG);
      if (reaped == state.pid) {
        settle_attempt(state, wait_status);
        continue;
      }
      // Wall-clock timeout, then heartbeat staleness: either one starts
      // the SIGTERM -> grace -> SIGKILL escalation.
      if (!state.attempt_timed_out) {
        const double elapsed = seconds_since(state.launched);
        if (options_.timeout_seconds > 0.0 && elapsed > options_.timeout_seconds) {
          state.attempt_timed_out = true;
          state.timeout_reason = "wall-clock timeout after " +
                                 std::to_string(options_.timeout_seconds) + " s";
        } else if (options_.heartbeat_stale_seconds > 0.0 && !state.heartbeat_path.empty()) {
          std::error_code error;
          const auto beat = std::filesystem::last_write_time(state.heartbeat_path, error);
          if (!error) {
            const double stale =
                std::chrono::duration<double>(
                    std::filesystem::file_time_type::clock::now() - beat)
                    .count();
            if (stale > options_.heartbeat_stale_seconds) {
              state.attempt_timed_out = true;
              state.timeout_reason =
                  "heartbeat stale for " + std::to_string(stale).substr(0, 5) + " s";
            }
          }
        }
        if (state.attempt_timed_out) {
          signal_group(state, SIGTERM);
          state.term_sent = true;
          state.term_time = Clock::now();
        }
      } else if (state.term_sent &&
                 seconds_since(state.term_time) > options_.term_grace_seconds) {
        // The attempt ignored SIGTERM through the grace period: escalate.
        signal_group(state, SIGKILL);
        state.term_sent = false;  // KILL cannot be ignored; just await the reap
        state.outcome.killed = true;
      }
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(options_.poll_interval_seconds));
  }

  report.interrupted = interrupted;
  report.outcomes.reserve(n);
  for (auto& state : states) report.outcomes.push_back(std::move(state.outcome));
  return report;
}

std::string write_campaign_manifest(const std::string& csv_dir,
                                    const SupervisorReport& report, std::uint64_t seed,
                                    const std::vector<std::string>& artifacts,
                                    const std::vector<PartialMergeReport>& merges) {
  CPS_ENSURE(artifacts.size() == merges.size(),
             "write_campaign_manifest: one merge report per artifact");
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "0x%016llx",
                static_cast<unsigned long long>(seed));

  std::string json = "{\n";
  json += "  \"manifest_version\": 1,\n";
  json += "  \"campaign_seed\": \"" + std::string(seed_hex) + "\",\n";
  const std::size_t shard_count =
      merges.empty() ? report.outcomes.size() : merges.front().shard_count;
  json += "  \"shard_count\": " + std::to_string(shard_count) + ",\n";

  json += "  \"shards\": [\n";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& outcome = report.outcomes[i];
    json += "    {\"shard\": " + std::to_string(outcome.shard) + ", \"status\": \"" +
            status_name(outcome.status) + "\", \"attempts\": " +
            std::to_string(outcome.attempts);
    if (!outcome.detail.empty()) json += ", \"detail\": \"" + json_escape(outcome.detail) + "\"";
    json += "}";
    json += i + 1 < report.outcomes.size() ? ",\n" : "\n";
  }
  json += "  ],\n";

  json += "  \"artifacts\": [\n";
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    const auto& merge = merges[a];
    json += "    {\n";
    json += "      \"path\": \"" + json_escape(artifacts[a]) + "\",\n";
    json += "      \"rows_merged\": " + std::to_string(merge.rows_merged) + ",\n";
    const auto range_list = [](const std::vector<IndexRange>& ranges) {
      std::string text = "[";
      for (std::size_t r = 0; r < ranges.size(); ++r) {
        text += "[" + std::to_string(ranges[r].begin) + ", " +
                (ranges[r].open_ended ? std::string("null") : std::to_string(ranges[r].end)) +
                "]";
        if (r + 1 < ranges.size()) text += ", ";
      }
      return text + "]";
    };
    std::string merged_list = "[";
    for (std::size_t m = 0; m < merge.merged_shards.size(); ++m) {
      merged_list += std::to_string(merge.merged_shards[m]);
      if (m + 1 < merge.merged_shards.size()) merged_list += ", ";
    }
    merged_list += "]";
    std::string missing_list = "[";
    for (std::size_t f = 0; f < merge.failures.size(); ++f) {
      missing_list += std::to_string(merge.failures[f].shard);
      if (f + 1 < merge.failures.size()) missing_list += ", ";
    }
    missing_list += "]";
    json += "      \"merged_shards\": " + merged_list + ",\n";
    json += "      \"missing_shards\": " + missing_list + ",\n";
    json += "      \"covered_index_ranges\": " + range_list(merge.covered_ranges) + ",\n";
    json += "      \"missing_index_ranges\": " + range_list(merge.missing_ranges()) + ",\n";
    json += "      \"failures\": [";
    for (std::size_t f = 0; f < merge.failures.size(); ++f) {
      json += "{\"shard\": " + std::to_string(merge.failures[f].shard) + ", \"error\": \"" +
              json_escape(merge.failures[f].error) + "\"}";
      if (f + 1 < merge.failures.size()) json += ", ";
    }
    json += "]\n";
    json += a + 1 < artifacts.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";

  const std::string path =
      csv_dir.empty() ? "campaign_manifest.json" : csv_dir + "/campaign_manifest.json";
  publish_text(path, json);
  return path;
}

}  // namespace cps::runtime
