// Deterministic parallel fan-out of parameter grids.
//
// SweepRunner evaluates a task function over indices [0, count), spread
// across a work-stealing ThreadPool.  Determinism contract: each task
// receives its own Rng seeded by task_seed(base_seed, index) and must draw
// randomness ONLY from that Rng, so the result vector is bit-identical for
// any job count and any scheduling order (results come back in index
// order).  tests/runtime_test.cpp enforces this for 1 vs 2 jobs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace cps::runtime {

/// splitmix64-style mix of (seed, index): statistically independent,
/// scheduling-independent per-task seeds.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index);

/// Fan-out knobs of one sweep.
struct SweepOptions {
  /// Worker threads; <= 1 runs inline on the calling thread.
  int jobs = 1;
  /// Base seed every per-task Rng derives from.
  std::uint64_t seed = 0x5EED5EEDULL;
};

/// Deterministic parallel map over an index range (see file comment for
/// the determinism contract).
class SweepRunner {
 public:
  /// Capture the fan-out options; no threads spawn until run().
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Worker-thread count the next run() will use.
  int jobs() const { return options_.jobs; }
  /// Base seed the per-task Rngs derive from.
  std::uint64_t seed() const { return options_.seed; }

  /// Evaluate fn(index, rng) for every index in [0, count) and return the
  /// results in index order.  fn must not touch shared mutable state.
  template <typename Fn>
  auto run(std::size_t count, Fn fn) -> std::vector<decltype(fn(std::size_t{}, std::declval<Rng&>()))> {
    using Result = decltype(fn(std::size_t{}, std::declval<Rng&>()));
    std::vector<Result> results;
    results.reserve(count);
    if (count == 0) return results;
    if (options_.jobs <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        Rng rng(task_seed(options_.seed, i));
        results.push_back(fn(i, rng));
      }
      return results;
    }
    ThreadPool pool(std::min(static_cast<std::size_t>(options_.jobs), count));
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    const std::uint64_t base = options_.seed;
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool.submit([fn, base, i]() {
        Rng rng(task_seed(base, i));
        return fn(i, rng);
      }));
    }
    try {
      for (auto& future : futures) results.push_back(future.get());
    } catch (...) {
      // Fail fast: drop the queued tasks so the pool's destructor joins
      // after the in-flight ones instead of draining the whole campaign.
      pool.cancel_pending();
      throw;
    }
    return results;
  }

 private:
  SweepOptions options_;
};

}  // namespace cps::runtime
