// Deterministic parallel fan-out of parameter grids.
//
// SweepRunner evaluates a task function over a (possibly sharded) global
// index range, spread across a work-stealing ThreadPool in CONTIGUOUS
// CHUNKS: instead of one future per index (whose promise/packaged_task
// machinery dominates fine-grained grids), each pool task runs a block
// of consecutive indices and returns the block's results, so the
// per-index overhead is amortized to nearly zero while work stealing
// still balances uneven grids chunk by chunk.
//
// Determinism contract: each index receives its own Rng seeded by
// task_seed(base_seed, global_index) and must draw randomness ONLY from
// that Rng, so the result vector is bit-identical for any job count, any
// chunk size, any scheduling order, and any shard partition (results
// come back in global index order; a shard computes exactly the block
// shard_range(count, i, N) of the unsharded results).
// tests/runtime_test.cpp enforces jobs/chunk/shard invariance.
//
// Per-worker workspaces: run_with_workspace() threads one reusable
// workspace object through every index of a chunk, so sweep bodies can
// keep scratch matrices/vectors (sim::DwellWaitWorkspace,
// sim::JitterWorkspace, analysis::TransientWorkspace, ...) across grid
// points instead of reallocating them per index.  The body must fully
// overwrite whatever workspace state it reads — the workspace is an
// allocation cache, never a data channel between indices.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "runtime/shard.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cps::runtime {

/// splitmix64-style mix of (seed, index): statistically independent,
/// scheduling-independent per-task seeds.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t index);

/// Contiguous block of global indices handed to a span body
/// (SweepRunner::run_span_with_workspace), with the per-index Rng factory
/// of the determinism contract: randomness for index i must come from
/// rng_at(i) only, never from span-level state, so the per-index results
/// cannot depend on where the span boundaries fall.
struct IndexSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t base_seed = 0;

  std::size_t size() const { return end - begin; }
  /// The Rng index i (in [begin, end)) must draw from.
  Rng rng_at(std::size_t index) const { return Rng(task_seed(base_seed, index)); }
};

/// Fan-out knobs of one sweep.
struct SweepOptions {
  /// Worker threads; <= 1 runs inline on the calling thread.
  int jobs = 1;
  /// Base seed every per-task Rng derives from.
  std::uint64_t seed = 0x5EED5EEDULL;
  /// Shard of the global index range this runner evaluates (contiguous
  /// block partition; see runtime/shard.hpp).  Defaults to the whole
  /// range.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Indices per pool task; 0 picks kChunksPerWorker chunks per worker.
  /// Any value yields bit-identical results.
  std::size_t chunk = 0;
};

/// Deterministic parallel map over an index range (see file comment for
/// the determinism contract).
class SweepRunner {
 public:
  /// Auto-chunking aims at this many chunks per worker: small enough to
  /// amortize future overhead, large enough for stealing to balance.
  static constexpr std::size_t kChunksPerWorker = 4;

  /// Capture the fan-out options; no threads spawn until run().
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {
    CPS_ENSURE(options_.shard_count >= 1 && options_.shard_index < options_.shard_count,
               "SweepRunner: invalid shard spec");
  }

  /// Worker-thread count the next run() will use.
  int jobs() const { return options_.jobs; }
  /// Base seed the per-task Rngs derive from.
  std::uint64_t seed() const { return options_.seed; }

  /// The global index block this runner evaluates for a `count`-point
  /// sweep (the whole range unless sharded).
  ShardRange range(std::size_t count) const {
    return shard_range(count, options_.shard_index, options_.shard_count);
  }

  /// Evaluate fn(global_index, rng) for every index in range(count) and
  /// return the results in global index order (element i of the result
  /// is global index range(count).begin + i).  fn must not touch shared
  /// mutable state.
  template <typename Fn>
  auto run(std::size_t count, Fn fn)
      -> std::vector<decltype(fn(std::size_t{}, std::declval<Rng&>()))> {
    struct NoWorkspace {};
    return run_with_workspace<NoWorkspace>(
        count, [&fn](std::size_t index, Rng& rng, NoWorkspace&) { return fn(index, rng); });
  }

  /// run() with a per-worker scratch workspace: fn(global_index, rng,
  /// workspace) where one default-constructed Workspace is reused across
  /// every index of a chunk (and across all indices when jobs <= 1).
  /// Results must not depend on incoming workspace contents.
  template <typename Workspace, typename Fn>
  auto run_with_workspace(std::size_t count, Fn fn)
      -> std::vector<decltype(fn(std::size_t{}, std::declval<Rng&>(),
                                 std::declval<Workspace&>()))> {
    using Result = decltype(fn(std::size_t{}, std::declval<Rng&>(), std::declval<Workspace&>()));
    const ShardRange shard = range(count);
    std::vector<Result> results;
    results.reserve(shard.size());
    if (shard.size() == 0) return results;

    const std::uint64_t base = options_.seed;
    if (options_.jobs <= 1) {
      Workspace workspace{};
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        Rng rng(task_seed(base, i));
        results.push_back(fn(i, rng, workspace));
      }
      return results;
    }

    const std::size_t workers =
        std::min(static_cast<std::size_t>(options_.jobs), shard.size());
    const std::size_t chunk =
        options_.chunk != 0
            ? options_.chunk
            : std::max<std::size_t>(1, shard.size() / (workers * kChunksPerWorker));
    ThreadPool pool(workers);
    std::vector<std::future<std::vector<Result>>> futures;
    futures.reserve((shard.size() + chunk - 1) / chunk);
    for (std::size_t lo = shard.begin; lo < shard.end; lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, shard.end);
      futures.push_back(pool.submit([fn, base, lo, hi]() {
        // One workspace per chunk: allocated scratch survives across the
        // chunk's indices, which is what removes the per-index
        // allocation churn of the old one-future-per-index fan-out.
        Workspace workspace{};
        std::vector<Result> block;
        block.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          Rng rng(task_seed(base, i));
          block.push_back(fn(i, rng, workspace));
        }
        return block;
      }));
    }
    try {
      for (auto& future : futures) {
        auto block = future.get();
        for (auto& value : block) results.push_back(std::move(value));
      }
    } catch (...) {
      // Fail fast: drop the queued chunks so the pool's destructor joins
      // after the in-flight ones instead of draining the whole campaign.
      pool.cancel_pending();
      throw;
    }
    return results;
  }

  /// Batch-aware chunk iteration: where run_with_workspace calls fn once
  /// per index, this hands fn a whole CONTIGUOUS IndexSpan (plus the
  /// per-chunk workspace) and expects exactly span.size() results back,
  /// result j belonging to global index span.begin + j.  Span bodies can
  /// gather several consecutive grid points into one SoA batch
  /// (linalg/batch_kernels.hpp) and advance them per instruction stream.
  ///
  /// Determinism obligation ON THE BODY: span boundaries move with jobs,
  /// chunk size, and shard partition, so the result for an index must not
  /// depend on which span evaluated it — batched kernels satisfy this by
  /// construction because every lane is bit-identical to the scalar path.
  /// Randomness must come from span.rng_at(index) only.  jobs <= 1 runs
  /// the whole shard as one span on the calling thread.
  template <typename Workspace, typename Fn>
  auto run_span_with_workspace(std::size_t count, Fn fn)
      -> decltype(fn(std::declval<const IndexSpan&>(), std::declval<Workspace&>())) {
    using Block = decltype(fn(std::declval<const IndexSpan&>(), std::declval<Workspace&>()));
    using Result = typename Block::value_type;
    const ShardRange shard = range(count);
    std::vector<Result> results;
    results.reserve(shard.size());
    if (shard.size() == 0) return results;

    const std::uint64_t base = options_.seed;
    const auto run_span = [&fn, base](std::size_t lo, std::size_t hi, Workspace& workspace) {
      const IndexSpan span{lo, hi, base};
      Block block = fn(span, workspace);
      CPS_ENSURE(block.size() == span.size(),
                 "run_span_with_workspace: body must return one result per span index");
      return block;
    };
    if (options_.jobs <= 1) {
      Workspace workspace{};
      return run_span(shard.begin, shard.end, workspace);
    }

    const std::size_t workers =
        std::min(static_cast<std::size_t>(options_.jobs), shard.size());
    const std::size_t chunk =
        options_.chunk != 0
            ? options_.chunk
            : std::max<std::size_t>(1, shard.size() / (workers * kChunksPerWorker));
    ThreadPool pool(workers);
    std::vector<std::future<Block>> futures;
    futures.reserve((shard.size() + chunk - 1) / chunk);
    for (std::size_t lo = shard.begin; lo < shard.end; lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, shard.end);
      futures.push_back(pool.submit([run_span, lo, hi]() {
        Workspace workspace{};
        return run_span(lo, hi, workspace);
      }));
    }
    try {
      for (auto& future : futures) {
        auto block = future.get();
        for (auto& value : block) results.push_back(std::move(value));
      }
    } catch (...) {
      pool.cancel_pending();
      throw;
    }
    return results;
  }

 private:
  SweepOptions options_;
};

}  // namespace cps::runtime
