// Fault-tolerant campaign supervisor: the process layer of a sharded
// campaign.
//
// `cps_run --shard i/N` made a campaign a set of N independent
// processes whose partial CSVs merge byte-identically into the
// single-process artifact; this layer makes LAUNCHING those processes
// robust.  A ShardSupervisor fans the N shard commands out as child
// processes (bounded concurrency, fork/exec — or an --exec-template
// wrapper for SSH and friends) and applies a full robustness policy to
// each:
//
//   crash      (non-zero exit, kill-signal, CPS_CRASH_AT injection)
//              -> bounded retries with deterministic jittered
//                 exponential backoff
//   hang       (per-shard wall-clock timeout, or a stalled heartbeat
//              sidecar) -> SIGTERM to the shard's process group, then
//              SIGKILL after a grace period, then the retry policy
//   already landed (resumable restart) -> shards whose `.meta`-verified
//              CSV is already on disk are skipped, so re-running a
//              partly-failed campaign only pays for the missing shards
//   retries exhausted -> a permanent per-shard failure the caller turns
//              into either a hard multi-shard error report or — with
//              --allow-partial — a degraded partial merge plus a
//              machine-readable campaign_manifest.json naming exactly
//              the missing index ranges (merge_sweep_csv_partial)
//
// Success of an attempt is NOT just exit status 0: when the expected
// artifacts are declared, the supervisor re-verifies that every one of
// the shard's partial CSVs actually landed with a consistent sidecar
// (shard_artifact_landed), so a child that exits 0 without publishing —
// or publishes a torn file — is retried like any other failure.
//
// Everything is deterministic where it matters: the backoff schedule
// (base * factor^k, capped, with a splitmix-derived jitter in
// [0.5, 1.5) seeded by (backoff_seed, shard, attempt)) is a pure
// function exposed for tests, and the artifacts themselves carry the
// byte-identity contract of the shard/merge layer, so a supervised
// campaign's merged CSV `cmp`s equal to the unsharded reference run no
// matter which shards crashed, hung, or were killed along the way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <csignal>
#include <string>
#include <vector>

#include "runtime/shard.hpp"

namespace cps::runtime {

/// Robustness policy and plumbing of one supervised campaign.
struct SupervisorOptions {
  /// Number of shard commands to run (shard indices 0 .. shard_count-1).
  std::size_t shard_count = 2;
  /// Concurrently running shard processes; 0 = min(shard_count, cores).
  std::size_t max_parallel = 0;
  /// Attempts per shard before it is declared permanently failed.
  int max_attempts = 3;
  /// Per-attempt wall-clock timeout in seconds; 0 disables.
  double timeout_seconds = 0.0;
  /// Grace between SIGTERM and SIGKILL when an attempt is cancelled.
  double term_grace_seconds = 2.0;
  /// Treat a shard as hung when its heartbeat sidecar (heartbeat_dir)
  /// has not been touched for this long; 0 disables the check.
  double heartbeat_stale_seconds = 0.0;
  /// Retry backoff: delay = min(base * factor^(attempt-1), max) * jitter
  /// with jitter in [0.5, 1.5) derived deterministically from
  /// (backoff_seed, shard, attempt) — see backoff_delay_seconds().
  double backoff_base_seconds = 0.5;
  double backoff_factor = 2.0;
  double backoff_max_seconds = 30.0;
  std::uint64_t backoff_seed = 0x5EED5EEDULL;
  /// Supervision loop poll period (child reaping, timeouts, launches).
  double poll_interval_seconds = 0.025;
  /// When non-empty, each shard runs as `/bin/sh -c TEMPLATE` with
  /// `{cmd}` replaced by the shell-quoted shard command and `{i}`/`{n}`
  /// by the shard index/count — the hook that later wraps shards in
  /// `ssh worker{i} {cmd}` or a container launcher.  The same `{i}`/
  /// `{n}` substitution applies to the command itself either way.
  std::string exec_template;
  /// CPS_CRASH_AT spec forwarded to the FIRST attempt of every shard
  /// only (retries run clean), so injected crashes model "crashed once,
  /// healed on retry" instead of deterministic permanent failure.
  std::string crash_inject;
  /// Directory for per-attempt child logs (stdout+stderr) and heartbeat
  /// sidecars; empty = children inherit the supervisor's streams and
  /// heartbeats are disabled.
  std::string work_dir;
  /// Canonical sweep-CSV paths the campaign must produce.  When
  /// non-empty: shards whose partials all pass shard_artifact_landed
  /// with expected_seed are skipped (resume), and an attempt only counts
  /// as success once its partials verify.
  std::vector<std::string> expected_artifacts;
  std::uint64_t expected_seed = 0;
  /// Skip shards that already landed (no-op when expected_artifacts is
  /// empty).
  bool resume = true;
  /// When non-null, a non-zero value (set by a signal handler) makes the
  /// supervisor tear down every running child (TERM -> grace -> KILL)
  /// and return with interrupted outcomes.
  const volatile std::sig_atomic_t* interrupt_flag = nullptr;
};

/// Final status of one shard after supervision.
struct ShardOutcome {
  std::size_t shard = 0;
  enum class Status {
    kSucceeded,    ///< an attempt exited 0 (and its artifacts verified)
    kSkipped,      ///< resume: artifacts already landed, never launched
    kFailed,       ///< every attempt failed (exit/signal/timeout/torn artifact)
    kInterrupted,  ///< supervisor interrupted before the shard resolved
  } status = Status::kFailed;
  int attempts = 0;      ///< attempts actually launched
  bool timed_out = false;  ///< some attempt hit the wall-clock/heartbeat limit
  bool killed = false;     ///< SIGKILL escalation was needed
  std::string detail;      ///< last failure description ("" on success/skip)
  std::string log_path;    ///< last attempt's log file ("" without work_dir)
};

/// Everything the caller needs for the error report / manifest.
struct SupervisorReport {
  std::vector<ShardOutcome> outcomes;  ///< indexed by shard
  bool interrupted = false;
  bool all_ok() const {
    for (const auto& outcome : outcomes)
      if (outcome.status != ShardOutcome::Status::kSucceeded &&
          outcome.status != ShardOutcome::Status::kSkipped)
        return false;
    return true;
  }
  std::vector<std::size_t> failed_shards() const {
    std::vector<std::size_t> failed;
    for (const auto& outcome : outcomes)
      if (outcome.status == ShardOutcome::Status::kFailed) failed.push_back(outcome.shard);
    return failed;
  }
};

/// The deterministic retry delay after `failed_attempts` (>= 1) failures
/// of `shard`: capped exponential backoff times a [0.5, 1.5) jitter that
/// depends only on (options.backoff_seed, shard, failed_attempts) — same
/// inputs, same schedule, which is what makes supervisor behavior
/// reproducible under test.  A thin wrapper over runtime/backoff.hpp's
/// backoff_delay(), the shared schedule every runtime retry loop uses.
double backoff_delay_seconds(const SupervisorOptions& options, std::size_t shard,
                             int failed_attempts);

/// Supervises one campaign.  Construct with the shard command template
/// (argv words; `{i}`/`{n}` are substituted per shard) and run().
class ShardSupervisor {
 public:
  ShardSupervisor(std::vector<std::string> shard_command, SupervisorOptions options);

  /// Run every shard to success, skip, or permanent failure (or until
  /// *options.interrupt_flag goes non-zero).  Blocking; returns the
  /// per-shard outcomes.
  SupervisorReport run();

 private:
  std::vector<std::string> shard_command_;
  SupervisorOptions options_;
};

/// Serialize the end state of a DEGRADED campaign as
/// `<csv_dir>/campaign_manifest.json`: shard outcomes, per-artifact
/// merged/missing shards and the exact covered/missing index ranges
/// (open-ended when the final shard is gone).  Machine-readable so a
/// later launcher — or a human — can re-run precisely what is missing.
/// Returns the manifest path.
std::string write_campaign_manifest(const std::string& csv_dir,
                                    const SupervisorReport& report, std::uint64_t seed,
                                    const std::vector<std::string>& artifacts,
                                    const std::vector<PartialMergeReport>& merges);

}  // namespace cps::runtime
