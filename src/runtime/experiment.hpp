// Named-experiment registry: the run layer's catalog.
//
// Every paper figure, table and ablation registers itself (via
// CPS_EXPERIMENT in src/experiments/) as a named Experiment; the cps_run
// driver looks experiments up by name, so adding a workload is one
// translation unit with no driver changes.  The registry is a process-wide
// singleton populated by static registrars before main() runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cps::runtime {

struct CampaignSpec;

/// Per-invocation knobs handed to every experiment.
struct ExperimentContext {
  /// Worker threads available to SweepRunner fan-outs (>= 1).
  int jobs = 1;
  /// Base seed; every randomized sweep derives per-task seeds from it.
  std::uint64_t seed = 0x5EED5EEDULL;
  /// True when `seed` came from an EXPLICIT --seed flag (not a spec or
  /// the default).  Layers with their own seed sources — the online
  /// scenario scripts — consult this to implement "explicit flags win":
  /// an explicit --seed beats the scenario's seed beats the spec's seed
  /// beats the default (online/scenario.hpp, effective_scenario_seed).
  bool seed_explicit = false;
  /// Scenario script for the run_scenario experiment (`cps_run
  /// --scenario FILE`); empty = the spec's scenario.file key, or the
  /// experiment's built-in demo scenario.
  std::string scenario_path;
  /// Directory for CSV artifacts; empty means the working directory.
  std::string csv_dir;
  /// Narrative output stream (tables, verdicts).
  std::FILE* out = stdout;
  /// Campaign shard this process runs (`cps_run --shard i/N`); sweep
  /// experiments thread these into SweepOptions so each process
  /// evaluates only its contiguous block of every sweep's index range.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// The campaign spec this invocation runs under (`cps_run --spec`), or
  /// nullptr outside any campaign.  Experiment bodies read typed
  /// parameters through the null-tolerant spec_* helpers
  /// (runtime/campaign_spec.hpp), so every experiment keeps its built-in
  /// defaults when run bare.
  const CampaignSpec* spec = nullptr;
  /// Crash-safe publication (set by the cps_run driver around sweep
  /// experiments): while true, artifact_path() appends ".inprogress", so
  /// the experiment body writes to a staging name; the driver renames the
  /// staged file onto the real artifact path only AFTER the experiment
  /// succeeds.  A crash, kill, or SIGINT mid-experiment therefore leaves
  /// only staging debris — never a torn CSV at a name the merge trusts.
  bool stage_artifacts = false;

  /// True when this invocation is one shard of a multi-process campaign.
  bool sharded() const { return shard_count > 1; }

  /// Join `filename` onto csv_dir.
  std::string csv_path(const std::string& filename) const;

  /// csv_path() plus the shard suffix (".shard0of2", ...; empty when
  /// unsharded) — where a sweep experiment writes its per-point rows so
  /// `cps_run --merge` can concatenate shards into the canonical file.
  std::string artifact_path(const std::string& filename) const;
};

/// A named, runnable reproduction target (one figure/table/ablation).
class Experiment {
 public:
  /// Experiment body: reads knobs from the context, writes artifacts.
  using RunFn = std::function<void(ExperimentContext&)>;

  /// Wrap a runnable body under a unique name (empty names rejected).
  Experiment(std::string name, std::string description, RunFn run);

  /// Shardable sweep experiment: `sweep_artifacts` names the per-point
  /// CSVs (leading global-index column) whose shard partials
  /// `cps_run --merge` concatenates into the canonical files.
  Experiment(std::string name, std::string description, RunFn run,
             std::vector<std::string> sweep_artifacts);

  /// Unique registry key (also the CLI argument to cps_run).
  const std::string& name() const { return name_; }
  /// One-line human-readable summary shown by `cps_run --list`.
  const std::string& description() const { return description_; }
  /// Per-point sweep CSVs this experiment writes (empty for experiments
  /// that cannot run sharded).
  const std::vector<std::string>& sweep_artifacts() const { return sweep_artifacts_; }
  /// True when the experiment honours ExperimentContext::shard_* and may
  /// be run under `cps_run --shard` / merged with `--merge`.
  bool shardable() const { return !sweep_artifacts_.empty(); }
  /// Execute the experiment body with the given per-invocation knobs.
  void run(ExperimentContext& context) const { run_(context); }

 private:
  std::string name_;
  std::string description_;
  std::vector<std::string> sweep_artifacts_;
  RunFn run_;
};

/// Process-wide catalog of experiments, keyed by unique name.
class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  /// Register an experiment; throws cps::Error on a duplicate name.
  void add(Experiment experiment);

  /// Lookup by exact name; nullptr when absent.
  const Experiment* find(const std::string& name) const;

  /// All experiments, sorted by name.
  std::vector<const Experiment*> list() const;

  /// Number of registered experiments.
  std::size_t size() const { return experiments_.size(); }

 private:
  std::map<std::string, Experiment> experiments_;
};

/// Static-initialization helper used by CPS_EXPERIMENT.
struct ExperimentRegistrar {
  /// Adds the experiment to ExperimentRegistry::instance() before main().
  ExperimentRegistrar(std::string name, std::string description, Experiment::RunFn run);
  /// Shardable-sweep flavour: also records the per-point CSV artifacts.
  ExperimentRegistrar(std::string name, std::string description, Experiment::RunFn run,
                      std::vector<std::string> sweep_artifacts);
};

}  // namespace cps::runtime

/// Define and register an experiment:
///
///   CPS_EXPERIMENT(fig4, "Figure 4: dwell/wait envelope models") {
///     ... use ctx (an ExperimentContext&) ...
///   }
#define CPS_EXPERIMENT(id, description)                                       \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx);    \
  static const ::cps::runtime::ExperimentRegistrar cps_experiment_reg_##id(   \
      #id, description, &cps_experiment_##id);                                \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx)

/// Define and register a SHARDABLE sweep experiment.  The trailing
/// arguments name its per-point CSV artifacts (written via
/// ctx.artifact_path(), leading global-index column); the body must
/// honour ctx.shard_index / ctx.shard_count by threading them into
/// SweepOptions:
///
///   CPS_SWEEP_EXPERIMENT(sweep_x, "Sweep: ...", "sweep_x.csv") { ... }
#define CPS_SWEEP_EXPERIMENT(id, description, ...)                            \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx);    \
  static const ::cps::runtime::ExperimentRegistrar cps_experiment_reg_##id(   \
      #id, description, &cps_experiment_##id,                                 \
      std::vector<std::string>{__VA_ARGS__});                                 \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx)
