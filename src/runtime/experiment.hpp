// Named-experiment registry: the run layer's catalog.
//
// Every paper figure, table and ablation registers itself (via
// CPS_EXPERIMENT in src/experiments/) as a named Experiment; the cps_run
// driver looks experiments up by name, so adding a workload is one
// translation unit with no driver changes.  The registry is a process-wide
// singleton populated by static registrars before main() runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cps::runtime {

/// Per-invocation knobs handed to every experiment.
struct ExperimentContext {
  /// Worker threads available to SweepRunner fan-outs (>= 1).
  int jobs = 1;
  /// Base seed; every randomized sweep derives per-task seeds from it.
  std::uint64_t seed = 0x5EED5EEDULL;
  /// Directory for CSV artifacts; empty means the working directory.
  std::string csv_dir;
  /// Narrative output stream (tables, verdicts).
  std::FILE* out = stdout;

  /// Join `filename` onto csv_dir.
  std::string csv_path(const std::string& filename) const;
};

/// A named, runnable reproduction target (one figure/table/ablation).
class Experiment {
 public:
  /// Experiment body: reads knobs from the context, writes artifacts.
  using RunFn = std::function<void(ExperimentContext&)>;

  /// Wrap a runnable body under a unique name (empty names rejected).
  Experiment(std::string name, std::string description, RunFn run);

  /// Unique registry key (also the CLI argument to cps_run).
  const std::string& name() const { return name_; }
  /// One-line human-readable summary shown by `cps_run --list`.
  const std::string& description() const { return description_; }
  /// Execute the experiment body with the given per-invocation knobs.
  void run(ExperimentContext& context) const { run_(context); }

 private:
  std::string name_;
  std::string description_;
  RunFn run_;
};

/// Process-wide catalog of experiments, keyed by unique name.
class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  /// Register an experiment; throws cps::Error on a duplicate name.
  void add(Experiment experiment);

  /// Lookup by exact name; nullptr when absent.
  const Experiment* find(const std::string& name) const;

  /// All experiments, sorted by name.
  std::vector<const Experiment*> list() const;

  /// Number of registered experiments.
  std::size_t size() const { return experiments_.size(); }

 private:
  std::map<std::string, Experiment> experiments_;
};

/// Static-initialization helper used by CPS_EXPERIMENT.
struct ExperimentRegistrar {
  /// Adds the experiment to ExperimentRegistry::instance() before main().
  ExperimentRegistrar(std::string name, std::string description, Experiment::RunFn run);
};

}  // namespace cps::runtime

/// Define and register an experiment:
///
///   CPS_EXPERIMENT(fig4, "Figure 4: dwell/wait envelope models") {
///     ... use ctx (an ExperimentContext&) ...
///   }
#define CPS_EXPERIMENT(id, description)                                       \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx);    \
  static const ::cps::runtime::ExperimentRegistrar cps_experiment_reg_##id(   \
      #id, description, &cps_experiment_##id);                                \
  static void cps_experiment_##id(::cps::runtime::ExperimentContext& ctx)
