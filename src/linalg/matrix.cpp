#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "linalg/vector.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace cps::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.resize_discard(rows_ * cols_);
  double* out = data_.data();
  for (const auto& r : rows) {
    if (r.size() != cols_) throw DimensionMismatch("Matrix initializer rows have unequal lengths");
    for (const double v : r) *out++ = v;
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }

Matrix Matrix::diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

void Matrix::throw_index_error(std::size_t r, std::size_t c) const {
  throw DimensionMismatch("Matrix index (" + std::to_string(r) + "," + std::to_string(c) +
                          ") out of range for " + std::to_string(rows_) + "x" +
                          std::to_string(cols_));
}

void Matrix::swap(Matrix& other) noexcept {
  std::swap(rows_, other.rows_);
  std::swap(cols_, other.cols_);
  data_.swap(other.data_);
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw DimensionMismatch("Matrix addition requires equal dimensions");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw DimensionMismatch("Matrix subtraction requires equal dimensions");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw DimensionMismatch("Matrix product: " + std::to_string(rows_) + "x" +
                            std::to_string(cols_) + " times " + std::to_string(rhs.rows_) + "x" +
                            std::to_string(rhs.cols_));
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.data_[i * rhs.cols_ + j] += aik * rhs.data_[k * rhs.cols_ + j];
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size())
    throw DimensionMismatch("Matrix-vector product: " + std::to_string(rows_) + "x" +
                            std::to_string(cols_) + " times vector of size " +
                            std::to_string(v.size()));
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += data_[i * cols_ + j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::operator/(double s) const {
  if (s == 0.0) throw NumericalError("Matrix division by zero scalar");
  return *this * (1.0 / s);
}

Matrix Matrix::operator-() const { return *this * -1.0; }

bool Matrix::operator==(const Matrix& rhs) const {
  return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  return out;
}

Matrix Matrix::pow(unsigned k) const {
  if (!is_square()) throw DimensionMismatch("Matrix::pow requires a square matrix");
  Matrix result = Matrix::identity(rows_);
  Matrix base = *this;
  while (k > 0) {
    if (k & 1U) result = result * base;
    base = base * base;
    k >>= 1U;
  }
  return result;
}

double Matrix::trace() const {
  if (!is_square()) throw DimensionMismatch("Matrix::trace requires a square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += data_[i * cols_ + i];
  return t;
}

double Matrix::norm_frobenius() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row_sum += std::fabs(data_[i * cols_ + j]);
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::norm_one() const {
  double best = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) col_sum += std::fabs(data_[i * cols_ + j]);
    best = std::max(best, col_sum);
  }
  return best;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_)
    throw DimensionMismatch("Matrix::block out of range");
  Matrix out(nr, nc);
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  return out;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  if (r0 + b.rows_ > rows_ || c0 + b.cols_ > cols_)
    throw DimensionMismatch("Matrix::set_block out of range");
  for (std::size_t i = 0; i < b.rows_; ++i)
    for (std::size_t j = 0; j < b.cols_; ++j) (*this)(r0 + i, c0 + j) = b(i, j);
}

Matrix Matrix::hstack(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_) throw DimensionMismatch("hstack requires equal row counts");
  Matrix out(a.rows_, a.cols_ + b.cols_);
  out.set_block(0, 0, a);
  out.set_block(0, a.cols_, b);
  return out;
}

Matrix Matrix::vstack(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.cols_) throw DimensionMismatch("vstack requires equal column counts");
  Matrix out(a.rows_ + b.rows_, a.cols_);
  out.set_block(0, 0, a);
  out.set_block(a.rows_, 0, b);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

Vector Matrix::row(std::size_t r) const {
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(r, j);
  return out;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - rhs.data_[i]) > tol) return false;
  return true;
}

bool Matrix::all_finite() const {
  for (double v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  for (std::size_t i = 0; i < rows_; ++i) {
    os << "  ";
    for (std::size_t j = 0; j < cols_; ++j) {
      os << format_fixed((*this)(i, j), precision);
      if (j + 1 != cols_) os << ", ";
    }
    os << "\n";
  }
  os << "]";
  return os.str();
}

Matrix operator*(double s, const Matrix& m) { return m * s; }

}  // namespace cps::linalg
