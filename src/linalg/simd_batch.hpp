// Portable W-wide batch of doubles plus SoA storage for lane-interleaved
// small-matrix batches — the value type under the batched kernels
// (linalg/batch_kernels.hpp).
//
// A simd_batch<double, W> holds one double per LANE, where a lane is one
// independent problem instance (one sweep point's matrix, one trajectory's
// state).  The batched kernels keep every floating-point operation of a
// lane in exactly the scalar kernel's order — SIMD parallelism runs ACROSS
// lanes, never across a lane's own accumulation — which is what makes each
// lane bit-identical to the scalar path (see batch_kernels.hpp for the
// per-kernel contracts).
//
// ISA selection (compile time, reported via kSimdWidth / simd_isa_name):
//   CPS_BATCH_FORCE_SCALAR  -> generic scalar lanes, W = 4 (the CI
//                              reference build, -DCPS_SIMD_ARCH=off)
//   __AVX512F__             -> 512-bit lanes, W = 8
//   __AVX2__                -> 256-bit lanes, W = 4
//   __ARM_NEON (aarch64)    -> 128-bit lanes, W = 2
//   otherwise               -> generic scalar lanes, W = 4
//
// FP-order contract of the operations themselves:
//   * operator+ / operator* are IEEE-754 double add/mul per lane — the
//     same operation the scalar kernels perform.
//   * multiply_add(a, b, acc) is the TWO-rounding sequence acc + (a * b),
//     never an FMA: the repo builds with -ffp-contract=off precisely so
//     optimized kernels stay bit-identical to the reference expressions,
//     and the batch layer honors the same rule by construction (explicit
//     mul + add intrinsics; never *_fmadd_*).
//   * accumulate_skip_zero replicates the `if (aik == 0.0) continue;`
//     sparsity skip of the scalar multiply kernels per lane via a
//     compare + blend, so -0.0 / NaN propagation matches the skip exactly
//     (0.0 * NaN or -0.0 + 0.0 would otherwise differ bitwise).
//   * sqrt lowers to the correctly-rounded IEEE sqrt instruction per lane
//     (vsqrtpd / fsqrt), bit-identical to std::sqrt on the same input.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#if !defined(CPS_BATCH_FORCE_SCALAR)
#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif
#endif

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace cps::linalg {

/// Generic scalar-array batch: one double per lane, plain loops.  Always
/// available at every W (the differential tests instantiate it directly);
/// also the fallback the native-width alias resolves to when no vector ISA
/// is selected.  With the lane count a compile-time constant the
/// element-wise lane loops are trivially unrollable, so even this form is
/// not a scalar cliff — it is merely the portable reference.
template <typename T, std::size_t W>
struct simd_batch {
  static_assert(W >= 1, "simd_batch needs at least one lane");
  T lane[W];

  static simd_batch load(const T* p) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  void store(T* p) const {
    for (std::size_t i = 0; i < W; ++i) p[i] = lane[i];
  }
  static simd_batch broadcast(T v) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = v;
    return r;
  }
  static simd_batch zero() { return broadcast(T(0)); }

  friend simd_batch operator+(const simd_batch& a, const simd_batch& b) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend simd_batch operator*(const simd_batch& a, const simd_batch& b) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }

  /// acc + a * b with two roundings per lane (mul, then add) — never FMA.
  static simd_batch multiply_add(const simd_batch& a, const simd_batch& b,
                                 const simd_batch& acc) {
    return acc + (a * b);
  }

  /// Per lane: aik == 0.0 ? acc : acc + aik * b — the batched form of the
  /// scalar multiply kernels' zero skip.
  static simd_batch accumulate_skip_zero(const simd_batch& aik, const simd_batch& b,
                                         const simd_batch& acc) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i)
      r.lane[i] = aik.lane[i] == T(0) ? acc.lane[i] : acc.lane[i] + aik.lane[i] * b.lane[i];
    return r;
  }

  static simd_batch sqrt(const simd_batch& x) {
    simd_batch r;
    for (std::size_t i = 0; i < W; ++i) r.lane[i] = std::sqrt(x.lane[i]);
    return r;
  }

  T extract(std::size_t i) const { return lane[i]; }
};

#if !defined(CPS_BATCH_FORCE_SCALAR) && defined(__AVX512F__)

inline constexpr std::size_t kSimdWidth = 8;
inline constexpr const char* kSimdIsaName = "avx512";

template <>
struct simd_batch<double, 8> {
  __m512d v;

  static simd_batch load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static simd_batch broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static simd_batch zero() { return {_mm512_setzero_pd()}; }

  friend simd_batch operator+(const simd_batch& a, const simd_batch& b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend simd_batch operator*(const simd_batch& a, const simd_batch& b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  static simd_batch multiply_add(const simd_batch& a, const simd_batch& b,
                                 const simd_batch& acc) {
    // Explicit mul then add: two roundings, matching the scalar kernels
    // under -ffp-contract=off.  NOT _mm512_fmadd_pd.
    return {_mm512_add_pd(acc.v, _mm512_mul_pd(a.v, b.v))};
  }
  static simd_batch accumulate_skip_zero(const simd_batch& aik, const simd_batch& b,
                                         const simd_batch& acc) {
    const __m512d cand = _mm512_add_pd(acc.v, _mm512_mul_pd(aik.v, b.v));
    // EQ_OQ: NaN lanes compare false and take the accumulate path, exactly
    // like the scalar `if (aik == 0.0) continue;`.
    const __mmask8 is_zero = _mm512_cmp_pd_mask(aik.v, _mm512_setzero_pd(), _CMP_EQ_OQ);
    return {_mm512_mask_blend_pd(is_zero, cand, acc.v)};
  }
  // Full-mask maskz form: same correctly-rounded vsqrtpd on every lane,
  // but the merge source is setzero instead of the _mm512_undefined_pd
  // that makes gcc's plain _mm512_sqrt_pd trip -Wmaybe-uninitialized.
  static simd_batch sqrt(const simd_batch& x) {
    return {_mm512_maskz_sqrt_pd(static_cast<__mmask8>(0xff), x.v)};
  }

  double extract(std::size_t i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }
};

#elif !defined(CPS_BATCH_FORCE_SCALAR) && defined(__AVX2__)

inline constexpr std::size_t kSimdWidth = 4;
inline constexpr const char* kSimdIsaName = "avx2";

template <>
struct simd_batch<double, 4> {
  __m256d v;

  static simd_batch load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static simd_batch broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static simd_batch zero() { return {_mm256_setzero_pd()}; }

  friend simd_batch operator+(const simd_batch& a, const simd_batch& b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend simd_batch operator*(const simd_batch& a, const simd_batch& b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  static simd_batch multiply_add(const simd_batch& a, const simd_batch& b,
                                 const simd_batch& acc) {
    // Explicit mul then add: two roundings, matching the scalar kernels
    // under -ffp-contract=off.  NOT _mm256_fmadd_pd.
    return {_mm256_add_pd(acc.v, _mm256_mul_pd(a.v, b.v))};
  }
  static simd_batch accumulate_skip_zero(const simd_batch& aik, const simd_batch& b,
                                         const simd_batch& acc) {
    const __m256d cand = _mm256_add_pd(acc.v, _mm256_mul_pd(aik.v, b.v));
    const __m256d is_zero = _mm256_cmp_pd(aik.v, _mm256_setzero_pd(), _CMP_EQ_OQ);
    return {_mm256_blendv_pd(cand, acc.v, is_zero)};
  }
  static simd_batch sqrt(const simd_batch& x) { return {_mm256_sqrt_pd(x.v)}; }

  double extract(std::size_t i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }
};

#elif !defined(CPS_BATCH_FORCE_SCALAR) && defined(__ARM_NEON)

inline constexpr std::size_t kSimdWidth = 2;
inline constexpr const char* kSimdIsaName = "neon";

template <>
struct simd_batch<double, 2> {
  float64x2_t v;

  static simd_batch load(const double* p) { return {vld1q_f64(p)}; }
  void store(double* p) const { vst1q_f64(p, v); }
  static simd_batch broadcast(double x) { return {vdupq_n_f64(x)}; }
  static simd_batch zero() { return {vdupq_n_f64(0.0)}; }

  friend simd_batch operator+(const simd_batch& a, const simd_batch& b) {
    return {vaddq_f64(a.v, b.v)};
  }
  friend simd_batch operator*(const simd_batch& a, const simd_batch& b) {
    return {vmulq_f64(a.v, b.v)};
  }
  static simd_batch multiply_add(const simd_batch& a, const simd_batch& b,
                                 const simd_batch& acc) {
    // Explicit mul then add (never vfmaq_f64): two roundings, matching the
    // scalar kernels under -ffp-contract=off.
    return {vaddq_f64(acc.v, vmulq_f64(a.v, b.v))};
  }
  static simd_batch accumulate_skip_zero(const simd_batch& aik, const simd_batch& b,
                                         const simd_batch& acc) {
    const float64x2_t cand = vaddq_f64(acc.v, vmulq_f64(aik.v, b.v));
    const uint64x2_t is_zero = vceqq_f64(aik.v, vdupq_n_f64(0.0));
    return {vbslq_f64(is_zero, acc.v, cand)};
  }
  static simd_batch sqrt(const simd_batch& x) { return {vsqrtq_f64(x.v)}; }

  double extract(std::size_t i) const {
    double tmp[2];
    vst1q_f64(tmp, v);
    return tmp[i];
  }
};

#else

inline constexpr std::size_t kSimdWidth = 4;
inline constexpr const char* kSimdIsaName = "scalar";

#endif

/// Active ISA of this build, for bench contexts and the cps_run banner.
inline const char* simd_isa_name() { return kSimdIsaName; }

/// SoA batch of W same-shaped matrices, element-major and lane-interleaved:
/// entry (r, c) of lane L lives at data()[(r * cols + c) * W + L], so one
/// unaligned W-load at element index e = r * cols + c touches the same
/// entry of every lane at once.  Storage is a std::vector reused across
/// resize() calls (shrinking or re-shaping within capacity never
/// reallocates), which is what keeps the batched per-step loops
/// allocation-free once a workspace is warm.
template <std::size_t W>
class BatchMatrix {
 public:
  static constexpr std::size_t kWidth = W;

  BatchMatrix() = default;
  BatchMatrix(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// rows * cols — the per-lane element count, NOT the storage length.
  std::size_t element_count() const { return rows_ * cols_; }

  /// Re-shape to rows x cols; contents are unspecified afterwards (the
  /// kernels fully overwrite their outputs, mirroring the scalar reset()).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols * W);
  }

  /// Copy a scalar matrix into lane L (shape must match).
  void load_lane(std::size_t lane, const Matrix& m) {
    CPS_ENSURE(m.rows() == rows_ && m.cols() == cols_, "BatchMatrix: lane shape mismatch");
    const double* src = m.data();
    const std::size_t n = element_count();
    for (std::size_t e = 0; e < n; ++e) data_[e * W + lane] = src[e];
  }

  /// Copy lane L out into a scalar matrix (resized as needed).
  void store_lane(std::size_t lane, Matrix& m) const {
    if (m.rows() != rows_ || m.cols() != cols_) m = Matrix(rows_, cols_);
    double* dst = m.data();
    const std::size_t n = element_count();
    for (std::size_t e = 0; e < n; ++e) dst[e] = data_[e * W + lane];
  }

  /// Copy every entry of lane `from` of `src` into lane `to` of *this
  /// (equal shapes required) — the per-lane splice the masked squaring
  /// rounds of the batched expm use.
  void copy_lane_from(const BatchMatrix& src, std::size_t from, std::size_t to) {
    CPS_ENSURE(src.rows_ == rows_ && src.cols_ == cols_, "BatchMatrix: lane shape mismatch");
    const std::size_t n = element_count();
    for (std::size_t e = 0; e < n; ++e) data_[e * W + to] = src.data_[e * W + from];
  }

  /// Fill every lane with the same scalar matrix.
  void broadcast(const Matrix& m) {
    resize(m.rows(), m.cols());
    const double* src = m.data();
    const std::size_t n = element_count();
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t l = 0; l < W; ++l) data_[e * W + l] = src[e];
  }

  /// Exchange payloads (never allocates), so batched loops can
  /// double-buffer exactly like the scalar multiply_into + swap idiom.
  void swap(BatchMatrix& other) noexcept {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    data_.swap(other.data_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// Pointer to the W lanes of element index e (= r * cols + c).
  double* at(std::size_t e) { return data_.data() + e * W; }
  const double* at(std::size_t e) const { return data_.data() + e * W; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// SoA batch of W equally-sized vectors, lane-interleaved like BatchMatrix:
/// component i of lane L lives at data()[i * W + L].
template <std::size_t W>
class BatchVector {
 public:
  static constexpr std::size_t kWidth = W;

  BatchVector() = default;
  explicit BatchVector(std::size_t size) { resize(size); }

  std::size_t size() const { return size_; }

  void resize(std::size_t size) {
    size_ = size;
    data_.resize(size * W);
  }

  /// Copy `size()` doubles from `src` into lane L.
  void load_lane(std::size_t lane, const double* src) {
    for (std::size_t i = 0; i < size_; ++i) data_[i * W + lane] = src[i];
  }

  /// Copy lane L out into `dst` (must hold size() doubles).
  void store_lane(std::size_t lane, double* dst) const {
    for (std::size_t i = 0; i < size_; ++i) dst[i] = data_[i * W + lane];
  }

  /// Exchange payloads (never allocates) — the double-buffered step idiom.
  void swap(BatchVector& other) noexcept {
    std::swap(size_, other.size_);
    data_.swap(other.data_);
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* at(std::size_t i) { return data_.data() + i * W; }
  const double* at(std::size_t i) const { return data_.data() + i * W; }

 private:
  std::size_t size_ = 0;
  std::vector<double> data_;
};

}  // namespace cps::linalg
